"""Tests for repro.core.matmul."""

import pytest

np = pytest.importorskip("numpy")

from repro.core.matmul import (
    CountingBlockedMatMul,
    MatMulTraffic,
    blocked_mm_traffic,
    mm_lower_bound,
    optimal_block_sizes,
)


class TestAnalyticTraffic:
    def test_single_block_reads_everything_once(self):
        traffic = blocked_mm_traffic(10, 8, 6, block_m=10, block_n=6)
        assert traffic.a_reads == 10 * 8
        assert traffic.b_reads == 8 * 6
        assert traffic.c_writes == 10 * 6

    def test_row_blocking_rereads_b(self):
        traffic = blocked_mm_traffic(10, 8, 6, block_m=5, block_n=6)
        assert traffic.b_reads == 2 * 8 * 6
        assert traffic.a_reads == 10 * 8

    def test_column_blocking_rereads_a(self):
        traffic = blocked_mm_traffic(10, 8, 6, block_m=10, block_n=3)
        assert traffic.a_reads == 2 * 10 * 8
        assert traffic.b_reads == 8 * 6

    def test_total(self):
        traffic = MatMulTraffic(a_reads=3, b_reads=4, c_writes=5)
        assert traffic.total == 12

    def test_rejects_bad_blocks(self):
        with pytest.raises(ValueError):
            blocked_mm_traffic(4, 4, 4, 0, 1)

    def test_oversized_blocks_clipped(self):
        traffic = blocked_mm_traffic(4, 4, 4, 100, 100)
        assert traffic.total == 3 * 16


class TestLowerBound:
    def test_formula(self):
        assert mm_lower_bound(10, 10, 10, 25) == pytest.approx(2 * 1000 / 5 + 100)

    def test_rejects_empty_memory(self):
        with pytest.raises(ValueError):
            mm_lower_bound(4, 4, 4, 0)

    def test_blocked_traffic_respects_lower_bound(self):
        m, kk, n, fast = 64, 48, 64, 200
        block_m, block_n = optimal_block_sizes(m, kk, n, fast)
        traffic = blocked_mm_traffic(m, kk, n, block_m, block_n)
        # The achievable schedule can never beat the asymptotic bound by more
        # than its constant-factor slack.
        assert traffic.total >= 0.5 * mm_lower_bound(m, kk, n, fast)

    def test_optimal_blocks_fit_memory(self):
        m, kk, n, fast = 64, 48, 64, 200
        block_m, block_n = optimal_block_sizes(m, kk, n, fast)
        assert block_m * block_n + block_m + block_n <= fast

    def test_more_memory_never_hurts(self):
        m, kk, n = 128, 64, 96
        totals = []
        for fast in (64, 256, 1024, 4096):
            block_m, block_n = optimal_block_sizes(m, kk, n, fast)
            totals.append(blocked_mm_traffic(m, kk, n, block_m, block_n).total)
        assert totals == sorted(totals, reverse=True)

    def test_tiny_memory_degenerates_to_unit_blocks(self):
        assert optimal_block_sizes(8, 8, 8, 2) == (1, 1)


class TestCountingBlockedMatMul:
    def test_result_matches_numpy(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((17, 9))
        b = rng.standard_normal((9, 13))
        mm = CountingBlockedMatMul(block_m=5, block_n=4)
        np.testing.assert_allclose(mm.multiply(a, b), a @ b, rtol=1e-10)

    def test_counts_match_analytic_model(self):
        rng = np.random.default_rng(1)
        m, kk, n = 20, 7, 12
        a = rng.standard_normal((m, kk))
        b = rng.standard_normal((kk, n))
        mm = CountingBlockedMatMul(block_m=6, block_n=5)
        mm.multiply(a, b)
        expected = blocked_mm_traffic(m, kk, n, 6, 5)
        assert mm.traffic.a_reads == expected.a_reads
        assert mm.traffic.b_reads == expected.b_reads
        assert mm.traffic.c_writes == expected.c_writes

    def test_rejects_shape_mismatch(self):
        mm = CountingBlockedMatMul(2, 2)
        with pytest.raises(ValueError):
            mm.multiply(np.zeros((3, 4)), np.zeros((5, 6)))

    def test_rejects_bad_block_sizes(self):
        with pytest.raises(ValueError):
            CountingBlockedMatMul(0, 1)
