"""Tests for the controller schedule generator (repro.arch.schedule)."""

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import paper_implementation
from repro.arch.mapping import BlockShape
from repro.arch.schedule import ScheduleGenerator, schedule_summary
from repro.core.layer import ConvLayer
from repro.core.optimal_dataflow import dataflow_traffic
from repro.core.tiling import Tiling


@pytest.fixture(scope="module")
def config():
    return paper_implementation(1)


@pytest.fixture(scope="module")
def generator(config):
    return ScheduleGenerator(config)


@pytest.fixture
def layer():
    return ConvLayer("sched", 1, 4, 18, 18, 32, 3, 3, stride=1, padding=1)


class TestBlockSchedule:
    def test_pass_and_iteration_counts(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        block = BlockShape(b=1, z=16, y=6, x=6)
        schedule = generator.block_schedule(layer, tiling, block)
        assert len(schedule.iterations) == layer.in_channels
        kernel_area = layer.kernel_height * layer.kernel_width
        assert all(len(it.passes) == kernel_area for it in schedule.iterations)
        assert schedule.total_passes == layer.in_channels * kernel_area

    def test_pass_records_enumerate_kernel_positions(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        block = BlockShape(b=1, z=16, y=6, x=6)
        schedule = generator.block_schedule(layer, tiling, block)
        first_iteration = schedule.iterations[0]
        positions = {(p.kernel_row, p.kernel_col) for p in first_iteration.passes}
        assert positions == {(r, c) for r in range(3) for c in range(3)}
        assert all(p.weights_loaded == block.z for p in first_iteration.passes)

    def test_channel_step_groups_passes(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=2)
        block = BlockShape(b=1, z=16, y=6, x=6)
        schedule = generator.block_schedule(layer, tiling, block)
        assert len(schedule.iterations) == 2
        assert all(len(it.passes) == 2 * 9 for it in schedule.iterations)

    def test_compute_cycles_match_mapping(self, generator, layer, config):
        from repro.arch.mapping import map_block

        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        block = BlockShape(b=1, z=16, y=6, x=6)
        schedule = generator.block_schedule(layer, tiling, block)
        mapping = map_block(layer, block, config)
        expected = layer.in_channels * 9 * mapping.cycles_per_pass()
        assert schedule.compute_cycles == expected

    def test_stall_cycles_nonnegative(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        block = BlockShape(b=1, z=16, y=6, x=6)
        schedule = generator.block_schedule(layer, tiling, block)
        assert all(it.stall_cycles >= 0 for it in schedule.iterations)


class TestLayerSchedule:
    def test_blocks_cover_layer(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        schedules = list(generator.layer_schedule(layer, tiling))
        covered = sum(schedule.block.outputs for schedule in schedules)
        assert covered == layer.num_outputs

    def test_max_blocks_truncates(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        schedules = list(generator.layer_schedule(layer, tiling, max_blocks=3))
        assert len(schedules) == 3

    def test_dram_loads_match_analytic_traffic(self, generator, layer):
        tiling = Tiling(b=1, z=16, y=6, x=6, k=1)
        schedules = list(generator.layer_schedule(layer, tiling))
        loaded = sum(schedule.dram_words_loaded for schedule in schedules)
        analytic = dataflow_traffic(layer, tiling)
        assert loaded == pytest.approx(analytic.input_reads + analytic.weight_reads)

    def test_summary_matches_accelerator_compute_cycles(self, generator, layer, config):
        model = AcceleratorModel(config)
        tiling = model.choose_layer_tiling(layer)
        schedules = list(generator.layer_schedule(layer, tiling))
        summary = schedule_summary(schedules)
        result = model.run_layer(layer, tiling=tiling)
        assert summary["compute_cycles"] == result.compute_cycles
        assert summary["dram_words_loaded"] == pytest.approx(
            result.dram.input_reads + result.dram.weight_reads
        )

    def test_default_tiling_is_valid(self, generator, layer):
        schedules = list(generator.layer_schedule(layer))
        assert schedules
        assert sum(schedule.block.outputs for schedule in schedules) == layer.num_outputs

    def test_summary_fields(self, generator, layer):
        tiling = Tiling(b=1, z=8, y=9, x=9, k=1)
        schedules = list(generator.layer_schedule(layer, tiling))
        summary = schedule_summary(schedules)
        assert summary["blocks"] == len(schedules)
        assert summary["passes"] > 0
        assert summary["stall_cycles"] >= 0
