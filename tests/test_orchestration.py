"""Tests for the run orchestrator: manifests, sharding, resume, merge.

The acceptance contract under test:

* manifest expansion is deterministic and duplicate-free;
* the union of shards equals the full unit set for several shard counts;
* a run killed mid-shard resumes with ``units_skipped`` equal to the units
  completed before the kill, recomputes zero completed units (engine stats
  stay empty on a fully-complete resume), and the final artifacts are
  bit-identical to an uninterrupted run;
* merging shard trees is bit-identical to a single unsharded run, and the
  merged goldens units diff clean against pinned golden files.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.goldens import write_goldens
from repro.cli import main
from repro.engine import CacheStats, shard_cache_filename
from repro.orchestration.experiments import (
    PAPER_EXPERIMENTS,
    experiment_names,
    get_experiment,
)
from repro.orchestration.manifest import (
    NO_BACKEND,
    ManifestSpec,
    RunManifest,
    parse_shard,
)
from repro.orchestration.merge import (
    diff_merged_goldens,
    merge_runs,
    summary_markdown,
)
from repro.orchestration.runner import Runner, unit_artifact_path, unit_status_path

#: A small spec that exercises search-based, model-only and goldens units
#: while staying fast (the tiny workload, two tiny capacities).
TINY_SPEC = dict(
    workloads=("tiny",),
    experiments=("fig13", "fig14", "fig16", "table4", "goldens"),
    params={"fig13": {"capacities_kib": [8, 16]}, "fig14": {"capacity_kib": 4}},
)


def tiny_manifest() -> RunManifest:
    return RunManifest.from_spec(ManifestSpec(**TINY_SPEC))


def read_tree(out_dir):
    """{relative path: bytes} of the merge-compared artifact files."""
    tree = {}
    for name in ("manifest.json",):
        with open(os.path.join(out_dir, name), "rb") as handle:
            tree[name] = handle.read()
    units_dir = os.path.join(out_dir, "units")
    for name in sorted(os.listdir(units_dir)):
        with open(os.path.join(units_dir, name), "rb") as handle:
            tree[f"units/{name}"] = handle.read()
    return tree


class TestManifest:
    def test_expansion_is_deterministic(self):
        first = tiny_manifest()
        second = tiny_manifest()
        assert [unit.unit_id for unit in first.units] == [
            unit.unit_id for unit in second.units
        ]
        assert first.to_json() == second.to_json()

    def test_expansion_is_duplicate_free(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny", "tiny"),
                experiments=("fig13", "fig13", "fig16"),
            )
        )
        ids = [unit.unit_id for unit in manifest.units]
        assert len(ids) == len(set(ids)) == 2

    def test_backend_expansion_only_for_search_experiments(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig13", "fig16"),
                backends=("numpy", "python"),
            )
        )
        by_experiment = {}
        for unit in manifest.units:
            by_experiment.setdefault(unit.experiment, []).append(unit.backend)
        assert sorted(by_experiment["fig13"]) == ["numpy", "python"]
        assert by_experiment["fig16"] == [NO_BACKEND]

    def test_full_paper_spec_covers_every_experiment(self):
        manifest = RunManifest.from_spec(ManifestSpec())
        assert {unit.experiment for unit in manifest.units} == set(PAPER_EXPERIMENTS)
        assert set(PAPER_EXPERIMENTS) <= set(experiment_names())

    def test_params_default_and_override(self):
        manifest = tiny_manifest()
        fig13 = [unit for unit in manifest.units if unit.experiment == "fig13"]
        assert fig13[0].params == {"capacities_kib": [8, 16]}
        default = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig13",))
        )
        assert default.units[0].params == dict(get_experiment("fig13").default_params)

    @pytest.mark.parametrize("count", [1, 2, 5])
    def test_shard_union_is_full_set(self, count):
        manifest = tiny_manifest()
        seen = []
        for index in range(1, count + 1):
            seen += [unit.unit_id for unit in manifest.shard(index, count)]
        assert len(seen) == len(manifest)
        assert set(seen) == manifest.unit_ids()

    def test_shard_validation(self):
        manifest = tiny_manifest()
        with pytest.raises(ValueError):
            manifest.shard(0, 2)
        with pytest.raises(ValueError):
            manifest.shard(3, 2)
        assert parse_shard("2/4") == (2, 4)
        with pytest.raises(ValueError):
            parse_shard("4/2")
        with pytest.raises(ValueError):
            parse_shard("half")

    def test_manifest_json_roundtrip(self):
        manifest = tiny_manifest()
        reloaded = RunManifest.from_json(manifest.to_json())
        assert reloaded.to_json() == manifest.to_json()


class TestRunner:
    def test_run_writes_artifacts_and_statuses(self, tmp_path):
        out_dir = str(tmp_path / "run")
        manifest = tiny_manifest()
        report = Runner(manifest, out_dir).run()
        assert report.complete
        assert report.units_completed == len(manifest)
        for unit in manifest.units:
            with open(unit_artifact_path(out_dir, unit.unit_id)) as handle:
                document = json.load(handle)
            assert document["unit_id"] == unit.unit_id
            assert document["experiment"] == unit.experiment
            assert document["payload"]
            with open(unit_status_path(out_dir, unit.unit_id)) as handle:
                assert json.load(handle)["state"] == "completed"
        # The shard-scoped engine cache persisted (resume starts warm).
        assert os.path.exists(
            os.path.join(out_dir, "cache", shard_cache_filename("auto", 1, 1))
        )

    def test_out_dir_rejects_a_different_spec(self, tmp_path):
        out_dir = str(tmp_path / "run")
        Runner(tiny_manifest(), out_dir).run()
        other = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        with pytest.raises(ValueError, match="different spec"):
            Runner(other, out_dir).run()

    def test_failed_unit_is_recorded_and_does_not_stop_the_shard(self, tmp_path):
        out_dir = str(tmp_path / "run")
        # 0.001 KB cannot fit any tiling: fig14 must fail, fig16 must pass.
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig14", "fig16"),
                params={"fig14": {"capacity_kib": 0.001}},
            )
        )
        report = Runner(manifest, out_dir).run()
        assert report.units_failed == 1
        assert report.units_completed == 1
        assert not report.ok
        assert "no tiling" in report.failures[0]["error"]
        failed_id = report.failures[0]["unit_id"]
        with open(unit_status_path(out_dir, failed_id)) as handle:
            status = json.load(handle)
        assert status["state"] == "failed"
        assert not os.path.exists(unit_artifact_path(out_dir, failed_id))


class TestKillAndResume:
    def test_interrupted_shard_resumes_without_recomputation(self, tmp_path):
        manifest = tiny_manifest()
        total = len(manifest)
        killed_dir = str(tmp_path / "killed")
        clean_dir = str(tmp_path / "clean")

        # Simulate a kill: stop after 2 fresh completions.
        before_kill = Runner(manifest, killed_dir).run(max_units=2)
        assert before_kill.units_completed == 2
        assert before_kill.units_pending == total - 2

        # Resume: exactly the completed units are skipped, the rest run.
        resumed = Runner(manifest, killed_dir).run()
        assert resumed.units_skipped == before_kill.units_completed
        assert resumed.units_completed == total - 2
        assert resumed.complete

        # A second resume recomputes zero units and never builds an engine.
        noop = Runner(manifest, killed_dir).run()
        assert noop.units_skipped == total
        assert noop.units_completed == 0
        assert noop.engine_stats == {}

        # The interrupted-then-resumed tree is bit-identical to a clean run.
        assert Runner(manifest, clean_dir).run().complete
        assert read_tree(killed_dir) == read_tree(clean_dir)

    def test_resumed_engine_starts_from_the_persisted_cache(self, tmp_path):
        # Search-based units only, so the first completed unit always has an
        # engine whose statistics we can compare across runs.
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig13", "fig14"),
                params=dict(TINY_SPEC["params"]),
            )
        )
        out_dir = str(tmp_path / "run")
        first = Runner(manifest, out_dir).run(max_units=1)
        assert first.units_completed == 1
        (first_stats,) = first.engine_stats.values()
        assert first_stats["cache_entries"] > 0
        # Force-recomputing the same unit set hits the shard cache file: the
        # resumed engine reloads every persisted entry instead of searching.
        second = Runner(manifest, out_dir).run(resume=False, max_units=1)
        (second_stats,) = second.engine_stats.values()
        assert second_stats["misses"] == 0
        assert second_stats["hits"] == first_stats["hits"] + first_stats["misses"]


class TestMerge:
    @pytest.mark.parametrize("count", [2, 5])
    def test_sharded_merge_is_bit_identical_to_unsharded(self, tmp_path, count):
        manifest = tiny_manifest()
        shard_dirs = []
        for index in range(1, count + 1):
            shard_dir = str(tmp_path / f"shard-{index}")
            report = Runner(manifest, shard_dir).run(shard=(index, count))
            assert report.complete
            shard_dirs.append(shard_dir)
        merged_dir = str(tmp_path / "merged")
        merge_report = merge_runs(shard_dirs, merged_dir)
        assert merge_report.ok
        assert merge_report.units_merged == len(manifest)

        full_dir = str(tmp_path / "full")
        assert Runner(manifest, full_dir).run().complete
        assert read_tree(merged_dir) == read_tree(full_dir)

    def test_merge_aggregates_engine_stats_across_shards(self, tmp_path):
        manifest = tiny_manifest()
        shard_dirs = []
        expected = CacheStats()
        for index in (1, 2):
            shard_dir = str(tmp_path / f"shard-{index}")
            report = Runner(manifest, shard_dir).run(shard=(index, 2))
            shard_dirs.append(shard_dir)
            for stats in report.engine_stats.values():
                expected.merge(CacheStats.from_dict(stats))
        merge_report = merge_runs(shard_dirs, str(tmp_path / "merged"))
        assert merge_report.engine_stats["auto"]["hits"] == expected.hits
        assert merge_report.engine_stats["auto"]["misses"] == expected.misses

    def test_resume_attempts_never_wipe_shard_stats(self, tmp_path):
        manifest = tiny_manifest()
        out_dir = str(tmp_path / "run")
        killed = Runner(manifest, out_dir).run(max_units=2)
        resumed = Runner(manifest, out_dir).run()
        noop = Runner(manifest, out_dir).run()
        assert noop.engine_stats == {}
        expected = CacheStats()
        for attempt in (killed, resumed):
            for stats in attempt.engine_stats.values():
                expected.merge(CacheStats.from_dict(stats))
        # The merge aggregate must see the work of *both* attempts even
        # though the last run (the no-op resume) did none.
        report = merge_runs([out_dir], str(tmp_path / "merged"))
        assert report.engine_stats["auto"]["misses"] == expected.misses
        assert report.engine_stats["auto"]["hits"] == expected.hits
        assert len(report.shard_reports) == 3

    def test_merge_reports_missing_units(self, tmp_path):
        manifest = tiny_manifest()
        shard_dir = str(tmp_path / "shard-1")
        # Only shard 1 of 2 ran: the other shard's units are missing.
        Runner(manifest, shard_dir).run(shard=(1, 2))
        report = merge_runs([shard_dir], str(tmp_path / "merged"))
        assert not report.ok
        missing = {unit.unit_id for unit in manifest.shard(2, 2)}
        assert set(report.missing) == missing

    def test_merge_detects_conflicting_duplicates(self, tmp_path):
        manifest = tiny_manifest()
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        Runner(manifest, dir_a).run()
        Runner(manifest, dir_b).run()
        victim = manifest.units[0].unit_id
        path = unit_artifact_path(dir_b, victim)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"] = {"tampered": True}
        with open(path, "w") as handle:
            json.dump(document, handle)
        report = merge_runs([dir_a, dir_b], str(tmp_path / "merged"))
        assert report.conflicts == [victim]
        assert not report.ok

    def test_remerge_rejects_an_out_dir_of_a_different_spec(self, tmp_path):
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        merged = str(tmp_path / "merged")
        Runner(tiny_manifest(), dir_a).run()
        merge_runs([dir_a], merged)
        other = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        Runner(other, dir_b).run()
        with pytest.raises(ValueError, match="different spec"):
            merge_runs([dir_b], merged)
        # The original merge is untouched: no stale mixing of the two specs.
        assert read_tree(merged) == read_tree(dir_a)

    def test_remerge_removes_stale_unit_files(self, tmp_path):
        manifest = tiny_manifest()
        shard_dir = str(tmp_path / "shard")
        merged = str(tmp_path / "merged")
        Runner(manifest, shard_dir).run()
        merge_runs([shard_dir], merged)
        stale = os.path.join(merged, "units", "zzz--stale--none--0000000000.json")
        with open(stale, "w") as handle:
            handle.write("{}")
        report = merge_runs([shard_dir], merged)
        assert report.ok
        assert not os.path.exists(stale)
        assert read_tree(merged) == read_tree(shard_dir)

    def test_merge_rejects_mismatched_manifests(self, tmp_path):
        dir_a = str(tmp_path / "a")
        dir_b = str(tmp_path / "b")
        Runner(tiny_manifest(), dir_a).run()
        other = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        Runner(other, dir_b).run()
        with pytest.raises(ValueError, match="different specs"):
            merge_runs([dir_a, dir_b], str(tmp_path / "merged"))


class TestGoldensDiff:
    def test_merged_goldens_diff_clean_against_pinned_files(self, tmp_path):
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        report = merge_runs([out_dir], merged_dir)
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert diff == {"tiny": []}
        markdown = summary_markdown(report, diff)
        assert "| tiny |" in markdown and "✅" in markdown

    def test_multi_backend_mismatch_is_never_masked(self, tmp_path):
        pytest.importorskip("numpy")
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("goldens",),
                backends=("numpy", "python"),
            )
        )
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        assert diff_merged_goldens(merged_dir, goldens_dir) == {"tiny": []}
        # Corrupt only the numpy unit: the clean python unit must not mask it.
        numpy_unit = next(
            unit for unit in manifest.units if unit.backend == "numpy"
        )
        path = unit_artifact_path(merged_dir, numpy_unit.unit_id)
        with open(path) as handle:
            document = json.load(handle)
        document["payload"]["workload"] = "tampered"
        with open(path, "w") as handle:
            json.dump(document, handle)
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert any(problem.startswith("[numpy]") for problem in diff["tiny"])

    def test_diff_without_goldens_units_is_an_error_not_a_pass(self, tmp_path):
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        Runner(manifest, out_dir).run()
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        with pytest.raises(ValueError, match="no 'goldens' units"):
            diff_merged_goldens(merged_dir, str(tmp_path / "goldens"))

    def test_merge_json_stdout_is_parseable_with_diff_goldens(self, tmp_path, capsys):
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        Runner(manifest, out_dir).run()
        merged_dir = str(tmp_path / "merged")
        assert main([
            "merge", out_dir, "--out-dir", merged_dir,
            "--diff-goldens", goldens_dir, "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)  # whole stdout is JSON
        assert document["goldens"] == {"tiny": []}

    def test_missing_pin_is_reported(self, tmp_path):
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        Runner(manifest, out_dir).run()
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        diff = diff_merged_goldens(merged_dir, str(tmp_path / "nowhere"))
        assert "no pinned golden file" in diff["tiny"][0]


class TestOrchestrationCli:
    def run_cli(self, *argv):
        return main(list(argv))

    def test_run_resume_merge_roundtrip(self, tmp_path, capsys):
        s1 = str(tmp_path / "s1")
        s2 = str(tmp_path / "s2")
        merged = str(tmp_path / "merged")
        base = [
            "--workloads", "tiny", "--experiments", "fig13", "fig16",
            "--capacities", "8", "16",
        ]
        assert self.run_cli("run", "--out-dir", s1, "--shard", "1/2", *base) == 0
        assert self.run_cli("run", "--out-dir", s2, "--shard", "2/2", *base) == 0
        capsys.readouterr()

        assert self.run_cli("resume", "--out-dir", s1, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["units_completed"] == 0
        assert report["units_skipped"] == report["units_total"]
        assert report["engine_stats"] == {}

        assert self.run_cli("merge", s1, s2, "--out-dir", merged, "--json") == 0
        merge_report = json.loads(capsys.readouterr().out)
        assert merge_report["ok"] is True
        assert merge_report["units_merged"] == 2  # fig13 + fig16 on tiny
        assert os.path.exists(os.path.join(merged, "manifest.json"))

    def test_reproduce_all_accepts_narrowed_spec(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert self.run_cli(
            "reproduce-all", "--out-dir", out_dir,
            "--workloads", "tiny", "--experiments", "fig16", "table4", "--json",
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["units_total"] == 2
        assert report["units_failed"] == 0

    def test_merge_summary_file_gets_markdown(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        summary = str(tmp_path / "summary.md")
        assert self.run_cli(
            "run", "--out-dir", out_dir,
            "--workloads", "tiny", "--experiments", "fig16",
        ) == 0
        assert self.run_cli(
            "merge", out_dir, "--out-dir", str(tmp_path / "merged"),
            "--summary-file", summary,
        ) == 0
        capsys.readouterr()
        with open(summary) as handle:
            text = handle.read()
        assert "## Full-paper reproduction merge" in text
        assert "| units merged | 1 |" in text

    def test_resume_shard_override_is_per_invocation(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        base = ["--workloads", "tiny", "--experiments", "fig13", "fig16",
                "--capacities", "8", "16"]
        assert self.run_cli("run", "--out-dir", out_dir, "--shard", "1/2", *base) == 0
        # A one-off override runs the other shard but must not re-record
        # the out-dir: a later plain resume still targets shard 1/2.
        assert self.run_cli("resume", "--out-dir", out_dir, "--shard", "2/2") == 0
        capsys.readouterr()
        with open(os.path.join(out_dir, "run.json")) as handle:
            assert json.load(handle)["shard"] == [1, 2]
        assert self.run_cli("resume", "--out-dir", out_dir, "--json") == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shard"] == [1, 2]

    def test_resume_without_run_exits_2(self, tmp_path, capsys):
        assert self.run_cli("resume", "--out-dir", str(tmp_path / "empty")) == 2
        err = capsys.readouterr().err
        assert "nothing to resume" in err
        assert "Traceback" not in err

    def test_bad_shard_spec_exits_2(self, tmp_path, capsys):
        assert self.run_cli(
            "run", "--out-dir", str(tmp_path / "o"),
            "--workloads", "tiny", "--experiments", "fig16", "--shard", "9/2",
        ) == 2
        assert "shard" in capsys.readouterr().err

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        assert self.run_cli(
            "run", "--out-dir", str(tmp_path / "o"), "--workloads", "nope",
        ) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_flat_cli_experiment_aliases_are_accepted(self, tmp_path, capsys):
        out_dir = str(tmp_path / "out")
        assert self.run_cli(
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "fig15", "table3", "--json",
        ) == 0
        report = json.loads(capsys.readouterr().out)
        # Both aliases resolve (and deduplicate) to the one fig15_table3 unit.
        assert report["units_total"] == 1
        assert report["units_failed"] == 0

    def test_unknown_experiment_exits_2_without_quoting(self, tmp_path, capsys):
        assert self.run_cli(
            "run", "--out-dir", str(tmp_path / "o"), "--workloads", "tiny",
            "--experiments", "fig99",
        ) == 2
        err = capsys.readouterr().err
        assert "error: unknown experiment 'fig99'" in err
        assert 'error: "' not in err

    def test_list_experiments_needs_no_out_dir(self, capsys):
        assert self.run_cli("run", "--list-experiments") == 0
        out = capsys.readouterr().out.split()
        assert "fig13" in out and "goldens" in out

    def test_run_without_out_dir_exits_2(self, capsys):
        assert self.run_cli("run", "--workloads", "tiny") == 2
        assert "--out-dir is required" in capsys.readouterr().err

    def test_bad_workers_fails_fast_with_exit_2(self, tmp_path, capsys):
        out_dir = str(tmp_path / "o")
        assert self.run_cli(
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "fig13", "--workers", "-3",
        ) == 2
        assert "workers must be >= 1" in capsys.readouterr().err
        # Fast fail: no per-unit failure artifacts were written.
        assert not os.path.exists(os.path.join(out_dir, "status"))


class TestManifestParamVariants:
    """A params value may be a list of override dicts: one unit per variant."""

    def test_variant_list_expands_to_one_unit_each(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("dse",),
                params={"dse": [{"slice": [1, 2]}, {"slice": [2, 2]}]},
            )
        )
        assert len(manifest) == 2
        slices = [unit.params["slice"] for unit in manifest.units]
        assert slices == [[1, 2], [2, 2]]

    def test_single_dict_stays_one_unit(self):
        listed = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig13",),
                params={"fig13": [{"capacities_kib": [8]}]},
            )
        )
        plain = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig13",),
                params={"fig13": {"capacities_kib": [8]}},
            )
        )
        assert [unit.unit_id for unit in listed.units] == [
            unit.unit_id for unit in plain.units
        ]

    def test_identical_variants_deduplicate(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("dse",),
                params={"dse": [{"slice": [1, 1]}, {"slice": [1, 1]}]},
            )
        )
        assert len(manifest) == 1

    def test_empty_variant_list_is_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            RunManifest.from_spec(
                ManifestSpec(
                    workloads=("tiny",), experiments=("dse",), params={"dse": []}
                )
            )

    def test_variant_manifest_round_trips_through_json(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("dse",),
                params={"dse": [{"slice": [1, 2]}, {"slice": [2, 2]}]},
            )
        )
        reloaded = RunManifest.from_json(manifest.to_json())
        assert reloaded.to_json() == manifest.to_json()


class TestMergeErrorPaths:
    def _two_shard_run(self, tmp_path):
        manifest = tiny_manifest()
        shard_dirs = []
        for index in (1, 2):
            shard_dir = str(tmp_path / f"shard-{index}")
            assert Runner(manifest, shard_dir).run(shard=(index, 2)).complete
            shard_dirs.append(shard_dir)
        return shard_dirs

    def test_corrupt_manifest_json_is_a_clean_error(self, tmp_path):
        shard_dirs = self._two_shard_run(tmp_path)
        with open(os.path.join(shard_dirs[0], "manifest.json"), "w") as handle:
            handle.write("{not json")
        with open(os.path.join(shard_dirs[1], "manifest.json"), "w") as handle:
            handle.write("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            merge_runs(shard_dirs, str(tmp_path / "merged"))

    def test_manifest_without_unit_list_is_a_clean_error(self, tmp_path):
        shard_dirs = self._two_shard_run(tmp_path)
        for shard_dir in shard_dirs:
            with open(os.path.join(shard_dir, "manifest.json"), "w") as handle:
                json.dump({"format": "repro-run-manifest-v1"}, handle)
        with pytest.raises(ValueError, match="no unit list"):
            merge_runs(shard_dirs, str(tmp_path / "merged"))

    def test_corrupt_shard_report_is_a_clean_error(self, tmp_path):
        shard_dirs = self._two_shard_run(tmp_path)
        reports = sorted(
            os.listdir(os.path.join(shard_dirs[0], "shards"))
        )
        with open(os.path.join(shard_dirs[0], "shards", reports[0]), "w") as handle:
            handle.write("][")
        with pytest.raises(ValueError, match="shard report .* is not valid JSON"):
            merge_runs(shard_dirs, str(tmp_path / "merged"))

    def test_malformed_engine_stats_are_a_clean_error(self, tmp_path):
        shard_dirs = self._two_shard_run(tmp_path)
        report_dir = os.path.join(shard_dirs[0], "shards")
        report_path = os.path.join(report_dir, sorted(os.listdir(report_dir))[0])
        with open(report_path) as handle:
            document = json.load(handle)
        document["engine_stats"] = {"auto": "not-a-dict"}
        with open(report_path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="malformed stats for backend 'auto'"):
            merge_runs(shard_dirs, str(tmp_path / "merged"))

    def test_stats_merge_tolerates_missing_counter_keys(self, tmp_path):
        """Older shard reports may lack newer counters; defaults fill in."""
        shard_dirs = self._two_shard_run(tmp_path)
        report_dir = os.path.join(shard_dirs[0], "shards")
        report_path = os.path.join(report_dir, sorted(os.listdir(report_dir))[0])
        with open(report_path) as handle:
            document = json.load(handle)
        document["engine_stats"] = {"python-old": {"hits": 7}}
        with open(report_path, "w") as handle:
            json.dump(document, handle)
        report = merge_runs(shard_dirs, str(tmp_path / "merged"))
        assert report.engine_stats["python-old"]["hits"] == 7
        assert report.engine_stats["python-old"]["misses"] == 0
        assert report.engine_stats["python-old"]["grid_evaluations"] == 0

    def test_corrupt_goldens_artifact_is_a_diff_problem_not_a_crash(self, tmp_path):
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        unit = manifest.units[0]
        with open(unit_artifact_path(merged_dir, unit.unit_id), "w") as handle:
            handle.write("{broken")
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert any("is unreadable" in problem for problem in diff["tiny"])

    def test_artifact_without_payload_is_a_diff_problem(self, tmp_path):
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        unit = manifest.units[0]
        with open(unit_artifact_path(merged_dir, unit.unit_id), "w") as handle:
            json.dump({"unit_id": unit.unit_id}, handle)
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert any("is unreadable" in problem for problem in diff["tiny"])

    def test_corrupt_pinned_golden_is_a_diff_problem(self, tmp_path):
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        out_dir = str(tmp_path / "run")
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("goldens",))
        )
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        with open(os.path.join(goldens_dir, "tiny.json"), "w") as handle:
            handle.write("{broken")
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert any("not valid JSON" in problem for problem in diff["tiny"])


class TestShardCacheBounds:
    def test_runner_engines_are_lru_bounded_and_report_evictions(self, tmp_path):
        from repro.orchestration import runner as runner_module

        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig13",),
                params={"fig13": {"capacities_kib": [8, 16, 24]}},
            )
        )
        out_dir = str(tmp_path / "run")
        original = runner_module.SHARD_CACHE_MAX_ENTRIES
        runner_module.SHARD_CACHE_MAX_ENTRIES = 4
        try:
            report = Runner(manifest, out_dir).run()
        finally:
            runner_module.SHARD_CACHE_MAX_ENTRIES = original
        assert report.complete
        stats = report.engine_stats["auto"]
        assert stats["cache_entries"] <= 4
        assert stats["cache_evictions"] > 0
        # The persisted shard cache honours the bound too.
        from repro.engine import SearchCache

        cache_path = os.path.join(out_dir, "cache", shard_cache_filename("auto", 1, 1))
        assert os.path.exists(cache_path)
        assert 0 < len(SearchCache(path=cache_path)) <= 4

    def test_engine_stats_always_report_eviction_counts(self, tmp_path):
        manifest = tiny_manifest()
        out_dir = str(tmp_path / "run")
        report = Runner(manifest, out_dir).run()
        for stats in report.engine_stats.values():
            assert stats["cache_evictions"] == 0


class TestAttemptReportRace:
    """Regression: two report writers counting the same directory listing
    used to pick the same attempt number and silently overwrite each other
    (a resume racing a stalled original run lost the original's engine
    stats).  Allocation is now exclusive: the loser retries the next number.
    """

    def test_stale_listing_never_overwrites(self, tmp_path, monkeypatch):
        import glob as glob_module

        from repro.orchestration import runner as runner_module

        out_dir = str(tmp_path / "run")
        first = runner_module.write_attempt_report(out_dir, "shard-1of1-attempt", {"n": 1})
        # Freeze the directory listing both writers see to the pre-first
        # state: the second writer recomputes attempt=1 (the collision the
        # glob count used to turn into an overwrite) and must skip to 2.
        monkeypatch.setattr(glob_module, "glob", lambda pattern: [])
        second = runner_module.write_attempt_report(out_dir, "shard-1of1-attempt", {"n": 2})
        assert first != second
        with open(first) as handle:
            assert json.load(handle) == {"n": 1, "attempt": 1}
        with open(second) as handle:
            assert json.load(handle) == {"n": 2, "attempt": 2}

    def test_concurrent_writers_allocate_distinct_files(self, tmp_path):
        import threading

        from repro.orchestration.runner import write_attempt_report

        out_dir = str(tmp_path / "run")
        writers, reports_each = 4, 5
        barrier = threading.Barrier(writers)
        written = [[] for _ in range(writers)]

        def write(index):
            barrier.wait()
            for n in range(reports_each):
                written[index].append(
                    write_attempt_report(
                        out_dir, "shard-1of1-attempt", {"writer": index, "n": n}
                    )
                )

        threads = [
            threading.Thread(target=write, args=(index,)) for index in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        paths = [path for per_writer in written for path in per_writer]
        assert len(set(paths)) == writers * reports_each
        assert sorted(os.listdir(os.path.join(out_dir, "shards"))) == sorted(
            os.path.basename(path) for path in paths
        )
        for path in paths:  # every file is intact and self-consistent
            with open(path) as handle:
                document = json.load(handle)
            assert path.endswith(f"{document['attempt']:03d}.json")


class TestStaleArtifactMerge:
    """Regression: ``merge_runs`` trusted any ``units/*.json`` file.  A
    ``--force`` re-run whose latest attempt failed leaves the *previous*
    success's artifact next to a ``failed`` status; merging it silently
    resurrected the stale payload.  Merge now consults ``status/``.
    """

    def _fail_next_run(self, monkeypatch):
        from repro.orchestration import runner as runner_module

        def broken(name):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(runner_module, "get_experiment", broken)

    def test_stale_artifact_is_reported_not_merged(self, tmp_path, monkeypatch):
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        out_dir = str(tmp_path / "run")
        ok = Runner(manifest, out_dir).run()
        assert ok.complete
        (unit_id,) = [unit.unit_id for unit in manifest.units]
        # Forced re-run with an injected failure: the old artifact file
        # survives on disk, but the status now says the attempt failed.
        self._fail_next_run(monkeypatch)
        forced = Runner(manifest, out_dir).run(resume=False)
        assert forced.units_failed == 1
        assert os.path.exists(unit_artifact_path(out_dir, unit_id))

        merged_dir = str(tmp_path / "merged")
        report = merge_runs([out_dir], merged_dir)
        assert not report.ok
        assert any(unit_id in entry for entry in report.stale)
        assert unit_id in report.missing  # no completed copy anywhere
        assert not os.path.exists(unit_artifact_path(merged_dir, unit_id))
        assert "1 stale" in report.describe()
        markdown = summary_markdown(report)
        assert "stale artifacts" in markdown
        assert unit_id in markdown

    def test_completed_copy_in_another_shard_still_merges(
        self, tmp_path, monkeypatch
    ):
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        good_dir = str(tmp_path / "good")
        bad_dir = str(tmp_path / "bad")
        assert Runner(manifest, good_dir).run().complete
        assert Runner(manifest, bad_dir).run().complete
        self._fail_next_run(monkeypatch)
        assert Runner(manifest, bad_dir).run(resume=False).units_failed == 1

        merged_dir = str(tmp_path / "merged")
        report = merge_runs([good_dir, bad_dir], merged_dir)
        # The stale copy is named, but the good shard completes the merge
        # -- and the stale file is never byte-compared against the good
        # one (a stale copy differing is expected, not a conflict).
        assert report.stale and not report.missing and not report.conflicts
        assert not report.ok
        (unit_id,) = [unit.unit_id for unit in manifest.units]
        assert os.path.exists(unit_artifact_path(merged_dir, unit_id))


class TestTruncatedArtifacts:
    """Regression: ``is_completed`` trusted any artifact *file*; a torn
    write surviving a crash (pre-fsync) was skipped on resume and archived
    by merge.  Unparseable artifacts now read as incomplete.
    """

    def test_truncated_artifact_is_recomputed_on_resume(self, tmp_path):
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16", "table4"))
        )
        broken_dir = str(tmp_path / "broken")
        clean_dir = str(tmp_path / "clean")
        assert Runner(manifest, broken_dir).run().complete
        assert Runner(manifest, clean_dir).run().complete

        victim = manifest.units[0].unit_id
        path = unit_artifact_path(broken_dir, victim)
        with open(path) as handle:
            torn = handle.read()[:17]  # mid-document: not valid JSON
        with open(path, "w") as handle:
            handle.write(torn)
        runner = Runner(manifest, broken_dir)
        assert not runner.is_completed(victim)

        resumed = runner.run()
        assert resumed.units_completed == 1  # exactly the torn unit
        assert resumed.units_skipped == len(manifest) - 1
        assert read_tree(broken_dir) == read_tree(clean_dir)

    def test_unparseable_status_reads_as_incomplete(self, tmp_path):
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        )
        out_dir = str(tmp_path / "run")
        assert Runner(manifest, out_dir).run().complete
        (unit_id,) = [unit.unit_id for unit in manifest.units]
        with open(unit_status_path(out_dir, unit_id), "w") as handle:
            handle.write("{not json")
        assert not Runner(manifest, out_dir).is_completed(unit_id)


class TestRunMetadataValidation:
    """Regression: a hand-edited ``"shard": ["1", "4"]`` in ``run.json``
    passed the format check and exploded later as a TypeError traceback
    inside the manifest arithmetic; it must exit 2 with one clean line.
    """

    def _run_tiny(self, tmp_path):
        out_dir = str(tmp_path / "run")
        assert main([
            "run", "--out-dir", out_dir,
            "--workloads", "tiny", "--experiments", "fig16",
        ]) == 0
        return out_dir

    def _rewrite_shard(self, out_dir, shard):
        path = os.path.join(out_dir, "run.json")
        with open(path) as handle:
            document = json.load(handle)
        document["shard"] = shard
        with open(path, "w") as handle:
            json.dump(document, handle)

    @pytest.mark.parametrize(
        "shard, message",
        [
            (["1", "4"], "must be positive integers"),
            ([True, True], "must be positive integers"),
            ([0, 4], "invalid shard"),
            ([5, 4], "invalid shard"),
        ],
    )
    def test_bad_recorded_shard_exits_2(self, tmp_path, capsys, shard, message):
        out_dir = self._run_tiny(tmp_path)
        capsys.readouterr()
        self._rewrite_shard(out_dir, shard)
        assert main(["resume", "--out-dir", out_dir]) == 2
        err = capsys.readouterr().err
        assert message in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1

    def test_valid_recorded_shard_still_resumes(self, tmp_path, capsys):
        out_dir = self._run_tiny(tmp_path)
        assert main(["resume", "--out-dir", out_dir]) == 0
