"""Tests for repro.core.traffic."""

import pytest

from repro.core.traffic import BYTES_PER_WORD, TrafficBreakdown, sum_traffic


class TestTrafficBreakdown:
    def test_defaults_are_zero(self):
        traffic = TrafficBreakdown()
        assert traffic.total == 0
        assert traffic.reads == 0
        assert traffic.writes == 0

    def test_totals(self):
        traffic = TrafficBreakdown(input_reads=10, weight_reads=5, output_reads=2, output_writes=3)
        assert traffic.reads == 17
        assert traffic.writes == 3
        assert traffic.total == 20
        assert traffic.output_traffic == 5
        assert traffic.total_bytes == 20 * BYTES_PER_WORD

    def test_addition(self):
        a = TrafficBreakdown(input_reads=1, weight_reads=2, output_reads=3, output_writes=4)
        b = TrafficBreakdown(input_reads=10, weight_reads=20, output_reads=30, output_writes=40)
        combined = a + b
        assert combined.input_reads == 11
        assert combined.weight_reads == 22
        assert combined.output_reads == 33
        assert combined.output_writes == 44

    def test_addition_with_wrong_type(self):
        with pytest.raises(TypeError):
            TrafficBreakdown() + 3

    def test_scaled(self):
        traffic = TrafficBreakdown(input_reads=10, weight_reads=4, output_writes=2)
        half = traffic.scaled(0.5)
        assert half.input_reads == 5
        assert half.weight_reads == 2
        assert half.output_writes == 1

    def test_sum_traffic(self):
        parts = [TrafficBreakdown(input_reads=1), TrafficBreakdown(weight_reads=2),
                 TrafficBreakdown(output_writes=3)]
        total = sum_traffic(parts)
        assert total.total == 6

    def test_sum_traffic_empty(self):
        assert sum_traffic([]).total == 0
