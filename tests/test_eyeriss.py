"""Tests for the Eyeriss row-stationary baseline model."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.lower_bound import ideal_traffic
from repro.eyeriss.model import (
    EYERISS_CONFIG,
    EYERISS_REPORTED_VGG16_DRAM_MB,
    EyerissModel,
    VGG16_INPUT_COMPRESSION,
)


@pytest.fixture(scope="module")
def model():
    return EyerissModel()


class TestEyerissConfig:
    def test_published_parameters(self):
        assert EYERISS_CONFIG.num_pes == 168
        assert EYERISS_CONFIG.effective_on_chip_kib == pytest.approx(173.5)
        assert EYERISS_CONFIG.spad_weight_words_total == 168 * 224

    def test_reported_constants(self):
        assert EYERISS_REPORTED_VGG16_DRAM_MB["uncompressed"] > EYERISS_REPORTED_VGG16_DRAM_MB["compressed"]
        assert len(VGG16_INPUT_COMPRESSION) == 13
        assert all(0 < ratio <= 1 for ratio in VGG16_INPUT_COMPRESSION)


class TestLayerModel:
    def test_traffic_at_least_ideal(self, model, vgg_layer_mid):
        result = model.run_layer(vgg_layer_mid)
        assert result.dram.total >= ideal_traffic(vgg_layer_mid)

    def test_tile_fits_gbuf(self, model, vgg_layer_mid):
        result = model.run_layer(vgg_layer_mid)
        tile = result.tile
        strip_rows = (tile["e"] - 1) * vgg_layer_mid.stride + vgg_layer_mid.kernel_height
        ifmap = tile["n"] * tile["c"] * strip_rows * vgg_layer_mid.in_width
        psum = tile["n"] * tile["m"] * tile["e"] * vgg_layer_mid.out_width
        assert ifmap + psum <= EYERISS_CONFIG.gbuf_data_words

    def test_gbuf_traffic_exceeds_dram_traffic(self, model, vgg_layer_mid):
        result = model.run_layer(vgg_layer_mid)
        assert result.gbuf_accesses > result.dram.total

    def test_raises_when_nothing_fits(self, model):
        # Even a single-channel, single-row strip of this layer's input
        # (3 rows x 20000 columns) exceeds the 100 KB GBuf data region.
        giant = ConvLayer("giant", 1, 16, 3, 20000, 16, 3, 3, padding=0)
        with pytest.raises(ValueError):
            model.run_layer(giant)

    def test_run_network_length(self, model, vgg_layers):
        results = model.run_network(vgg_layers[:3])
        assert len(results) == 3


class TestNetworkComparisons:
    def test_compression_reduces_traffic(self, model, vgg_layers):
        subset = vgg_layers[:4]
        uncompressed = model.network_dram(subset)
        compressed = model.network_dram(subset, compression=VGG16_INPUT_COMPRESSION[:4])
        assert compressed.total < uncompressed.total

    def test_eyeriss_gbuf_traffic_much_larger_than_ours(self, vgg_layer_mid, impl1):
        from repro.arch.accelerator import AcceleratorModel

        eyeriss = EyerissModel().run_layer(vgg_layer_mid)
        ours = AcceleratorModel(impl1).run_layer(vgg_layer_mid)
        # The paper reports a 10.9-15.8x GBuf traffic reduction; require at
        # least a 3x separation from the analytic RS model.
        assert eyeriss.gbuf_accesses > 3 * ours.gbuf_accesses
