"""Tests for the ablation drivers (design-choice justifications)."""

import pytest

from repro.analysis.ablation import (
    balance_ablation,
    channel_step_ablation,
    memory_split_ablation,
    psum_location_ablation,
)
from repro.workloads.vgg import vgg16_conv_layers


@pytest.fixture(scope="module")
def layer():
    return vgg16_conv_layers()[5]  # conv3_2


@pytest.fixture(scope="module")
def subset_layers():
    layers = vgg16_conv_layers()
    return [layers[3], layers[8]]


class TestChannelStepAblation:
    def test_k_equal_one_is_best(self, layer):
        rows = channel_step_ablation(layer, steps=(1, 4, 16))
        totals = {row["k"]: row["dram_words"] for row in rows if row["dram_words"] is not None}
        assert totals[1] <= min(totals.values()) * 1.001

    def test_traffic_grows_with_k(self, layer):
        rows = channel_step_ablation(layer, steps=(1, 8, 32))
        values = [row["dram_words"] for row in rows if row["dram_words"] is not None]
        assert values == sorted(values)


class TestBalanceAblation:
    def test_balanced_ratio_is_best(self, layer):
        rows = balance_ablation(layer, ratios=(0.125, 1.0, 8.0))
        by_ratio = {row["target_ratio"]: row["dram_words"] for row in rows}
        assert by_ratio[1.0] <= by_ratio[0.125]
        assert by_ratio[1.0] <= by_ratio[8.0]

    def test_rows_report_achieved_ratio(self, layer):
        rows = balance_ablation(layer, ratios=(1.0,))
        assert 0.2 < rows[0]["achieved_ratio"] < 5.0


class TestPsumLocationAblation:
    def test_gbuf_psums_are_much_worse(self, subset_layers):
        result = psum_location_ablation(layers=subset_layers)
        assert result["penalty_factor"] > 5.0
        assert result["gbuf_accesses_psums_in_gbuf"] > result["gbuf_accesses_psums_in_lregs"]


class TestMemorySplitAblation:
    def test_psum_heavy_split_wins(self, subset_layers):
        rows = memory_split_ablation(layers=subset_layers, psum_fractions=(0.5, 0.96))
        by_fraction = {row["psum_fraction"]: row["dram_words"] for row in rows}
        assert by_fraction[0.96] <= by_fraction[0.5]
