"""Tests for repro.arch.config (Table I)."""

import pytest

from repro.arch.config import AcceleratorConfig, PAPER_IMPLEMENTATIONS, paper_implementation


class TestPaperImplementations:
    def test_five_implementations(self):
        assert len(PAPER_IMPLEMENTATIONS) == 5

    @pytest.mark.parametrize(
        "index,pes,lreg_bytes,greg_kib",
        [(1, 256, 256, 10), (2, 512, 128, 15), (3, 1024, 64, 18), (4, 1024, 128, 27), (5, 2048, 64, 36)],
    )
    def test_table1_rows(self, index, pes, lreg_bytes, greg_kib):
        config = paper_implementation(index)
        assert config.num_pes == pes
        assert config.lreg_bytes_per_pe == lreg_bytes
        assert config.greg_kib == pytest.approx(greg_kib)

    def test_effective_memory_66_5_kib_for_first_three(self):
        for index in (1, 2, 3):
            assert paper_implementation(index).effective_on_chip_kib == pytest.approx(66.5)

    def test_effective_memory_131_6_kib_for_last_two(self):
        for index in (4, 5):
            assert paper_implementation(index).effective_on_chip_kib == pytest.approx(131.625)

    def test_gbuf_sizes(self):
        assert paper_implementation(1).gbuf_kib == pytest.approx(2.5)
        assert paper_implementation(4).gbuf_kib == pytest.approx(3.625)

    def test_psum_capacity_is_64_kib_for_impl1(self):
        config = paper_implementation(1)
        assert config.psum_words == 32768

    def test_paper_implementation_bad_index(self):
        with pytest.raises(IndexError):
            paper_implementation(6)
        with pytest.raises(IndexError):
            paper_implementation(0)

    def test_describe_contains_key_numbers(self):
        text = paper_implementation(1).describe()
        assert "16x16" in text
        assert "66.5" in text


class TestConfigValidation:
    def test_group_must_divide_array(self):
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", pe_rows=10, pe_cols=16, lreg_words_per_pe=32,
                              igbuf_words=64, wgbuf_words=64, greg_bytes=1024,
                              group_rows=4, group_cols=4)

    def test_positive_fields_required(self):
        with pytest.raises(ValueError):
            AcceleratorConfig("bad", pe_rows=0, pe_cols=16, lreg_words_per_pe=32,
                              igbuf_words=64, wgbuf_words=64, greg_bytes=1024)

    def test_group_counts(self):
        config = paper_implementation(5)
        assert config.num_group_rows == 16
        assert config.num_group_cols == 8
