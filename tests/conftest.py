"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys

import pytest

# Allow running the tests from a source checkout without installation.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.arch.config import PAPER_IMPLEMENTATIONS  # noqa: E402
from repro.core.layer import ConvLayer  # noqa: E402
from repro.workloads.vgg import vgg16_conv_layers  # noqa: E402


@pytest.fixture(scope="session")
def vgg_layers():
    """The paper's workload: VGG-16 convolutional layers at batch 3."""
    return vgg16_conv_layers()

@pytest.fixture(scope="session")
def vgg_layer_mid(vgg_layers):
    """A representative mid-network layer (conv3_2: 256 channels, 56x56)."""
    return vgg_layers[5]


@pytest.fixture
def small_layer():
    """A small layer usable by the functional simulator and DAG tools."""
    return ConvLayer("small", batch=1, in_channels=3, in_height=10, in_width=10,
                     out_channels=4, kernel_height=3, kernel_width=3, stride=1, padding=0)


@pytest.fixture
def padded_layer():
    """A small layer with padding and a rectangular input."""
    return ConvLayer("padded", batch=2, in_channels=2, in_height=9, in_width=7,
                     out_channels=3, kernel_height=3, kernel_width=3, stride=1, padding=1)


@pytest.fixture
def strided_layer():
    """A small layer with stride 2 (R < Wk*Hk)."""
    return ConvLayer("strided", batch=1, in_channels=2, in_height=11, in_width=11,
                     out_channels=3, kernel_height=3, kernel_width=3, stride=2, padding=0)


@pytest.fixture(scope="session")
def impl1():
    """Implementation 1 of Table I (16x16 PEs, 66.5 KB effective memory)."""
    return PAPER_IMPLEMENTATIONS[0]


@pytest.fixture(scope="session")
def capacity_66k():
    """66.5 KB of effective on-chip memory, in 16-bit words."""
    return int(66.5 * 1024) // 2
