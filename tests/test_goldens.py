"""Golden-value regression suite: the pinned figure numbers must not move.

Every JSON file under ``tests/goldens/`` pins the fig13 memory-sweep totals,
the fig14 per-layer DRAM traffic and the Table III Eyeriss comparison for
one workload.  Any engine/traffic-model change that shifts a figure fails
here with the exact path of the moved value; if the shift is intentional,
re-pin with ``python -m repro.cli goldens --write`` and review the JSON diff.
"""

import json
import os

import pytest

from repro.analysis.goldens import (
    FIG13_CAPACITIES_KIB,
    GOLDEN_WORKLOADS,
    check_goldens,
    compute_goldens,
    diff_goldens,
    golden_path,
    load_golden,
    write_goldens,
)
from repro.engine import SearchEngine

GOLDENS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "goldens")

REGEN_HINT = "regenerate with `python -m repro.cli goldens --write`"


@pytest.fixture(scope="module")
def golden_engine():
    """One engine for the whole suite so the three figures share searches."""
    return SearchEngine()


class TestGoldenFiles:
    @pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
    def test_golden_file_exists(self, workload):
        assert os.path.exists(golden_path(GOLDENS_DIR, workload)), (
            f"missing golden for {workload!r}; {REGEN_HINT}"
        )

    @pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
    def test_figures_match_pinned_values(self, workload, golden_engine):
        expected = load_golden(GOLDENS_DIR, workload)
        actual = compute_goldens(workload, engine=golden_engine)
        problems = diff_goldens(expected, actual)
        assert not problems, (
            f"{workload}: {len(problems)} pinned figures moved "
            f"(first: {problems[0]}); if intentional, {REGEN_HINT}"
        )

    def test_pinned_capacities_cover_later_figures(self):
        # fig14 runs at 66.5 KB and table3 at 173.5 KB; the fig13 sweep must
        # pin both so one golden file guards all three figures coherently.
        assert 66.5 in FIG13_CAPACITIES_KIB
        assert 173.5 in FIG13_CAPACITIES_KIB

    @pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
    def test_goldens_are_internally_consistent(self, workload):
        """Sanity relations of the pinned numbers themselves (no searches)."""
        golden = load_golden(GOLDENS_DIR, workload)
        series = golden["fig13"]["series"]
        for index in range(len(golden["fig13"]["capacities_kib"])):
            bound = series["Lower bound"][index]
            ours = series["Ours"][index]
            found = series["Found minimum"][index]
            assert bound <= ours + 1e-12
            assert found <= ours + 1e-12
            for name, values in series.items():
                if name in ("Lower bound", "Found minimum"):
                    continue
                # Infeasible (dataflow, capacity) points are pinned as null.
                assert values[index] is None or values[index] >= found - 1e-12
        # Eq. (15) is an achievable *reference*, not a per-layer floor: layers
        # with a small operand tensor (or stride > 1) can beat it, e.g. the
        # strided ResNet-18 shortcuts sit ~3.5% below.  Network totals and a
        # 10% per-layer envelope must still hold.
        assert sum(r["lower_bound_mb"] for r in golden["fig14"]) <= sum(
            r["ours_mb"] for r in golden["fig14"]
        )
        for row in golden["fig14"]:
            assert row["lower_bound_mb"] <= 1.10 * row["ours_mb"]
        rows = golden["table3"]["summary"]["rows"]
        assert rows["Lower bound"]["dram_access_mb"] <= rows["Our dataflow"]["dram_access_mb"]


class TestGoldensAcrossBackends:
    """The pinned figures must not move under the vectorized backend.

    The golden values were pinned by the scalar reference search; re-running
    them through ``SearchEngine(backend="numpy")`` must reproduce every
    number bit-for-bit (the differential suite proves per-search parity,
    this proves it end-to-end on the real figures).  Without numpy the
    module's default-engine tests above already cover the scalar fallback.
    """

    @pytest.mark.parametrize("workload", GOLDEN_WORKLOADS)
    def test_numpy_backend_reproduces_pinned_figures(self, workload):
        pytest.importorskip("numpy")
        expected = load_golden(GOLDENS_DIR, workload)
        actual = compute_goldens(workload, engine=SearchEngine(backend="numpy"))
        problems = diff_goldens(expected, actual)
        assert not problems, (
            f"{workload}: {len(problems)} pinned figures moved under the "
            f"numpy backend (first: {problems[0]})"
        )


class TestGoldenTooling:
    def test_write_and_check_roundtrip(self, tmp_path):
        engine = SearchEngine()
        paths = write_goldens(str(tmp_path), workloads=("tiny",), engine=engine)
        assert paths == [str(tmp_path / "tiny.json")]
        report = check_goldens(str(tmp_path), workloads=("tiny",), engine=engine)
        assert report == {"tiny": []}

    def test_check_reports_missing_file(self, tmp_path):
        report = check_goldens(str(tmp_path), workloads=("tiny",))
        assert len(report["tiny"]) == 1
        assert "missing" in report["tiny"][0]

    def test_check_flags_moved_value(self, tmp_path):
        engine = SearchEngine()
        write_goldens(str(tmp_path), workloads=("tiny",), engine=engine)
        path = tmp_path / "tiny.json"
        payload = json.loads(path.read_text())
        payload["fig13"]["series"]["Ours"][0] *= 1.5
        path.write_text(json.dumps(payload))
        report = check_goldens(str(tmp_path), workloads=("tiny",), engine=engine)
        assert any("Ours" in problem for problem in report["tiny"])

    def test_diff_treats_nan_as_equal(self):
        assert diff_goldens({"a": float("nan")}, {"a": float("nan")}) == []
        assert diff_goldens({"a": float("nan")}, {"a": 1.0}) != []

    def test_diff_flags_structure_changes(self):
        assert diff_goldens({"a": 1.0}, {}) == ["$.a: missing from output"]
        assert diff_goldens({"a": [1.0]}, {"a": [1.0, 2.0]}) == [
            "$.a: length 2 != pinned 1"
        ]
