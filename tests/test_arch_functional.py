"""Tests for the functional simulator: numerical correctness and counter validation."""

import pytest

np = pytest.importorskip("numpy")

from repro.arch.functional import FunctionalSimulator
from repro.arch.memory import CapacityError
from repro.core.mm_conversion import reference_convolution
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.tiling import Tiling
from repro.workloads.generator import small_test_layers


def _tensors(layer, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(
        (layer.batch, layer.in_channels, layer.in_height, layer.in_width)
    )
    weights = rng.standard_normal(
        (layer.out_channels, layer.in_channels, layer.kernel_height, layer.kernel_width)
    )
    return inputs, weights


def _some_tilings(layer):
    """A few representative tilings for a small layer."""
    return [
        Tiling(b=1, z=1, y=1, x=1, k=1),
        Tiling(b=1, z=2, y=3, x=4, k=1),
        Tiling(b=2, z=3, y=2, x=5, k=2),
        Tiling(b=layer.batch, z=layer.out_channels, y=layer.out_height,
               x=layer.out_width, k=layer.in_channels),
        choose_tiling(layer, 256).tiling,
    ]


class TestNumericalCorrectness:
    @pytest.mark.parametrize("layer", small_test_layers(), ids=lambda l: l.name)
    def test_matches_reference_convolution(self, layer):
        inputs, weights = _tensors(layer)
        reference = reference_convolution(inputs, weights, layer)
        simulator = FunctionalSimulator()
        for tiling in _some_tilings(layer):
            result = simulator.run(layer, tiling, inputs, weights)
            np.testing.assert_allclose(result.outputs, reference, rtol=1e-9, atol=1e-9)

    def test_input_shape_validated(self, small_layer):
        inputs, weights = _tensors(small_layer)
        simulator = FunctionalSimulator()
        with pytest.raises(ValueError):
            simulator.run(small_layer, Tiling(1, 1, 1, 1), inputs[:, :1], weights)
        with pytest.raises(ValueError):
            simulator.run(small_layer, Tiling(1, 1, 1, 1), inputs, weights[:, :, :1])


class TestCounterValidation:
    @pytest.mark.parametrize("layer", small_test_layers(), ids=lambda l: l.name)
    def test_dram_counts_match_analytic_model(self, layer):
        inputs, weights = _tensors(layer)
        simulator = FunctionalSimulator()
        for tiling in _some_tilings(layer):
            result = simulator.run(layer, tiling, inputs, weights)
            analytic = dataflow_traffic(layer, tiling)
            assert result.dram_input_reads == pytest.approx(analytic.input_reads)
            assert result.dram_weight_reads == pytest.approx(analytic.weight_reads)
            assert result.dram_output_writes == pytest.approx(analytic.output_writes)

    def test_dram_counter_object_consistent(self, small_layer):
        inputs, weights = _tensors(small_layer)
        result = FunctionalSimulator().run(small_layer, Tiling(1, 2, 4, 4), inputs, weights)
        assert result.dram.reads == result.dram_input_reads + result.dram_weight_reads
        assert result.dram.writes == result.dram_output_writes
        assert result.traffic.total == result.dram.reads + result.dram.writes

    def test_gbuf_writes_match_dram_reads(self, small_layer):
        inputs, weights = _tensors(small_layer)
        result = FunctionalSimulator().run(small_layer, Tiling(1, 2, 4, 4), inputs, weights)
        assert result.igbuf.writes == result.dram_input_reads
        assert result.wgbuf.writes == result.dram_weight_reads
        assert result.igbuf.reads == result.igbuf.writes
        assert result.wgbuf.reads == result.wgbuf.writes


class TestBufferCapacities:
    def test_capacity_violation_detected(self, small_layer):
        inputs, weights = _tensors(small_layer)
        simulator = FunctionalSimulator(igbuf_words=4, wgbuf_words=1024)
        with pytest.raises(CapacityError):
            simulator.run(small_layer, Tiling(1, 4, 8, 8), inputs, weights)

    def test_fitting_tiling_passes_capacity_check(self, small_layer):
        inputs, weights = _tensors(small_layer)
        tiling = Tiling(b=1, z=2, y=2, x=2, k=1)
        igbuf_needed = tiling.staged_input_words(small_layer)
        simulator = FunctionalSimulator(igbuf_words=igbuf_needed, wgbuf_words=64)
        result = simulator.run(small_layer, tiling, inputs, weights)
        assert result.igbuf.peak_occupancy <= igbuf_needed
