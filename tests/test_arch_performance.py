"""Tests for repro.arch.performance and the DRAM model."""

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import paper_implementation
from repro.arch.performance import PerformanceReport, performance_report, throughput_macs_per_second
from repro.core.layer import ConvLayer
from repro.energy.dram import DramModel
from repro.energy.model import EnergyModel


@pytest.fixture(scope="module")
def network_run():
    layer = ConvLayer("l", 1, 32, 28, 28, 64, 3, 3, padding=1)
    config = paper_implementation(1)
    model = AcceleratorModel(config)
    network = model.run_network([layer])
    energy = EnergyModel().network_energy(network, config)
    return config, network, energy


class TestPerformanceReport:
    def test_seconds_from_cycles(self, network_run):
        config, network, energy = network_run
        report = performance_report(network, config, energy)
        assert report.compute_seconds == pytest.approx(network.compute_cycles / config.clock_hz)
        assert report.waiting_seconds == pytest.approx(network.waiting_cycles / config.clock_hz)
        assert report.total_seconds == report.compute_seconds + report.waiting_seconds

    def test_power_is_energy_over_time(self, network_run):
        config, network, energy = network_run
        report = performance_report(network, config, energy)
        assert report.power_watts == pytest.approx(
            report.energy_joules / report.total_seconds
        )
        assert 0.01 < report.power_watts < 100

    def test_waiting_fraction(self, network_run):
        config, network, energy = network_run
        report = performance_report(network, config, energy)
        assert 0.0 <= report.waiting_fraction < 1.0

    def test_speedup(self):
        fast = PerformanceReport("fast", compute_seconds=1.0, waiting_seconds=0.0, energy_joules=1.0)
        slow = PerformanceReport("slow", compute_seconds=3.0, waiting_seconds=1.0, energy_joules=1.0)
        assert fast.speedup_over(slow) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            PerformanceReport("zero", 0.0, 0.0, 0.0).speedup_over(fast)

    def test_throughput(self, network_run):
        config, network, _ = network_run
        throughput = throughput_macs_per_second(network, config)
        peak = config.num_pes * config.clock_hz
        assert 0 < throughput <= peak


class TestDramModel:
    def test_access_energy(self):
        dram = DramModel()
        assert dram.access_energy_pj(10) == pytest.approx(4279.0)
        with pytest.raises(ValueError):
            dram.access_energy_pj(-1)

    def test_transfer_time(self):
        dram = DramModel()
        # 6.4 GB/s, 2 bytes/word: 3.2e9 words/s plus the fixed latency.
        time_s = dram.transfer_time_s(3.2e9)
        assert time_s == pytest.approx(1.0 + dram.access_latency_s)
        with pytest.raises(ValueError):
            dram.transfer_time_s(-5)

    def test_transfer_cycles_and_bandwidth(self):
        dram = DramModel()
        assert dram.bytes_per_core_cycle(500e6) == pytest.approx(12.8)
        assert dram.transfer_cycles(0, 500e6) == pytest.approx(dram.access_latency_s * 500e6)
