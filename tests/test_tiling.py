"""Tests for repro.core.tiling."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.tiling import Tiling


@pytest.fixture
def layer():
    return ConvLayer("l", 2, 8, 20, 20, 16, 3, 3, stride=1, padding=0)


class TestTilingBasics:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            Tiling(b=0, z=1, y=1, x=1)

    def test_clip_respects_layer_dimensions(self, layer):
        tiling = Tiling(b=10, z=100, y=100, x=100, k=100).clip(layer)
        assert tiling.b == layer.batch
        assert tiling.z == layer.out_channels
        assert tiling.y == layer.out_height
        assert tiling.x == layer.out_width
        assert tiling.k == layer.in_channels

    def test_clip_keeps_small_tiling(self, layer):
        tiling = Tiling(b=1, z=4, y=3, x=3).clip(layer)
        assert (tiling.b, tiling.z, tiling.y, tiling.x) == (1, 4, 3, 3)

    def test_output_block_size_and_u(self):
        tiling = Tiling(b=2, z=4, y=3, x=5)
        assert tiling.u() == 2 * 3 * 5
        assert tiling.output_block_size() == 2 * 3 * 5 * 4

    def test_describe(self):
        assert "b=2" in Tiling(b=2, z=4, y=3, x=5).describe()


class TestInputGeometry:
    def test_input_rows_cols_unit_stride(self, layer):
        tiling = Tiling(b=1, z=1, y=4, x=6)
        assert tiling.input_rows(layer) == 4 - 1 + 3
        assert tiling.input_cols(layer) == 6 - 1 + 3

    def test_input_rows_cols_stride_two(self):
        layer = ConvLayer("l", 1, 1, 21, 21, 1, 3, 3, stride=2)
        tiling = Tiling(b=1, z=1, y=4, x=4)
        assert tiling.input_rows(layer) == (4 - 1) * 2 + 3
        assert tiling.input_patch(layer) == 9 * 9

    def test_iteration_input_words(self, layer):
        tiling = Tiling(b=2, z=4, y=3, x=3, k=2)
        assert tiling.iteration_input_words(layer) == 2 * 5 * 5 * 2

    def test_iteration_weight_words(self, layer):
        tiling = Tiling(b=1, z=4, y=3, x=3, k=2)
        assert tiling.iteration_weight_words(layer) == 4 * 2 * 9

    def test_staged_weight_words_is_one_pass(self, layer):
        tiling = Tiling(b=1, z=4, y=3, x=3, k=2)
        assert tiling.staged_weight_words() == 8

    def test_staged_input_words_equals_iteration_inputs(self, layer):
        tiling = Tiling(b=2, z=4, y=3, x=3, k=1)
        assert tiling.staged_input_words(layer) == tiling.iteration_input_words(layer)

    def test_footprint_dominated_by_psums(self, layer):
        tiling = Tiling(b=1, z=16, y=10, x=10)
        footprint = tiling.on_chip_footprint(layer)
        assert footprint >= tiling.output_block_size()
        assert footprint == (
            tiling.output_block_size()
            + tiling.staged_input_words(layer)
            + tiling.staged_weight_words()
        )


class TestBlockCounts:
    def test_exact_division(self, layer):
        tiling = Tiling(b=1, z=4, y=5, x=10)
        assert tiling.block_counts(layer) == (2, 4, 4, 2)
        assert tiling.num_blocks(layer) == 64

    def test_ceiling_division(self, layer):
        tiling = Tiling(b=2, z=5, y=7, x=18)
        assert tiling.block_counts(layer) == (1, 4, 3, 1)

    def test_iterations_per_block(self, layer):
        assert Tiling(b=1, z=1, y=1, x=1, k=1).iterations_per_block(layer) == 8
        assert Tiling(b=1, z=1, y=1, x=1, k=3).iterations_per_block(layer) == 3

    def test_balance_ratio_unity_when_balanced(self):
        layer = ConvLayer("l", 1, 8, 40, 40, 16, 3, 3)
        tiling = Tiling(b=1, z=4, y=6, x=6)
        assert tiling.balance_ratio(layer) == pytest.approx(36 / (9 * 4))
