"""Golden-value regression for the pinned timing sweep.

``tests/goldens/timing_vgg16.json`` pins the default 3-point bandwidth
sweep (3.2 / 6.4 / 12.8 GB/s, all five Table I implementations, VGG-16):
every per-buffer stall count, utilization, achieved bandwidth and power
number, at 1e-9 relative tolerance.  Any change that moves a timing number
becomes a visible diff; after an *intentional* model change regenerate
with::

    PYTHONPATH=src python -m repro.cli timing --write

and review the JSON diff like any other code change.  The integer cycle
fields are compared exactly (``diff_goldens`` only tolerates float noise),
so the golden also re-proves the simulator's exact-arithmetic claim on a
real workload.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.goldens import diff_goldens
from repro.analysis.timing_report import (
    DEFAULT_BANDWIDTHS_GBPS,
    TIMING_GOLDEN_PARAMS,
    TIMING_GOLDEN_WORKLOAD,
    bandwidth_utilization_sweep,
    compute_timing_golden,
    timing_golden_path,
    write_timing_golden,
)
from repro.arch.config import PAPER_IMPLEMENTATIONS


def test_pinned_file_exists():
    assert os.path.exists(timing_golden_path()), (
        "regenerate with: PYTHONPATH=src python -m repro.cli timing --write"
    )


def test_timing_sweep_matches_pinned_golden():
    with open(timing_golden_path()) as handle:
        expected = json.load(handle)
    actual = compute_timing_golden()
    problems = diff_goldens(expected, actual)
    assert problems == [], "\n".join(problems[:20])


def test_golden_parameters_pin_the_paper_neighbourhood():
    """The pinned sweep must keep bracketing the paper's 6.4 GB/s interface
    and covering every Table I implementation."""
    assert TIMING_GOLDEN_PARAMS["bandwidths_gbps"] == list(DEFAULT_BANDWIDTHS_GBPS)
    assert 6.4 in TIMING_GOLDEN_PARAMS["bandwidths_gbps"]
    assert TIMING_GOLDEN_PARAMS["implementations"] is None
    assert TIMING_GOLDEN_WORKLOAD == "vgg16"
    with open(timing_golden_path()) as handle:
        pinned = json.load(handle)
    assert pinned["implementations"] == [
        config.name for config in PAPER_IMPLEMENTATIONS
    ]
    assert len(pinned["rows"]) == len(PAPER_IMPLEMENTATIONS) * len(
        DEFAULT_BANDWIDTHS_GBPS
    )


def test_write_golden_round_trips(tmp_path):
    path = write_timing_golden(str(tmp_path / "timing_vgg16.json"))
    with open(path) as handle:
        written = json.load(handle)
    assert diff_goldens(written, compute_timing_golden()) == []


def test_sweep_rejects_nonpositive_bandwidths():
    with pytest.raises(ValueError, match="bandwidths must be positive"):
        bandwidth_utilization_sweep(layers="tiny", bandwidths_gbps=[3.2, 0.0])


def test_sweep_implementation_indices_resolve():
    payload = bandwidth_utilization_sweep(
        layers="tiny", bandwidths_gbps=[6.4], implementations=[1, 5]
    )
    assert payload["implementations"] == ["implementation-1", "implementation-5"]
    assert [row["implementation"] for row in payload["rows"]] == [
        "implementation-1",
        "implementation-5",
    ]
