"""Tests for repro.arch.pe_array (structural model, Fig. 10/11)."""

import pytest

from repro.arch.config import paper_implementation
from repro.arch.pe_array import PEArray


@pytest.fixture
def array():
    return PEArray(paper_implementation(1))


class TestStructure:
    def test_total_pe_count(self, array):
        assert len(array) == 256

    def test_pe_lookup(self, array):
        pe = array.pe(3, 7)
        assert (pe.row, pe.col) == (3, 7)
        assert pe.lreg_words == 128

    def test_pe_lookup_out_of_range(self, array):
        with pytest.raises(IndexError):
            array.pe(16, 0)

    def test_rows_and_columns(self, array):
        assert len(array.row(0)) == 16
        assert len(array.column(5)) == 16
        assert all(pe.row == 2 for pe in array.row(2))
        assert all(pe.col == 5 for pe in array.column(5))

    def test_groups(self, array):
        group = array.group(0, 0)
        assert len(group) == 16  # 4x4 PE group
        assert all(pe.group_row == 0 and pe.group_col == 0 for pe in group)

    def test_number_of_groups(self, array):
        assert array.num_groups() == 16


class TestChannelAssignment:
    def test_round_robin_channels(self, array):
        pe = array.pe(0, 3)
        assert pe.assigned_channels(z=40, pe_cols=16) == [3, 19, 35]

    def test_channel_coverage_complete_and_unique(self, array):
        coverage = array.channel_coverage(z=60)
        assert set(coverage) == set(range(60))
        assert all(len(columns) == 1 for columns in coverage.values())

    def test_pes_in_same_column_share_channels(self, array):
        a = array.pe(0, 2).assigned_channels(z=32, pe_cols=16)
        b = array.pe(9, 2).assigned_channels(z=32, pe_cols=16)
        assert a == b
