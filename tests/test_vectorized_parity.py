"""Differential suite: the vectorized backend is bit-identical to the scalar one.

The NumPy backend (``traffic_grid`` / ``SearchEngine(backend="numpy")``) is
only trustworthy if it reproduces the scalar reference search *exactly* --
same best traffic total (as a float, not within a tolerance) and, on ties,
the same tiling.  The tie-break is deterministic and documented: the first
candidate in scalar enumeration order wins, because ``numpy.argmin`` returns
the first occurrence of the minimum and the scalar loop only replaces its
incumbent on a strictly smaller total.

Hypothesis generates random layers and random capacity lists; every dataflow
(the seven Fig. 12 baselines, the free-split ``Ours`` and a fixed-split
``Ours``) is checked result-for-result, including feasibility (``None``).
"""

import pytest

np = pytest.importorskip("numpy")
hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.core.layer import ConvLayer  # noqa: E402
from repro.dataflows.ours import OptimalDataflow  # noqa: E402
from repro.dataflows.registry import ALL_DATAFLOWS  # noqa: E402
from repro.engine import SearchEngine  # noqa: E402

#: The registry's dataflows plus a pinned-split "our accelerator" variant,
#: which searches a differently-constrained space than the free-split one.
CHECKED_DATAFLOWS = tuple(ALL_DATAFLOWS) + (
    OptimalDataflow(psum_words=4096, input_buffer_words=640, weight_buffer_words=96),
)


@st.composite
def conv_layers(draw):
    """Random valid ConvLayers, small enough that scalar searches stay fast."""
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 2))
    kernel_height = draw(st.integers(1, 5))
    kernel_width = draw(st.integers(1, 5))
    in_height = draw(st.integers(max(1, kernel_height - 2 * padding), 28))
    in_width = draw(st.integers(max(1, kernel_width - 2 * padding), 28))
    return ConvLayer(
        name="rand",
        batch=draw(st.integers(1, 4)),
        in_channels=draw(st.integers(1, 32)),
        in_height=in_height,
        in_width=in_width,
        out_channels=draw(st.integers(1, 32)),
        kernel_height=kernel_height,
        kernel_width=kernel_width,
        stride=stride,
        padding=padding,
    )


capacity_lists = st.lists(st.integers(0, 60_000), min_size=1, max_size=5)


def scalar_reference(dataflow, layer, capacity):
    """The scalar search result, or None when no tiling fits."""
    try:
        return dataflow.search(layer, capacity)
    except ValueError:
        return None


class TestTrafficGridParity:
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(layer=conv_layers(), capacities=capacity_lists)
    def test_bit_identical_to_scalar_search(self, layer, capacities):
        for dataflow in CHECKED_DATAFLOWS:
            grid_results = dataflow.traffic_grid(layer, capacities)
            assert len(grid_results) == len(capacities)
            for capacity, grid_result in zip(capacities, grid_results):
                scalar_result = scalar_reference(dataflow, layer, capacity)
                if scalar_result is None:
                    assert grid_result is None, (
                        f"{dataflow.name}: grid found a tiling at {capacity} words "
                        f"where the scalar search found none"
                    )
                    continue
                assert grid_result is not None, (
                    f"{dataflow.name}: grid reported infeasible at {capacity} words"
                )
                # Dataclass equality pins everything at once: exact float
                # traffic components, the tie-broken tiling, and the labels.
                assert grid_result == scalar_result, (
                    f"{dataflow.name} at {capacity} words: "
                    f"grid {grid_result.total}/{grid_result.tiling} != "
                    f"scalar {scalar_result.total}/{scalar_result.tiling}"
                )

    def test_tie_break_is_first_scalar_candidate(self):
        """On exact total ties the earliest scalar-order candidate wins.

        OutR-A's traffic depends only on the block geometry; a layer whose
        output plane fits entirely on chip gives many (x, y) candidates the
        same minimal total, so the tie-break is actually exercised.
        """
        from repro.dataflows.registry import get_dataflow

        layer = ConvLayer("tie", 1, 4, 8, 8, 4, 1, 1)
        outra = get_dataflow("OutR-A")
        capacity = 10_000
        scalar = outra.search(layer, capacity)
        (grid,) = outra.traffic_grid(layer, [capacity])
        assert grid.tiling == scalar.tiling
        # The scalar generator yields y (outer) then x (inner), keeping the
        # first strict improvement; the documented winner is that candidate.
        first_best = None
        for tiling in outra.tiling_space(layer, capacity):
            candidate = outra.traffic(layer, capacity, tiling)
            if first_best is None or candidate.total < first_best[1].total:
                first_best = (tiling, candidate)
        assert grid.tiling == first_best[0]


class TestEngineBackendParity:
    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(layer=conv_layers(), capacities=capacity_lists)
    def test_search_many_matches_across_backends(self, layer, capacities):
        numpy_engine = SearchEngine(backend="numpy")
        python_engine = SearchEngine(backend="python")
        for dataflow in CHECKED_DATAFLOWS:
            vectorized = numpy_engine.search_many(layer, capacities, dataflow)
            scalar = python_engine.search_many(layer, capacities, dataflow)
            assert vectorized == scalar

    def test_found_minimum_identical_across_backends(self):
        layer = ConvLayer("fm", 2, 16, 14, 14, 24, 3, 3, padding=1)
        for capacity in (512, 4096, 32768):
            vectorized = SearchEngine(backend="numpy").found_minimum(layer, capacity)
            scalar = SearchEngine(backend="python").found_minimum(layer, capacity)
            assert vectorized == scalar

    def test_memory_sweep_identical_across_backends(self):
        import math

        from repro.analysis.sweep import memory_sweep
        from repro.workloads.generator import small_test_layers

        layers = small_test_layers()
        vectorized = memory_sweep(
            capacities_kib=[4, 16, 66.5],
            layers=layers,
            engine=SearchEngine(backend="numpy"),
        )
        scalar = memory_sweep(
            capacities_kib=[4, 16, 66.5],
            layers=layers,
            engine=SearchEngine(backend="python"),
        )
        assert vectorized["capacities_kib"] == scalar["capacities_kib"]
        for name, values in scalar["series"].items():
            for left, right in zip(values, vectorized["series"][name]):
                assert (math.isnan(left) and math.isnan(right)) or left == right
