"""Tests for repro.arch.mapping (workload/storage mapping, Fig. 8/9)."""

import pytest

from repro.arch.config import paper_implementation
from repro.arch.mapping import BlockShape, iteration_cost, map_block
from repro.core.layer import ConvLayer, ceil_div


@pytest.fixture
def config():
    return paper_implementation(1)  # 16x16 PEs, 128-word LRegs


@pytest.fixture
def layer():
    return ConvLayer("l", 3, 64, 56, 56, 128, 3, 3, stride=1, padding=1)


class TestMapBlock:
    def test_channels_dealt_over_columns(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        assert mapping.channels_per_pe == ceil_div(64, config.pe_cols)
        assert mapping.used_pe_cols == min(config.pe_cols, 64)

    def test_psums_fit_lregs_for_aligned_block(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        assert mapping.psums_per_pe <= config.lreg_words_per_pe
        # 16*32*64 outputs over 256 PEs = 128 per PE -> exactly full LRegs.
        assert mapping.psums_per_pe == 128

    def test_allocation_covers_block(self, layer, config):
        block = BlockShape(b=1, z=48, y=12, x=20)
        mapping = map_block(layer, block, config)
        allocated = mapping.used_pes * mapping.psums_per_pe
        assert allocated >= block.outputs

    def test_halo_dimensions(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        assert mapping.input_rows_per_pe == (mapping.rows_per_pe - 1) * layer.stride + 3
        assert mapping.input_cols_per_pe == (mapping.cols_per_pe - 1) * layer.stride + 3

    def test_small_block_uses_few_pes(self, layer, config):
        block = BlockShape(b=1, z=4, y=2, x=2)
        mapping = map_block(layer, block, config)
        assert mapping.used_pe_cols == 4
        assert mapping.used_pes <= config.num_pes

    def test_batch_partitioning(self, config):
        layer = ConvLayer("small", 3, 64, 14, 14, 128, 3, 3, padding=1)
        block = BlockShape(b=3, z=64, y=14, x=14)
        mapping = map_block(layer, block, config)
        assert mapping.batch_per_pe * mapping.grid_batch >= 3 or mapping.batch_per_pe >= 1
        assert mapping.psums_per_pe >= ceil_div(block.outputs, config.num_pes)

    def test_cycles_per_pass(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        assert mapping.cycles_per_pass() == mapping.psums_per_pe


class TestIterationCost:
    def test_dram_loads_per_iteration(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config, channels=1)
        assert cost.dram_input_reads == 1 * 18 * 34 * 1
        assert cost.dram_weight_reads == 64 * 9

    def test_gbuf_writes_equal_dram_reads(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config)
        assert cost.igbuf_writes == cost.dram_input_reads
        assert cost.wgbuf_writes == cost.dram_weight_reads

    def test_weights_read_once_from_gbuf(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config)
        assert cost.wgbuf_reads == cost.dram_weight_reads

    def test_input_gbuf_reads_include_halo(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config)
        # Halos make per-PE-row reads exceed the loaded inputs.
        assert cost.igbuf_reads >= cost.igbuf_writes
        assert cost.igbuf_reads <= 4 * cost.igbuf_writes

    def test_cycles_and_macs(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config, channels=1)
        kernel_area = layer.kernel_height * layer.kernel_width
        assert cost.cycles == kernel_area * mapping.cycles_per_pass()
        assert cost.useful_macs == block.outputs * kernel_area
        assert cost.lreg_writes >= cost.useful_macs

    def test_greg_writes_account_for_group_duplication(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config)
        expected = (
            config.num_group_rows * cost.wgbuf_reads
            + config.num_group_cols * cost.igbuf_reads
        )
        assert cost.greg_writes == expected

    def test_cost_scales_linearly_with_channels(self, layer, config):
        block = BlockShape(b=1, z=64, y=16, x=32)
        mapping = map_block(layer, block, config)
        one = iteration_cost(layer, block, mapping, config, channels=1)
        four = iteration_cost(layer, block, mapping, config, channels=4)
        assert four.dram_input_reads == 4 * one.dram_input_reads
        assert four.cycles == 4 * one.cycles
        assert four.useful_macs == 4 * one.useful_macs
