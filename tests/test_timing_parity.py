"""Differential and property suite for the tile-level timing simulator.

Three pillars, mirroring ``tests/test_vectorized_parity.py`` for the search
engine:

* **backend parity** -- the NumPy prefix-sum backend returns the *identical*
  ``LayerTimingReport`` (dataclass equality, every field) as the scalar
  clock-walk reference, over hypothesis-random layers, implementations and
  bandwidths (floats, exact Fractions, and infinity);
* **infinite-bandwidth identity** -- with no bandwidth limit the simulator
  must reproduce the analytic :class:`~repro.arch.accelerator.AcceleratorModel`
  bit-identically (zero stalls, equal total cycles) for every workload in
  the registry and every Table I implementation, which anchors the timing
  model to the Fig. 19 numbers;
* **stall structure** -- total cycles are monotone in bandwidth, and steady
  stalls vanish exactly at the rational roofline break-even
  (:func:`repro.timing.steady_breakeven_bytes_per_cycle`), tested in both
  directions with exact ``Fraction`` bandwidths.

The scalar-only tests run without numpy installed; numpy-backed tests skip
themselves per test so the no-numpy CI job still exercises the reference.
"""

import dataclasses
import math
from fractions import Fraction

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, assume, given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.arch.accelerator import AcceleratorModel  # noqa: E402
from repro.arch.config import PAPER_IMPLEMENTATIONS, paper_implementation  # noqa: E402
from repro.arch.performance import simulate_network  # noqa: E402
from repro.arch.schedule import ScheduleGenerator  # noqa: E402
from repro.core.layer import ConvLayer  # noqa: E402
from repro.energy.model import EnergyModel  # noqa: E402
from repro.timing import (  # noqa: E402
    NetworkTimingResult,
    TimingSimulator,
    resolve_timing_backend,
    steady_breakeven_bytes_per_cycle,
    tile_groups,
    timing_network_energy,
)
from repro.workloads.registry import get_workload, workload_names  # noqa: E402

SETTINGS = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def conv_layers(draw):
    """Random valid ConvLayers, small enough that tiling searches stay fast."""
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 2))
    kernel_height = draw(st.integers(1, 5))
    kernel_width = draw(st.integers(1, 5))
    in_height = draw(st.integers(max(1, kernel_height - 2 * padding), 28))
    in_width = draw(st.integers(max(1, kernel_width - 2 * padding), 28))
    return ConvLayer(
        name="rand",
        batch=draw(st.integers(1, 4)),
        in_channels=draw(st.integers(1, 32)),
        in_height=in_height,
        in_width=in_width,
        out_channels=draw(st.integers(1, 32)),
        kernel_height=kernel_height,
        kernel_width=kernel_width,
        stride=stride,
        padding=padding,
    )


#: Bandwidths spanning severely bound to unbound, plus exact rationals (the
#: simulator's arithmetic is Fraction-exact, so Fraction inputs are legal).
bandwidths = st.one_of(
    st.just(math.inf),
    st.floats(min_value=1e3, max_value=1e13, allow_nan=False, allow_infinity=False),
    st.fractions(min_value=Fraction(1, 7), max_value=Fraction(10 ** 12)),
)

implementation_indices = st.integers(1, len(PAPER_IMPLEMENTATIONS))


def chosen_tiling(config, layer):
    """The analytic model's tiling, or None when the layer fits no tiling."""
    try:
        return AcceleratorModel(config).choose_layer_tiling(layer)
    except ValueError:
        return None


def unique_shapes(layers):
    """Layers deduplicated by shape: identity per shape implies identity for
    the whole workload, and it keeps the registry sweep inside tier-1 time."""
    return sorted(
        {dataclasses.replace(layer, name="shape") for layer in layers},
        key=lambda layer: layer.macs,
    )


CYCLE_FIELDS = (
    "compute_cycles",
    "igbuf_fill_stall_cycles",
    "wgbuf_fill_stall_cycles",
    "igbuf_steady_stall_cycles",
    "wgbuf_steady_stall_cycles",
    "drain_stall_cycles",
    "prologue_stall_cycles",
    "steady_stall_cycles",
    "stall_cycles",
    "waiting_cycles",
    "total_cycles",
)


def assert_exact_int(value):
    assert type(value) is int, f"expected exact int, got {type(value).__name__}"


# ------------------------------------------------------------ backend parity


class TestBackendParity:
    @SETTINGS
    @given(layer=conv_layers(), index=implementation_indices, bandwidth=bandwidths)
    def test_numpy_report_is_bit_identical_to_scalar(self, layer, index, bandwidth):
        pytest.importorskip("numpy")
        config = paper_implementation(index)
        tiling = chosen_tiling(config, layer)
        assume(tiling is not None)
        scalar = TimingSimulator(config, bandwidth, backend="python").run_layer(
            layer, tiling
        )
        vectorized = TimingSimulator(config, bandwidth, backend="numpy").run_layer(
            layer, tiling
        )
        # Frozen-dataclass equality: every field, including the stall split.
        assert vectorized == scalar

    def test_int64_overflow_falls_back_to_the_scalar_path(self):
        pytest.importorskip("numpy")
        config = paper_implementation(1)
        layers = get_workload("tiny")
        # ~1e-9 B/s makes single transfers take ~1e19+ cycles: far beyond
        # int64, so the numpy backend must detect it and stay exact.
        scalar = TimingSimulator(config, 1e-9, backend="python")
        vectorized = TimingSimulator(config, 1e-9, backend="numpy")
        for layer in layers:
            left = scalar.run_layer(layer)
            right = vectorized.run_layer(layer)
            assert left == right
            assert left.total_cycles > 2 ** 62

    def test_backend_resolution(self):
        assert resolve_timing_backend("python") == "python"
        assert resolve_timing_backend("auto") in ("python", "numpy")
        with pytest.raises(ValueError, match="unknown timing backend"):
            resolve_timing_backend("fortran")

    def test_numpy_backend_requires_numpy(self):
        try:
            import numpy  # noqa: F401
        except ImportError:
            with pytest.raises(ValueError, match="numpy is not installed"):
                resolve_timing_backend("numpy")
        else:
            assert resolve_timing_backend("numpy") == "numpy"


# ----------------------------------------------- infinite-bandwidth identity


class TestInfiniteBandwidthIdentity:
    @SETTINGS
    @given(layer=conv_layers(), index=implementation_indices)
    def test_random_layers_match_the_analytic_model(self, layer, index):
        config = paper_implementation(index)
        tiling = chosen_tiling(config, layer)
        assume(tiling is not None)
        report = TimingSimulator(config, math.inf, backend="python").run_layer(
            layer, tiling
        )
        unbound = AcceleratorModel(config, math.inf).run_layer(layer, tiling)
        default = AcceleratorModel(config).run_layer(layer, tiling)
        assert report.stall_cycles == 0
        assert report.total_cycles == unbound.total_cycles
        # Compute is bandwidth-independent, so it matches Fig. 19's compute
        # at the paper's 6.4 GB/s too.
        assert report.compute_cycles == default.compute_cycles

    @pytest.mark.parametrize("name", workload_names())
    def test_every_registry_workload(self, name):
        config = paper_implementation(5)
        simulator = TimingSimulator(config, math.inf)
        model = AcceleratorModel(config, math.inf)
        layers = unique_shapes(get_workload(name))
        timing = simulator.run_network(layers)
        analytic = model.run_network(layers)
        assert timing.waiting_cycles == 0
        assert timing.compute_cycles == analytic.compute_cycles
        assert timing.total_cycles == analytic.total_cycles
        for timed, reference in zip(timing.layers, analytic.layers):
            assert timed.total_cycles == reference.total_cycles

    @pytest.mark.parametrize("index", range(1, len(PAPER_IMPLEMENTATIONS) + 1))
    def test_every_implementation_on_vgg16(self, index):
        config = paper_implementation(index)
        layers = get_workload("vgg16")
        timing = TimingSimulator(config, math.inf).run_network(layers)
        analytic = AcceleratorModel(config, math.inf).run_network(layers)
        assert timing.waiting_cycles == 0
        assert timing.total_cycles == analytic.total_cycles
        assert timing.macs == analytic.macs


# ------------------------------------------------------------ stall structure


class TestStallStructure:
    @SETTINGS
    @given(layer=conv_layers(), index=implementation_indices, data=st.data())
    def test_total_cycles_monotone_in_bandwidth(self, layer, index, data):
        config = paper_implementation(index)
        tiling = chosen_tiling(config, layer)
        assume(tiling is not None)
        low = data.draw(bandwidths, label="low")
        high = data.draw(bandwidths, label="high")
        if high < low:
            low, high = high, low
        slow = TimingSimulator(config, low, backend="python").run_layer(layer, tiling)
        fast = TimingSimulator(config, high, backend="python").run_layer(layer, tiling)
        assert slow.total_cycles >= fast.total_cycles
        assert slow.stall_cycles >= fast.stall_cycles
        # Compute never depends on bandwidth.
        assert slow.compute_cycles == fast.compute_cycles

    @SETTINGS
    @given(layer=conv_layers(), index=implementation_indices)
    def test_steady_stalls_vanish_exactly_at_the_breakeven(self, layer, index):
        config = paper_implementation(index)
        tiling = chosen_tiling(config, layer)
        assume(tiling is not None)
        groups = tile_groups(layer, tiling.clip(layer), config)
        breakeven = steady_breakeven_bytes_per_cycle(groups)
        assume(isinstance(breakeven, Fraction) and breakeven > 0)
        clock = Fraction(config.clock_hz)
        at = TimingSimulator(config, breakeven * clock, backend="python").run_layer(
            layer, tiling
        )
        below = TimingSimulator(
            config, breakeven * clock * Fraction(99, 100), backend="python"
        ).run_layer(layer, tiling)
        # Exact iff: zero steady stalls at the rational break-even, strictly
        # positive ones any amount below it.
        assert at.steady_stall_cycles == 0
        assert below.steady_stall_cycles > 0
        # Prologue fills are never hidden at a finite bandwidth.
        assert at.prologue_stall_cycles > 0
        assert at.steady_breakeven_bytes_per_cycle == breakeven

    def test_zero_bandwidth_is_rejected(self):
        config = paper_implementation(1)
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            TimingSimulator(config, 0)
        with pytest.raises(ValueError, match="bandwidth must be positive"):
            TimingSimulator(config, -6.4e9)


# -------------------------------------------------------- exact integer cycles


class TestExactIntegers:
    def test_layer_report_cycles_are_exact_ints(self):
        config = paper_implementation(1)
        simulator = TimingSimulator(config, 6.4e9, backend="python")
        for layer in get_workload("tiny"):
            report = simulator.run_layer(layer)
            for field in CYCLE_FIELDS:
                assert_exact_int(getattr(report, field))
            assert_exact_int(report.dram_bytes_loaded)
            assert_exact_int(report.dram_bytes_drained)

    def test_network_result_cycles_are_exact_ints(self):
        config = paper_implementation(1)
        network = TimingSimulator(config, 3.2e9, backend="python").run_network(
            get_workload("tiny")
        )
        assert_exact_int(network.compute_cycles)
        assert_exact_int(network.waiting_cycles)
        assert_exact_int(network.total_cycles)

    def test_schedule_stalls_are_exact_ints(self):
        """Regression: IterationRecord used to mix float transfer estimates
        into integer cycle sums; both fields must stay exact ints now."""
        config = paper_implementation(1)
        layer = get_workload("tiny")[0]
        generator = ScheduleGenerator(config, 6.4e9)
        schedules = list(generator.layer_schedule(layer, max_blocks=4))
        assert schedules
        bytes_per_cycle = Fraction(64, 5)  # 6.4e9 B/s at 500 MHz
        for schedule in schedules:
            for iteration in schedule.iterations:
                assert_exact_int(iteration.transfer_cycles)
                assert_exact_int(iteration.stall_cycles)
                loaded_bytes = 2 * (
                    iteration.input_words_loaded + iteration.weight_words_loaded
                )
                assert iteration.transfer_cycles == math.ceil(
                    Fraction(loaded_bytes) / bytes_per_cycle
                )

    def test_schedule_transfer_matches_timing_group_load(self):
        """The controller schedule and the timing simulator quote the same
        exact load duration for a full-channel iteration of the same block."""
        config = paper_implementation(1)
        layer = get_workload("tiny")[0]
        tiling = AcceleratorModel(config).choose_layer_tiling(layer)
        groups = tile_groups(layer, tiling.clip(layer), config)
        generator = ScheduleGenerator(config, 6.4e9)
        schedule = generator.block_schedule(layer, tiling, groups[0].block)
        from repro.core.traffic import bytes_per_cycle_fraction, cycles_for_bytes

        bytes_per_cycle = bytes_per_cycle_fraction(6.4e9, config.clock_hz)
        expected = cycles_for_bytes(groups[0].load_bytes, bytes_per_cycle)
        assert schedule.iterations[0].transfer_cycles == expected


# ----------------------------------------------------------------- reporting


class TestReportingIntegration:
    def test_simulate_network_timing_mode(self):
        config = paper_implementation(1)
        layers = get_workload("tiny")
        network, report = simulate_network(layers, config, mode="timing")
        assert isinstance(network, NetworkTimingResult)
        assert report.config_name == config.name
        assert report.total_seconds == pytest.approx(
            network.total_cycles / config.clock_hz
        )
        assert report.power_watts > 0

    def test_simulate_network_modes_agree_at_infinite_bandwidth(self):
        config = paper_implementation(1)
        layers = get_workload("tiny")
        _, timing = simulate_network(
            layers, config, mode="timing", dram_bandwidth_bytes_per_s=math.inf
        )
        _, analytic = simulate_network(
            layers, config, mode="analytic", dram_bandwidth_bytes_per_s=math.inf
        )
        assert timing.total_seconds == analytic.total_seconds
        assert timing.energy_joules == pytest.approx(analytic.energy_joules)

    def test_simulate_network_rejects_unknown_mode(self):
        config = paper_implementation(1)
        with pytest.raises(ValueError, match="unknown simulation mode"):
            simulate_network(get_workload("tiny"), config, mode="magic")

    def test_timing_energy_equals_analytic_energy_without_stalls(self):
        config = paper_implementation(1)
        layers = get_workload("tiny")
        timing = TimingSimulator(config, math.inf).run_network(layers)
        timed_energy = timing_network_energy(layers, timing, config)
        analytic_energy = EnergyModel().network_energy(
            AcceleratorModel(config, math.inf).run_network(layers), config
        )
        assert timed_energy.total == pytest.approx(analytic_energy.total)

    def test_stalls_only_grow_the_static_energy_term(self):
        config = paper_implementation(1)
        layers = get_workload("tiny")
        bound = TimingSimulator(config, 1e8).run_network(layers)
        unbound = TimingSimulator(config, math.inf).run_network(layers)
        assert bound.waiting_cycles > 0
        bound_energy = timing_network_energy(layers, bound, config)
        unbound_energy = timing_network_energy(layers, unbound, config)
        # Access counts are bandwidth-independent; only leakage scales with
        # the longer runtime.
        assert bound_energy.lreg_static > unbound_energy.lreg_static
        assert bound_energy.mac == pytest.approx(unbound_energy.mac)
        assert bound_energy.dram == pytest.approx(unbound_energy.dram)
