"""Tests for the fleet scheduler: work queue, leases, stealing, byte-identity.

The acceptance contract under test:

* any fleet schedule -- any worker count, any kill schedule, any lease
  timeout -- produces a ``units/`` tree byte-identical to the 1/1 static
  run, with every unit completed and the claim audit showing exactly one
  completed claim per unit (no duplicate execution);
* a live worker steals a dead peer's unit after its lease expires, and the
  dead peer's late ``complete()`` is rejected;
* the ``priority`` and ``edd`` policies order claims deterministically and
  ``--unit-budget`` defers the lowest-ranked units to a later resume;
* workers shut down when the queue drains, including the degenerate
  already-complete (resume no-op) case.
"""

from __future__ import annotations

import json
import os
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.orchestration.fleet import (
    FleetConfig,
    FleetWorker,
    build_schedule,
    run_fleet,
)
from repro.orchestration.manifest import ManifestSpec, RunManifest
from repro.orchestration.runner import (
    Runner,
    unit_status_path,
    write_manifest,
    write_run_metadata,
)
from repro.orchestration.scheduler import (
    WorkQueue,
    queue_path,
    validate_policy,
)

#: Small but heterogeneous: a search-based unit, a model-only unit and a
#: goldens unit, so the fleet exercises engines, caches and no-backend
#: units alike while staying fast.
FLEET_SPEC = dict(workloads=("tiny",), experiments=("fig14", "fig16", "goldens"))


def fleet_manifest() -> RunManifest:
    return RunManifest.from_spec(ManifestSpec(**FLEET_SPEC))


def read_tree(out_dir):
    """{relative path: bytes} of the merge-compared artifact files."""
    tree = {}
    with open(os.path.join(out_dir, "manifest.json"), "rb") as handle:
        tree["manifest.json"] = handle.read()
    units_dir = os.path.join(out_dir, "units")
    for name in sorted(os.listdir(units_dir)):
        with open(os.path.join(units_dir, name), "rb") as handle:
            tree[f"units/{name}"] = handle.read()
    return tree


@pytest.fixture(scope="module")
def static_tree(tmp_path_factory):
    """The 1/1 static run's tree: the byte-identity target for every fleet."""
    out_dir = str(tmp_path_factory.mktemp("static") / "run")
    report = Runner(fleet_manifest(), out_dir).run()
    assert report.complete
    return read_tree(out_dir)


class VirtualClock:
    """Deterministic time source shared by a queue and its virtual workers."""

    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def simulate_fleet(out_dir, worker_count, kill_schedule, lease_seconds):
    """Run a virtual fleet to completion under a deterministic schedule.

    Workers run in-process against one shared queue and a virtual clock,
    stepping round-robin (one claim + execution per turn).  A worker whose
    ``(worker, nth claim)`` appears in ``kill_schedule`` "dies" holding
    that claim: it vanishes from the rotation without executing, failing
    or releasing -- exactly what SIGKILL leaves behind -- and recovery can
    only come from lease expiry.  When every worker is dead, a replacement
    spawns (the operator restarting the fleet).  Returns the queue for
    auditing; the caller closes it.
    """
    manifest = fleet_manifest()
    clock = VirtualClock()
    queue = WorkQueue.fresh(queue_path(out_dir), clock=clock)
    write_manifest(manifest, out_dir)
    write_run_metadata(out_dir, manifest.spec.as_dict(), (1, 1), 1)
    queue.populate([unit.unit_id for unit in manifest.hash_ordered()])

    kill_points = set(kill_schedule)
    next_index = worker_count
    workers, claims_made = {}, {}

    def spawn(index):
        workers[index] = FleetWorker(
            fleet_manifest(),
            out_dir,
            index,
            queue=queue,
            lease_seconds=lease_seconds,
            heartbeat_interval=0,  # no renewal: kills must expire naturally
        )
        claims_made[index] = 0

    for index in range(worker_count):
        spawn(index)
    alive = set(range(worker_count))
    try:
        while queue.unfinished() > 0:
            progressed = False
            for index in sorted(alive):
                claim = queue.claim(workers[index].name, lease_seconds)
                if claim is None:
                    continue
                claims_made[index] += 1
                clock.advance(0.25)  # execution takes (virtual) time
                if (index, claims_made[index]) in kill_points:
                    alive.discard(index)  # died holding the claim
                    progressed = True
                    continue
                workers[index].execute(claim)
                progressed = True
            if not alive:
                spawn(next_index)
                alive = {next_index}
                next_index += 1
            if not progressed:
                # Only expired leases remain claimable: let them expire.
                clock.advance(lease_seconds + 1.0)
    finally:
        for worker in workers.values():
            worker.executor.close()
    return queue


class TestSimulatedFleet:
    @settings(max_examples=6, deadline=None)
    @given(
        worker_count=st.integers(min_value=1, max_value=3),
        kill_schedule=st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=1, max_value=3),
            ),
            max_size=3,
        ),
        lease_seconds=st.floats(min_value=1.0, max_value=120.0),
    )
    def test_any_schedule_matches_the_static_run(
        self, static_tree, worker_count, kill_schedule, lease_seconds
    ):
        with tempfile.TemporaryDirectory() as tmp:
            out_dir = os.path.join(tmp, "fleet")
            queue = simulate_fleet(
                out_dir, worker_count, kill_schedule, lease_seconds
            )
            try:
                counts = queue.counts()
                total = len(static_tree) - 1  # minus manifest.json
                # Completeness: every unit completed, none failed/stuck.
                assert counts == {"completed": total}
                # Byte-identity with the 1/1 static run.
                assert read_tree(out_dir) == static_tree
                # Exactly-once: the claim audit is clean, with exactly one
                # completed claim per unit and a completed status for each.
                assert queue.audit_problems() == []
                audit = queue.audit()
                completed = [c for c in audit if c["state"] == "completed"]
                assert len(completed) == total
                assert len({c["unit_id"] for c in completed}) == total
                assert all(c["executed"] for c in completed)
            finally:
                queue.close()

    def test_killed_workers_force_steals(self, static_tree):
        # A deterministic pin of the property: worker 0 dies on its first
        # claim, so its unit *must* be stolen after the lease expires.
        with tempfile.TemporaryDirectory() as tmp:
            out_dir = os.path.join(tmp, "fleet")
            queue = simulate_fleet(
                out_dir, worker_count=2, kill_schedule={(0, 1)}, lease_seconds=30.0
            )
            try:
                assert queue.stolen_claims() >= 1
                assert queue.audit_problems() == []
                assert read_tree(out_dir) == static_tree
            finally:
                queue.close()


class TestLeases:
    def _queue(self, tmp_path, unit_ids=("u1", "u2"), policy="fifo", **populate):
        clock = VirtualClock()
        queue = WorkQueue.fresh(str(tmp_path / "queue.sqlite"), clock=clock)
        queue.populate(list(unit_ids), policy=policy, **populate)
        return queue, clock

    def test_expired_lease_is_stolen_and_late_complete_rejected(self, tmp_path):
        queue, clock = self._queue(tmp_path)
        slow = queue.claim("worker-000", lease_seconds=10.0)
        assert queue.mark_executing(slow)
        # Still leased: the peer gets the *other* unit, not a steal.
        other = queue.claim("worker-001", lease_seconds=10.0)
        assert other.unit_id != slow.unit_id
        assert queue.mark_executing(other)
        assert queue.complete(other)
        clock.advance(11.0)  # worker-000 went silent past its lease
        stolen = queue.claim("worker-001", lease_seconds=10.0)
        assert stolen.unit_id == slow.unit_id
        assert queue.stolen_claims() == 1
        assert queue.mark_executing(stolen)
        assert queue.complete(stolen)
        # The original claimant wakes up late: every verb now rejects it.
        assert not queue.heartbeat(slow, 10.0)
        assert not queue.complete(slow)
        assert queue.audit_problems() == []

    def test_heartbeat_keeps_a_slow_claim_alive(self, tmp_path):
        queue, clock = self._queue(tmp_path, unit_ids=("u1",))
        claim = queue.claim("worker-000", lease_seconds=10.0)
        for _ in range(5):  # 40 virtual seconds, renewed every 8
            clock.advance(8.0)
            assert queue.heartbeat(claim, 10.0)
            assert queue.claim("worker-001", lease_seconds=10.0) is None
        assert queue.complete(claim)
        assert queue.stolen_claims() == 0

    def test_empty_queue_shuts_workers_down(self, tmp_path):
        queue, _ = self._queue(tmp_path, unit_ids=("u1",), completed=["u1"])
        assert queue.claim("worker-000", lease_seconds=10.0) is None
        assert queue.unfinished() == 0  # the worker loop's exit condition
        assert queue.audit_problems() == []


class TestPolicies:
    def _drain_order(self, tmp_path, policy, **populate):
        clock = VirtualClock()
        queue = WorkQueue.fresh(str(tmp_path / "queue.sqlite"), clock=clock)
        queue.populate(["a", "b", "c", "d"], policy=policy, **populate)
        order = []
        while True:
            claim = queue.claim("w", lease_seconds=10.0)
            if claim is None:
                break
            queue.mark_executing(claim)
            queue.complete(claim)
            order.append(claim.unit_id)
        queue.close()
        return order

    def test_fifo_follows_population_order(self, tmp_path):
        assert self._drain_order(tmp_path, "fifo") == ["a", "b", "c", "d"]

    def test_priority_serves_high_ranks_first(self, tmp_path):
        order = self._drain_order(
            tmp_path, "priority", priorities={"c": 2, "d": 1}
        )
        assert order == ["c", "d", "a", "b"]  # then population order

    def test_edd_serves_earliest_deadline_first(self, tmp_path):
        order = self._drain_order(
            tmp_path, "edd", deadlines={"d": 50.0, "b": 20.0}
        )
        # Dated units by due date, undated ones after in population order.
        assert order == ["b", "d", "a", "c"]

    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError, match="policy"):
            validate_policy("sjf")


class TestBudget:
    def test_budget_defers_lowest_ranked_units(self, tmp_path):
        queue = WorkQueue.fresh(str(tmp_path / "queue.sqlite"))
        counts = queue.populate(
            ["a", "b", "c", "d"],
            policy="priority",
            priorities={"c": 2, "d": 1},
            unit_budget=2,
        )
        assert counts == {"pending": 2, "deferred": 2}
        assert queue.deferred_ids() == ["a", "b"]  # the rank-3rd and -4th
        drained = []
        while True:
            claim = queue.claim("w", lease_seconds=10.0)
            if claim is None:
                break
            queue.mark_executing(claim)
            queue.complete(claim)
            drained.append(claim.unit_id)
        assert drained == ["c", "d"]  # deferred units are never claimable
        queue.close()

    def test_budget_counts_only_fresh_work(self, tmp_path):
        queue = WorkQueue.fresh(str(tmp_path / "queue.sqlite"))
        counts = queue.populate(
            ["a", "b", "c"], completed=["a", "b"], unit_budget=1
        )
        # Precompleted units do not consume budget: the one pending unit runs.
        assert counts == {"completed": 2, "pending": 1}
        queue.close()

    def test_negative_budget_is_rejected(self, tmp_path):
        queue = WorkQueue.fresh(str(tmp_path / "queue.sqlite"))
        with pytest.raises(ValueError, match="unit_budget"):
            queue.populate(["a"], unit_budget=-1)
        queue.close()


class TestFleetConfig:
    def test_roundtrips_through_run_json_dict(self):
        config = FleetConfig(
            workers=3,
            lease_seconds=12.5,
            policy="edd",
            unit_budget=7,
            priorities={"fig14": 2},
            deadlines={"goldens": 60.0},
        )
        assert FleetConfig.from_dict(config.as_dict()) == config

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0)
        with pytest.raises(ValueError, match="lease_seconds"):
            FleetConfig(lease_seconds=0)
        with pytest.raises(ValueError, match="policy"):
            FleetConfig(policy="lifo")
        with pytest.raises(ValueError, match="cache_store"):
            FleetConfig(cache_store="dbm")

    def test_build_schedule_expands_experiments_to_units(self):
        manifest = fleet_manifest()
        config = FleetConfig(
            priorities={"fig14": 3}, deadlines={"goldens": 30.0}, policy="edd"
        )
        schedule = build_schedule(manifest, config, start=1000.0)
        by_experiment = {unit.experiment: unit.unit_id for unit in manifest.units}
        assert schedule["priorities"] == {by_experiment["fig14"]: 3}
        assert schedule["deadlines"] == {by_experiment["goldens"]: 1030.0}


class TestFleetProcesses:
    """End-to-end fleets with real worker *processes* (spawn)."""

    def test_fleet_tree_matches_static_and_resumes_noop(
        self, tmp_path, static_tree, capsys
    ):
        out_dir = str(tmp_path / "fleet")
        base = ["--workloads", "tiny", "--experiments", "fig14", "fig16", "goldens"]
        assert main([
            "fleet", "--out-dir", out_dir, "--fleet-workers", "2", "--json", *base,
        ]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["units_completed"] == report["units_total"]
        assert report["audit_problems"] == []
        assert report["worker_exit_codes"] == [0, 0]
        assert read_tree(out_dir) == static_tree
        for name in static_tree:
            if name.startswith("units/"):
                unit_id = os.path.splitext(os.path.basename(name))[0]
                with open(unit_status_path(out_dir, unit_id)) as handle:
                    assert json.load(handle)["state"] == "completed"

        # Resume: fleet out-dirs resume like sharded ones -- zero work.
        assert main(["resume", "--out-dir", out_dir, "--json"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        assert resumed["mode"] == "fleet"
        assert resumed["units_completed"] == 0
        assert resumed["units_skipped"] == resumed["units_total"]
        assert resumed["worker_exit_codes"] == []  # no workers even spawned
        assert read_tree(out_dir) == static_tree

    def test_chaos_killed_worker_is_stolen_from(self, tmp_path, static_tree):
        out_dir = str(tmp_path / "fleet")
        manifest = fleet_manifest()
        config = FleetConfig(workers=2, lease_seconds=2.0, poll_seconds=0.05)
        report = run_fleet(manifest, out_dir, config, chaos_kills={0: 0})
        assert report.complete
        assert report.worker_exit_codes[0] == -9  # SIGKILLed mid-claim
        assert report.stolen_claims >= 1
        assert report.audit_problems == []
        assert read_tree(out_dir) == static_tree

    def test_failed_unit_fails_the_fleet_but_not_the_run(self, tmp_path):
        # 0.001 KB fits no tiling: fig14 fails, the other units complete.
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("fig14", "fig16"),
                params={"fig14": {"capacity_kib": 0.001}},
            )
        )
        out_dir = str(tmp_path / "fleet")
        report = run_fleet(manifest, out_dir, FleetConfig(workers=2))
        assert not report.ok
        assert report.units_failed == 1
        assert report.units_completed == 1
        assert "no tiling" in report.failures[0]["error"]
        assert report.audit_problems == []


class TestFleetCliValidation:
    def test_bad_priority_pair_exits_2(self, tmp_path, capsys):
        assert main([
            "fleet", "--out-dir", str(tmp_path / "o"),
            "--workloads", "tiny", "--experiments", "fig16",
            "--priority", "fig16",
        ]) == 2
        assert "EXPERIMENT=VALUE" in capsys.readouterr().err

    def test_unknown_priority_experiment_exits_2(self, tmp_path, capsys):
        assert main([
            "fleet", "--out-dir", str(tmp_path / "o"),
            "--workloads", "tiny", "--experiments", "fig16",
            "--priority", "nope=3",
        ]) == 2
        assert "nope" in capsys.readouterr().err

    def test_bad_chaos_kill_pair_exits_2(self, tmp_path, capsys):
        assert main([
            "fleet", "--out-dir", str(tmp_path / "o"),
            "--workloads", "tiny", "--experiments", "fig16",
            "--chaos-kill", "zero",
        ]) == 2
        assert "WORKER:COMPLETIONS" in capsys.readouterr().err

    def test_fleet_rejects_max_units(self, tmp_path, capsys):
        assert main([
            "fleet", "--out-dir", str(tmp_path / "o"),
            "--workloads", "tiny", "--experiments", "fig16",
            "--max-units", "1",
        ]) == 2
        assert "--unit-budget" in capsys.readouterr().err

    def test_resume_rejects_fleet_flags_on_static_runs(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert main([
            "run", "--out-dir", out_dir,
            "--workloads", "tiny", "--experiments", "fig16",
        ]) == 0
        capsys.readouterr()
        assert main(["resume", "--out-dir", out_dir, "--fleet-workers", "2"]) == 2
        assert "static shard run" in capsys.readouterr().err
