"""Tests for the Fig. 12 baseline dataflows (OutR, WtR, InR)."""

import pytest

from repro.core.layer import ConvLayer, ceil_div
from repro.dataflows.inr import InRA, InRB, InRC
from repro.dataflows.outr import OutRA, OutRB
from repro.dataflows.wtr import WtRA, WtRB


@pytest.fixture
def layer():
    return ConvLayer("l", 2, 8, 20, 20, 16, 3, 3, stride=1, padding=0)


class TestOutRA:
    def test_traffic_formula(self, layer):
        tiling = {"x": 6, "y": 6}
        traffic = OutRA().traffic(layer, 10 ** 6, tiling)
        blocks = layer.batch * layer.out_channels * 3 * 3
        assert traffic.input_reads == blocks * 8 * 8 * layer.in_channels
        assert traffic.weight_reads == blocks * layer.in_channels * 9
        assert traffic.output_writes == layer.num_outputs
        assert traffic.output_reads == 0

    def test_tiling_space_respects_capacity(self, layer):
        for tiling in OutRA().tiling_space(layer, capacity_words=30):
            assert tiling["x"] * tiling["y"] <= 30

    def test_search_finds_full_plane_with_big_memory(self, layer):
        result = OutRA().search(layer, 10 ** 6)
        assert result.tiling == {"x": layer.out_width, "y": layer.out_height}


class TestOutRB:
    def test_weights_streamed_per_spatial_tile(self, layer):
        tiling = {"x": 9, "y": 9}
        traffic = OutRB().traffic(layer, 10 ** 6, tiling)
        blocks = layer.batch * 2 * 2
        assert traffic.weight_reads == blocks * layer.num_weights
        assert traffic.output_writes == layer.num_outputs

    def test_capacity_includes_all_channels(self, layer):
        for tiling in OutRB().tiling_space(layer, capacity_words=64):
            assert tiling["x"] * tiling["y"] * layer.out_channels <= 64

    def test_better_weight_reuse_than_outra_with_equal_tiles(self, layer):
        # For the same resident-output spatial tile, OutR-B streams the weights
        # once per tile but reuses every input across all kernels.
        a = OutRA().traffic(layer, 10 ** 6, {"x": 6, "y": 6})
        b = OutRB().traffic(layer, 10 ** 6, {"x": 6, "y": 6})
        assert b.input_reads < a.input_reads


class TestWtRA:
    def test_traffic_formula(self, layer):
        tiling = {"z": 4, "k": 2}
        traffic = WtRA().traffic(layer, 10 ** 6, tiling)
        kernel_blocks = ceil_div(layer.out_channels, 4)
        channel_blocks = ceil_div(layer.in_channels, 2)
        assert traffic.weight_reads == layer.num_weights
        assert traffic.input_reads == kernel_blocks * layer.num_inputs
        assert traffic.output_writes == layer.num_outputs * channel_blocks
        assert traffic.output_reads == layer.num_outputs * (channel_blocks - 1)

    def test_full_channels_avoid_psum_spill(self, layer):
        traffic = WtRA().traffic(layer, 10 ** 6, {"z": 4, "k": layer.in_channels})
        assert traffic.output_reads == 0
        assert traffic.output_writes == layer.num_outputs

    def test_capacity_constraint(self, layer):
        area = layer.kernel_height * layer.kernel_width
        for tiling in WtRA().tiling_space(layer, capacity_words=100):
            assert tiling["z"] * tiling["k"] * area <= 100


class TestWtRB:
    def test_traffic_formula(self, layer):
        traffic = WtRB().traffic(layer, 10 ** 6, {"z": 4})
        kernel_blocks = ceil_div(layer.out_channels, 4)
        assert traffic.input_reads == kernel_blocks * layer.num_inputs
        assert traffic.weight_reads == layer.num_weights
        assert traffic.output_reads == 0

    def test_no_tiling_when_kernel_too_large(self):
        huge = ConvLayer("huge", 1, 512, 14, 14, 512, 3, 3, padding=1)
        assert list(WtRB().tiling_space(huge, capacity_words=1000)) == []

    def test_all_kernels_resident_reads_inputs_once(self, layer):
        traffic = WtRB().traffic(layer, 10 ** 6, {"z": layer.out_channels})
        assert traffic.input_reads == layer.num_inputs


class TestInR:
    def test_inra_formula(self, layer):
        tiling = {"k": 2, "y": 6, "x": 6}
        traffic = InRA().traffic(layer, 10 ** 6, tiling)
        channel_blocks = ceil_div(layer.in_channels, 2)
        spatial_blocks = 3 * 3
        assert traffic.weight_reads == layer.batch * spatial_blocks * layer.num_weights
        assert traffic.output_writes == layer.num_outputs * channel_blocks
        assert traffic.input_reads >= layer.num_inputs  # halos make it larger

    def test_inrb_reads_inputs_once(self, layer):
        traffic = InRB().traffic(layer, 10 ** 6, {"k": 2})
        assert traffic.input_reads == layer.num_inputs
        assert traffic.weight_reads == layer.batch * layer.num_weights

    def test_inrc_no_psum_spill(self, layer):
        traffic = InRC().traffic(layer, 10 ** 6, {"y": 5, "x": 5})
        assert traffic.output_reads == 0
        assert traffic.output_writes == layer.num_outputs
        assert traffic.weight_reads == layer.batch * 4 * 4 * layer.num_weights

    def test_inrb_capacity_constraint(self, layer):
        plane = layer.in_height * layer.in_width
        for tiling in InRB().tiling_space(layer, capacity_words=3 * plane):
            assert tiling["k"] <= 3

    def test_search_orders_match_expectation(self, layer):
        # With generous memory every dataflow approaches the ideal; with a tight
        # budget the input-stationary variants must re-stream weights heavily.
        capacity = 400
        inra = InRA().search(layer, capacity).total
        inrc = InRC().search(layer, capacity).total
        assert inra > 0 and inrc > 0
