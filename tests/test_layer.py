"""Tests for repro.core.layer."""

import pytest

from repro.core.layer import ConvLayer, ceil_div, kib_to_words, total_macs, words_to_kib


class TestConvLayerShapes:
    def test_vgg_style_output_shape(self):
        layer = ConvLayer("l", 1, 64, 224, 224, 64, 3, 3, stride=1, padding=1)
        assert layer.out_height == 224
        assert layer.out_width == 224

    def test_no_padding_output_shape(self):
        layer = ConvLayer("l", 1, 3, 10, 10, 4, 3, 3)
        assert layer.out_height == 8
        assert layer.out_width == 8

    def test_strided_output_shape(self):
        layer = ConvLayer("l", 1, 3, 227, 227, 96, 11, 11, stride=4)
        assert layer.out_height == 55
        assert layer.out_width == 55

    def test_rectangular_output_shape(self):
        layer = ConvLayer("l", 1, 1, 9, 13, 1, 3, 5)
        assert layer.out_height == 7
        assert layer.out_width == 9

    def test_output_positions(self):
        layer = ConvLayer("l", 1, 3, 10, 12, 4, 3, 3)
        assert layer.output_positions == layer.out_height * layer.out_width


class TestConvLayerVolumes:
    def test_num_inputs(self):
        layer = ConvLayer("l", 2, 3, 10, 10, 4, 3, 3)
        assert layer.num_inputs == 2 * 3 * 10 * 10

    def test_num_weights(self):
        layer = ConvLayer("l", 2, 3, 10, 10, 4, 3, 3)
        assert layer.num_weights == 4 * 3 * 3 * 3

    def test_num_outputs(self):
        layer = ConvLayer("l", 2, 3, 10, 10, 4, 3, 3)
        assert layer.num_outputs == 2 * 4 * 8 * 8

    def test_macs(self):
        layer = ConvLayer("l", 2, 3, 10, 10, 4, 3, 3)
        assert layer.macs == layer.num_outputs * 3 * 3 * 3

    def test_dag_internal_nodes_is_twice_macs(self):
        layer = ConvLayer("l", 1, 2, 6, 6, 2, 3, 3)
        assert layer.dag_internal_nodes == 2 * layer.macs

    def test_arithmetic_intensity_positive(self):
        layer = ConvLayer("l", 1, 16, 28, 28, 32, 3, 3, padding=1)
        assert layer.arithmetic_intensity() > 1.0


class TestWindowReuse:
    def test_unit_stride_3x3(self):
        layer = ConvLayer("l", 1, 3, 10, 10, 4, 3, 3)
        assert layer.window_reuse == pytest.approx(9.0)

    def test_stride_two(self):
        layer = ConvLayer("l", 1, 3, 11, 11, 4, 3, 3, stride=2)
        assert layer.window_reuse == pytest.approx(9.0 / 4.0)

    def test_1x1_kernel_has_no_window_reuse(self):
        layer = ConvLayer("l", 1, 3, 10, 10, 4, 1, 1)
        assert layer.window_reuse == pytest.approx(1.0)

    def test_reuse_never_below_one(self):
        layer = ConvLayer("l", 1, 3, 12, 12, 4, 2, 2, stride=2)
        assert layer.window_reuse == pytest.approx(1.0)


class TestValidation:
    @pytest.mark.parametrize("field", ["batch", "in_channels", "out_channels", "stride"])
    def test_non_positive_dimensions_rejected(self, field):
        kwargs = dict(name="l", batch=1, in_channels=1, in_height=5, in_width=5,
                      out_channels=1, kernel_height=3, kernel_width=3)
        kwargs[field] = 0
        with pytest.raises(ValueError):
            ConvLayer(**kwargs)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            ConvLayer("l", 1, 1, 5, 5, 1, 3, 3, padding=-1)

    def test_kernel_larger_than_input_rejected(self):
        with pytest.raises(ValueError):
            ConvLayer("l", 1, 1, 2, 2, 1, 3, 3)

    def test_kernel_fits_with_padding(self):
        layer = ConvLayer("l", 1, 1, 2, 2, 1, 3, 3, padding=1)
        assert layer.out_height == 2


class TestConstructors:
    def test_from_fc_is_matmul_equivalent(self):
        layer = ConvLayer.from_fc("fc", batch=4, in_features=100, out_features=10)
        assert layer.window_reuse == 1.0
        assert layer.macs == 4 * 100 * 10
        assert layer.num_outputs == 4 * 10

    def test_with_batch(self):
        layer = ConvLayer("l", 1, 3, 10, 10, 4, 3, 3)
        bigger = layer.with_batch(8)
        assert bigger.batch == 8
        assert bigger.in_channels == layer.in_channels
        assert layer.batch == 1  # original untouched

    def test_describe_mentions_name(self):
        layer = ConvLayer("conv9", 1, 3, 10, 10, 4, 3, 3)
        assert "conv9" in layer.describe()


class TestHelpers:
    def test_input_patch_size(self):
        layer = ConvLayer("l", 1, 3, 20, 20, 4, 3, 3)
        assert layer.input_patch_size(1, 1) == 9
        assert layer.input_patch_size(4, 4) == 6 * 6

    def test_input_patch_size_strided(self):
        layer = ConvLayer("l", 1, 3, 20, 20, 4, 3, 3, stride=2)
        assert layer.input_patch_size(4, 4) == 9 * 9

    def test_total_macs(self):
        layers = [ConvLayer("a", 1, 1, 5, 5, 1, 3, 3), ConvLayer("b", 1, 2, 5, 5, 2, 3, 3)]
        assert total_macs(layers) == layers[0].macs + layers[1].macs

    @pytest.mark.parametrize("a,b,expected", [(7, 2, 4), (8, 2, 4), (1, 5, 1), (0, 3, 0)])
    def test_ceil_div(self, a, b, expected):
        assert ceil_div(a, b) == expected

    def test_ceil_div_rejects_zero_divisor(self):
        with pytest.raises(ValueError):
            ceil_div(5, 0)

    def test_word_kib_roundtrip(self):
        assert words_to_kib(1024) == pytest.approx(2.0)
        assert kib_to_words(2.0) == 1024

    def test_kib_to_words_floor(self):
        assert kib_to_words(0.001) == 0
