"""The LLM serving workload family: exact MACs, KV-cache tagging, GQA/MoE.

The builders in :mod:`repro.workloads.llm` model decode steps, prefill and
MoE routing as exact-MAC matmul layer lists; the closed forms
(``decode_step_macs``, ``kv_cache_words_per_step``) are the independent
accounting the property tests check the builders against -- any drift
between a builder and its closed form is a modeling bug, not a tolerance
issue.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layer import WEIGHT_KINDS, ConvLayer, total_macs
from repro.workloads.llm import (
    balanced_expert_counts,
    decode_attention_macs,
    decode_step_macs,
    kv_cache_words_per_step,
    llama_decode_layers,
    llama_prefill_layers,
    mixtral_decode_layers,
    resolve_head_dim,
)
from repro.workloads.registry import get_workload, get_workload_spec, workload_names

# Small-but-varied decoder geometries: heads divisible by kv_heads, hidden
# implied by heads * head_dim so every GQA constraint holds by construction.
heads_and_kv = st.sampled_from([(2, 1), (2, 2), (4, 2), (4, 4), (8, 2), (8, 8)])
geometry = st.fixed_dictionaries(
    {
        "batch": st.integers(min_value=1, max_value=5),
        "context": st.integers(min_value=1, max_value=64),
        "head_dim": st.sampled_from([4, 8, 16]),
        "ffn_hidden": st.integers(min_value=3, max_value=48),
        "num_layers": st.integers(min_value=1, max_value=3),
    }
)


def _expand(params, heads_kv):
    heads, kv_heads = heads_kv
    hidden = heads * params["head_dim"]
    return dict(
        params,
        heads=heads,
        kv_heads=kv_heads,
        hidden=hidden,
        head_dim=params["head_dim"],
    )


class TestClosedFormMacs:
    """Builders and closed forms are two independent accountings of one model."""

    @settings(max_examples=30, deadline=None)
    @given(params=geometry, heads_kv=heads_and_kv)
    def test_llama_decode_matches_closed_form(self, params, heads_kv):
        kwargs = _expand(params, heads_kv)
        layers = llama_decode_layers(**kwargs)
        assert total_macs(layers) == decode_step_macs(**kwargs)

    @settings(max_examples=30, deadline=None)
    @given(
        params=geometry,
        heads_kv=heads_and_kv,
        experts=st.integers(min_value=1, max_value=4),
        top_k=st.integers(min_value=1, max_value=4),
    )
    def test_mixtral_decode_matches_closed_form(self, params, heads_kv, experts, top_k):
        if top_k > experts:
            top_k = experts
        kwargs = _expand(params, heads_kv)
        layers = mixtral_decode_layers(experts=experts, top_k=top_k, **kwargs)
        assert total_macs(layers) == decode_step_macs(
            experts=experts, top_k=top_k, **kwargs
        )

    @settings(max_examples=30, deadline=None)
    @given(params=geometry, heads_kv=heads_and_kv)
    def test_kv_cache_words_match_builder(self, params, heads_kv):
        kwargs = _expand(params, heads_kv)
        layers = llama_decode_layers(**kwargs)
        tagged = sum(
            layer.kv_cache_words for layer in layers if layer.weight_kind == "kv_cache"
        )
        expected = kv_cache_words_per_step(
            batch=kwargs["batch"],
            context=kwargs["context"],
            hidden=kwargs["hidden"],
            heads=kwargs["heads"],
            kv_heads=kwargs["kv_heads"],
            head_dim=kwargs["head_dim"],
            num_layers=kwargs["num_layers"],
        )
        assert tagged == expected

    def test_attention_macs_closed_form(self):
        # Per decoder layer, the KV-tagged layers are exactly the QK^T and
        # PV matmuls: 2 * batch * heads * head_dim * context MACs.
        layers = llama_decode_layers(
            batch=3, context=17, hidden=32, heads=4, kv_heads=2, ffn_hidden=11,
            num_layers=2,
        )
        attention = [layer for layer in layers if layer.weight_kind == "kv_cache"]
        assert total_macs(attention) == 2 * decode_attention_macs(
            batch=3, context=17, heads=4, head_dim=8
        )

    def test_paper_scale_defaults_are_exact(self):
        # The registry default (Llama-3-8B-like geometry at batch 32).
        layers = llama_decode_layers(batch=32, context=4096)
        assert total_macs(layers) == decode_step_macs(batch=32, context=4096)


class TestGqaAndValidation:
    def test_resolve_head_dim(self):
        assert resolve_head_dim(4096, 32) == 128
        assert resolve_head_dim(4096, 32, head_dim=64) == 64
        with pytest.raises(ValueError):
            resolve_head_dim(100, 3)

    def test_gqa_divisibility_is_enforced(self):
        with pytest.raises(ValueError):
            llama_decode_layers(batch=1, context=8, hidden=32, heads=8, kv_heads=3)

    def test_weight_kind_validation(self):
        with pytest.raises(ValueError):
            ConvLayer.from_fc("bad", 1, 4, 4, weight_kind="cache")
        assert "kv_cache" in WEIGHT_KINDS

    def test_decode_layers_tag_their_operands(self):
        layers = llama_decode_layers(
            batch=2, context=8, hidden=16, heads=4, kv_heads=2, ffn_hidden=8,
            num_layers=1,
        )
        kinds = {layer.weight_kind for layer in layers}
        assert kinds == {"weights", "kv_cache"}
        # Projections and FFN read true weights; only cache reads are tagged.
        for layer in layers:
            if layer.weight_kind == "kv_cache":
                assert layer.kv_cache_words == layer.num_weights
            else:
                assert layer.kv_cache_words == 0

    def test_prefill_tags_scores_and_context_as_activations(self):
        layers = llama_prefill_layers(
            batch=1, prompt=8, hidden=16, heads=4, kv_heads=2, ffn_hidden=8,
            num_layers=1,
        )
        kinds = {layer.weight_kind for layer in layers}
        assert kinds == {"weights", "activation"}


class TestMoeRouting:
    @settings(max_examples=50, deadline=None)
    @given(
        assignments=st.integers(min_value=0, max_value=200),
        experts=st.integers(min_value=1, max_value=16),
    )
    def test_balanced_counts_partition_the_assignments(self, assignments, experts):
        counts = balanced_expert_counts(assignments, experts)
        assert len(counts) == experts
        assert sum(counts) == assignments
        assert max(counts) - min(counts) <= 1
        # Deterministic: same inputs, same split.
        assert counts == balanced_expert_counts(assignments, experts)


class TestRegistry:
    def test_llm_families_are_registered(self):
        names = workload_names()
        for name in ("llama_decode", "llama_prefill", "mixtral_decode"):
            assert name in names

    def test_spec_batch_propagates(self):
        layers = get_workload_spec("llama_decode:2")
        assert total_macs(layers) == decode_step_macs(batch=2, context=4096)
        layers = get_workload("llama_decode", batch=2, context=64)
        assert total_macs(layers) == decode_step_macs(batch=2, context=64)

    def test_parameters_listing_starts_with_batch(self):
        from repro.workloads.registry import _REGISTRY

        for name in ("llama_decode", "llama_prefill", "mixtral_decode"):
            params = _REGISTRY[name].parameters()
            assert next(iter(params)) == "batch"
            # decode families expose context; prefill exposes prompt instead
            assert ("context" in params) != ("prompt" in params)
            assert "prefix" not in params
