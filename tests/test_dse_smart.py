"""Smart DSE explorers: drivers, certificates, seeding and CLI surface.

The exactness discipline under test: a smart explorer may evaluate any
subset of the candidate space, but its returned frontier carries a
trust-region certificate, and on spaces small enough to also sweep
exhaustively the certified frontier must never be dominated by the
exhaustive one.  Hypothesis draws the downsampled spaces; one shared
memoized engine keeps the repeated tiling searches cheap across examples.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as flat_main
from repro.core.layer import kib_to_words
from repro.dse.explore import design_space_exploration
from repro.dse.pareto import (
    contains_or_dominates,
    frontier_non_dominated,
    merge_frontiers,
)
from repro.dse.smart import (
    EXPLORERS,
    ConfigEvaluator,
    SplitGrid,
    run_certificate,
    split_of_row,
    validate_explorer,
    validate_seed,
)
from repro.dse.space import CandidateSpace, count_splits, enumerate_splits
from repro.engine import SearchEngine
from repro.orchestration.cli import main as orch_main

SMART_EXPLORERS = ("halving", "local", "evolution")

TINY_BUDGET_KIB = 24.0

#: Small enough for the exhaustive reference, large enough that the smart
#: drivers exercise coarse grids, neighborhoods and generations.
SMALL_SPACE = CandidateSpace(
    pe_dims=(8, 16, 32),
    lreg_words=(16, 32, 64),
    igbuf_words=(512, 1024),
    wgbuf_words=(128, 256),
)


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True)


@pytest.fixture(scope="module")
def engine():
    return SearchEngine(workers=1)


@pytest.fixture(scope="module")
def exhaustive(engine):
    return design_space_exploration(
        budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=engine, space=SMALL_SPACE
    )


def smart_sweep(engine, explorer, seed=0, slice_spec=(1, 1), space=SMALL_SPACE,
                budget_kib=TINY_BUDGET_KIB):
    return design_space_exploration(
        budget_kib=budget_kib,
        layers="tiny",
        engine=engine,
        space=space,
        explorer=explorer,
        seed=seed,
        slice_spec=slice_spec,
    )


# ---------------------------------------------------------------- split grid


class TestSplitGrid:
    def test_feasibility_matches_enumeration(self):
        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        enumerated = set(enumerate_splits(budget, SMALL_SPACE, backend="python"))
        axes = grid.axes
        everything = {
            (r, c, l, i, w)
            for r in axes[0]
            for c in axes[1]
            for l in axes[2]
            for i in axes[3]
            for w in axes[4]
        }
        assert {split for split in everything if grid.feasible(split)} == enumerated

    def test_window_splits_stay_inside_the_space(self):
        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        full = set(enumerate_splits(budget, SMALL_SPACE, backend="python"))
        anchor = sorted(full)[0]
        for radius in (1, 2):
            window = grid.window_splits(anchor, radius)
            assert anchor in window
            assert set(window) <= full

    def test_coarse_splits_cover_axis_endpoints(self):
        budget = kib_to_words(64.0)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        coarse = set(grid.coarse_splits(2))
        assert coarse <= set(enumerate_splits(budget, SMALL_SPACE, backend="python"))
        # The smallest and largest PE dims both survive the stride.
        assert any(split[0] == SMALL_SPACE.pe_dims[0] for split in coarse)
        assert any(split[0] == SMALL_SPACE.pe_dims[-1] for split in coarse)

    def test_random_split_is_feasible_and_seed_deterministic(self):
        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        draws = [grid.random_split(random.Random(7)) for _ in range(3)]
        assert draws[0] is not None and grid.feasible(draws[0])
        assert draws.count(draws[0]) == 3

    def test_mutate_returns_feasible_or_none(self):
        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        rng = random.Random(3)
        split = grid.random_split(rng)
        for _ in range(50):
            child = grid.mutate(split, rng)
            assert child is None or grid.feasible(child)

    def test_validators(self):
        for name in EXPLORERS:
            assert validate_explorer(name) == name
        with pytest.raises(ValueError, match="unknown explorer"):
            validate_explorer("annealing")
        assert validate_seed(3) == 3
        for bad in (True, 1.5, "7", None):
            with pytest.raises(ValueError, match="seed"):
                validate_seed(bad)


# ------------------------------------------------------------------ explorers


class TestSmartExplorers:
    @pytest.mark.parametrize("explorer", SMART_EXPLORERS)
    def test_certified_frontier_equals_exhaustive_on_small_space(
        self, engine, exhaustive, explorer
    ):
        payload = smart_sweep(engine, explorer, seed=3)
        assert payload["certificate"]["verified"] is True
        assert payload["certificate"]["region"] >= 1
        assert payload["certificate"]["exhaustive_points"] > 0
        assert canonical(payload["frontier"]) == canonical(exhaustive["frontier"])

    @pytest.mark.parametrize("explorer", SMART_EXPLORERS)
    def test_smart_payload_structure(self, engine, explorer):
        payload = smart_sweep(engine, explorer, seed=1)
        assert payload["explorer"] == explorer
        assert payload["seed"] == 1
        assert payload["config_count_total"] == count_splits(
            payload["budget_words"], SMALL_SPACE
        )
        assert (
            payload["config_count"] + payload["infeasible_count"]
            == payload["evaluated_count"]
        )
        assert payload["evaluated_count"] <= payload["config_count_total"]
        assert payload["explorer_stats"]["driver"] == explorer
        json.dumps(payload, allow_nan=False)

    def test_exhaustive_payload_keeps_its_pre_explorer_shape(self, exhaustive):
        # Golden discipline: the default path must not grow new keys.
        for key in ("explorer", "seed", "evaluated_count", "explorer_stats", "certificate"):
            assert key not in exhaustive

    def test_frontier_rows_are_scored_identically_to_exhaustive(
        self, engine, exhaustive
    ):
        payload = smart_sweep(engine, "local", seed=2)
        exhaustive_rows = {row["config"]: canonical(row) for row in exhaustive["configs"]}
        for row in payload["configs"]:
            assert canonical(row) == exhaustive_rows[row["config"]]

    def test_same_seed_is_byte_identical(self, engine):
        first = smart_sweep(engine, "evolution", seed=9)
        second = smart_sweep(engine, "evolution", seed=9)
        assert canonical(first) == canonical(second)
        other = smart_sweep(engine, "evolution", seed=10)
        assert other["seed"] == 10

    def test_islands_merge_to_a_certified_union(self, engine, exhaustive):
        islands = [
            smart_sweep(engine, "local", seed=5, slice_spec=(index, 3))
            for index in (1, 2, 3)
        ]
        assert all(payload["certificate"]["verified"] for payload in islands)
        merged = merge_frontiers([payload["frontier"] for payload in islands])
        assert frontier_non_dominated(merged, exhaustive["configs"])
        for row in merged:
            assert contains_or_dominates(exhaustive["frontier"], row)

    def test_max_configs_is_rejected_for_smart_explorers(self, engine):
        with pytest.raises(ValueError, match="max_configs"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB,
                layers="tiny",
                engine=engine,
                space=SMALL_SPACE,
                explorer="halving",
                max_configs=5,
            )

    def test_unknown_explorer_and_bad_seed_raise(self, engine):
        with pytest.raises(ValueError, match="unknown explorer"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=engine,
                space=SMALL_SPACE, explorer="annealing",
            )
        with pytest.raises(ValueError, match="seed"):
            smart_sweep(engine, "local", seed="zero")

    def test_thin_budget_falls_back_to_coarse_seeding(self, engine):
        # A budget admitting almost nothing: rejection sampling may find no
        # start, the coarse fallback must still locate the survivors.
        splits = enumerate_splits(kib_to_words(3.3), SMALL_SPACE, backend="python")
        assert 1 <= len(splits) <= 2
        for explorer in SMART_EXPLORERS:
            payload = smart_sweep(engine, explorer, seed=0, budget_kib=3.3)
            assert payload["config_count"] >= 1
            assert payload["certificate"]["verified"] is True

    def test_backends_are_byte_identical(self):
        pytest.importorskip("numpy")
        scalar_engine = SearchEngine(workers=1, backend="python")
        vector_engine = SearchEngine(workers=1, backend="numpy")
        for explorer in SMART_EXPLORERS:
            scalar = smart_sweep(scalar_engine, explorer, seed=4)
            vector = smart_sweep(vector_engine, explorer, seed=4)
            assert canonical(scalar) == canonical(vector)


# ---------------------------------------------------------------- certificate


class TestCertificate:
    def test_certificate_regions_are_fully_enumerated(self, engine):
        payload = smart_sweep(engine, "halving", seed=0)
        certificate = payload["certificate"]
        assert certificate["verified"] is True
        # Every frontier point's whole trust region was evaluated.
        grid = SplitGrid(SMALL_SPACE, payload["budget_words"], backend="python")
        evaluated = {split_of_row(row) for row in payload["configs"]}
        for row in payload["frontier"]:
            region = grid.window_splits(split_of_row(row), certificate["region"])
            assert set(region) <= evaluated

    def test_round_cap_reports_unverified(self, monkeypatch):
        # The certificate needs only rows with objective vectors, so a stub
        # scorer keeps this free of any tiling search.
        import repro.dse.smart as smart_module

        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")

        def score(splits):
            return [
                {
                    "config": "-".join(str(part) for part in split),
                    "pe_rows": split[0],
                    "pe_cols": split[1],
                    "lreg_words_per_pe": split[2],
                    "igbuf_words": split[3],
                    "wgbuf_words": split[4],
                    "objectives": {"dram": float(sum(split))},
                }
                for split in splits
            ]

        evaluator = ConfigEvaluator(score, ("dram",))
        evaluator.evaluate(grid.coarse_splits(4))
        monkeypatch.setattr(smart_module, "MAX_CERTIFICATE_ROUNDS", 0)
        certificate = run_certificate(evaluator, grid, 1)
        assert certificate == {"verified": False, "region": 1, "exhaustive_points": 0}

    def test_region_must_be_positive(self):
        budget = kib_to_words(TINY_BUDGET_KIB)
        grid = SplitGrid(SMALL_SPACE, budget, backend="python")
        evaluator = ConfigEvaluator(lambda splits: [None] * len(splits), ("dram",))
        with pytest.raises(ValueError, match="region"):
            run_certificate(evaluator, grid, 0)


# -------------------------------------------------------- hypothesis properties


def subset(pool, max_size):
    return st.sets(
        st.sampled_from(pool), min_size=1, max_size=max_size
    ).map(lambda values: tuple(sorted(values)))


downsampled_spaces = st.builds(
    CandidateSpace,
    pe_dims=subset((4, 8, 12, 16), 3),
    lreg_words=subset((8, 16, 32), 3),
    igbuf_words=subset((256, 512, 1024), 2),
    wgbuf_words=subset((64, 128, 256), 2),
)

#: One engine for every drawn example: the axis pools are fixed, so the
#: memoized family searches make repeated examples nearly free.
PROPERTY_ENGINE = SearchEngine(workers=1)


class TestSmartProperties:
    @settings(max_examples=10, deadline=None, derandomize=True)
    @given(
        space=downsampled_spaces,
        explorer=st.sampled_from(SMART_EXPLORERS),
        seed=st.integers(0, 7),
    )
    def test_certified_frontier_never_dominated_by_exhaustive(
        self, space, explorer, seed
    ):
        exhaustive = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny",
            engine=PROPERTY_ENGINE, space=space,
        )
        smart = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny",
            engine=PROPERTY_ENGINE, space=space, explorer=explorer, seed=seed,
        )
        assert smart["certificate"]["verified"] is True
        objectives = tuple(exhaustive["objectives"])
        # Nothing the exhaustive sweep scored beats any certified point...
        assert frontier_non_dominated(smart["frontier"], exhaustive["configs"], objectives)
        # ...and every certified point is a real config of the space, so the
        # exhaustive frontier contains or dominates each one.
        for row in smart["frontier"]:
            assert contains_or_dominates(exhaustive["frontier"], row, objectives)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(
        space=downsampled_spaces,
        explorer=st.sampled_from(SMART_EXPLORERS),
        seed=st.integers(0, 7),
    )
    def test_seed_determinism_across_backends(self, space, explorer, seed):
        pytest.importorskip("numpy")
        scalar = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny",
            engine=SearchEngine(workers=1, backend="python"),
            space=space, explorer=explorer, seed=seed,
        )
        vector = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny",
            engine=SearchEngine(workers=1, backend="numpy"),
            space=space, explorer=explorer, seed=seed,
        )
        assert canonical(scalar) == canonical(vector)

    @settings(max_examples=6, deadline=None, derandomize=True)
    @given(count=st.integers(1, 60))
    def test_empty_slices_merge_cleanly(self, count):
        # More slices than configs: trailing slices are empty payloads that
        # must merge to the unsharded frontier all the same.
        whole = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny",
            engine=PROPERTY_ENGINE, space=SMALL_SPACE,
        )
        slices = [
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB, layers="tiny",
                engine=PROPERTY_ENGINE, space=SMALL_SPACE,
                slice_spec=(index, count),
            )
            for index in range(1, count + 1)
        ]
        assert sum(part["config_count"] for part in slices) == whole["config_count"]
        if count > whole["config_count_total"]:
            assert any(part["config_count"] == 0 for part in slices)
            assert any(part["frontier"] == [] for part in slices)
        merged = merge_frontiers([part["frontier"] for part in slices])
        assert canonical(merged) == canonical(whole["frontier"])


# ------------------------------------------------------------------------ CLI


class TestSmartCli:
    def test_explorer_flag_prints_certificate(self, capsys):
        assert flat_main([
            "dse", "--workload", "tiny", "--budget", str(TINY_BUDGET_KIB),
            "--explorer", "halving",
        ]) == 0
        out = capsys.readouterr().out
        assert "Explorer 'halving'" in out
        assert "certificate verified" in out

    def test_explorer_seed_flag(self, capsys):
        assert flat_main([
            "dse", "--workload", "tiny", "--budget", str(TINY_BUDGET_KIB),
            "--explorer", "local", "--seed", "7",
        ]) == 0
        assert "(seed 7)" in capsys.readouterr().out

    def test_exhaustive_explorer_output_is_unchanged(self, capsys):
        assert flat_main([
            "dse", "--workload", "tiny", "--budget", str(TINY_BUDGET_KIB),
            "--explorer", "exhaustive",
        ]) == 0
        assert "Explorer" not in capsys.readouterr().out

    def test_orchestrated_islands_run_and_merge(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert orch_main([
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "dse", "--budget", str(TINY_BUDGET_KIB),
            "--explorer", "local", "--seed", "3", "--dse-slices", "2",
        ]) == 0
        capsys.readouterr()
        assert orch_main(["frontier", out_dir, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        (group,) = document["groups"]
        assert group["explorer"] == "local"
        assert group["certified"] is True
        assert group["complete"] is True
        assert group["frontier"]

    def test_orchestration_seed_needs_traffic_or_smart_explorer(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert orch_main([
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "dse", "--seed", "3",
        ]) == 2
        assert "--seed" in capsys.readouterr().err

    def test_orchestration_explorer_needs_dse_experiment(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert orch_main([
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "fig16", "--explorer", "halving",
        ]) == 2
        assert "add 'dse' to --experiments" in capsys.readouterr().err
