"""Property-based tests (hypothesis) on the core invariants."""

import pytest
from hypothesis import given, settings, strategies as st
from repro.core.layer import ConvLayer
from repro.core.lower_bound import (
    ideal_traffic,
    naive_traffic,
    practical_lower_bound,
    theorem2_lower_bound,
)
from repro.core.mm_conversion import conv_to_mm_shape, reference_convolution, unfolding_expansion
from repro.core.matmul import blocked_mm_traffic, optimal_block_sizes
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.tiling import Tiling
from repro.core.traffic import TrafficBreakdown


@st.composite
def conv_layers(draw, max_spatial=24, max_channels=24, max_batch=3):
    """Random valid convolutional layers."""
    kernel_h = draw(st.integers(1, 5))
    kernel_w = draw(st.integers(1, 5))
    stride = draw(st.integers(1, 2))
    padding = draw(st.integers(0, 1))
    in_h = draw(st.integers(max(kernel_h, 3), max_spatial))
    in_w = draw(st.integers(max(kernel_w, 3), max_spatial))
    return ConvLayer(
        name="prop",
        batch=draw(st.integers(1, max_batch)),
        in_channels=draw(st.integers(1, max_channels)),
        in_height=in_h,
        in_width=in_w,
        out_channels=draw(st.integers(1, max_channels)),
        kernel_height=kernel_h,
        kernel_width=kernel_w,
        stride=stride,
        padding=padding,
    )


@st.composite
def tilings(draw):
    return Tiling(
        b=draw(st.integers(1, 4)),
        z=draw(st.integers(1, 32)),
        y=draw(st.integers(1, 16)),
        x=draw(st.integers(1, 16)),
        k=draw(st.integers(1, 8)),
    )


class TestLayerProperties:
    @given(conv_layers())
    @settings(max_examples=60, deadline=None)
    def test_shape_and_volume_consistency(self, layer):
        assert layer.out_height >= 1 and layer.out_width >= 1
        assert layer.macs == layer.num_outputs * layer.in_channels * \
            layer.kernel_height * layer.kernel_width
        assert layer.window_reuse >= 1.0

    @given(conv_layers())
    @settings(max_examples=60, deadline=None)
    def test_unfolding_expansion_bounded(self, layer):
        expansion = unfolding_expansion(layer)
        assert expansion > 0
        if layer.padding == 0:
            # Without padding no input can appear in more than Wk*Hk windows.
            assert expansion <= layer.kernel_height * layer.kernel_width + 1e-9
        assert conv_to_mm_shape(layer).flops == layer.macs


class TestBoundProperties:
    @given(conv_layers(), st.integers(64, 1 << 20))
    @settings(max_examples=60, deadline=None)
    def test_bound_ordering(self, layer, capacity):
        theorem2 = theorem2_lower_bound(layer, capacity)
        practical = practical_lower_bound(layer, capacity)
        assert practical >= theorem2
        assert practical >= ideal_traffic(layer)
        assert naive_traffic(layer) >= theorem2

    @given(conv_layers(), st.integers(64, 1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_bound_monotone_in_memory(self, layer, capacity):
        assert practical_lower_bound(layer, 4 * capacity) <= practical_lower_bound(layer, capacity) + 1e-9


class TestDataflowProperties:
    @given(conv_layers(), tilings())
    @settings(max_examples=60, deadline=None)
    def test_traffic_at_least_ideal_and_counts_outputs_once(self, layer, tiling):
        traffic = dataflow_traffic(layer, tiling)
        assert traffic.output_writes == layer.num_outputs
        assert traffic.weight_reads >= layer.num_weights - 1e-9
        assert traffic.input_reads > 0
        if layer.stride == 1:
            # With unit stride every input participates in some window, so the
            # traffic cannot fall below the touch-everything-once minimum.
            assert traffic.total >= ideal_traffic(layer) - 1e-9

    @given(conv_layers(), st.integers(32, 1 << 16))
    @settings(max_examples=40, deadline=None)
    def test_chosen_tiling_fits_and_is_reasonable(self, layer, capacity):
        choice = choose_tiling(layer, capacity)
        assert choice.tiling.on_chip_footprint(layer) <= capacity
        assert choice.traffic.total >= layer.num_weights + layer.num_outputs - 1e-9
        if layer.stride == 1:
            assert choice.traffic.total >= ideal_traffic(layer) - 1e-9
        assert choice.traffic.total <= naive_traffic(layer) + layer.num_outputs


class TestMatMulProperties:
    @given(st.integers(1, 64), st.integers(1, 32), st.integers(1, 64), st.integers(8, 4096))
    @settings(max_examples=60, deadline=None)
    def test_blocked_mm_reads_each_matrix_at_least_once(self, m, kk, n, fast):
        block_m, block_n = optimal_block_sizes(m, kk, n, fast)
        traffic = blocked_mm_traffic(m, kk, n, block_m, block_n)
        assert traffic.a_reads >= m * kk
        assert traffic.b_reads >= kk * n
        assert traffic.c_writes == m * n


class TestTrafficProperties:
    @given(st.lists(st.tuples(st.floats(0, 1e6), st.floats(0, 1e6), st.floats(0, 1e6),
                              st.floats(0, 1e6)), max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_sum_is_associative_with_components(self, parts):
        breakdowns = [TrafficBreakdown(*part) for part in parts]
        total = TrafficBreakdown()
        for item in breakdowns:
            total = total + item
        assert total.total == pytest.approx(sum(item.total for item in breakdowns))


class TestRandomNetworkSearchProperties:
    """Search-level invariants over random networks, for every dataflow.

    The sound floors (validated across every registered workload) are the
    paper's Theorem 2 bound and the once-through weight+output volume; the
    achievable Eq. (15) form is a reference, not a floor -- layers whose
    operand tensors fit on-chip legitimately undercut it (see
    ``test_workload_registry.py``).
    """

    SEEDS = (1, 7, 13, 42)
    CAPACITIES = (2048, 16384)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_feasible_dataflow_respects_bounds(self, seed):
        from repro.core.lower_bound import theorem2_lower_bound
        from repro.dataflows.registry import ALL_DATAFLOWS
        from repro.engine import SearchEngine
        from repro.workloads.generator import random_network

        engine = SearchEngine()
        layers = random_network(seed, depth=4, max_channels=24, max_spatial=20)
        for capacity in self.CAPACITIES:
            results = engine.search_tasks(
                [(dataflow, layer, capacity) for layer in layers for dataflow in ALL_DATAFLOWS]
            )
            for index, layer in enumerate(layers):
                window = results[index * len(ALL_DATAFLOWS) : (index + 1) * len(ALL_DATAFLOWS)]
                feasible = [result for result in window if result is not None]
                assert feasible, "at least one dataflow must fit these small layers"
                floor = max(
                    theorem2_lower_bound(layer, capacity),
                    layer.num_weights + layer.num_outputs,
                )
                for result in feasible:
                    assert result.total >= floor - 1e-6
                # found_minimum is exactly the cheapest feasible result.
                minimum = engine.found_minimum(layer, capacity)
                assert minimum.total == min(result.total for result in feasible)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_parallel_engine_bit_identical_to_serial(self, seed):
        from repro.dataflows.registry import ALL_DATAFLOWS
        from repro.engine import SearchEngine
        from repro.workloads.generator import random_network

        layers = random_network(seed, depth=3, max_channels=16, max_spatial=16)
        tasks = [
            (dataflow, layer, capacity)
            for layer in layers
            for dataflow in ALL_DATAFLOWS
            for capacity in self.CAPACITIES
        ]
        serial = SearchEngine(workers=1).search_tasks(tasks)
        parallel = SearchEngine(workers=2).search_tasks(tasks)
        assert serial == parallel

    def test_bound_monotone_under_batch_growth(self):
        from repro.core.lower_bound import theorem2_lower_bound
        from repro.workloads.generator import random_network

        for layer in random_network(3, depth=3):
            grown = layer.with_batch(layer.batch * 2)
            assert theorem2_lower_bound(grown, 4096) == pytest.approx(
                2 * theorem2_lower_bound(layer, 4096)
            )


class TestFunctionalSimulatorProperty:
    @given(conv_layers(max_spatial=10, max_channels=4, max_batch=2), tilings())
    @settings(max_examples=15, deadline=None)
    def test_functional_simulator_always_matches_reference(self, layer, tiling):
        np = pytest.importorskip("numpy")
        from repro.arch.functional import FunctionalSimulator

        rng = np.random.default_rng(0)
        inputs = rng.standard_normal(
            (layer.batch, layer.in_channels, layer.in_height, layer.in_width)
        )
        weights = rng.standard_normal(
            (layer.out_channels, layer.in_channels, layer.kernel_height, layer.kernel_width)
        )
        result = FunctionalSimulator().run(layer, tiling, inputs, weights)
        reference = reference_convolution(inputs, weights, layer)
        np.testing.assert_allclose(result.outputs, reference, rtol=1e-9, atol=1e-9)
        analytic = dataflow_traffic(layer, tiling)
        assert result.dram_input_reads == pytest.approx(analytic.input_reads)
        assert result.dram_weight_reads == pytest.approx(analytic.weight_reads)
