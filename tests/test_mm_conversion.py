"""Tests for repro.core.mm_conversion."""

import pytest

np = pytest.importorskip("numpy")

from repro.core.layer import ConvLayer
from repro.core.mm_conversion import (
    conv_to_mm_shape,
    convolution_via_mm,
    im2col,
    matrix_to_outputs,
    outputs_to_matrix,
    pad_input,
    reference_convolution,
    unfolding_expansion,
    weights_to_matrix,
)
from repro.workloads.generator import small_test_layers


def _random_tensors(layer, seed=0):
    rng = np.random.default_rng(seed)
    inputs = rng.standard_normal(
        (layer.batch, layer.in_channels, layer.in_height, layer.in_width)
    )
    weights = rng.standard_normal(
        (layer.out_channels, layer.in_channels, layer.kernel_height, layer.kernel_width)
    )
    return inputs, weights


class TestShapes:
    def test_mm_shape(self):
        layer = ConvLayer("l", 2, 3, 10, 10, 4, 3, 3)
        shape = conv_to_mm_shape(layer)
        assert shape.m == 2 * 8 * 8
        assert shape.kk == 3 * 3 * 3
        assert shape.n == 4
        assert shape.flops == layer.macs

    def test_matrix_word_counts(self):
        layer = ConvLayer("l", 1, 2, 6, 6, 3, 3, 3)
        shape = conv_to_mm_shape(layer)
        assert shape.input_matrix_words == shape.m * shape.kk
        assert shape.weight_matrix_words == layer.num_weights
        assert shape.output_matrix_words == layer.num_outputs

    def test_unfolding_expansion_bounded_by_reuse(self):
        layer = ConvLayer("l", 1, 4, 32, 32, 8, 3, 3, padding=1)
        expansion = unfolding_expansion(layer)
        assert 1.0 < expansion <= layer.window_reuse + 1e-9

    def test_unfolding_expansion_is_one_for_1x1(self):
        layer = ConvLayer("l", 1, 4, 16, 16, 8, 1, 1)
        assert unfolding_expansion(layer) == pytest.approx(1.0)


class TestPadding:
    def test_pad_input_zero_is_identity(self):
        data = np.ones((1, 1, 4, 4))
        assert pad_input(data, 0) is data

    def test_pad_input_shape_and_zeros(self):
        data = np.ones((1, 2, 4, 5))
        padded = pad_input(data, 2)
        assert padded.shape == (1, 2, 8, 9)
        assert padded[0, 0, 0, 0] == 0
        assert padded[0, 0, 2, 2] == 1


class TestNumericalEquivalence:
    @pytest.mark.parametrize("layer", small_test_layers(), ids=lambda l: l.name)
    def test_im2col_matmul_matches_direct_convolution(self, layer):
        inputs, weights = _random_tensors(layer)
        direct = reference_convolution(inputs, weights, layer)
        via_mm = convolution_via_mm(inputs, weights, layer)
        np.testing.assert_allclose(direct, via_mm, rtol=1e-10, atol=1e-10)

    def test_im2col_row_count(self, small_layer):
        inputs, _ = _random_tensors(small_layer)
        unfolded = im2col(inputs, small_layer)
        shape = conv_to_mm_shape(small_layer)
        assert unfolded.shape == (shape.m, shape.kk)

    def test_weights_to_matrix_shape(self, small_layer):
        _, weights = _random_tensors(small_layer)
        matrix = weights_to_matrix(weights)
        assert matrix.shape == (
            small_layer.in_channels * small_layer.kernel_height * small_layer.kernel_width,
            small_layer.out_channels,
        )

    def test_output_matrix_roundtrip(self, small_layer):
        rng = np.random.default_rng(1)
        outputs = rng.standard_normal(
            (small_layer.batch, small_layer.out_channels,
             small_layer.out_height, small_layer.out_width)
        )
        matrix = outputs_to_matrix(outputs)
        back = matrix_to_outputs(matrix, small_layer)
        np.testing.assert_array_equal(outputs, back)

    def test_fc_layer_is_plain_matmul(self):
        layer = ConvLayer.from_fc("fc", batch=5, in_features=12, out_features=7)
        inputs, weights = _random_tensors(layer)
        direct = reference_convolution(inputs, weights, layer)
        expected = inputs.reshape(5, 12) @ weights.reshape(7, 12).T
        np.testing.assert_allclose(direct.reshape(5, 7), expected, rtol=1e-10)
