"""Tests for repro.core.lower_bound."""

import math

import pytest

from repro.core.layer import ConvLayer
from repro.core.lower_bound import (
    BoundReport,
    bound_report,
    gbuf_lower_bound,
    ideal_traffic,
    naive_traffic,
    network_lower_bound,
    practical_lower_bound,
    reg_lower_bound,
    theorem2_lower_bound,
)


@pytest.fixture
def big_layer():
    """A layer large enough that the asymptotic bound is meaningful."""
    return ConvLayer("big", 3, 256, 56, 56, 256, 3, 3, stride=1, padding=1)


class TestTheorem2:
    def test_formula(self, big_layer):
        S = 32768
        expected = big_layer.macs / math.sqrt(big_layer.window_reuse * S)
        assert theorem2_lower_bound(big_layer, S) == pytest.approx(expected)

    def test_decreases_with_memory(self, big_layer):
        assert theorem2_lower_bound(big_layer, 65536) < theorem2_lower_bound(big_layer, 16384)

    def test_quadrupling_memory_halves_bound(self, big_layer):
        assert theorem2_lower_bound(big_layer, 4 * 8192) == pytest.approx(
            theorem2_lower_bound(big_layer, 8192) / 2.0
        )

    def test_window_reuse_lowers_bound(self):
        conv = ConvLayer("c", 1, 64, 56, 56, 64, 3, 3, padding=1)
        fc_like = ConvLayer("f", 1, 64, 56, 56, 64, 1, 1)
        # Same number of outputs; per-MAC the 3x3 layer moves less data.
        assert (
            theorem2_lower_bound(conv, 8192) / conv.macs
            < theorem2_lower_bound(fc_like, 8192) / fc_like.macs
        )

    def test_rejects_non_positive_memory(self, big_layer):
        with pytest.raises(ValueError):
            theorem2_lower_bound(big_layer, 0)


class TestPracticalBound:
    def test_exceeds_theorem2(self, big_layer):
        S = 32768
        assert practical_lower_bound(big_layer, S) > theorem2_lower_bound(big_layer, S)

    def test_includes_output_writes(self, big_layer):
        S = 32768
        assert practical_lower_bound(big_layer, S) >= big_layer.num_outputs

    def test_never_below_ideal(self):
        tiny = ConvLayer("tiny", 1, 2, 8, 8, 2, 3, 3)
        huge_memory = 10 ** 9
        assert practical_lower_bound(tiny, huge_memory) == pytest.approx(ideal_traffic(tiny))

    def test_monotone_in_memory(self, big_layer):
        values = [practical_lower_bound(big_layer, s) for s in (4096, 16384, 65536, 262144)]
        assert values == sorted(values, reverse=True)

    def test_rejects_non_positive_memory(self, big_layer):
        with pytest.raises(ValueError):
            practical_lower_bound(big_layer, 0)


class TestOtherBounds:
    def test_naive_traffic(self, big_layer):
        assert naive_traffic(big_layer) == 2 * big_layer.macs

    def test_ideal_traffic(self, big_layer):
        assert ideal_traffic(big_layer) == (
            big_layer.num_inputs + big_layer.num_weights + big_layer.num_outputs
        )

    def test_naive_dwarfs_ideal(self, big_layer):
        assert naive_traffic(big_layer) > 100 * ideal_traffic(big_layer)

    def test_reg_lower_bound_is_macs(self, big_layer):
        assert reg_lower_bound(big_layer) == big_layer.macs

    def test_gbuf_lower_bound(self):
        assert gbuf_lower_bound(100.0, 50.0) == pytest.approx(300.0)


class TestBoundReport:
    def test_report_fields(self, big_layer):
        report = bound_report(big_layer, 32768)
        assert isinstance(report, BoundReport)
        assert report.layer_name == big_layer.name
        assert report.practical >= report.theorem2
        assert report.naive > report.practical
        assert report.reg == big_layer.macs
        assert report.gbuf > 0

    def test_reduction_factor(self, big_layer):
        report = bound_report(big_layer, 32768)
        assert report.reduction_factor() == pytest.approx(report.naive / report.practical)
        # The reduction approaches sqrt(R*S) for large layers.
        assert report.reduction_factor() > 100


class TestNetworkBound:
    def test_sum_over_layers(self, big_layer):
        layers = [big_layer, big_layer.with_batch(1)]
        total = network_lower_bound(layers, 32768)
        assert total == pytest.approx(
            practical_lower_bound(layers[0], 32768) + practical_lower_bound(layers[1], 32768)
        )

    def test_vgg_network_bound_matches_paper_scale(self, vgg_layers):
        # At 173.5 KB the paper reports a 274.8 MB lower bound (Table III);
        # the reproduction should land in the same range (within ~15%).
        words = int(173.5 * 1024 / 2)
        total_mb = network_lower_bound(vgg_layers, words) * 2 / (1024 * 1024)
        assert 230 < total_mb < 320
