"""Tests for the parallel memoized search engine (repro.engine)."""

import math

import pytest

from repro.analysis.sweep import memory_sweep, words_to_mb
from repro.core.layer import ConvLayer, kib_to_words
from repro.core.lower_bound import practical_lower_bound
from repro.dataflows.grid import numpy_available
from repro.dataflows.ours import OptimalDataflow
from repro.dataflows.registry import ALL_DATAFLOWS, get_dataflow
from repro.engine import (
    SearchEngine,
    dataflow_signature,
    get_default_engine,
    layer_signature,
    resolve_backend,
    resolve_workers,
    set_default_engine,
    task_key,
)

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="the vectorized backend requires numpy"
)


@pytest.fixture
def layer():
    return ConvLayer("l", 2, 32, 28, 28, 64, 3, 3, stride=1, padding=1)


@pytest.fixture
def small_layers():
    return [
        ConvLayer("a", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1),
        ConvLayer("b", 1, 16, 14, 14, 16, 3, 3, stride=1, padding=1),
        ConvLayer("c", 2, 8, 10, 10, 8, 3, 3, stride=2, padding=0),
    ]


class TestSignatures:
    def test_layer_signature_ignores_name(self, layer):
        twin = ConvLayer("other-name", 2, 32, 28, 28, 64, 3, 3, stride=1, padding=1)
        assert layer_signature(layer) == layer_signature(twin)

    def test_layer_signature_distinguishes_shapes(self, layer):
        other = ConvLayer("l", 2, 32, 28, 28, 64, 3, 3, stride=2, padding=1)
        assert layer_signature(layer) != layer_signature(other)

    def test_dataflow_signature_includes_constructor_state(self):
        free = OptimalDataflow()
        pinned = OptimalDataflow(psum_words=4096, input_buffer_words=512, weight_buffer_words=64)
        assert dataflow_signature(free) != dataflow_signature(pinned)
        assert dataflow_signature(free)[0] == "Ours"

    def test_task_key_differs_by_capacity(self, layer):
        ours = get_dataflow("Ours")
        assert task_key(ours, layer, 8192) != task_key(ours, layer, 16384)

    def test_task_key_accepts_integral_floats_only(self, layer):
        ours = get_dataflow("Ours")
        assert task_key(ours, layer, 8192.0) == task_key(ours, layer, 8192)
        with pytest.raises(ValueError):
            task_key(ours, layer, 8192.5)

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        assert resolve_workers(0) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestCacheAccounting:
    def test_hit_miss_accounting_single(self, layer):
        engine = SearchEngine()
        engine.search(get_dataflow("Ours"), layer, 8192)
        assert engine.stats.misses == 1 and engine.stats.hits == 0
        engine.search(get_dataflow("Ours"), layer, 8192)
        assert engine.stats.misses == 1 and engine.stats.hits == 1
        assert engine.stats.hit_rate == pytest.approx(0.5)

    def test_batch_duplicates_count_as_hits(self, layer):
        engine = SearchEngine()
        ours = get_dataflow("Ours")
        results = engine.search_tasks([(ours, layer, 8192)] * 4)
        assert engine.stats.misses == 1 and engine.stats.hits == 3
        assert all(result == results[0] for result in results)

    def test_lookups_invariant(self, small_layers):
        engine = SearchEngine()
        tasks = [(d, l, 16384) for d in ALL_DATAFLOWS[:3] for l in small_layers]
        engine.search_tasks(tasks)
        engine.search_tasks(tasks)
        assert engine.stats.lookups == 2 * len(tasks)
        assert engine.stats.misses == len(tasks)

    def test_shape_equal_layers_share_entries(self, layer):
        engine = SearchEngine()
        twin = ConvLayer("twin", 2, 32, 28, 28, 64, 3, 3, stride=1, padding=1)
        first = engine.search(get_dataflow("InR-C"), layer, 8192)
        second = engine.search(get_dataflow("InR-C"), twin, 8192)
        assert engine.stats.misses == 1 and engine.stats.hits == 1
        assert second.layer_name == "twin"
        assert second.traffic == first.traffic
        assert second.tiling == first.tiling

    def test_no_cache_engine_counts_only_misses(self, layer):
        engine = SearchEngine(cache=False)
        engine.search(get_dataflow("Ours"), layer, 8192)
        engine.search(get_dataflow("Ours"), layer, 8192)
        assert engine.stats.misses == 2 and engine.stats.hits == 0
        assert engine.cache is None

    def test_clear_resets_cache_and_stats(self, layer):
        engine = SearchEngine()
        engine.search(get_dataflow("Ours"), layer, 8192)
        engine.clear()
        assert engine.stats.lookups == 0
        assert len(engine.cache) == 0

    def test_cached_tiling_is_detached(self, layer):
        engine = SearchEngine()
        first = engine.search(get_dataflow("Ours"), layer, 8192)
        first.tiling["b"] = -999
        second = engine.search(get_dataflow("Ours"), layer, 8192)
        assert second.tiling["b"] != -999


class TestInfeasibility:
    def test_try_search_returns_none_and_caches(self):
        engine = SearchEngine()
        layer = ConvLayer("l", 1, 8, 20, 20, 16, 3, 3)
        wtrb = get_dataflow("WtR-B")
        assert engine.try_search(wtrb, layer, 0) is None
        assert engine.try_search(wtrb, layer, 0) is None
        assert engine.stats.misses == 1 and engine.stats.hits == 1

    def test_search_raises_value_error(self):
        engine = SearchEngine()
        layer = ConvLayer("l", 1, 8, 20, 20, 16, 3, 3)
        with pytest.raises(ValueError):
            engine.search(get_dataflow("WtR-B"), layer, 0)

    def test_found_minimum_skips_infeasible_dataflows(self):
        engine = SearchEngine()
        # At 400 words an 11x11 kernel leaves WtR-B with no feasible tiling;
        # the infeasible candidate is skipped rather than raising.
        big_kernel = ConvLayer("big-kernel", 1, 8, 32, 32, 8, 11, 11)
        result = engine.found_minimum(
            big_kernel, 400, dataflows=[get_dataflow("WtR-B"), get_dataflow("Ours")]
        )
        assert result.dataflow == "Ours"

    def test_found_minimum_raises_when_nothing_fits(self):
        engine = SearchEngine()
        layer = ConvLayer("l", 1, 8, 20, 20, 16, 3, 3)
        with pytest.raises(ValueError):
            engine.found_minimum(layer, 0, dataflows=ALL_DATAFLOWS[1:3])


class TestParallelParity:
    def test_parallel_matches_serial(self, small_layers):
        tasks = [(d, l, 16384) for d in ALL_DATAFLOWS for l in small_layers]
        serial = SearchEngine(workers=1).search_tasks(tasks)
        parallel = SearchEngine(workers=2).search_tasks(tasks)
        assert serial == parallel

    def test_parallel_memory_sweep_identical(self, small_layers):
        serial = memory_sweep(
            capacities_kib=[16, 32], layers=small_layers, engine=SearchEngine(workers=1)
        )
        parallel = memory_sweep(
            capacities_kib=[16, 32], layers=small_layers, engine=SearchEngine(workers=2)
        )
        for name, values in serial["series"].items():
            for left, right in zip(values, parallel["series"][name]):
                assert (math.isnan(left) and math.isnan(right)) or left == right

    def test_parallel_engine_still_caches(self, small_layers):
        engine = SearchEngine(workers=2)
        tasks = [(d, l, 16384) for d in ALL_DATAFLOWS[:2] for l in small_layers]
        engine.search_tasks(tasks)
        engine.search_tasks(tasks)
        assert engine.stats.misses == len(tasks)
        assert engine.stats.hits == len(tasks)


class TestPersistence:
    def test_save_and_reload(self, tmp_path, layer):
        path = str(tmp_path / "cache.pkl")
        cold = SearchEngine(cache_path=path)
        result = cold.search(get_dataflow("Ours"), layer, 8192)
        assert cold.save() == 1

        warm = SearchEngine(cache_path=path)
        reloaded = warm.search(get_dataflow("Ours"), layer, 8192)
        assert warm.stats.misses == 0 and warm.stats.hits == 1
        assert reloaded == result

    def test_save_without_cache_is_noop(self):
        assert SearchEngine(cache=False).save() == 0

    def test_corrupt_cache_file_degrades_to_cold(self, tmp_path, layer):
        path = tmp_path / "cache.pkl"
        path.write_text("not a pickle")
        with pytest.warns(UserWarning, match="starting cold"):
            engine = SearchEngine(cache_path=str(path))
        engine.search(get_dataflow("Ours"), layer, 8192)
        assert engine.stats.misses == 1
        # Saving overwrites the corrupt file with a valid cache.
        engine.save()
        warm = SearchEngine(cache_path=str(path))
        warm.search(get_dataflow("Ours"), layer, 8192)
        assert warm.stats.hits == 1

    def test_version_mismatched_cache_is_rejected(self, tmp_path, layer):
        import pickle

        from repro.engine.cache import CACHE_FORMAT

        path = tmp_path / "cache.pkl"
        cold = SearchEngine(cache_path=str(path))
        cold.search(get_dataflow("Ours"), layer, 8192)
        cold.save()
        # Rewrite the payload as if an older package version produced it.
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        assert payload["format"] == CACHE_FORMAT
        payload["version"] = "0.0.0"
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with pytest.warns(UserWarning, match="written by version"):
            stale = SearchEngine(cache_path=str(path))
        stale.search(get_dataflow("Ours"), layer, 8192)
        assert stale.stats.misses == 1, "stale entries must not be served"

    def test_schema_mismatched_cache_is_discarded(self, tmp_path, layer):
        """A pickle with an incompatible entry schema must start cold, not serve."""
        import pickle

        path = tmp_path / "cache.pkl"
        cold = SearchEngine(cache_path=str(path))
        cold.search(get_dataflow("Ours"), layer, 8192)
        cold.save()
        # Rewrite as if an older code base with a different DataflowResult
        # layout (schema 0) produced the file.
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        payload["schema"] = 0
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with pytest.warns(UserWarning, match="entry schema"):
            stale = SearchEngine(cache_path=str(path))
        stale.search(get_dataflow("Ours"), layer, 8192)
        assert stale.stats.misses == 1, "schema-mismatched entries must not be served"

    def test_pre_schema_cache_file_is_discarded(self, tmp_path, layer):
        """Files written before the schema field existed lack it entirely."""
        import pickle

        path = tmp_path / "cache.pkl"
        cold = SearchEngine(cache_path=str(path))
        cold.search(get_dataflow("Ours"), layer, 8192)
        cold.save()
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        del payload["schema"]
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with pytest.warns(UserWarning, match="entry schema"):
            SearchEngine(cache_path=str(path))

    def test_corrupted_entries_round_trip_to_cold_then_warm(self, tmp_path, layer):
        """Garbage entries behind a valid header are rejected, then healed.

        Round trip: save valid -> corrupt one entry value -> reload warns and
        starts cold -> save again -> reload is warm and serves the result.
        """
        import pickle

        path = tmp_path / "cache.pkl"
        cold = SearchEngine(cache_path=str(path))
        result = cold.search(get_dataflow("Ours"), layer, 8192)
        cold.save()
        with open(path, "rb") as handle:
            payload = pickle.load(handle)
        key = next(iter(payload["entries"]))
        payload["entries"][key] = {"not": "a DataflowResult"}
        with open(path, "wb") as handle:
            pickle.dump(payload, handle)

        with pytest.warns(UserWarning, match="malformed entry"):
            recovered = SearchEngine(cache_path=str(path))
        assert recovered.search(get_dataflow("Ours"), layer, 8192) == result
        assert recovered.stats.misses == 1
        recovered.save()

        warm = SearchEngine(cache_path=str(path))
        assert warm.search(get_dataflow("Ours"), layer, 8192) == result
        assert warm.stats.hits == 1 and warm.stats.misses == 0

    def test_infeasible_entries_persist(self, tmp_path):
        path = str(tmp_path / "cache.pkl")
        layer = ConvLayer("l", 1, 8, 20, 20, 16, 3, 3)
        cold = SearchEngine(cache_path=path)
        assert cold.try_search(get_dataflow("WtR-B"), layer, 0) is None
        cold.save()
        warm = SearchEngine(cache_path=path)
        assert warm.try_search(get_dataflow("WtR-B"), layer, 0) is None
        assert warm.stats.misses == 0


class TestBackendResolution:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            SearchEngine(backend="fortran")

    def test_auto_resolves_to_an_executable_backend(self):
        assert resolve_backend("auto") in ("numpy", "python")
        assert resolve_backend(None) == resolve_backend("auto")
        assert SearchEngine().backend == resolve_backend("auto")

    def test_python_backend_always_available(self):
        assert SearchEngine(backend="python").backend == "python"

    @requires_numpy
    def test_numpy_backend_selected_when_available(self):
        assert resolve_backend("auto") == "numpy"
        assert SearchEngine(backend="numpy").backend == "numpy"

    def test_repr_names_the_backend(self):
        assert "backend=python" in repr(SearchEngine(backend="python"))


class TestSearchManyCapacities:
    """The multi-capacity search_many(layer, capacities, dataflow) API."""

    CAPACITIES = [512, 4096, 16384, 0]

    def test_matches_per_capacity_search(self, layer):
        engine = SearchEngine(backend="python")
        dataflow = get_dataflow("InR-A")
        results = engine.search_many(layer, self.CAPACITIES, dataflow)
        assert len(results) == len(self.CAPACITIES)
        for capacity, result in zip(self.CAPACITIES, results):
            assert result == engine.try_search(dataflow, layer, capacity)

    @requires_numpy
    def test_numpy_backend_matches_python_backend(self, layer):
        for dataflow in ALL_DATAFLOWS:
            vectorized = SearchEngine(backend="numpy").search_many(
                layer, self.CAPACITIES, dataflow
            )
            scalar = SearchEngine(backend="python").search_many(
                layer, self.CAPACITIES, dataflow
            )
            assert vectorized == scalar

    def test_counts_one_lookup_per_capacity(self, layer):
        engine = SearchEngine()
        engine.search_many(layer, self.CAPACITIES, get_dataflow("Ours"))
        assert engine.stats.lookups == len(self.CAPACITIES)
        assert engine.stats.misses == len(self.CAPACITIES)
        engine.search_many(layer, self.CAPACITIES, get_dataflow("Ours"))
        assert engine.stats.hits == len(self.CAPACITIES)


class TestGridEvaluationStats:
    """grid_evaluations reports the vectorized work behind sweep paths."""

    @requires_numpy
    def test_search_many_costs_one_grid_evaluation(self, layer):
        engine = SearchEngine(backend="numpy")
        engine.search_many(layer, [512, 4096, 16384], get_dataflow("InR-A"))
        assert engine.stats.grid_evaluations == 1
        assert engine.stats.misses == 3
        # Cached capacities trigger no further grid work.
        engine.search_many(layer, [512, 4096, 16384], get_dataflow("InR-A"))
        assert engine.stats.grid_evaluations == 1
        assert engine.stats.hits == 3

    @requires_numpy
    def test_memory_sweep_costs_one_evaluation_per_pair(self, small_layers):
        engine = SearchEngine(backend="numpy")
        memory_sweep(capacities_kib=[4, 16, 32], layers=small_layers, engine=engine)
        pairs = len(ALL_DATAFLOWS) * len(small_layers)
        assert engine.stats.grid_evaluations == pairs
        assert engine.stats.lookups == pairs * 3
        # A second sweep is served entirely from the cache.
        memory_sweep(capacities_kib=[4, 16, 32], layers=small_layers, engine=engine)
        assert engine.stats.grid_evaluations == pairs
        assert engine.stats.hits == pairs * 3

    def test_python_backend_reports_zero_grid_evaluations(self, layer):
        engine = SearchEngine(backend="python")
        engine.search_many(layer, [512, 4096], get_dataflow("InR-A"))
        assert engine.stats.grid_evaluations == 0
        assert engine.stats.misses == 2

    def test_stats_surface_grid_evaluations(self):
        engine = SearchEngine()
        assert "grid_evaluations" in engine.stats.as_dict()
        assert "grid evaluations" in str(engine.stats)
        engine.stats.grid_evaluations = 7
        engine.stats.reset()
        assert engine.stats.grid_evaluations == 0


@requires_numpy
class TestBackendCacheParity:
    """Backends share cache entries: same keys, same SCHEMA_VERSION."""

    CAPACITIES = [512, 4096, 16384]

    def _tasks(self, layers):
        return [
            (dataflow, layer, capacity)
            for dataflow in ALL_DATAFLOWS
            for layer in layers
            for capacity in self.CAPACITIES
        ]

    def test_scalar_populated_cache_serves_vectorized_engine(self, small_layers):
        scalar = SearchEngine(backend="python")
        expected = scalar.search_tasks(self._tasks(small_layers))

        vectorized = SearchEngine(backend="numpy")
        vectorized.cache = scalar.cache  # share the store, not a copy
        results = vectorized.search_tasks(self._tasks(small_layers))
        assert vectorized.stats.misses == 0
        assert vectorized.stats.grid_evaluations == 0
        assert results == expected

    def test_vectorized_populated_cache_serves_scalar_engine(self, small_layers):
        vectorized = SearchEngine(backend="numpy")
        expected = vectorized.search_tasks(self._tasks(small_layers))

        scalar = SearchEngine(backend="python")
        scalar.cache = vectorized.cache
        results = scalar.search_tasks(self._tasks(small_layers))
        assert scalar.stats.misses == 0
        assert results == expected

    def test_cache_parity_across_pickle_round_trip(self, tmp_path, small_layers):
        path = str(tmp_path / "cache.pkl")
        scalar = SearchEngine(backend="python", cache_path=path)
        expected = scalar.search_tasks(self._tasks(small_layers))
        scalar.save()

        vectorized = SearchEngine(backend="numpy", cache_path=path)
        results = vectorized.search_tasks(self._tasks(small_layers))
        assert vectorized.stats.misses == 0 and vectorized.stats.grid_evaluations == 0
        assert results == expected

        # And the reverse direction through a fresh file.
        reverse_path = str(tmp_path / "reverse.pkl")
        warm_vectorized = SearchEngine(backend="numpy", cache_path=reverse_path)
        warm_vectorized.search_tasks(self._tasks(small_layers))
        warm_vectorized.save()
        warm_scalar = SearchEngine(backend="python", cache_path=reverse_path)
        assert warm_scalar.search_tasks(self._tasks(small_layers)) == expected
        assert warm_scalar.stats.misses == 0

    def test_backends_produce_identical_cache_keys(self, layer):
        scalar = SearchEngine(backend="python")
        vectorized = SearchEngine(backend="numpy")
        tasks = [(dataflow, layer, 8192) for dataflow in ALL_DATAFLOWS]
        scalar.search_tasks(tasks)
        vectorized.search_tasks(tasks)
        assert set(scalar.cache._entries) == set(vectorized.cache._entries)


class TestDefaultEngine:
    def test_default_engine_is_process_wide(self):
        first = get_default_engine()
        assert get_default_engine() is first

    def test_set_default_engine_swaps_and_returns_previous(self):
        previous = get_default_engine()
        replacement = SearchEngine()
        try:
            assert set_default_engine(replacement) is previous
            assert get_default_engine() is replacement
        finally:
            set_default_engine(previous)


class TestMemorySweepRegression:
    """The engine-backed sweep must equal the pre-refactor per-layer totals."""

    @pytest.fixture(scope="class")
    def subset_layers(self, vgg_layers):
        return [vgg_layers[1], vgg_layers[7], vgg_layers[11]]

    def test_equals_pre_refactor_totals(self, subset_layers):
        capacities_kib = [32, 66.5, 128]
        sweep = memory_sweep(
            capacities_kib=capacities_kib,
            layers=subset_layers,
            engine=SearchEngine(),
        )
        # Pre-refactor reference: direct dataflow.search calls, accumulated
        # per dataflow in layer order (the seed implementation's loop).
        for index, capacity_kib in enumerate(capacities_kib):
            capacity_words = kib_to_words(capacity_kib)
            bound = sum(
                practical_lower_bound(layer, capacity_words) for layer in subset_layers
            )
            assert sweep["series"]["Lower bound"][index] == words_to_mb(bound) / 1024.0
            per_layer_best = [float("inf")] * len(subset_layers)
            for dataflow in ALL_DATAFLOWS:
                totals = 0.0
                feasible = True
                for layer_index, layer in enumerate(subset_layers):
                    try:
                        layer_total = dataflow.search(layer, capacity_words).total
                    except ValueError:
                        feasible = False
                        continue
                    totals += layer_total
                    per_layer_best[layer_index] = min(
                        per_layer_best[layer_index], layer_total
                    )
                expected = words_to_mb(totals) / 1024.0 if feasible else float("nan")
                actual = sweep["series"][dataflow.name][index]
                if math.isnan(expected):
                    assert math.isnan(actual)
                else:
                    assert actual == expected
            minimum = sum(value for value in per_layer_best if value != float("inf"))
            assert sweep["series"]["Found minimum"][index] == words_to_mb(minimum) / 1024.0

    def test_engine_results_match_direct_search(self, subset_layers):
        engine = SearchEngine()
        capacity_words = kib_to_words(66.5)
        for dataflow in (get_dataflow("Ours"), get_dataflow("InR-C")):
            for layer in subset_layers:
                direct = dataflow.search(layer, capacity_words)
                via_engine = engine.search(dataflow, layer, capacity_words)
                assert via_engine == direct


class TestLruEviction:
    """Bounded caches: LRU eviction with eviction-count statistics.

    The run orchestrator's shard caches persist (and reload) across resumes
    and would otherwise grow without bound; ``max_entries`` caps them.
    """

    def test_store_beyond_limit_evicts_the_oldest(self):
        from repro.engine import SearchCache

        cache = SearchCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.store(("c",), 3)
        assert len(cache) == 2
        assert ("a",) not in cache
        assert cache.get(("b",)) == 2 and cache.get(("c",)) == 3
        assert cache.evictions == 1

    def test_hits_refresh_recency(self):
        from repro.engine import SearchCache

        cache = SearchCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        assert cache.get(("a",)) == 1  # "a" is now the youngest entry
        cache.store(("c",), 3)
        assert ("b",) not in cache and ("a",) in cache

    def test_restore_of_existing_key_refreshes_without_evicting(self):
        from repro.engine import SearchCache

        cache = SearchCache(max_entries=2)
        cache.store(("a",), 1)
        cache.store(("b",), 2)
        cache.store(("a",), 10)  # refresh, not insert
        assert len(cache) == 2 and cache.evictions == 0
        cache.store(("c",), 3)
        assert ("b",) not in cache
        assert cache.get(("a",)) == 10

    def test_invalid_limit_rejected(self):
        from repro.engine import SearchCache

        with pytest.raises(ValueError, match="max_entries"):
            SearchCache(max_entries=0)

    def test_load_respects_the_limit(self, tmp_path):
        from repro.engine import SearchCache

        path = str(tmp_path / "cache.pkl")
        unbounded = SearchCache(path=path)
        engine = SearchEngine(cache_path=path)
        layer = ConvLayer("l", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1)
        dataflow = get_dataflow("Ours")
        for capacity in (4096, 8192, 16384):
            engine.search(dataflow, layer, capacity)
        assert engine.save() == 3
        del unbounded
        bounded = SearchCache(path=path, max_entries=2)
        assert len(bounded) == 2
        assert bounded.evictions == 1

    def test_engine_results_are_bit_identical_under_tiny_limit(self, small_layers):
        """A pathologically small cache changes cost, never results."""
        dataflow = get_dataflow("Ours")
        capacities = [4096, 8192, 16384, 8192, 4096]
        reference = SearchEngine()
        tiny = SearchEngine(cache_max_entries=1)
        for layer in small_layers:
            assert tiny.search_many(layer, capacities, dataflow) == reference.search_many(
                layer, capacities, dataflow
            )
        assert tiny.cache.evictions > 0

    def test_batch_hits_survive_same_batch_eviction(self, small_layers):
        """An entry counted as a hit must be served even if the batch's own
        fresh stores evict it before the results are assembled."""
        dataflow = get_dataflow("Ours")
        layer = small_layers[0]
        engine = SearchEngine(cache_max_entries=1)
        warm = engine.search(dataflow, layer, 4096)
        # One batch: a cache hit (4096) plus enough misses to wipe a
        # single-entry cache several times over.
        results = engine.search_many(layer, [4096, 8192, 16384, 32768], dataflow)
        assert results[0] == warm
        assert engine.stats.hits >= 1
