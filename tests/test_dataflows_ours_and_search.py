"""Tests for the paper's dataflow adapter and the cross-dataflow search."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.lower_bound import practical_lower_bound
from repro.dataflows.ours import OptimalDataflow
from repro.dataflows.registry import ALL_DATAFLOWS, get_dataflow
from repro.dataflows.search import found_minimum, network_traffic, per_layer_results


@pytest.fixture
def layer():
    return ConvLayer("l", 2, 32, 28, 28, 64, 3, 3, stride=1, padding=1)


class TestOptimalDataflowAdapter:
    def test_search_returns_single_candidate(self, layer):
        result = OptimalDataflow().search(layer, 8192)
        assert set(result.tiling) == {"b", "z", "y", "x", "k"}
        assert result.total > 0

    def test_fixed_split_constraints_respected(self, layer):
        dataflow = OptimalDataflow(psum_words=4096, input_buffer_words=512, weight_buffer_words=64)
        tiling = dataflow.choose(layer, 8192)
        assert tiling.output_block_size() <= 4096
        assert tiling.staged_weight_words() <= 64
        assert tiling.staged_input_words(layer) <= 512

    def test_never_below_lower_bound(self, vgg_layers, capacity_66k):
        ours = OptimalDataflow()
        for layer in vgg_layers:
            bound = practical_lower_bound(layer, capacity_66k)
            total = ours.search(layer, capacity_66k).total
            assert total >= 0.9 * bound

    def test_close_to_lower_bound_across_vgg(self, vgg_layers, capacity_66k):
        ours = OptimalDataflow()
        total = sum(ours.search(layer, capacity_66k).total for layer in vgg_layers)
        bound = sum(practical_lower_bound(layer, capacity_66k) for layer in vgg_layers)
        # The paper reports ~10% above the bound; allow a wider envelope here.
        assert total <= 1.35 * bound

    def test_beats_every_baseline_on_vgg(self, vgg_layers, capacity_66k):
        ours_total = sum(
            OptimalDataflow().search(layer, capacity_66k).total for layer in vgg_layers
        )
        for dataflow in ALL_DATAFLOWS:
            if dataflow.name == "Ours":
                continue
            total = 0.0
            feasible = True
            for layer in vgg_layers:
                try:
                    total += dataflow.search(layer, capacity_66k).total
                except ValueError:
                    feasible = False
                    break
            if not feasible:
                continue
            # A small tolerance: the bound is asymptotic and individual layers
            # can favour a baseline, but network-wide ours must win or tie.
            assert ours_total <= total * 1.05, dataflow.name


class TestFoundMinimum:
    def test_found_minimum_not_worse_than_any_dataflow(self, layer):
        capacity = 16384
        best = found_minimum(layer, capacity)
        for dataflow in ALL_DATAFLOWS:
            try:
                result = dataflow.search(layer, capacity)
            except ValueError:
                continue
            assert best.total <= result.total + 1e-6

    def test_found_minimum_close_to_ours(self, vgg_layers, capacity_66k):
        ours = get_dataflow("Ours")
        ours_total = sum(ours.search(layer, capacity_66k).total for layer in vgg_layers)
        min_total = sum(found_minimum(layer, capacity_66k).total for layer in vgg_layers)
        # Paper: the found minimum improves on the proposed dataflow by <5%.
        assert min_total <= ours_total
        assert min_total >= 0.85 * ours_total

    def test_raises_when_no_dataflow_fits(self):
        layer = ConvLayer("l", 1, 8, 20, 20, 16, 3, 3)
        with pytest.raises(ValueError):
            found_minimum(layer, capacity_words=0, dataflows=ALL_DATAFLOWS[1:3])


class TestNetworkTraffic:
    def test_with_explicit_dataflow(self, layer):
        capacity = 8192
        ours = get_dataflow("Ours")
        total = network_traffic([layer, layer], capacity, dataflow=ours)
        single = ours.search(layer, capacity).total
        assert total.total == pytest.approx(2 * single)

    def test_found_minimum_network(self, layer):
        capacity = 8192
        total = network_traffic([layer], capacity)
        assert total.total == pytest.approx(found_minimum(layer, capacity).total)

    def test_per_layer_results(self, layer):
        results = per_layer_results([layer, layer], 8192, get_dataflow("InR-C"))
        assert len(results) == 2
        assert all(result.dataflow == "InR-C" for result in results)
