"""Tests for repro.dataflows.base and the registry."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.traffic import TrafficBreakdown
from repro.dataflows.base import Dataflow, DataflowResult, candidate_extents
from repro.dataflows.registry import ALL_DATAFLOWS, BASELINE_DATAFLOWS, dataflow_names, get_dataflow


class _ToyDataflow(Dataflow):
    """A trivial dataflow used to exercise the shared search machinery."""

    name = "toy"

    def tiling_space(self, layer, capacity_words):
        for size in (1, 2, 4):
            if size <= capacity_words:
                yield {"size": size}

    def traffic(self, layer, capacity_words, tiling):
        # Bigger tiles mean less traffic in this toy model.
        return TrafficBreakdown(input_reads=100.0 / tiling["size"])


@pytest.fixture
def layer():
    return ConvLayer("l", 1, 4, 12, 12, 8, 3, 3)


class TestCandidateExtents:
    def test_small_extent_enumerated_fully(self):
        assert candidate_extents(5) == [1, 2, 3, 4, 5]

    def test_large_extent_includes_one_and_extent(self):
        values = candidate_extents(224)
        assert 1 in values and 224 in values
        assert values == sorted(values)

    def test_large_extent_includes_powers_of_two(self):
        values = candidate_extents(224)
        for power in (2, 4, 8, 16, 32, 64, 128):
            assert power in values

    def test_candidate_count_bounded(self):
        assert len(candidate_extents(512, max_candidates=48)) < 80


class TestCandidateExtentsInvariants:
    """The invariants grid construction relies on, over a dense extent range.

    The vectorized backend (:mod:`repro.dataflows.grid`) materializes the
    cross product of these lists as arrays, so it needs them sorted, unique,
    within ``[1, extent]``, anchored (1, the extent, all powers of two) and
    of bounded length -- the documented slack bound is
    ``2 * max_candidates + log2(extent) + 2``.
    """

    EXTENTS = list(range(1, 130)) + [224, 250, 256, 500, 512, 1000, 1024, 4095, 4096]
    MAX_CANDIDATES = (8, 48, 100)

    def test_sorted_unique_in_range(self):
        for extent in self.EXTENTS:
            values = candidate_extents(extent)
            assert values == sorted(set(values)), f"extent={extent}"
            assert values[0] >= 1 and values[-1] <= extent, f"extent={extent}"
            assert all(isinstance(value, int) for value in values)

    def test_contains_one_extent_and_powers_of_two(self):
        for extent in self.EXTENTS:
            values = set(candidate_extents(extent))
            assert 1 in values and extent in values, f"extent={extent}"
            power = 1
            while power <= extent:
                assert power in values, f"extent={extent}: missing power {power}"
                power *= 2

    def test_length_within_documented_slack(self):
        import math

        for max_candidates in self.MAX_CANDIDATES:
            for extent in self.EXTENTS:
                values = candidate_extents(extent, max_candidates=max_candidates)
                bound = 2 * max_candidates + int(math.log2(extent)) + 2
                assert len(values) <= bound, (
                    f"extent={extent}, max_candidates={max_candidates}: "
                    f"{len(values)} candidates exceed the documented bound {bound}"
                )

    def test_small_extents_enumerated_exhaustively(self):
        for extent in range(1, 49):
            assert candidate_extents(extent) == list(range(1, extent + 1))


class TestSearch:
    def test_search_picks_best_tiling(self, layer):
        result = _ToyDataflow().search(layer, capacity_words=10)
        assert result.tiling == {"size": 4}
        assert result.total == pytest.approx(25.0)
        assert isinstance(result, DataflowResult)

    def test_search_respects_capacity(self, layer):
        result = _ToyDataflow().search(layer, capacity_words=2)
        assert result.tiling == {"size": 2}

    def test_search_raises_when_nothing_fits(self, layer):
        with pytest.raises(ValueError):
            _ToyDataflow().search(layer, capacity_words=0)

    def test_network_traffic_sums_layers(self, layer):
        dataflow = _ToyDataflow()
        single = dataflow.search(layer, 10).traffic.total
        network = dataflow.network_traffic([layer, layer], 10)
        assert network.total == pytest.approx(2 * single)

    def test_repr_mentions_name(self):
        assert "toy" in repr(_ToyDataflow())


class TestRegistry:
    def test_all_dataflows_include_baselines_and_ours(self):
        names = dataflow_names()
        assert names[0] == "Ours"
        for expected in ("OutR-A", "OutR-B", "WtR-A", "WtR-B", "InR-A", "InR-B", "InR-C"):
            assert expected in names
        assert len(ALL_DATAFLOWS) == len(BASELINE_DATAFLOWS) + 1

    def test_get_dataflow(self):
        assert get_dataflow("InR-A").name == "InR-A"

    def test_get_dataflow_unknown(self):
        with pytest.raises(KeyError):
            get_dataflow("nonexistent")

    def test_names_unique(self):
        names = dataflow_names()
        assert len(names) == len(set(names))
