"""Tests for the workload definitions."""

import pytest

from repro.core.layer import total_macs
from repro.workloads.alexnet import alexnet_conv_layers
from repro.workloads.generator import random_layer, random_network, small_test_layers
from repro.workloads.resnet import resnet18_conv_layers
from repro.workloads.vgg import PAPER_BATCH_SIZE, vgg16_conv_layers, vgg16_fc_layers, vgg16_layer

import random


class TestVGG16:
    def test_thirteen_conv_layers(self):
        assert len(vgg16_conv_layers()) == 13

    def test_default_batch_matches_paper(self):
        assert all(layer.batch == PAPER_BATCH_SIZE for layer in vgg16_conv_layers())

    def test_all_3x3_unit_stride_padded(self):
        for layer in vgg16_conv_layers():
            assert (layer.kernel_height, layer.kernel_width) == (3, 3)
            assert layer.stride == 1 and layer.padding == 1
            assert layer.out_height == layer.in_height

    def test_channel_progression(self):
        layers = vgg16_conv_layers()
        assert layers[0].in_channels == 3
        assert layers[0].out_channels == 64
        assert layers[-1].out_channels == 512

    def test_total_macs_per_image(self):
        # VGG-16 conv layers are ~15.3 GMACs per image.
        macs = total_macs(vgg16_conv_layers(batch=1))
        assert 14e9 < macs < 16.5e9

    def test_layer_lookup_by_index(self):
        assert vgg16_layer(1).name == "conv1_1"
        assert vgg16_layer(13).name == "conv5_3"
        with pytest.raises(IndexError):
            vgg16_layer(14)

    def test_fc_layers(self):
        fcs = vgg16_fc_layers()
        assert len(fcs) == 3
        assert all(layer.window_reuse == 1.0 for layer in fcs)
        assert fcs[0].in_channels == 25088


class TestAlexNet:
    def test_five_layers(self):
        assert len(alexnet_conv_layers()) == 5

    def test_first_layer_output(self):
        conv1 = alexnet_conv_layers()[0]
        assert conv1.out_height == 55
        assert conv1.window_reuse == pytest.approx(121 / 16)

    def test_total_macs_reasonable(self):
        macs = total_macs(alexnet_conv_layers(batch=1))
        assert 0.6e9 < macs < 1.5e9


class TestResNet18:
    def test_layer_count(self):
        layers = resnet18_conv_layers()
        assert len(layers) == 20  # 1 stem + 16 block convs + 3 shortcuts

    def test_spatial_chain_is_consistent(self):
        layers = resnet18_conv_layers()
        stem = layers[0]
        assert stem.out_height == 112
        final = [layer for layer in layers if layer.name == "layer4_block2_conv2"][0]
        assert final.out_height == 7

    def test_shortcuts_are_1x1(self):
        shortcuts = [layer for layer in resnet18_conv_layers() if "shortcut" in layer.name]
        assert len(shortcuts) == 3
        assert all(layer.kernel_height == 1 and layer.window_reuse == 1.0 for layer in shortcuts)


class TestMobileNetV1:
    def test_total_macs_match_published_count(self):
        # Howard et al. report ~569M mult-adds at 224x224, width 1.0.
        from repro.workloads.mobilenet import mobilenet_v1_layers

        macs = total_macs(mobilenet_v1_layers(batch=1))
        assert 0.55e9 < macs < 0.60e9

    def test_expanded_depthwise_counts(self):
        from repro.workloads.mobilenet import mobilenet_v1_layers

        layers = mobilenet_v1_layers()
        depthwise = [l for l in layers if "_dw" in l.name]
        pointwise = [l for l in layers if l.name.endswith("_pw")]
        # 13 depthwise stages expand to one layer per input channel.
        assert len(depthwise) == 32 + 64 + 128 + 128 + 256 + 256 + 5 * 512 + 512 + 1024
        assert len(pointwise) == 13

    def test_spatial_chain_ends_at_seven(self):
        from repro.workloads.mobilenet import mobilenet_v1_layers

        last_pw = [l for l in mobilenet_v1_layers() if l.name.endswith("_pw")][-1]
        assert last_pw.in_height == 7 and last_pw.out_channels == 1024


class TestGoogLeNet:
    def test_layer_count(self):
        from repro.workloads.googlenet import googlenet_conv_layers

        # 3 stem convolutions + 9 inception modules x 6 branch convolutions.
        assert len(googlenet_conv_layers()) == 3 + 9 * 6

    def test_total_macs_reasonable(self):
        from repro.workloads.googlenet import googlenet_conv_layers

        macs = total_macs(googlenet_conv_layers(batch=1))
        assert 1.3e9 < macs < 1.8e9

    def test_module_output_channels_concatenate(self):
        from repro.workloads.googlenet import googlenet_conv_layers

        layers = {l.name: l for l in googlenet_conv_layers()}
        out_3a = sum(
            layers[f"inception_3a/{branch}"].out_channels
            for branch in ("1x1", "3x3", "5x5", "pool_proj")
        )
        assert out_3a == 256  # 64 + 128 + 32 + 32
        assert layers["inception_3b/1x1"].in_channels == 256


class TestTransformer:
    def test_bert_base_layer_count(self):
        from repro.workloads.transformer import bert_base_layers

        # Per encoder layer: 4 projections + 2 FFN + 12 heads x (scores, context).
        assert len(bert_base_layers()) == 12 * (6 + 12 * 2)

    def test_batch_scales_attention_replicas(self):
        from repro.workloads.transformer import bert_base_layers

        assert len(bert_base_layers(batch=2)) == 12 * (6 + 2 * 12 * 2)

    def test_projection_tokens_fold_into_batch(self):
        from repro.workloads.transformer import bert_base_layers

        proj = next(l for l in bert_base_layers(batch=2) if l.name.endswith("q_proj"))
        assert proj.batch == 2 * 128
        assert proj.in_channels == proj.out_channels == 768


class TestGenerator:
    def test_random_layer_is_valid(self):
        rng = random.Random(42)
        for _ in range(50):
            layer = random_layer(rng)
            assert layer.out_height >= 1 and layer.out_width >= 1
            assert layer.macs > 0

    def test_random_network_reproducible(self):
        a = random_network(seed=7, depth=4)
        b = random_network(seed=7, depth=4)
        assert [layer.describe() for layer in a] == [layer.describe() for layer in b]

    def test_random_network_seeds_differ(self):
        a = random_network(seed=1, depth=4)
        b = random_network(seed=2, depth=4)
        assert [l.describe() for l in a] != [l.describe() for l in b]

    def test_small_test_layers_are_small(self):
        for layer in small_test_layers():
            assert layer.macs < 300_000
