"""Tests for repro.core.pebble (red-blue pebble game substrate)."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.pebble import (
    Dag,
    PebbleGame,
    build_conv_dag,
    greedy_pebble_schedule,
    theorem1_bound,
    validate_s_partition,
)


@pytest.fixture
def tiny_layer():
    return ConvLayer("tiny", 1, 2, 4, 4, 2, 3, 3)


@pytest.fixture
def chain_dag():
    dag = Dag()
    dag.add_input("a")
    dag.add_input("b")
    dag.add_operation("c", ["a", "b"])
    dag.add_operation("d", ["c"])
    return dag


class TestDag:
    def test_duplicate_node_rejected(self, chain_dag):
        with pytest.raises(ValueError):
            chain_dag.add_input("a")

    def test_unknown_operand_rejected(self, chain_dag):
        with pytest.raises(ValueError):
            chain_dag.add_operation("e", ["missing"])

    def test_input_and_operation_nodes(self, chain_dag):
        assert set(chain_dag.input_nodes) == {"a", "b"}
        assert set(chain_dag.operation_nodes) == {"c", "d"}

    def test_output_nodes(self, chain_dag):
        assert chain_dag.output_nodes() == ["d"]

    def test_topological_order_respects_dependencies(self, chain_dag):
        order = chain_dag.topological_order()
        assert order.index("a") < order.index("c")
        assert order.index("b") < order.index("c")
        assert order.index("c") < order.index("d")

    def test_successors(self, chain_dag):
        successors = chain_dag.successors()
        assert successors["a"] == ["c"]
        assert successors["c"] == ["d"]
        assert successors["d"] == []


class TestConvDag:
    def test_node_counts_match_lemma1(self, tiny_layer):
        dag = build_conv_dag(tiny_layer)
        internal = len(dag.operation_nodes)
        assert internal == tiny_layer.dag_internal_nodes
        assert len(dag.input_nodes) == tiny_layer.num_inputs + tiny_layer.num_weights

    def test_outputs_count(self, tiny_layer):
        dag = build_conv_dag(tiny_layer)
        assert len(dag.output_nodes()) == tiny_layer.num_outputs

    def test_rejects_huge_layers(self):
        big = ConvLayer("big", 8, 64, 56, 56, 64, 3, 3)
        with pytest.raises(ValueError):
            build_conv_dag(big)

    def test_rejects_padding(self):
        padded = ConvLayer("p", 1, 1, 4, 4, 1, 3, 3, padding=1)
        with pytest.raises(ValueError):
            build_conv_dag(padded)


class TestPebbleGame:
    def test_compute_requires_operands_in_fast_memory(self, chain_dag):
        game = PebbleGame(chain_dag, fast_slots=4)
        with pytest.raises(RuntimeError):
            game.compute("c")

    def test_load_requires_blue_pebble(self, chain_dag):
        game = PebbleGame(chain_dag, fast_slots=4)
        with pytest.raises(RuntimeError):
            game.load("c")

    def test_store_requires_red_pebble(self, chain_dag):
        game = PebbleGame(chain_dag, fast_slots=4)
        with pytest.raises(RuntimeError):
            game.store("a")

    def test_manual_run_counts_io(self, chain_dag):
        game = PebbleGame(chain_dag, fast_slots=4)
        game.load("a")
        game.load("b")
        game.compute("c")
        game.compute("d")
        game.store("d")
        result = game.result()
        assert result.loads == 2
        assert result.stores == 1
        assert result.computes == 2
        assert result.io == 3

    def test_capacity_enforced(self, chain_dag):
        game = PebbleGame(chain_dag, fast_slots=2)
        game.load("a")
        game.load("b")
        with pytest.raises(RuntimeError):
            game.compute("c")

    def test_needs_two_slots(self, chain_dag):
        with pytest.raises(ValueError):
            PebbleGame(chain_dag, fast_slots=1)


class TestGreedySchedule:
    def test_chain_dag_minimal_io(self, chain_dag):
        result = greedy_pebble_schedule(chain_dag, fast_slots=4)
        assert result.computes == 2
        assert result.loads == 2
        assert result.stores == 1

    def test_all_operations_computed(self, tiny_layer):
        dag = build_conv_dag(tiny_layer)
        result = greedy_pebble_schedule(dag, fast_slots=64)
        # Every operation node is computed at least once (exactly once here).
        assert result.computes == len(dag.operation_nodes)

    def test_io_at_least_inputs_plus_outputs(self, tiny_layer):
        dag = build_conv_dag(tiny_layer)
        result = greedy_pebble_schedule(dag, fast_slots=64)
        # Any legal execution loads the data it touches and stores every output.
        assert result.stores >= tiny_layer.num_outputs
        assert result.loads >= tiny_layer.num_weights

    def test_smaller_memory_never_reduces_io(self, tiny_layer):
        dag = build_conv_dag(tiny_layer)
        io_small = greedy_pebble_schedule(dag, fast_slots=8).io
        io_large = greedy_pebble_schedule(dag, fast_slots=256).io
        assert io_small >= io_large


class TestSPartition:
    def test_valid_partition(self, chain_dag):
        assert validate_s_partition(chain_dag, [{"c", "d"}], capacity=2)

    def test_partition_must_cover_all_operations(self, chain_dag):
        assert not validate_s_partition(chain_dag, [{"c"}], capacity=2)

    def test_partition_must_be_disjoint(self, chain_dag):
        assert not validate_s_partition(chain_dag, [{"c", "d"}, {"d"}], capacity=2)

    def test_dominator_capacity_enforced(self, chain_dag):
        # The subset {c} needs both inputs as its dominator set: capacity 1 fails.
        assert not validate_s_partition(chain_dag, [{"c"}, {"d"}], capacity=1)
        assert validate_s_partition(chain_dag, [{"c"}, {"d"}], capacity=2)

    def test_cyclic_partition_rejected(self):
        dag = Dag()
        dag.add_input("a")
        dag.add_operation("b", ["a"])
        dag.add_operation("c", ["b"])
        dag.add_operation("d", ["c", "a"])
        dag.add_operation("e", ["d", "b"])
        # {b, d} and {c, e} depend on each other both ways -> cycle.
        assert not validate_s_partition(dag, [{"b", "d"}, {"c", "e"}], capacity=4)


class TestTheorem1:
    def test_bound_formula(self):
        assert theorem1_bound(10, 5) == 40

    def test_bound_never_negative(self):
        assert theorem1_bound(10, 0) == 0
