"""Tests for repro.core.optimal_dataflow (the paper's dataflow)."""

import pytest

from repro.core.layer import ConvLayer
from repro.core.lower_bound import ideal_traffic, practical_lower_bound
from repro.core.optimal_dataflow import (
    analytic_tiling,
    choose_tiling,
    dataflow_traffic,
    traffic_at_capacity,
)
from repro.core.tiling import Tiling


@pytest.fixture
def layer():
    return ConvLayer("l", 2, 32, 28, 28, 64, 3, 3, stride=1, padding=1)


class TestDataflowTraffic:
    def test_single_block_reads_everything_once(self):
        layer = ConvLayer("l", 1, 4, 10, 10, 8, 3, 3)
        tiling = Tiling(b=1, z=8, y=8, x=8, k=4)
        traffic = dataflow_traffic(layer, tiling)
        assert traffic.weight_reads == layer.num_weights
        assert traffic.input_reads == layer.num_inputs
        assert traffic.output_writes == layer.num_outputs
        assert traffic.output_reads == 0

    def test_channel_tiling_does_not_change_traffic(self, layer):
        full = dataflow_traffic(layer, Tiling(b=1, z=16, y=7, x=7, k=layer.in_channels))
        chunked = dataflow_traffic(layer, Tiling(b=1, z=16, y=7, x=7, k=1))
        assert full.total == pytest.approx(chunked.total)

    def test_smaller_z_increases_input_traffic(self, layer):
        # Eq. (14): the input term scales as 1/z, the weight term only depends
        # on the spatial/batch tile.
        wide = dataflow_traffic(layer, Tiling(b=1, z=64, y=7, x=7))
        narrow = dataflow_traffic(layer, Tiling(b=1, z=16, y=7, x=7))
        assert narrow.input_reads > wide.input_reads
        assert narrow.weight_reads == wide.weight_reads

    def test_smaller_spatial_tile_increases_weight_traffic(self, layer):
        # Eq. (14): the weight term scales as 1/(b*x*y); the input term only
        # grows through the larger halo share.
        big = dataflow_traffic(layer, Tiling(b=1, z=16, y=14, x=14))
        small = dataflow_traffic(layer, Tiling(b=1, z=16, y=7, x=7))
        assert small.weight_reads > big.weight_reads
        assert small.input_reads >= big.input_reads

    def test_exact_accounts_for_partial_tiles(self):
        layer = ConvLayer("l", 1, 2, 11, 11, 4, 3, 3)
        # 9x9 output; tiles of 4 leave a ragged edge.
        exact = dataflow_traffic(layer, Tiling(b=1, z=4, y=4, x=4), exact=True)
        approx = dataflow_traffic(layer, Tiling(b=1, z=4, y=4, x=4), exact=False)
        assert exact.total != pytest.approx(approx.total)
        assert exact.output_writes == layer.num_outputs

    def test_traffic_at_least_ideal(self, layer):
        for tiling in (Tiling(1, 8, 4, 4), Tiling(2, 64, 28, 28), Tiling(1, 1, 1, 1)):
            traffic = dataflow_traffic(layer, tiling)
            assert traffic.total >= ideal_traffic(layer) - 1e-9


class TestAnalyticTiling:
    def test_respects_layer_bounds(self, layer):
        tiling = analytic_tiling(layer, 4096).clip(layer)
        assert tiling.z <= layer.out_channels
        assert tiling.y <= layer.out_height
        assert tiling.x <= layer.out_width
        assert tiling.b <= layer.batch

    def test_balance_near_reuse_factor(self):
        layer = ConvLayer("l", 1, 256, 112, 112, 256, 3, 3, padding=1)
        tiling = analytic_tiling(layer, 32768)
        ratio = tiling.balance_ratio(layer)
        assert 0.4 < ratio < 2.5

    def test_small_plane_uses_batch(self):
        layer = ConvLayer("l", 8, 64, 7, 7, 128, 3, 3, padding=1)
        tiling = analytic_tiling(layer, 32768)
        assert tiling.b > 1
        assert tiling.y == layer.out_height
        assert tiling.x == layer.out_width


class TestChooseTiling:
    def test_fits_capacity(self, layer):
        for capacity in (512, 4096, 32768):
            choice = choose_tiling(layer, capacity)
            assert choice.tiling.on_chip_footprint(layer) <= capacity

    def test_respects_fixed_split(self, layer):
        choice = choose_tiling(
            layer, 32768, psum_words=8192, input_buffer_words=1024, weight_buffer_words=64
        )
        tiling = choice.tiling
        assert tiling.output_block_size() <= 8192
        assert tiling.staged_input_words(layer) <= 1024
        assert tiling.staged_weight_words() <= 64

    def test_fixed_split_never_beats_free_split(self, layer):
        free = choose_tiling(layer, 32768).traffic.total
        constrained = choose_tiling(
            layer, 32768, psum_words=4096, input_buffer_words=512, weight_buffer_words=64
        ).traffic.total
        assert constrained >= free - 1e-6

    def test_rejects_tiny_capacity(self, layer):
        with pytest.raises(ValueError):
            choose_tiling(layer, 4)

    def test_refinement_never_worse_than_seed(self, layer):
        seed = choose_tiling(layer, 16384, refine=False)
        refined = choose_tiling(layer, 16384, refine=True)
        assert refined.traffic.total <= seed.traffic.total + 1e-6

    def test_more_memory_reduces_traffic(self, vgg_layer_mid):
        totals = [
            choose_tiling(vgg_layer_mid, capacity).traffic.total
            for capacity in (8192, 32768, 131072)
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_traffic_close_to_lower_bound_on_large_layer(self, vgg_layer_mid, capacity_66k):
        bound = practical_lower_bound(vgg_layer_mid, capacity_66k)
        achieved = choose_tiling(vgg_layer_mid, capacity_66k).traffic.total
        assert achieved >= bound * 0.95  # never meaningfully below the bound
        assert achieved <= bound * 1.35  # and within the paper's ~10-30% envelope

    def test_traffic_at_capacity_wrapper(self, layer):
        assert traffic_at_capacity(layer, 8192).total == choose_tiling(layer, 8192).traffic.total


class TestBalanceProperty:
    def test_chosen_tiling_balances_input_and_weight_traffic(self, vgg_layer_mid, capacity_66k):
        traffic = choose_tiling(vgg_layer_mid, capacity_66k).traffic
        ratio = traffic.input_reads / traffic.weight_reads
        # The paper's dataflow equalises input and weight loading volumes.
        assert 0.4 < ratio < 2.5
