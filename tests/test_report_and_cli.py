"""Tests for the text report helpers and the CLI."""

import pytest

from repro.analysis.report import (
    format_dict_rows,
    format_energy_report,
    format_gbuf_dram_ratio,
    format_memory_sweep,
    format_table,
)
from repro.cli import build_engine, build_parser, main


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "value"], [["a", 1.23456], ["long-name", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in text
        assert lines[0].startswith("name")

    def test_format_dict_rows_defaults_to_keys(self):
        text = format_dict_rows([{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}])
        assert "a" in text and "b" in text and "4.500" in text

    def test_format_dict_rows_empty(self):
        assert format_dict_rows([]) == "(no data)"

    def test_format_memory_sweep(self):
        sweep = {"capacities_kib": [16, 32], "series": {"Ours": [1.0, 0.5], "Lower bound": [0.9, 0.4]}}
        text = format_memory_sweep(sweep)
        assert "16KB" in text and "Ours" in text

    def test_format_energy_report(self):
        report = {
            "lower_bounds": [{"capacity_words": 1024, "pj_per_mac": 5.0, "components_pj_per_mac": {}}],
            "implementations": [
                {
                    "implementation": "implementation-1",
                    "pj_per_mac": 8.0,
                    "gap": 0.6,
                    "components_pj_per_mac": {"DRAM": 2.0, "MAC units": 4.0},
                    "lower_bound_pj_per_mac": 5.0,
                    "on_chip_pj_per_mac": 6.0,
                    "eyeriss_on_chip_ratio": 3.0,
                }
            ],
        }
        text = format_energy_report(report)
        assert "implementation-1" in text and "60%" in text

    def test_format_gbuf_dram_ratio(self):
        ratio = {
            "implementation": "implementation-1",
            "inputs": {"dram_read_mb": 10, "gbuf_read_mb": 16, "gbuf_write_mb": 11,
                       "read_ratio": 1.6, "write_ratio": 1.1},
            "weights": {"dram_read_mb": 5, "gbuf_read_mb": 5, "gbuf_write_mb": 5,
                        "read_ratio": 1.0, "write_ratio": 1.0},
            "outputs": {"dram_write_mb": 3, "gbuf_read_mb": 0, "gbuf_write_mb": 0},
            "overall": {"gbuf_read_over_dram_read": 1.4, "gbuf_write_over_dram_read": 1.07},
        }
        text = format_gbuf_dram_ratio(ratio)
        assert "1.60x" in text and "implementation-1" in text


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        args = parser.parse_args(["table1"])
        assert args.experiment == "table1"

    def test_parser_rejects_unknown_experiment(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig99"])

    def test_table1_output(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "implementation-1" in out
        assert "66.5" in out

    def test_table2_output(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "427.9" in out
        assert "mac" in out


class TestCliEngineFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig13"])
        assert args.workers == 1
        assert args.no_cache is False
        assert args.cache_file is None

    def test_parser_accepts_engine_flags(self):
        args = build_parser().parse_args(
            ["fig13", "--workers", "4", "--no-cache", "--stats"]
        )
        assert args.workers == 4
        assert args.no_cache is True
        assert args.stats is True

    def test_build_engine_workers_and_cache(self):
        args = build_parser().parse_args(["fig13", "--workers", "3"])
        engine = build_engine(args)
        assert engine.workers == 3
        assert engine.cache is not None

    def test_build_engine_no_cache(self):
        args = build_parser().parse_args(["fig13", "--no-cache"])
        assert build_engine(args).cache is None

    def test_build_engine_rejects_conflicting_flags(self, tmp_path):
        args = build_parser().parse_args(
            ["fig13", "--no-cache", "--cache-file", str(tmp_path / "c.pkl")]
        )
        with pytest.raises(SystemExit):
            build_engine(args)

    def test_main_with_engine_flags(self, capsys):
        assert main(["table1", "--workers", "2", "--no-cache", "--stats"]) == 0
        captured = capsys.readouterr()
        assert "implementation-1" in captured.out
        assert "engine:" in captured.err

    def test_main_saves_cache_file(self, tmp_path, capsys):
        path = tmp_path / "cache.pkl"
        assert main(["table1", "--cache-file", str(path)]) == 0
        assert path.exists()

    def test_main_restores_default_engine(self):
        from repro.engine import get_default_engine

        before = get_default_engine()
        assert main(["table1", "--no-cache"]) == 0
        assert get_default_engine() is before


class TestCliBackendFlag:
    def test_parser_defaults_to_auto(self):
        assert build_parser().parse_args(["fig13"]).backend == "auto"

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig13", "--backend", "fortran"])

    def test_build_engine_resolves_backend(self):
        args = build_parser().parse_args(["fig13", "--backend", "python"])
        assert build_engine(args).backend == "python"
        auto = build_parser().parse_args(["fig13"])
        assert build_engine(auto).backend in ("numpy", "python")

    def test_fig13_output_identical_across_backends(self, capsys):
        assert main(["fig13", "--workload", "tiny", "--capacities", "16",
                     "--backend", "python"]) == 0
        scalar_out = capsys.readouterr().out
        pytest.importorskip("numpy")
        assert main(["fig13", "--workload", "tiny", "--capacities", "16",
                     "--backend", "numpy"]) == 0
        assert capsys.readouterr().out == scalar_out

    def test_stats_mention_grid_evaluations(self, capsys):
        pytest.importorskip("numpy")
        assert main(["fig13", "--workload", "tiny", "--capacities", "16", "32",
                     "--backend", "numpy", "--stats"]) == 0
        assert "grid evaluations" in capsys.readouterr().err


class TestCliWorkloadFlag:
    def test_workloads_subcommand_lists_registry(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("vgg16", "alexnet", "resnet18", "mobilenet_v1", "googlenet", "bert_base"):
            assert name in out

    def test_fig13_accepts_workload_and_batch_spec(self, capsys):
        assert main(["fig13", "--workload", "tiny:2", "--capacities", "8"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 13" in out and "Found minimum" in out

    def test_fig14_accepts_workload_and_capacity(self, capsys):
        assert main(["fig14", "--workload", "tiny", "--capacity", "4"]) == 0
        out = capsys.readouterr().out
        assert "tiny_3x3" in out and "4.0 KB" in out

    @pytest.mark.parametrize("experiment", ["fig16", "table4", "fig17", "fig19", "fig20"])
    def test_model_experiments_accept_workload(self, experiment, capsys):
        assert main([experiment, "--workload", "tiny"]) == 0
        assert capsys.readouterr().out.strip()


class TestCliErrorPaths:
    """Operator mistakes exit non-zero with one clear line, never a traceback."""

    def test_unknown_workload_name(self, capsys):
        assert main(["fig13", "--workload", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload 'nope'" in err
        assert "Traceback" not in err

    def test_malformed_workload_batch(self, capsys):
        assert main(["fig13", "--workload", "vgg16:three"]) == 2
        err = capsys.readouterr().err
        assert "batch must be an integer" in err

    def test_infeasible_capacity(self, capsys):
        assert main(["fig14", "--workload", "tiny", "--capacity", "0.001"]) == 2
        err = capsys.readouterr().err
        assert "no tiling" in err
        assert "Traceback" not in err

    def test_negative_workers(self, capsys):
        assert main(["table1", "--workers", "-1"]) == 2
        err = capsys.readouterr().err
        assert "workers must be >= 1" in err
        assert "Traceback" not in err


class TestCliGoldens:
    def test_goldens_write_then_check(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.goldens as goldens_module

        monkeypatch.setattr(goldens_module, "GOLDEN_WORKLOADS", ("tiny",))
        directory = str(tmp_path / "goldens")
        assert main(["goldens", "--write", "--goldens-dir", directory]) == 0
        assert "wrote" in capsys.readouterr().out
        assert main(["goldens", "--goldens-dir", directory]) == 0
        assert "goldens[tiny]: ok" in capsys.readouterr().out

    def test_goldens_check_fails_on_missing_dir(self, tmp_path, capsys, monkeypatch):
        import repro.analysis.goldens as goldens_module

        monkeypatch.setattr(goldens_module, "GOLDEN_WORKLOADS", ("tiny",))
        assert main(["goldens", "--goldens-dir", str(tmp_path / "empty")]) == 1
        captured = capsys.readouterr()
        assert "missing" in captured.out
        assert "goldens --write" in captured.err


class TestCliTiming:
    def test_timing_subcommand_renders_sweep(self, capsys):
        assert main(["timing", "--workload", "tiny", "--bandwidths", "3.2", "6.4"]) == 0
        out = capsys.readouterr().out
        assert "bandwidth-limited utilization sweep" in out
        assert "implementation-5" in out
        assert "steady_breakeven_gbps" in out

    def test_timing_rejects_nonpositive_bandwidths(self, capsys):
        assert main(["timing", "--workload", "tiny", "--bandwidths", "0"]) == 2
        assert "bandwidths must be positive" in capsys.readouterr().err
