"""Golden-value regression for the pinned DSE sweep.

``tests/goldens/dse_vgg16.json`` pins one complete budget-constrained sweep
(VGG-16 under the parameters of
:data:`repro.dse.explore.DSE_GOLDEN_PARAMS`): every config row, every
objective value and the full Pareto frontier, at 1e-9 relative tolerance.
Any model change that moves a DSE number becomes a visible diff; after an
*intentional* change regenerate with::

    PYTHONPATH=src python -c "from repro.dse.explore import write_dse_golden; write_dse_golden()"

and review the JSON diff like any other code change.  The sweep uses the
vectorized backend (the scalar reference would multiply the runtime ~100x;
cross-backend bit-identity is covered by ``tests/test_dse.py``).
"""

from __future__ import annotations

import json
import os

import pytest

pytest.importorskip("numpy")

from repro.analysis.goldens import diff_goldens  # noqa: E402
from repro.dse.explore import (  # noqa: E402
    DSE_GOLDEN_PARAMS,
    compute_dse_golden,
    dse_golden_path,
    write_dse_golden,
)
from repro.engine import SearchEngine  # noqa: E402


def test_pinned_file_exists():
    assert os.path.exists(dse_golden_path()), (
        "regenerate with: PYTHONPATH=src python -c "
        '"from repro.dse.explore import write_dse_golden; write_dse_golden()"'
    )


def test_dse_sweep_matches_pinned_golden():
    with open(dse_golden_path()) as handle:
        expected = json.load(handle)
    actual = compute_dse_golden(engine=SearchEngine(backend="numpy"))
    problems = diff_goldens(expected, actual)
    assert problems == [], "\n".join(problems[:20])


def test_golden_parameters_span_the_table1_neighbourhood():
    """The pinned space must keep covering the paper's design points."""
    space = DSE_GOLDEN_PARAMS["space"]
    assert {16, 32, 64} <= set(space["pe_dims"])
    assert {32, 64, 128} <= set(space["lreg_words"])
    assert {1024, 1536} <= set(space["igbuf_words"])
    assert {256, 320} <= set(space["wgbuf_words"])


def test_write_golden_round_trips(tmp_path):
    path = write_dse_golden(str(tmp_path / "dse_vgg16.json"))
    with open(path) as handle:
        written = json.load(handle)
    assert diff_goldens(written, compute_dse_golden()) == []
