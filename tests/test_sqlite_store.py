"""Concurrency, recovery and migration tests for the SQLite cache store.

The SQLite backend exists so many processes (orchestrator shards, the serve
daemon, ad-hoc CLIs) can share one persistent search cache safely.  These
tests pin exactly that contract:

* two processes hammering the *same* keys leave a consistent store holding
  results bit-identical to a direct engine run;
* a reader sees a coherent store while a writer is mid-stream;
* a corrupt database degrades to a cold start (mirroring the corrupt-pickle
  behaviour) instead of crashing or serving garbage;
* pickle -> SQLite -> pickle migration round-trips entries exactly;
* a shard cache written by an orchestrated ``run --cache-store sqlite`` is
  served as *hits* by a fresh engine pointed at the same file (the daemon's
  warm-start path).
"""

import os
import pickle
import subprocess
import sys
import threading

import pytest

from repro.core.layer import ConvLayer
from repro.dataflows.registry import get_dataflow
from repro.engine import (
    INFEASIBLE,
    SearchCache,
    SearchEngine,
    SqliteStore,
    migrate_cache,
    resolve_store,
    shard_cache_filename,
    task_key,
)
from repro.engine.cache import SCHEMA_VERSION

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


@pytest.fixture
def layer():
    return ConvLayer("l", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1)


@pytest.fixture
def layers():
    return [
        ConvLayer("a", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1),
        ConvLayer("b", 1, 16, 14, 14, 16, 3, 3, stride=1, padding=1),
        ConvLayer("c", 2, 8, 10, 10, 8, 3, 3, stride=2, padding=0),
    ]


class TestStoreResolution:
    def test_sqlite_extensions_select_sqlite(self):
        for extension in (".sqlite", ".sqlite3", ".db", ".SQLITE"):
            assert resolve_store("auto", f"cache{extension}") == "sqlite"

    def test_other_paths_select_pickle(self):
        assert resolve_store("auto", "cache.pkl") == "pickle"
        assert resolve_store("auto", None) == "pickle"

    def test_explicit_backend_wins_over_extension(self):
        assert resolve_store("pickle", "cache.sqlite") == "pickle"
        assert resolve_store("sqlite", "cache.pkl") == "sqlite"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="store"):
            resolve_store("mongodb", "cache.db")

    def test_sqlite_without_path_rejected(self):
        with pytest.raises(ValueError, match="path"):
            SearchCache(store_backend="sqlite")

    def test_shard_cache_filename_by_store(self):
        assert shard_cache_filename("numpy", 1, 4).endswith(".pkl")
        assert shard_cache_filename("numpy", 1, 4, store="sqlite").endswith(".sqlite")


class TestPersistenceParity:
    """SQLite must hold exactly what the pickle store would hold."""

    def _populate(self, cache_path: str, layers) -> SearchEngine:
        engine = SearchEngine(cache_path=cache_path)
        dataflow = get_dataflow("Ours")
        for layer in layers:
            for capacity in (4096, 16384):
                engine.try_search(dataflow, layer, capacity)
        engine.save()
        return engine

    def test_entries_identical_to_pickle_store(self, tmp_path, layers):
        sqlite_engine = self._populate(str(tmp_path / "cache.sqlite"), layers)
        pickle_engine = self._populate(str(tmp_path / "cache.pkl"), layers)
        sqlite_entries = dict(sqlite_engine.cache.items())
        pickle_entries = dict(pickle_engine.cache.items())
        assert sqlite_entries == pickle_entries
        # Byte-identical, not merely equal: the serialized form of every
        # entry matches what the pickle store persists.
        for key, entry in sqlite_entries.items():
            assert pickle.dumps(entry) == pickle.dumps(pickle_entries[key])

    def test_survives_restart_and_serves_hits(self, tmp_path, layers):
        path = str(tmp_path / "cache.sqlite")
        expected = {}
        engine = self._populate(path, layers)
        dataflow = get_dataflow("Ours")
        for layer in layers:
            for capacity in (4096, 16384):
                expected[(layer.name, capacity)] = engine.try_search(
                    dataflow, layer, capacity
                )
        engine.cache.close()

        warm = SearchEngine(cache_path=path)
        for layer in layers:
            for capacity in (4096, 16384):
                assert (
                    warm.try_search(dataflow, layer, capacity)
                    == expected[(layer.name, capacity)]
                )
        assert warm.stats.misses == 0
        assert warm.stats.hits == len(expected)
        warm.cache.close()

    def test_lru_eviction_matches_pickle_semantics(self, tmp_path, layer):
        dataflow = get_dataflow("Ours")
        caches = [
            SearchCache(path=str(tmp_path / "a.sqlite"), max_entries=2),
            SearchCache(max_entries=2),  # the in-memory/pickle reference
        ]
        keys = [task_key(dataflow, layer, capacity) for capacity in (1024, 2048, 4096)]
        for cache in caches:
            for key in keys[:2]:
                cache.store(key, INFEASIBLE)
            cache.get(keys[0])  # refresh key 0; key 1 becomes the LRU victim
            cache.store(keys[2], INFEASIBLE)
            assert cache.evictions == 1
            assert keys[0] in cache and keys[2] in cache
            assert keys[1] not in cache
        caches[0].close()


class TestConcurrency:
    def test_two_processes_writing_same_keys(self, tmp_path, layers):
        """Overlapping multi-process writes end consistent and complete."""
        path = str(tmp_path / "shared.sqlite")
        script = (
            "import sys\n"
            "from repro.core.layer import ConvLayer\n"
            "from repro.dataflows.registry import get_dataflow\n"
            "from repro.engine import SearchEngine\n"
            "engine = SearchEngine(cache_path=sys.argv[1])\n"
            "dataflow = get_dataflow('Ours')\n"
            "layers = [\n"
            "    ConvLayer('a', 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1),\n"
            "    ConvLayer('b', 1, 16, 14, 14, 16, 3, 3, stride=1, padding=1),\n"
            "    ConvLayer('c', 2, 8, 10, 10, 8, 3, 3, stride=2, padding=0),\n"
            "]\n"
            "for _ in range(3):\n"
            "    for layer in layers:\n"
            "        for capacity in (4096, 8192, 16384):\n"
            "            engine.try_search(dataflow, layer, capacity)\n"
            "engine.cache.close()\n"
        )
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        processes = [
            subprocess.Popen(
                [sys.executable, "-c", script, path],
                env=env,
                stderr=subprocess.PIPE,
                text=True,
            )
            for _ in range(2)
        ]
        for process in processes:
            _, stderr = process.communicate(timeout=120)
            assert process.returncode == 0, stderr

        # The survivor must hold every key, each bit-identical to a direct
        # engine answer (last-write-wins is safe: entries are pure functions
        # of their keys).
        reference = SearchEngine()
        dataflow = get_dataflow("Ours")
        cache = SearchCache(path=path)
        assert len(cache) == len(layers) * 3
        for layer in layers:
            for capacity in (4096, 8192, 16384):
                key = task_key(dataflow, layer, capacity)
                cached = cache.get(key)
                expected = reference.try_search(dataflow, layer, capacity)
                if expected is None:
                    assert cached == INFEASIBLE
                else:
                    assert cached == expected
        cache.close()

    def test_reader_sees_coherent_store_during_writes(self, tmp_path, layer):
        """A concurrent reader never errors and never sees garbage."""
        path = str(tmp_path / "shared.sqlite")
        dataflow = get_dataflow("Ours")
        writer_cache = SearchCache(path=path)
        reader_cache = SearchCache(path=path)  # its own connection
        keys = [task_key(dataflow, layer, capacity) for capacity in range(1024, 1324)]
        errors = []
        seen = set()
        stop = threading.Event()

        def read_loop():
            try:
                while not stop.is_set():
                    for key in keys:
                        entry = reader_cache.get(key)
                        # Either not written yet, or the exact stored value;
                        # anything else means a torn read.
                        if entry is not None and entry != INFEASIBLE:
                            errors.append(f"unexpected entry {entry!r}")
                        if entry is not None:
                            seen.add(key)
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(f"{type(error).__name__}: {error}")

        reader = threading.Thread(target=read_loop)
        reader.start()
        try:
            for key in keys:
                writer_cache.store(key, INFEASIBLE)
        finally:
            stop.set()
            reader.join(timeout=60)
        assert not errors
        assert len(reader_cache) == len(keys)
        writer_cache.close()
        reader_cache.close()


class TestRecovery:
    def test_corrupt_database_starts_cold(self, tmp_path, layer):
        """Garbage bytes degrade to an empty cache, like a corrupt pickle."""
        path = str(tmp_path / "cache.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"this is not a sqlite database at all")
        with pytest.warns(UserWarning, match="starting cold"):
            cache = SearchCache(path=path)
        # ...and the recovered store is fully functional.
        dataflow = get_dataflow("Ours")
        key = task_key(dataflow, layer, 4096)
        cache.store(key, INFEASIBLE)
        assert key in cache
        cache.close()
        reopened = SearchCache(path=path)
        assert key in reopened
        reopened.close()

    def test_schema_mismatch_starts_cold(self, tmp_path, layer):
        path = str(tmp_path / "cache.sqlite")
        store = SqliteStore(path)
        dataflow = get_dataflow("Ours")
        store.store(task_key(dataflow, layer, 4096), INFEASIBLE)
        with store._transaction():
            store._connection.execute(
                "UPDATE meta SET value = ? WHERE name = 'schema'",
                (str(SCHEMA_VERSION + 1),),
            )
        store.close()
        with pytest.warns(UserWarning, match="starting cold"):
            cache = SearchCache(path=path)
        assert len(cache) == 0
        cache.close()

    def test_unreadable_row_is_dropped_not_fatal(self, tmp_path, layer):
        path = str(tmp_path / "cache.sqlite")
        store = SqliteStore(path)
        dataflow = get_dataflow("Ours")
        key = task_key(dataflow, layer, 4096)
        store.store(key, INFEASIBLE)
        with store._transaction():
            store._connection.execute(
                "UPDATE entries SET entry = ?", (b"not a pickle",)
            )
        with pytest.warns(UserWarning, match="unreadable"):
            assert store.get(key) is None
        assert key not in store  # the poisoned row was deleted
        store.close()


class TestMigration:
    def _fill(self, cache: SearchCache, layers) -> dict:
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")
        entries = {}
        for layer in layers:
            for capacity in (4096, 16384):
                key = task_key(dataflow, layer, capacity)
                entries[key] = engine.try_search(dataflow, layer, capacity)
                cache.store(key, entries[key])
        return entries

    def test_pickle_to_sqlite_to_pickle_round_trip(self, tmp_path, layers):
        pickle_path = str(tmp_path / "cache.pkl")
        sqlite_path = str(tmp_path / "cache.sqlite")
        back_path = str(tmp_path / "back.pkl")

        source = SearchCache(path=pickle_path)
        entries = self._fill(source, layers)
        source.save()

        assert migrate_cache(pickle_path, sqlite_path) == len(entries)
        migrated = SearchCache(path=sqlite_path)
        assert dict(migrated.items()) == entries
        migrated.close()

        assert migrate_cache(sqlite_path, back_path) == len(entries)
        back = SearchCache(path=back_path)
        back.load()
        assert dict(back.items()) == entries

    def test_load_pickle_into_live_sqlite_cache(self, tmp_path, layers):
        """SearchCache.load() on a SQLite cache is the migration path."""
        pickle_path = str(tmp_path / "cache.pkl")
        source = SearchCache(path=pickle_path)
        entries = self._fill(source, layers)
        source.save()

        cache = SearchCache(path=str(tmp_path / "cache.sqlite"))
        assert cache.load(pickle_path) == len(entries)
        assert dict(cache.items()) == entries
        cache.close()

    def test_sqlite_cache_refuses_to_load_itself(self, tmp_path):
        path = str(tmp_path / "cache.sqlite")
        cache = SearchCache(path=path)
        with pytest.raises(ValueError, match="live"):
            cache.load(path)
        cache.close()


class TestShardCacheCrossCheck:
    """A sharded run's SQLite cache must warm the daemon's engine directly."""

    def test_run_shard_cache_is_served_as_hits(self, tmp_path):
        from repro.orchestration.cli import main as orchestration_main

        out_dir = str(tmp_path / "run")
        status = orchestration_main(
            [
                "run",
                "--out-dir",
                out_dir,
                "--workloads",
                "tiny",
                "--experiments",
                "fig13",
                "--capacities",
                "16",
                "64",
                "--cache-store",
                "sqlite",
            ]
        )
        assert status == 0
        # Shard caches are named by the *spec* backend ("auto"), not the
        # resolved one -- the daemon must look the file up the same way.
        cache_file = os.path.join(
            out_dir, "cache", shard_cache_filename("auto", 1, 1, store="sqlite")
        )
        assert os.path.exists(cache_file)

        warm = SearchEngine(cache_path=cache_file)
        from repro.core.layer import kib_to_words
        from repro.workloads.registry import get_workload_spec

        reference = SearchEngine()
        for layer in get_workload_spec("tiny"):
            for kib in (16, 64):
                dataflow = get_dataflow("Ours")
                assert warm.try_search(
                    dataflow, layer, kib_to_words(kib)
                ) == reference.try_search(dataflow, layer, kib_to_words(kib))
        assert warm.stats.misses == 0, (
            "daemon-side engine missed on keys the sharded run cached -- "
            "key or schema drift between Runner and SearchEngine"
        )
        assert warm.stats.hits > 0
        warm.cache.close()
