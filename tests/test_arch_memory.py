"""Tests for repro.arch.memory."""

import pytest

from repro.arch.memory import CapacityError, CountingMemory, MemoryHierarchy
from repro.arch.config import paper_implementation


class TestCountingMemory:
    def test_read_write_counters(self):
        memory = CountingMemory("m")
        memory.read(5)
        memory.write(3)
        memory.read()
        assert memory.reads == 6
        assert memory.writes == 3
        assert memory.accesses == 9
        assert memory.access_bytes == 18

    def test_negative_counts_rejected(self):
        memory = CountingMemory("m")
        with pytest.raises(ValueError):
            memory.read(-1)
        with pytest.raises(ValueError):
            memory.write(-1)

    def test_allocate_and_release(self):
        memory = CountingMemory("m", capacity_words=10)
        memory.allocate(6)
        memory.allocate(4)
        assert memory.occupancy == 10
        assert memory.peak_occupancy == 10
        memory.release(10)
        assert memory.occupancy == 0

    def test_capacity_enforced(self):
        memory = CountingMemory("m", capacity_words=4)
        with pytest.raises(CapacityError):
            memory.allocate(5)

    def test_release_validation(self):
        memory = CountingMemory("m", capacity_words=4)
        memory.allocate(2)
        with pytest.raises(ValueError):
            memory.release(3)

    def test_utilization_from_samples(self):
        memory = CountingMemory("m", capacity_words=10)
        memory.allocate(5)
        memory.sample_occupancy()
        memory.allocate(5)
        memory.sample_occupancy()
        assert memory.utilization() == pytest.approx(0.75)

    def test_utilization_unbounded_memory_is_zero(self):
        memory = CountingMemory("dram")
        memory.allocate(100)
        assert memory.utilization() == 0.0

    def test_reset(self):
        memory = CountingMemory("m", capacity_words=10)
        memory.read(3)
        memory.allocate(4)
        memory.reset()
        assert memory.reads == 0
        assert memory.occupancy == 0
        assert memory.peak_occupancy == 0


class TestMemoryHierarchy:
    def test_for_config(self):
        config = paper_implementation(1)
        hierarchy = MemoryHierarchy.for_config(config)
        assert hierarchy.dram.capacity_words is None
        assert hierarchy.igbuf.capacity_words == config.igbuf_words
        assert hierarchy.wgbuf.capacity_words == config.wgbuf_words
        assert hierarchy.lreg.capacity_words == config.psum_words
        assert len(hierarchy.all_levels()) == 5

    def test_hierarchy_reset(self):
        hierarchy = MemoryHierarchy.for_config(paper_implementation(1))
        hierarchy.dram.read(10)
        hierarchy.reset()
        assert hierarchy.dram.reads == 0
