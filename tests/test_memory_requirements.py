"""Tests for the on-chip memory requirement analysis."""

import pytest

from repro.analysis.memory_requirements import (
    bound_vs_ideal,
    capacity_for_overhead,
    ideal_memory_requirement,
    network_memory_requirements,
    requirement_report,
)
from repro.core.layer import ConvLayer
from repro.core.lower_bound import ideal_traffic, practical_lower_bound
from repro.workloads.vgg import vgg16_conv_layers


@pytest.fixture(scope="module")
def layer():
    return vgg16_conv_layers()[5]  # conv3_2


class TestIdealMemoryRequirement:
    def test_two_strategies(self, layer):
        requirement = ideal_memory_requirement(layer)
        buffer_words = layer.out_width * layer.out_channels
        assert requirement.hold_inputs_words == layer.num_inputs + buffer_words
        assert requirement.hold_weights_words == layer.num_weights + buffer_words
        assert requirement.minimum_words == min(
            requirement.hold_inputs_words, requirement.hold_weights_words
        )

    def test_requirement_far_exceeds_accelerator_capacity(self, layer):
        # The paper's point: once-through traffic needs megabytes, not 66.5 KB.
        requirement = ideal_memory_requirement(layer)
        assert requirement.minimum_kib > 500

    def test_custom_output_buffer(self, layer):
        requirement = ideal_memory_requirement(layer, output_buffer_words=10)
        assert requirement.hold_weights_words == layer.num_weights + 10

    def test_network_requirements(self):
        layers = vgg16_conv_layers()[:3]
        requirements = network_memory_requirements(layers)
        assert len(requirements) == 3
        assert requirements[0].layer_name == layers[0].name


class TestBoundVsIdeal:
    def test_overhead_shrinks_with_capacity(self, layer):
        rows = bound_vs_ideal(layer, [8192, 32768, 131072])
        overheads = [row["overhead"] for row in rows]
        assert overheads == sorted(overheads, reverse=True)
        assert all(overhead >= 1.0 - 1e-9 for overhead in overheads)

    def test_rows_report_bound_and_ideal(self, layer):
        rows = bound_vs_ideal(layer, [32768])
        row = rows[0]
        assert row["bound_words"] == pytest.approx(practical_lower_bound(layer, 32768))
        assert row["ideal_words"] == pytest.approx(ideal_traffic(layer))


class TestCapacityForOverhead:
    def test_capacity_achieves_target(self, layer):
        capacity = capacity_for_overhead(layer, target_overhead=1.5)
        assert practical_lower_bound(layer, capacity) <= 1.5 * ideal_traffic(layer) * 1.01

    def test_tighter_target_needs_more_memory(self, layer):
        loose = capacity_for_overhead(layer, target_overhead=2.0)
        tight = capacity_for_overhead(layer, target_overhead=1.2)
        assert tight > loose

    def test_far_less_than_once_through_requirement(self, layer):
        # The whole point of the bound: within a small factor of ideal traffic
        # with a fraction of the once-through memory requirement.
        requirement = ideal_memory_requirement(layer).minimum_words
        assert capacity_for_overhead(layer, target_overhead=3.0) < requirement / 4
        assert capacity_for_overhead(layer, target_overhead=2.0) < requirement

    def test_invalid_target(self, layer):
        with pytest.raises(ValueError):
            capacity_for_overhead(layer, target_overhead=1.0)


class TestRequirementReport:
    def test_report_rows(self):
        layers = vgg16_conv_layers()[4:8]  # conv3_1 .. conv4_1
        rows = requirement_report(layers, capacities_kib=(66.5, 173.5))
        assert len(rows) == 4
        for row in rows:
            # Deep VGG layers need far more than 66.5 KB for once-through traffic.
            assert row["once_through_kib"] > 66.5
            assert row["overhead_at_66.5kib"] >= row["overhead_at_173.5kib"] - 1e-9
