"""Tests for the design-space exploration subsystem.

The acceptance contract under test:

* config enumeration honours the budget and the structural rules, in the
  same canonical order on both backends;
* every Table I memory split is an enumerable candidate, and a
  budget-constrained sweep's frontier contains or dominates each paper
  implementation (the "re-derive Table I" cross-check);
* the objective model prices counts through the exact same energy
  arithmetic as the tile-exact accelerator model;
* sweeps slice deterministically and the slice frontiers merge to the
  unsharded frontier bit-identically, across backends;
* the ``dse`` experiment, the ``dse`` CLI subcommand and the ``frontier``
  artifact merge are wired end to end.
"""

from __future__ import annotations

import json
import os
import shutil

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS, paper_implementation
from repro.cli import main
from repro.dse.artifacts import merge_dse_artifacts
from repro.dse.explore import design_space_exploration, slice_configs, validate_mix
from repro.dse.objectives import config_objectives, estimate_counts
from repro.dse.pareto import (
    contains_or_dominates,
    dominates,
    merge_frontiers,
    pareto_frontier,
    validate_objectives,
)
from repro.dse.space import CandidateSpace, enumerate_configs, enumerate_splits
from repro.energy.model import EnergyModel
from repro.engine import SearchEngine
from repro.orchestration.manifest import ManifestSpec, RunManifest
from repro.orchestration.runner import Runner
from repro.workloads.registry import get_workload_spec

#: Budget/space small enough for scalar-backend runs on the tiny workload.
TINY_BUDGET_KIB = 24.0

#: A space trimmed to the Table I neighbourhood (fast vgg16 cross-checks).
TABLE1_SPACE = CandidateSpace(
    pe_dims=(16, 32, 64),
    lreg_words=(32, 64, 128),
    igbuf_words=(1024, 1536),
    wgbuf_words=(256, 320),
)


def canonical(value) -> str:
    return json.dumps(value, sort_keys=True)


# ----------------------------------------------------------------- enumeration


class TestEnumeration:
    def test_all_candidates_fit_the_budget(self):
        budget = 20_000
        for config in enumerate_configs(budget, backend="python"):
            assert config.effective_on_chip_words <= budget
            assert config.pe_rows % config.group_rows == 0
            assert config.pe_cols % config.group_cols == 0
            assert config.pe_cols <= config.pe_rows <= 4 * config.pe_cols

    def test_enumeration_order_is_canonical_and_deterministic(self):
        first = enumerate_splits(30_000, backend="python")
        second = enumerate_splits(30_000, backend="python")
        assert first == second
        assert len(set(first)) == len(first)

    def test_vectorized_enumeration_is_bit_identical(self):
        pytest.importorskip("numpy")
        for budget in (1_000, 17_000, 65_000, 10**9):
            scalar = enumerate_splits(budget, backend="python")
            vectorized = enumerate_splits(budget, backend="numpy")
            assert scalar == vectorized

    def test_budget_below_smallest_candidate_yields_nothing(self):
        assert enumerate_splits(1, backend="python") == []

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            enumerate_splits(0)

    def test_paper_splits_are_enumerable(self):
        """Every Table I memory split is a point of the default space."""
        budget = max(config.effective_on_chip_words for config in PAPER_IMPLEMENTATIONS)
        splits = set(enumerate_splits(budget, backend="python"))
        for config in PAPER_IMPLEMENTATIONS:
            assert config.memory_split in splits, config.name

    def test_space_validation(self):
        with pytest.raises(ValueError, match="empty"):
            CandidateSpace(pe_dims=())
        with pytest.raises(ValueError, match="sorted"):
            CandidateSpace(lreg_words=(64, 32))
        with pytest.raises(ValueError, match="< 1"):
            CandidateSpace(igbuf_words=(0, 512))

    def test_space_round_trips_through_dict(self):
        space = TABLE1_SPACE
        assert CandidateSpace.from_dict(space.as_dict()) == space


# ---------------------------------------------------------------------- pareto


def row(name, **objectives):
    return {"config": name, "objectives": objectives}


class TestPareto:
    def test_dominated_points_are_removed(self):
        rows = [
            row("a", dram=1.0, energy=1.0, time=1.0),
            row("b", dram=2.0, energy=2.0, time=2.0),  # dominated by a
            row("c", dram=0.5, energy=3.0, time=1.0),  # trades dram for energy
        ]
        frontier = pareto_frontier(rows)
        assert [entry["config"] for entry in frontier] == ["c", "a"]

    def test_ties_are_kept_and_ordered_by_name(self):
        rows = [
            row("beta", dram=1.0, energy=1.0, time=1.0),
            row("alpha", dram=1.0, energy=1.0, time=1.0),
        ]
        frontier = pareto_frontier(rows)
        assert [entry["config"] for entry in frontier] == ["alpha", "beta"]

    def test_subset_objectives_change_the_frontier(self):
        rows = [
            row("a", dram=1.0, energy=2.0, time=1.0),
            row("b", dram=1.0, energy=1.0, time=2.0),
        ]
        assert len(pareto_frontier(rows, ("dram", "energy", "time"))) == 2
        assert [entry["config"] for entry in pareto_frontier(rows, ("dram", "energy"))] == ["b"]

    def test_dominates_is_strict(self):
        a = row("a", dram=1.0, energy=1.0, time=1.0)
        b = row("b", dram=1.0, energy=1.0, time=1.0)
        assert not dominates(a, b, ("dram", "energy", "time"))
        c = row("c", dram=1.0, energy=0.5, time=1.0)
        assert dominates(c, a, ("dram", "energy", "time"))
        assert not dominates(a, c, ("dram", "energy", "time"))

    def test_validate_objectives(self):
        assert validate_objectives(("time", "dram")) == ("dram", "time")
        with pytest.raises(ValueError, match="at least one"):
            validate_objectives(())
        with pytest.raises(ValueError, match="unknown objectives"):
            validate_objectives(("area",))
        with pytest.raises(ValueError, match="duplicate"):
            validate_objectives(("dram", "dram"))

    def test_merge_equals_frontier_of_union(self):
        rows = [
            row(f"c{i}", dram=float(i % 5), energy=float((7 * i) % 11), time=float(i))
            for i in range(40)
        ]
        whole = pareto_frontier(rows)
        merged = merge_frontiers(
            [pareto_frontier(rows[:13]), pareto_frontier(rows[13:29]), pareto_frontier(rows[29:])]
        )
        assert canonical(merged) == canonical(whole)

    def test_contains_or_dominates(self):
        frontier = [row("best", dram=1.0, energy=1.0, time=1.0)]
        assert contains_or_dominates(frontier, row("best", dram=1.0, energy=1.0, time=1.0))
        assert contains_or_dominates(frontier, row("worse", dram=2.0, energy=1.0, time=1.0))
        assert not contains_or_dominates(frontier, row("off", dram=0.5, energy=1.0, time=1.0))


# ------------------------------------------------------------------ objectives


class TestObjectives:
    def test_counts_match_tile_exact_energy_arithmetic(self):
        """``energy_from_counts`` is the exact ``layer_energy`` arithmetic."""
        config = paper_implementation(1)
        layer = get_workload_spec("tiny")[0]
        result = AcceleratorModel(config).run_layer(layer)
        model = EnergyModel()
        direct = model.layer_energy(result, config)
        via_counts = model.energy_from_counts(
            config,
            dram_words=result.dram.total,
            igbuf_reads=result.igbuf_reads,
            igbuf_writes=result.igbuf_writes,
            wgbuf_reads=result.wgbuf_reads,
            wgbuf_writes=result.wgbuf_writes,
            macs=result.macs,
            lreg_reads=result.lreg_reads,
            lreg_writes=result.lreg_writes,
            greg_writes=result.greg_writes,
            total_cycles=result.total_cycles,
        )
        assert direct == via_counts

    def test_objectives_are_positive_and_traffic_monotone(self):
        config = paper_implementation(1)
        layers = get_workload_spec("tiny")
        engine = SearchEngine()
        results = [
            engine.found_minimum(layer, config.effective_on_chip_words)
            for layer in layers
        ]
        traffic = [result.traffic for result in results]
        objectives = config_objectives(config, layers, traffic)
        assert objectives["dram"] > 0
        assert objectives["energy"] > 0
        assert objectives["time"] > 0
        assert objectives["power_watts"] > 0
        assert 0.0 <= objectives["waiting_fraction"] <= 1.0
        # Doubling every traffic component cannot improve any objective.
        doubled = config_objectives(
            config,
            layers,
            [
                type(t)(
                    input_reads=2 * t.input_reads,
                    weight_reads=2 * t.weight_reads,
                    output_reads=2 * t.output_reads,
                    output_writes=2 * t.output_writes,
                )
                for t in traffic
            ],
        )
        for key in ("dram", "energy", "time"):
            assert doubled[key] >= objectives[key]

    def test_estimate_counts_first_order_identities(self):
        layers = get_workload_spec("tiny")
        engine = SearchEngine()
        traffic = [
            engine.found_minimum(layer, 8192).traffic for layer in layers
        ]
        counts = estimate_counts(layers, traffic)
        assert counts["igbuf_reads"] == counts["igbuf_writes"]
        assert counts["wgbuf_reads"] == counts["wgbuf_writes"]
        assert counts["greg_writes"] == counts["igbuf_writes"] + counts["wgbuf_writes"]
        assert counts["macs"] == sum(layer.macs for layer in layers)
        assert counts["dram_words"] == sum(t.total for t in traffic)


class TestStallTimeObjective:
    """The opt-in ``stall_time`` objective from the timing simulator."""

    def test_validate_accepts_and_orders_stall_time(self):
        assert validate_objectives(("stall_time", "dram")) == ("dram", "stall_time")
        with pytest.raises(ValueError, match="unknown objectives"):
            validate_objectives(("stall_time", "latency"))

    def test_stall_time_is_opt_in(self):
        config = paper_implementation(1)
        layers = get_workload_spec("tiny")
        engine = SearchEngine()
        traffic = [
            engine.found_minimum(layer, config.effective_on_chip_words).traffic
            for layer in layers
        ]
        default = config_objectives(config, layers, traffic)
        assert "stall_time" not in default
        scored = config_objectives(config, layers, traffic, include_stall_time=True)
        assert scored["stall_time"] > 0
        # The simulated latency can never beat the MAC-bound compute floor.
        from repro.core.layer import ceil_div

        compute_ms = (
            sum(ceil_div(layer.macs, config.num_pes) for layer in layers)
            / config.clock_hz
            * 1e3
        )
        assert scored["stall_time"] >= compute_ms

    def test_sweep_with_stall_time_objective(self):
        payload = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB,
            layers="tiny",
            engine=SearchEngine(),
            objectives=("time", "stall_time"),
            max_configs=6,
        )
        assert payload["objectives"] == ["time", "stall_time"]
        assert payload["configs"], "no feasible configs scored"
        from repro.core.layer import ceil_div

        layers = get_workload_spec("tiny")
        for row in payload["configs"]:
            # The simulated latency respects each config's MAC-bound floor.
            floor_cycles = sum(
                ceil_div(layer.macs, row["num_pes"]) for layer in layers
            )
            assert row["objectives"]["stall_time"] * 1e-3 >= floor_cycles / 500e6
        assert payload["frontier"]


# --------------------------------------------------------------------- explore


@pytest.fixture(scope="module")
def tiny_sweep():
    return design_space_exploration(
        budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=SearchEngine()
    )


class TestExplore:
    def test_payload_structure(self, tiny_sweep):
        payload = tiny_sweep
        assert payload["format"] == "repro-dse-v1"
        assert payload["config_count"] + payload["infeasible_count"] == len(
            slice_configs(
                enumerate_configs(payload["budget_words"]), (1, 1)
            )
        )
        assert payload["config_count"] == len(payload["configs"])
        names = [row["config"] for row in payload["configs"]]
        assert len(set(names)) == len(names)
        # The payload is strict JSON (the orchestrator archives it verbatim).
        json.dumps(payload, allow_nan=False)

    def test_frontier_rows_come_from_the_config_list(self, tiny_sweep):
        configs = {canonical(row) for row in tiny_sweep["configs"]}
        assert tiny_sweep["frontier"], "frontier cannot be empty for a feasible sweep"
        for row in tiny_sweep["frontier"]:
            assert canonical(row) in configs

    def test_every_config_is_contained_or_dominated(self, tiny_sweep):
        objectives = tuple(tiny_sweep["objectives"])
        for row in tiny_sweep["configs"]:
            assert contains_or_dominates(tiny_sweep["frontier"], row, objectives)

    def test_slices_partition_and_merge_bit_identically(self, tiny_sweep):
        engine = SearchEngine()
        slices = [
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB,
                layers="tiny",
                engine=engine,
                slice_spec=(index, 3),
            )
            for index in (1, 2, 3)
        ]
        assert sum(part["config_count"] for part in slices) == tiny_sweep["config_count"]
        merged = merge_frontiers([part["frontier"] for part in slices])
        assert canonical(merged) == canonical(tiny_sweep["frontier"])

    def test_backends_are_bit_identical(self, tiny_sweep):
        pytest.importorskip("numpy")
        vectorized = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB,
            layers="tiny",
            engine=SearchEngine(backend="numpy"),
        )
        assert canonical(vectorized) == canonical(tiny_sweep)

    def test_max_configs_truncates_before_slicing(self):
        engine = SearchEngine()
        capped = design_space_exploration(
            budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=engine, max_configs=10
        )
        assert capped["config_count_total"] == 10
        halves = [
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB,
                layers="tiny",
                engine=engine,
                max_configs=10,
                slice_spec=(index, 2),
            )
            for index in (1, 2)
        ]
        assert sum(part["config_count"] for part in halves) == capped["config_count"]
        merged = merge_frontiers([part["frontier"] for part in halves])
        assert canonical(merged) == canonical(capped["frontier"])

    def test_invalid_parameters_raise(self):
        engine = SearchEngine()
        with pytest.raises(ValueError, match="budget"):
            design_space_exploration(budget_kib=-1.0, layers="tiny", engine=engine)
        with pytest.raises(ValueError, match="max_configs"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=engine, max_configs=0
            )
        with pytest.raises(ValueError, match="unknown objectives"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB,
                layers="tiny",
                engine=engine,
                objectives=("area",),
            )
        with pytest.raises(ValueError, match="shard index"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB,
                layers="tiny",
                engine=engine,
                slice_spec=(3, 2),
            )


# -------------------------------------------------- Table I cross-check (vgg16)


class TestTableOneCrossCheck:
    @pytest.fixture(scope="class")
    def engine(self):
        pytest.importorskip("numpy")
        return SearchEngine(backend="numpy")

    def test_frontier_contains_or_dominates_each_implementation(self, engine):
        """Budget-constrained sweeps re-derive the Table I design points.

        For every paper implementation, a sweep whose budget admits exactly
        that implementation enumerates its memory split and ends with a
        frontier that contains it or dominates it.
        """
        for config in PAPER_IMPLEMENTATIONS:
            budget_kib = config.effective_on_chip_kib
            payload = design_space_exploration(
                budget_kib=budget_kib,
                layers="vgg16",
                engine=engine,
                space=TABLE1_SPACE,
            )
            rows = {
                (
                    row["pe_rows"],
                    row["pe_cols"],
                    row["lreg_words_per_pe"],
                    row["igbuf_words"],
                    row["wgbuf_words"],
                ): row
                for row in payload["configs"]
            }
            assert config.memory_split in rows, config.name
            assert contains_or_dominates(
                payload["frontier"],
                rows[config.memory_split],
                tuple(payload["objectives"]),
            ), config.name


# ------------------------------------------------------------------ experiment


class TestDseExperimentAndCli:
    def test_dse_experiment_is_registered(self):
        from repro.orchestration.experiments import experiment_names, get_experiment

        assert "dse" in experiment_names()
        experiment = get_experiment("dse")
        assert experiment.uses_search
        defaults = experiment.default_params
        assert defaults["budget_kib"] > 0
        assert defaults["slice"] == [1, 1]

    def test_dse_cli_subcommand(self, capsys):
        assert main(["dse", "--workload", "tiny", "--budget", str(TINY_BUDGET_KIB)]) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "dse-" in out

    def test_dse_cli_objectives_subset(self, capsys):
        assert main([
            "dse", "--workload", "tiny", "--budget", str(TINY_BUDGET_KIB),
            "--objectives", "dram", "energy",
        ]) == 0
        assert "Pareto frontier over (dram, energy):" in capsys.readouterr().out

    def test_dse_cli_bad_budget_exits_2(self, capsys):
        assert main(["dse", "--workload", "tiny", "--budget", "-5"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_orchestrated_slices_merge_to_the_unsharded_frontier(self, tmp_path, tiny_sweep):
        spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={
                "dse": [
                    {"budget_kib": TINY_BUDGET_KIB, "slice": [1, 2]},
                    {"budget_kib": TINY_BUDGET_KIB, "slice": [2, 2]},
                ]
            },
        )
        manifest = RunManifest.from_spec(spec)
        assert len(manifest) == 2
        out_dir = str(tmp_path / "run")
        assert Runner(manifest, out_dir).run().complete
        report = merge_dse_artifacts([out_dir])
        (group,) = report["groups"]
        assert group["complete"]
        assert group["slices"] == [[1, 2], [2, 2]]
        assert group["config_count"] == tiny_sweep["config_count"]
        assert canonical(group["frontier"]) == canonical(tiny_sweep["frontier"])

    def test_frontier_cli_detects_incomplete_sweeps(self, tmp_path, capsys):
        spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={"dse": [{"budget_kib": TINY_BUDGET_KIB, "slice": [1, 2]}]},
        )
        out_dir = str(tmp_path / "run")
        assert Runner(RunManifest.from_spec(spec), out_dir).run().complete
        assert main(["frontier", out_dir]) == 1
        assert "INCOMPLETE" in capsys.readouterr().out

    def test_frontier_cli_json_document(self, tmp_path, capsys):
        spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={"dse": {"budget_kib": TINY_BUDGET_KIB}},
        )
        out_dir = str(tmp_path / "run")
        assert Runner(RunManifest.from_spec(spec), out_dir).run().complete
        assert main(["frontier", out_dir, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["format"] == "repro-dse-frontier-v1"
        (group,) = document["groups"]
        assert group["complete"] and group["frontier"]

    def test_frontier_cli_without_dse_units_exits_2(self, tmp_path, capsys):
        spec = ManifestSpec(workloads=("tiny",), experiments=("fig16",))
        out_dir = str(tmp_path / "run")
        Runner(RunManifest.from_spec(spec), out_dir).run()
        assert main(["frontier", out_dir]) == 2
        assert "no 'dse' unit artifacts" in capsys.readouterr().err

    def test_overlapping_slicings_merge_without_double_counting(self, tmp_path, tiny_sweep):
        """An unsliced tree merged with a 2-slice tree of the same sweep:
        rows deduplicate and the config counts come from one slicing."""
        whole_spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={"dse": {"budget_kib": TINY_BUDGET_KIB}},
        )
        sliced_spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={
                "dse": [
                    {"budget_kib": TINY_BUDGET_KIB, "slice": [1, 2]},
                    {"budget_kib": TINY_BUDGET_KIB, "slice": [2, 2]},
                ]
            },
        )
        whole_dir = str(tmp_path / "whole")
        sliced_dir = str(tmp_path / "sliced")
        assert Runner(RunManifest.from_spec(whole_spec), whole_dir).run().complete
        assert Runner(RunManifest.from_spec(sliced_spec), sliced_dir).run().complete
        report = merge_dse_artifacts([whole_dir, sliced_dir])
        (group,) = report["groups"]
        assert group["complete"]
        assert group["slices"] == [[1, 1], [1, 2], [2, 2]]
        assert group["config_count"] == tiny_sweep["config_count"]
        assert group["config_count"] <= group["config_count_total"]
        assert canonical(group["frontier"]) == canonical(tiny_sweep["frontier"])

    def test_dse_flags_without_dse_experiment_exit_2(self, tmp_path, capsys):
        out_dir = str(tmp_path / "run")
        assert main([
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "fig16", "--dse-slices", "2",
        ]) == 2
        assert "add 'dse' to --experiments" in capsys.readouterr().err
        assert main([
            "reproduce-all", "--out-dir", out_dir, "--workloads", "tiny",
            "--budget", "24",
        ]) == 2
        assert "add 'dse' to --experiments" in capsys.readouterr().err


# ------------------------------------------- merge conflicts and param checks


def _run_tiny_dse(out_dir: str, params=None) -> None:
    spec = ManifestSpec(
        workloads=("tiny",),
        experiments=("dse",),
        params={"dse": params if params is not None else {"budget_kib": TINY_BUDGET_KIB}},
    )
    assert Runner(RunManifest.from_spec(spec), out_dir).run().complete


def _dse_unit_paths(out_dir: str) -> list:
    units_dir = os.path.join(out_dir, "units")
    return sorted(
        path
        for path in (os.path.join(units_dir, name) for name in os.listdir(units_dir))
        if path.endswith(".json")
        and json.load(open(path)).get("experiment") == "dse"
    )


class TestMergeConflicts:
    def test_identical_duplicate_units_dedupe(self, tmp_path, tiny_sweep):
        """The same tree twice (byte-identical unit ids) merges like once."""
        first = str(tmp_path / "first")
        _run_tiny_dse(first)
        second = str(tmp_path / "second")
        shutil.copytree(first, second)
        report = merge_dse_artifacts([first, second])
        (group,) = report["groups"]
        assert group["complete"]
        assert group["config_count"] == tiny_sweep["config_count"]
        assert canonical(group["frontier"]) == canonical(tiny_sweep["frontier"])

    def test_tampered_duplicate_unit_raises(self, tmp_path):
        """A unit id whose artifacts disagree across trees is a conflict,
        not a silent first-tree-wins (the regression this guards)."""
        first = str(tmp_path / "first")
        _run_tiny_dse(first)
        second = str(tmp_path / "second")
        shutil.copytree(first, second)
        path = _dse_unit_paths(second)[0]
        document = json.load(open(path))
        document["payload"]["gmacs"] *= 2
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="differs between run trees"):
            merge_dse_artifacts([first, second])

    def test_group_field_disagreement_raises(self, tmp_path):
        """Distinct units of one sweep whose derived payload fields disagree
        (here a tampered config_count_total) must refuse to merge instead of
        adopting whichever payload sorted first."""
        whole = str(tmp_path / "whole")
        _run_tiny_dse(whole)
        sliced = str(tmp_path / "sliced")
        _run_tiny_dse(
            sliced,
            params=[
                {"budget_kib": TINY_BUDGET_KIB, "slice": [1, 2]},
                {"budget_kib": TINY_BUDGET_KIB, "slice": [2, 2]},
            ],
        )
        path = _dse_unit_paths(sliced)[0]
        document = json.load(open(path))
        document["payload"]["config_count_total"] += 1
        with open(path, "w") as handle:
            json.dump(document, handle)
        with pytest.raises(ValueError, match="disagree on config_count_total"):
            merge_dse_artifacts([whole, sliced])

    def test_more_slices_than_configs_merge_cleanly(self, tmp_path):
        """--dse-slices beyond the config count leaves empty units that must
        still complete the sweep and merge to the capped frontier."""
        out_dir = str(tmp_path / "run")
        _run_tiny_dse(
            out_dir,
            params=[
                {"budget_kib": TINY_BUDGET_KIB, "max_configs": 2, "slice": [index, 5]}
                for index in range(1, 6)
            ],
        )
        report = merge_dse_artifacts([out_dir])
        (group,) = report["groups"]
        assert group["complete"]
        assert group["config_count_total"] == 2
        assert group["config_count"] <= 2
        assert group["frontier"]


class TestMixValidation:
    def test_mix_requires_a_model(self):
        with pytest.raises(ValueError, match="needs a 'model'"):
            validate_mix({})
        with pytest.raises(ValueError, match="needs a 'model'"):
            validate_mix({"model": 7})
        with pytest.raises(ValueError, match="must be a params dict"):
            validate_mix("llama_decode:32")

    def test_mix_rejects_unknown_override_keys(self):
        with pytest.raises(ValueError, match="unknown traffic-mix override keys"):
            validate_mix({"model": "llama_decode:32", "reqests": 10})

    def test_sweep_surfaces_mix_errors_as_value_errors(self):
        engine = SearchEngine()
        with pytest.raises(ValueError, match="needs a 'model'"):
            design_space_exploration(
                budget_kib=TINY_BUDGET_KIB, layers="tiny", engine=engine, mix={}
            )

    def test_hand_edited_spec_fails_at_manifest_expansion(self):
        spec = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={"dse": {"budget_kib": TINY_BUDGET_KIB, "mix": {"model": None}}},
        )
        with pytest.raises(ValueError, match="needs a 'model'"):
            RunManifest.from_spec(spec)
        bad_explorer = ManifestSpec(
            workloads=("tiny",),
            experiments=("dse",),
            params={"dse": {"budget_kib": TINY_BUDGET_KIB, "explorer": "annealing"}},
        )
        with pytest.raises(ValueError, match="unknown explorer"):
            RunManifest.from_spec(bad_explorer)

    def test_resume_with_hand_edited_bad_mix_exits_2(self, tmp_path, capsys):
        """The S2 end-to-end check: a hand-edited run.json dies at manifest
        expansion with the standard exit-2 one-liner, not a KeyError."""
        out_dir = str(tmp_path / "run")
        assert main([
            "run", "--out-dir", out_dir, "--workloads", "tiny",
            "--experiments", "dse", "--budget", str(TINY_BUDGET_KIB),
        ]) == 0
        capsys.readouterr()
        run_path = os.path.join(out_dir, "run.json")
        metadata = json.load(open(run_path))
        metadata["spec"]["params"]["dse"]["mix"] = {"wrong": 1}
        with open(run_path, "w") as handle:
            json.dump(metadata, handle)
        assert main(["resume", "--out-dir", out_dir]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "needs a 'model'" in err
