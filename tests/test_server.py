"""Tests for the search daemon: protocol, coalescing service, HTTP server.

The service tests drive :class:`repro.server.service.SearchService` on a
private event loop and pin the concurrency semantics (coalescing keeps the
``hits + misses == tasks`` engine invariant, batching groups compatible
capacities, failures fan out to every waiter).  The daemon tests run a real
:class:`~repro.server.daemon.SearchDaemon` on an ephemeral port inside a
background thread and talk to it with the stdlib client -- every served
result is compared against a direct engine call for bit-identity.  The
subprocess/SIGTERM path is covered by ``python -m repro.server.smoke``.
"""

import asyncio
import threading

import pytest

from repro.core.layer import ConvLayer, kib_to_words
from repro.dataflows.registry import get_dataflow
from repro.engine import SearchEngine
from repro.server.client import SearchClient, ServerError
from repro.server.daemon import SearchDaemon
from repro.server.protocol import (
    ProtocolError,
    layer_from_wire,
    layer_to_wire,
    resolve_capacity,
    result_from_wire,
    result_to_wire,
)
from repro.server.service import SearchService
from repro.workloads.registry import get_workload_spec


@pytest.fixture
def layer():
    return ConvLayer("l", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1)


class TestProtocol:
    def test_layer_round_trip(self, layer):
        assert layer_from_wire(layer_to_wire(layer)) == layer

    def test_layer_defaults_stride_and_padding(self):
        wire = layer_to_wire(ConvLayer("l", 1, 8, 14, 14, 16, 3, 3))
        del wire["stride"], wire["padding"]
        assert layer_from_wire(wire) == ConvLayer("l", 1, 8, 14, 14, 16, 3, 3)

    def test_layer_rejects_unknown_and_missing_fields(self, layer):
        with pytest.raises(ProtocolError, match="unknown layer fields"):
            layer_from_wire(dict(layer_to_wire(layer), bogus=1))
        with pytest.raises(ProtocolError, match="missing"):
            layer_from_wire({"name": "l"})

    def test_result_round_trip_is_exact(self, layer):
        engine = SearchEngine()
        result = engine.try_search(get_dataflow("Ours"), layer, 8192)
        assert result is not None
        assert result_from_wire(result_to_wire(result)) == result

    def test_capacity_words_and_kib_agree_with_cli_conversion(self):
        assert resolve_capacity({"capacity_words": 8192}) == 8192
        assert resolve_capacity({"capacity_kib": 16}) == kib_to_words(16)
        with pytest.raises(ProtocolError, match="not both"):
            resolve_capacity({"capacity_words": 1, "capacity_kib": 1})
        with pytest.raises(ProtocolError, match="positive"):
            resolve_capacity({"capacity_words": 0})
        with pytest.raises(ProtocolError, match="positive"):
            resolve_capacity({"capacity_words": True})


class TestSearchService:
    def _run(self, coroutine):
        return asyncio.run(coroutine)

    def test_duplicate_inflight_requests_coalesce(self, layer):
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")

        async def scenario():
            service = SearchService(engine, flush_window_s=0.005)
            try:
                return await asyncio.gather(
                    *(service.search(dataflow, layer, 8192) for _ in range(5))
                )
            finally:
                await service.drain()
                service.close()

        results = self._run(scenario())
        direct = SearchEngine().try_search(dataflow, layer, 8192)
        assert all(result == direct for result in results)
        # 5 requests, 1 computation: 4 coalesced, and the engine invariant
        # (hits + misses == tasks actually submitted) holds.
        assert engine.stats.coalesced == 4
        assert engine.stats.hits + engine.stats.misses == 1

    def test_compatible_capacities_batch_into_one_flush(self, layer):
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")
        capacities = [4096, 8192, 16384]

        async def scenario():
            service = SearchService(engine, flush_window_s=0.005)
            try:
                return await service.search_many(dataflow, layer, capacities)
            finally:
                await service.drain()
                service.close()

        results = self._run(scenario())
        reference = SearchEngine()
        assert results == [
            reference.try_search(dataflow, layer, capacity) for capacity in capacities
        ]
        assert engine.stats.batched == len(capacities)
        assert engine.stats.coalesced == 0

    def test_served_results_relabel_like_the_engine(self, layer):
        """Shape-equal layers with different names get per-request labels."""
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")
        twin = ConvLayer("twin", 1, 8, 14, 14, 16, 3, 3, stride=1, padding=1)

        async def scenario():
            service = SearchService(engine, flush_window_s=0.005)
            try:
                return await asyncio.gather(
                    service.search(dataflow, layer, 8192),
                    service.search(dataflow, twin, 8192),
                )
            finally:
                await service.drain()
                service.close()

        first, second = self._run(scenario())
        assert first.layer_name == "l"
        assert second.layer_name == "twin"
        assert first.traffic == second.traffic
        # The twins share one cache key, so the second request coalesced.
        assert engine.stats.coalesced == 1

    def test_engine_failure_fans_out_to_every_waiter(self, layer):
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")

        def explode(tasks):
            raise RuntimeError("engine down")

        engine.search_tasks = explode

        async def scenario():
            service = SearchService(engine, flush_window_s=0.005)
            try:
                return await asyncio.gather(
                    *(service.search(dataflow, layer, 8192) for _ in range(3)),
                    return_exceptions=True,
                )
            finally:
                service.close()

        results = self._run(scenario())
        assert len(results) == 3
        assert all(
            isinstance(result, RuntimeError) and "engine down" in str(result)
            for result in results
        )

    def test_max_batch_flushes_immediately(self, layer):
        engine = SearchEngine()
        dataflow = get_dataflow("Ours")

        async def scenario():
            # A huge window would stall forever if max_batch didn't flush.
            service = SearchService(engine, flush_window_s=30.0, max_batch=2)
            try:
                return await asyncio.wait_for(
                    asyncio.gather(
                        service.search(dataflow, layer, 4096),
                        service.search(dataflow, layer, 8192),
                    ),
                    timeout=20,
                )
            finally:
                await service.drain()
                service.close()

        results = self._run(scenario())
        assert len(results) == 2

    def test_invalid_tuning_rejected(self):
        engine = SearchEngine()
        with pytest.raises(ValueError, match="flush_window_s"):
            SearchService(engine, flush_window_s=-1)
        with pytest.raises(ValueError, match="max_batch"):
            SearchService(engine, max_batch=0)


@pytest.fixture
def daemon(tmp_path):
    """A real daemon on an ephemeral port, served from a background thread."""
    engine = SearchEngine(cache_path=str(tmp_path / "cache.sqlite"))
    instance = SearchDaemon(
        engine=engine,
        port=0,
        flush_window_s=0.005,
        work_dir=str(tmp_path / "runs"),
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def serve():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(instance.start())
        started.set()
        loop.run_until_complete(instance.serve_until_shutdown())
        loop.close()

    thread = threading.Thread(target=serve, name="test-daemon")
    thread.start()
    assert started.wait(timeout=30), "daemon did not start"
    yield instance
    loop.call_soon_threadsafe(instance.request_shutdown)
    thread.join(timeout=30)
    assert not thread.is_alive(), "daemon did not shut down"


class TestDaemon:
    def test_healthz_reports_identity(self, daemon):
        with SearchClient(port=daemon.port) as client:
            health = client.healthz()
        assert health["status"] == "ok"
        assert health["cache_store"] == "sqlite"
        assert health["backend"] in ("numpy", "python")

    def test_served_search_is_bit_identical(self, daemon, layer):
        direct = SearchEngine().try_search(get_dataflow("Ours"), layer, 8192)
        with SearchClient(port=daemon.port) as client:
            served = client.search("Ours", layer=layer, capacity_words=8192)
        assert served == direct

    def test_search_by_workload_reference(self, daemon):
        layers = get_workload_spec("tiny")
        direct = SearchEngine().try_search(
            get_dataflow("Ours"), layers[0], kib_to_words(16)
        )
        with SearchClient(port=daemon.port) as client:
            served = client.search(
                "Ours", workload="tiny", layer_index=0, capacity_kib=16
            )
        assert served == direct

    def test_search_many_matches_engine_search_many(self, daemon, layer):
        capacities = [4096, 8192, 16384]
        reference = SearchEngine()
        direct = reference.search_many(layer, capacities, get_dataflow("Ours"))
        with SearchClient(port=daemon.port) as client:
            served = client.search_many(
                "Ours", layer=layer, capacities_words=capacities
            )
        assert served == direct

    def test_workload_and_dataflow_listings(self, daemon):
        with SearchClient(port=daemon.port) as client:
            workloads = client.workloads()
            dataflows = client.dataflows()
        assert any(entry["name"] == "vgg16" for entry in workloads)
        assert "Ours" in dataflows

    def test_stats_counts_requests_and_cache(self, daemon, layer):
        with SearchClient(port=daemon.port) as client:
            client.search("Ours", layer=layer, capacity_words=8192)
            stats = client.stats()
        assert stats["requests_served"] >= 2
        assert stats["cache_entries"] >= 1
        assert stats["engine"]["misses"] >= 1

    def test_unknown_route_and_bad_requests(self, daemon):
        with SearchClient(port=daemon.port) as client:
            with pytest.raises(ServerError) as missing:
                client._json("GET", "/no-such-endpoint")
            assert missing.value.status == 404
            with pytest.raises(ServerError) as bad:
                client._json("POST", "/search", {"dataflow": "NotADataflow"})
            assert bad.value.status == 400
            with pytest.raises(ServerError) as wrong_method:
                client._json("GET", "/search")
            assert wrong_method.value.status == 405

    def test_experiment_run_streams_units_then_report(self, daemon):
        with SearchClient(port=daemon.port) as client:
            events = list(
                client.run_experiments(
                    ["table2"], out_dir="stream-run", workloads=["tiny"]
                )
            )
        unit_events = [event for event in events if event["event"] == "unit"]
        assert unit_events, f"no unit events in {events}"
        assert all("unit_id" in event for event in unit_events)
        assert events[-1]["event"] == "report"
        assert events[-1]["report"]["units_failed"] == 0

        # Resume of the same run skips everything, and says so per unit.
        with SearchClient(port=daemon.port) as client:
            events = list(client.resume_experiments("stream-run"))
        assert events[-1]["event"] == "report"
        assert events[-1]["report"]["units_skipped"] >= 1
        assert any(event.get("state") == "skipped" for event in events)

    def test_out_dir_escape_is_rejected(self, daemon):
        with SearchClient(port=daemon.port) as client:
            with pytest.raises(ServerError) as error:
                list(
                    client.run_experiments(
                        ["table2"], out_dir="../evil", workloads=["tiny"]
                    )
                )
        assert error.value.status == 400
        assert "escapes" in error.value.message

    def test_concurrent_duplicate_clients_coalesce(self, daemon):
        layers = get_workload_spec("tiny")
        direct = SearchEngine().try_search(
            get_dataflow("OutR-A"), layers[1], kib_to_words(64)
        )
        results = {}
        errors = []
        barrier = threading.Barrier(8)

        def worker(slot):
            try:
                with SearchClient(port=daemon.port) as client:
                    barrier.wait(timeout=30)
                    results[slot] = client.search(
                        "OutR-A", workload="tiny", layer_index=1, capacity_kib=64
                    )
            except Exception as error:  # noqa: BLE001 - reported below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(slot,)) for slot in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors
        assert len(results) == 8
        assert all(result == direct for result in results.values())
        assert daemon.engine.stats.coalesced > 0
