"""Serving-traffic mixes: trace determinism, aggregation invariants, goldens.

The trace generator must be a pure function of its spec (integer-only
sampling, fixed draw order), the aggregation must conserve work (every
decode token of every request lands in exactly one bucketed batch), and the
pinned traffic/llm goldens must replay bit-for-bit through the nightly
``merge --diff-goldens`` path.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.goldens import diff_goldens, sanitize_payload
from repro.analysis.traffic_report import (
    TRAFFIC_GOLDEN_PARAMS,
    TRAFFIC_GOLDEN_WORKLOAD,
    compute_llm_golden,
    compute_traffic_golden,
    llm_golden_path,
    traffic_golden_path,
    write_llm_golden,
    write_traffic_golden,
)
from repro.core.layer import total_macs
from repro.orchestration.experiments import PAPER_EXPERIMENTS
from repro.orchestration.manifest import ManifestSpec, RunManifest, canonical_json
from repro.workloads.traffic import (
    PhaseLoad,
    TrafficMixSpec,
    _decode_steps_by_bucket,
    aggregate_trace,
    bucket_tokens,
    generate_trace,
    load_layers,
    served_model,
    trace_summary,
    weighted_unique_layers,
    zipf_weights,
)


def tiny_mix(**overrides) -> TrafficMixSpec:
    """A small real mix: full registry machinery, toy decoder dimensions."""
    model = served_model(
        "llama_decode:4", hidden=16, heads=4, kv_heads=2, ffn_hidden=8, num_layers=1
    )
    defaults = dict(
        models=(model,),
        requests=6,
        seed=1,
        prompt_exponents=(2, 4),
        decode_exponents=(2, 3),
    )
    defaults.update(overrides)
    return TrafficMixSpec(**defaults)


class TestTraceGeneration:
    def test_trace_is_a_pure_function_of_the_spec(self):
        spec = tiny_mix()
        assert generate_trace(spec) == generate_trace(spec)
        assert generate_trace(spec) != generate_trace(tiny_mix(seed=2))

    def test_draws_respect_the_exponent_windows(self):
        spec = tiny_mix(requests=64)
        previous = 0.0
        for request in generate_trace(spec):
            assert request.arrival_s >= previous
            previous = request.arrival_s
            low, high = spec.prompt_exponents
            assert 2 ** (low - 1) < request.prompt_tokens <= 2 ** high
            low, high = spec.decode_exponents
            assert 2 ** (low - 1) < request.decode_tokens <= 2 ** high

    def test_zipf_default_is_the_harmonic_series(self):
        assert zipf_weights(4) == [1.0, 0.5, 1.0 / 3.0, 0.25]
        with pytest.raises(ValueError):
            zipf_weights(0)

    def test_trace_summary_conserves_tokens(self):
        spec = tiny_mix()
        trace = generate_trace(spec)
        summary = trace_summary(spec, trace)
        assert summary["requests"] == spec.requests
        assert summary["prompt_tokens"] == sum(r.prompt_tokens for r in trace)
        assert summary["decode_tokens"] == sum(r.decode_tokens for r in trace)
        assert sum(summary["requests_per_model"].values()) == spec.requests


class TestBucketing:
    def test_bucket_tokens_rounds_up_to_powers_of_two(self):
        assert [bucket_tokens(n) for n in (1, 2, 3, 8, 9)] == [1, 2, 4, 8, 16]
        with pytest.raises(ValueError):
            bucket_tokens(0)

    @settings(max_examples=100, deadline=None)
    @given(
        prompt=st.integers(min_value=1, max_value=5000),
        decode=st.integers(min_value=1, max_value=5000),
    )
    def test_decode_steps_partition_exactly(self, prompt, decode):
        from repro.workloads.traffic import Request

        request = Request(
            index=0, arrival_s=0.0, model=0, prompt_tokens=prompt, decode_tokens=decode
        )
        steps = _decode_steps_by_bucket(request)
        # Every generated token runs exactly one decode step, in the bucket
        # covering its context length; buckets are powers of two.
        assert sum(steps.values()) == decode
        for bucket, count in steps.items():
            assert bucket == bucket_tokens(bucket)
            low, high = bucket // 2, bucket
            overlap = min(prompt + decode, high) - max(prompt, low)
            assert count == overlap


class TestAggregation:
    def test_decode_work_is_conserved_through_batching(self):
        spec = tiny_mix()
        trace = generate_trace(spec)
        loads = aggregate_trace(spec, trace)
        decode_steps = sum(
            load.batch * load.count for load in loads if load.phase == "decode"
        )
        assert decode_steps == sum(request.decode_tokens for request in trace)
        prefills = sum(load.count for load in loads if load.phase == "prefill")
        assert prefills == spec.requests
        for load in loads:
            if load.phase == "decode":
                assert 1 <= load.batch <= spec.models[0].batch
            else:
                assert load.batch == 1

    def test_weighted_unique_layers_conserve_macs(self):
        spec = tiny_mix()
        loads = aggregate_trace(spec, generate_trace(spec))
        layers, weights = weighted_unique_layers(spec, loads)
        weighted = sum(w * layer.macs for layer, w in zip(layers, weights))
        direct = sum(
            load.count * total_macs(load_layers(spec, load)) for load in loads
        )
        assert weighted == direct
        assert len(layers) == len(set(id(layer) for layer in layers))

    def test_load_layers_rejects_unknown_models(self):
        spec = tiny_mix()
        with pytest.raises(ValueError):
            load_layers(spec, PhaseLoad("nope:1", "decode", 8, 1, 1))


class TestValidation:
    def test_non_decode_workloads_are_rejected(self):
        with pytest.raises(ValueError, match="decode-family"):
            served_model("vgg16")

    def test_mix_owns_batch_and_context(self):
        with pytest.raises(ValueError, match="set by the mix"):
            served_model("llama_decode:4", context=128)

    def test_bad_batch_specs(self):
        with pytest.raises(ValueError):
            served_model("llama_decode:x")
        with pytest.raises(ValueError):
            served_model("llama_decode:0")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            tiny_mix(requests=0)
        with pytest.raises(ValueError):
            TrafficMixSpec(models=())
        with pytest.raises(ValueError):
            tiny_mix(prompt_exponents=(0, 4))
        with pytest.raises(ValueError):
            tiny_mix(arrival_rate_per_s=0.0)


class TestPinnedGoldens:
    """The two pinned serving goldens replay bit-for-bit on the numpy backend."""

    def test_pinned_files_exist(self):
        for path in (traffic_golden_path(), llm_golden_path()):
            assert os.path.exists(path), (
                f"missing {path}; regenerate with: repro-experiments traffic --write"
            )

    def test_traffic_golden_replays(self):
        pytest.importorskip("numpy")
        from repro.engine import SearchEngine

        with open(traffic_golden_path()) as handle:
            expected = json.load(handle)
        actual = compute_traffic_golden(engine=SearchEngine(backend="numpy"))
        problems = diff_goldens(expected, actual)
        assert problems == [], "\n".join(problems[:20])

    def test_llm_golden_replays(self):
        pytest.importorskip("numpy")
        from repro.engine import SearchEngine

        with open(llm_golden_path()) as handle:
            expected = json.load(handle)
        actual = compute_llm_golden(engine=SearchEngine(backend="numpy"))
        problems = diff_goldens(expected, actual)
        assert problems == [], "\n".join(problems[:20])

    def test_backends_agree_byte_for_byte(self):
        pytest.importorskip("numpy")
        from repro.engine import SearchEngine

        scalar = compute_traffic_golden(engine=SearchEngine(backend="python"))
        vectorized = compute_traffic_golden(engine=SearchEngine(backend="numpy"))
        assert canonical_json(sanitize_payload(scalar)) == canonical_json(
            sanitize_payload(vectorized)
        )


class TestOrchestration:
    def test_traffic_is_part_of_the_full_paper(self):
        assert "traffic" in PAPER_EXPERIMENTS

    def test_manifest_pins_the_traffic_workload(self):
        manifest = RunManifest.from_spec(
            ManifestSpec(workloads=("vgg16",), experiments=("traffic",))
        )
        assert len(manifest.units) == 1
        unit = manifest.units[0]
        assert unit.workload == TRAFFIC_GOLDEN_WORKLOAD
        assert unit.params == json.loads(canonical_json(TRAFFIC_GOLDEN_PARAMS))

    def test_merge_diffs_the_traffic_unit_against_the_pinned_golden(self, tmp_path):
        pytest.importorskip("numpy")
        from repro.orchestration.merge import diff_merged_goldens, merge_runs
        from repro.orchestration.runner import Runner

        from repro.analysis.goldens import write_goldens

        # diff_merged_goldens refuses a run with no 'goldens' units (a
        # vacuous pass must not read as verified), so ride along on the
        # cheap tiny workload.
        goldens_dir = str(tmp_path / "goldens")
        write_goldens(goldens_dir, workloads=("tiny",))
        write_traffic_golden(traffic_golden_path(goldens_dir))
        manifest = RunManifest.from_spec(
            ManifestSpec(
                workloads=("tiny",),
                experiments=("goldens", "traffic"),
                backends=("numpy",),
            )
        )
        out_dir = str(tmp_path / "run")
        assert Runner(manifest, out_dir).run().complete
        merged_dir = str(tmp_path / "merged")
        merge_runs([out_dir], merged_dir)
        key = f"traffic:{TRAFFIC_GOLDEN_WORKLOAD}"
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert diff[key] == []

        # A drifted pinned value must surface as a diff problem.
        with open(traffic_golden_path(goldens_dir)) as handle:
            golden = json.load(handle)
        golden["macs"] = golden["macs"] * 2  # well past the 1e-9 tolerance
        with open(traffic_golden_path(goldens_dir), "w") as handle:
            json.dump(golden, handle)
        diff = diff_merged_goldens(merged_dir, goldens_dir)
        assert diff[key] != []

    def test_write_goldens_round_trip(self, tmp_path):
        pytest.importorskip("numpy")
        path = write_llm_golden(str(tmp_path / "llm.json"))
        with open(path) as handle:
            written = json.load(handle)
        assert written["format"] == "repro-llm-decode-v1"
        assert written["workload"] == "llama_decode:32"
