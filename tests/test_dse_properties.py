"""Property-based tests (hypothesis) for the DSE layer.

Three contracts the orchestrated sweeps lean on:

* every frontier point is non-dominated against the *whole* input set, and
  every input row is contained in or dominated by the frontier;
* the frontier is invariant under any permutation of the input rows (config
  enumeration order cannot matter);
* partitioning the rows into shards arbitrarily and merging the shard
  frontiers reproduces the unsharded frontier bit-identically, for any
  grouping of the merge (associativity).

Plus the same invariances on the real enumerator: candidate spaces and
budgets drawn at random enumerate identically on both backends and always
honour the budget.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.dse.pareto import (
    contains_or_dominates,
    dominates,
    merge_frontiers,
    pareto_frontier,
)
from repro.dse.space import CandidateSpace, count_splits, enumerate_splits

OBJ = ("dram", "energy", "time")


@st.composite
def objective_rows(draw, min_size=0, max_size=40):
    """Rows with unique config names and finite objective vectors.

    Values are drawn from a small integer pool (as floats) so that ties and
    exact duplicates -- the interesting frontier cases -- occur often.
    """
    values = st.integers(0, 6).map(float)
    count = draw(st.integers(min_size, max_size))
    return [
        {
            "config": f"c{index:03d}",
            "objectives": {key: draw(values) for key in OBJ},
        }
        for index in range(count)
    ]


@st.composite
def candidate_spaces(draw):
    def axis(values, max_len=3):
        subset = draw(
            st.lists(st.sampled_from(values), min_size=1, max_size=max_len, unique=True)
        )
        return tuple(sorted(subset))

    return CandidateSpace(
        pe_dims=axis((4, 8, 12, 16, 32, 64)),
        lreg_words=axis((8, 16, 32, 64, 128)),
        igbuf_words=axis((256, 512, 1024, 1536)),
        wgbuf_words=axis((128, 256, 320)),
    )


class TestFrontierProperties:
    @settings(max_examples=60, deadline=None)
    @given(rows=objective_rows())
    def test_frontier_points_are_non_dominated(self, rows):
        frontier = pareto_frontier(rows, OBJ)
        for point in frontier:
            assert not any(dominates(other, point, OBJ) for other in rows)

    @settings(max_examples=60, deadline=None)
    @given(rows=objective_rows())
    def test_every_row_is_contained_or_dominated(self, rows):
        frontier = pareto_frontier(rows, OBJ)
        assert len(frontier) <= len(rows)
        for point in rows:
            assert contains_or_dominates(frontier, point, OBJ)

    @settings(max_examples=60, deadline=None)
    @given(rows=objective_rows(), seed=st.randoms(use_true_random=False))
    def test_frontier_is_invariant_under_input_order(self, rows, seed):
        expected = pareto_frontier(rows, OBJ)
        shuffled = list(rows)
        seed.shuffle(shuffled)
        assert json.dumps(pareto_frontier(shuffled, OBJ), sort_keys=True) == json.dumps(
            expected, sort_keys=True
        )

    @settings(max_examples=60, deadline=None)
    @given(
        rows=objective_rows(min_size=1),
        cuts=st.lists(st.integers(0, 40), max_size=4),
        pair_up=st.booleans(),
    )
    def test_sharded_merge_equals_unsharded_frontier(self, rows, cuts, pair_up):
        """Any partition, merged in any grouping, gives the whole frontier."""
        bounds = sorted({min(cut, len(rows)) for cut in cuts} | {0, len(rows)})
        shards = [
            rows[start:end] for start, end in zip(bounds, bounds[1:])
        ] or [rows]
        shard_frontiers = [pareto_frontier(shard, OBJ) for shard in shards]
        merged = merge_frontiers(shard_frontiers, OBJ)
        if pair_up and len(shard_frontiers) > 1:
            # Associativity: fold two shards first, then merge the rest.
            folded = merge_frontiers(shard_frontiers[:2], OBJ)
            merged = merge_frontiers([folded] + shard_frontiers[2:], OBJ)
        expected = pareto_frontier(rows, OBJ)
        assert json.dumps(merged, sort_keys=True) == json.dumps(expected, sort_keys=True)

    @settings(max_examples=60, deadline=None)
    @given(rows=objective_rows())
    def test_frontier_is_idempotent(self, rows):
        frontier = pareto_frontier(rows, OBJ)
        assert pareto_frontier(frontier, OBJ) == frontier


class TestEnumerationProperties:
    @settings(max_examples=40, deadline=None)
    @given(space=candidate_spaces(), budget=st.integers(1, 200_000))
    def test_splits_honour_budget_and_structure(self, space, budget):
        splits = enumerate_splits(budget, space, backend="python")
        assert len(set(splits)) == len(splits)
        for rows, cols, lreg, igbuf, wgbuf in splits:
            assert rows * cols * lreg + igbuf + wgbuf <= budget
            assert rows % space.group_rows == 0 and cols % space.group_cols == 0
            assert cols <= rows <= space.max_aspect * cols

    @settings(max_examples=40, deadline=None)
    @given(space=candidate_spaces(), budget=st.integers(1, 200_000))
    def test_backends_enumerate_identically(self, space, budget):
        pytest.importorskip("numpy")
        assert enumerate_splits(budget, space, backend="numpy") == enumerate_splits(
            budget, space, backend="python"
        )

    @settings(max_examples=40, deadline=None)
    @given(space=candidate_spaces(), budget=st.integers(1, 200_000))
    def test_count_splits_matches_enumeration(self, space, budget):
        # The arithmetic space-size count (what smart-explorer payloads
        # report as config_count_total) agrees with materialisation.
        assert count_splits(budget, space) == len(
            enumerate_splits(budget, space, backend="python")
        )
