"""Tests for the experiment drivers (repro.analysis.*).

To keep the test suite fast these use reduced workloads (a subset of VGG
layers) and small capacity lists; the benchmarks run the full versions.
"""

import math

import pytest

from repro.analysis.energy_report import energy_report
from repro.analysis.eyeriss_compare import eyeriss_comparison
from repro.analysis.performance_report import performance_comparison
from repro.analysis.sweep import (
    gbuf_dram_ratio,
    gbuf_per_layer,
    memory_sweep,
    per_layer_dram,
    reg_per_layer,
    words_to_mb,
)
from repro.analysis.utilization_report import utilization_report
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.workloads.vgg import vgg16_conv_layers


@pytest.fixture(scope="module")
def subset_layers():
    layers = vgg16_conv_layers()
    return [layers[1], layers[5], layers[9], layers[12]]


@pytest.fixture(scope="module")
def two_impls():
    return [PAPER_IMPLEMENTATIONS[0], PAPER_IMPLEMENTATIONS[2]]


class TestHelpers:
    def test_words_to_mb(self):
        assert words_to_mb(1024 * 1024) == pytest.approx(2.0)


class TestMemorySweep:
    @pytest.fixture(scope="class")
    def sweep(self, subset_layers):
        return memory_sweep(
            capacities_kib=[32, 128],
            layers=subset_layers,
            dataflow_names=["Ours", "InR-C", "WtR-B"],
        )

    def test_series_present(self, sweep):
        assert set(sweep["series"]) == {"Lower bound", "Ours", "InR-C", "WtR-B", "Found minimum"}
        assert sweep["capacities_kib"] == [32, 128]
        assert all(len(values) == 2 for values in sweep["series"].values())

    def test_lower_bound_decreases_with_memory(self, sweep):
        bound = sweep["series"]["Lower bound"]
        assert bound[1] < bound[0]

    def test_ours_above_bound_and_below_baselines(self, sweep):
        for index in range(2):
            bound = sweep["series"]["Lower bound"][index]
            ours = sweep["series"]["Ours"][index]
            assert ours >= bound * 0.95
            for name in ("InR-C", "WtR-B"):
                value = sweep["series"][name][index]
                if not math.isnan(value):
                    assert ours <= value * 1.05

    def test_found_minimum_never_above_ours(self, sweep):
        for index in range(2):
            assert sweep["series"]["Found minimum"][index] <= sweep["series"]["Ours"][index] + 1e-9


class TestPerLayerDram:
    @pytest.fixture(scope="class")
    def rows(self, subset_layers):
        return per_layer_dram(layers=subset_layers, implementations=[PAPER_IMPLEMENTATIONS[0]])

    def test_one_row_per_layer(self, rows, subset_layers):
        assert len(rows) == len(subset_layers)
        assert rows[0]["layer"] == subset_layers[0].name

    def test_ours_breakdown_sums(self, rows):
        for row in rows:
            parts = row["ours_inputs_mb"] + row["ours_weights_mb"] + row["ours_outputs_mb"]
            assert parts == pytest.approx(row["ours_mb"], rel=1e-6)

    def test_lower_bound_not_much_above_ours(self, rows):
        for row in rows:
            assert row["lower_bound_mb"] <= row["ours_mb"] * 1.1

    def test_implementation_close_to_dataflow(self, rows):
        for row in rows:
            assert row["implementation-1_mb"] <= row["ours_mb"] * 1.2

    def test_baselines_present(self, rows):
        assert "InR-A_mb" in rows[0]
        assert "WtR-A_mb" in rows[0]


class TestGbufExperiments:
    def test_gbuf_per_layer_rows(self, subset_layers, two_impls):
        rows = gbuf_per_layer(layers=subset_layers, implementations=two_impls)
        assert len(rows) == len(subset_layers)
        for row in rows:
            assert row["eyeriss_mb"] > row["implementation-1_mb"]
            assert row["implementation-3_mb"] > 0

    def test_gbuf_dram_ratio_structure(self, subset_layers):
        ratio = gbuf_dram_ratio(layers=subset_layers, implementation_index=1)
        assert ratio["implementation"] == "implementation-1"
        assert ratio["weights"]["read_ratio"] == pytest.approx(1.0)
        assert ratio["weights"]["write_ratio"] == pytest.approx(1.0)
        assert 1.0 <= ratio["inputs"]["read_ratio"] < 3.0
        assert ratio["inputs"]["write_ratio"] == pytest.approx(1.0)
        assert ratio["outputs"]["gbuf_read_mb"] == 0.0


class TestRegExperiment:
    def test_reg_per_layer(self, subset_layers, two_impls):
        rows = reg_per_layer(layers=subset_layers, implementations=two_impls)
        for row in rows:
            assert row["implementation-1_gb"] >= row["lower_bound_gb"]
            assert row["implementation-1_gb"] <= 1.3 * row["lower_bound_gb"]


class TestEyerissComparison:
    @pytest.fixture(scope="class")
    def comparison(self, subset_layers):
        return eyeriss_comparison(layers=subset_layers)

    def test_per_layer_rows(self, comparison, subset_layers):
        assert len(comparison["per_layer"]) == len(subset_layers)

    def test_summary_rows(self, comparison):
        rows = comparison["summary"]["rows"]
        assert rows["Lower bound"]["dram_access_mb"] <= rows["Our dataflow"]["dram_access_mb"]
        assert (
            rows["Eyeriss (uncompr.)"]["dram_access_mb"]
            > rows["Eyeriss (compr.)"]["dram_access_mb"]
        )
        assert rows["Our dataflow"]["dram_access_per_mac"] > 0

    def test_reported_rows_included(self, comparison):
        rows = comparison["summary"]["rows"]
        assert "Eyeriss (uncompr., reported)" in rows
        assert rows["Eyeriss (uncompr., reported)"]["dram_access_mb"] == pytest.approx(528.8)


class TestEnergyAndPerformance:
    def test_energy_report_structure(self, subset_layers, two_impls):
        report = energy_report(layers=subset_layers, implementations=two_impls)
        assert len(report["implementations"]) == 2
        for row in report["implementations"]:
            assert row["pj_per_mac"] > row["lower_bound_pj_per_mac"]
            assert row["gap"] > 0
            components = row["components_pj_per_mac"]
            assert sum(components.values()) == pytest.approx(row["pj_per_mac"], rel=1e-6)

    def test_energy_mac_dominates_dram(self, subset_layers, two_impls):
        # "Our accelerator is computation dominant": MAC energy is the largest
        # single on-chip component.
        report = energy_report(layers=subset_layers, implementations=two_impls)
        for row in report["implementations"]:
            components = row["components_pj_per_mac"]
            assert components["MAC units"] >= components["GBufs"]
            assert components["MAC units"] >= components["GRegs"]

    def test_performance_rows(self, subset_layers, two_impls):
        rows = performance_comparison(layers=subset_layers, implementations=two_impls)
        assert len(rows) == 2
        more_pes = rows[1]
        fewer_pes = rows[0]
        assert more_pes["num_pes"] > fewer_pes["num_pes"]
        assert more_pes["computing_seconds"] < fewer_pes["computing_seconds"]
        assert more_pes["power_watts"] > fewer_pes["power_watts"]
        for row in rows:
            assert 0 <= row["waiting_fraction"] < 1

    def test_utilization_rows(self, subset_layers, two_impls):
        rows = utilization_report(layers=subset_layers, implementations=two_impls)
        assert len(rows) == 2
        for row in rows:
            for key in ("gbuf", "greg", "lreg", "memory_overall", "pe"):
                assert 0.0 <= row[key] <= 1.0
            assert row["pe"] > 0.5
            assert row["lreg"] > 0.5
