"""Tests for repro.arch.accelerator (the tile-exact analytic simulator)."""

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS, paper_implementation
from repro.core.layer import ConvLayer
from repro.core.lower_bound import reg_lower_bound
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.tiling import Tiling


@pytest.fixture(scope="module")
def impl1_model():
    return AcceleratorModel(paper_implementation(1))


@pytest.fixture
def small_conv():
    return ConvLayer("small", 1, 8, 20, 20, 32, 3, 3, stride=1, padding=1)


class TestTilingChoice:
    def test_tiling_fits_all_memories(self, impl1_model, small_conv):
        tiling = impl1_model.choose_layer_tiling(small_conv)
        config = impl1_model.config
        assert tiling.output_block_size() <= config.psum_words
        assert tiling.staged_input_words(small_conv) <= config.igbuf_words
        assert tiling.staged_weight_words() <= config.wgbuf_words

    def test_tiling_fits_per_pe_lregs(self, impl1_model, vgg_layers):
        from repro.arch.mapping import BlockShape, map_block

        for layer in vgg_layers[:4]:
            tiling = impl1_model.choose_layer_tiling(layer)
            block = BlockShape(b=tiling.b, z=tiling.z, y=tiling.y, x=tiling.x)
            mapping = map_block(layer, block, impl1_model.config)
            assert mapping.psums_per_pe <= impl1_model.config.lreg_words_per_pe

    def test_tiling_cached(self, impl1_model, small_conv):
        first = impl1_model.choose_layer_tiling(small_conv)
        second = impl1_model.choose_layer_tiling(small_conv)
        assert first == second


class TestLayerRun:
    def test_dram_matches_dataflow_traffic(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        expected = dataflow_traffic(small_conv, result.tiling)
        assert result.dram.input_reads == pytest.approx(expected.input_reads)
        assert result.dram.weight_reads == pytest.approx(expected.weight_reads)
        assert result.dram.output_writes == pytest.approx(expected.output_writes)

    def test_gbuf_writes_equal_dram_reads(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        assert result.igbuf_writes == pytest.approx(result.dram.input_reads)
        assert result.wgbuf_writes == pytest.approx(result.dram.weight_reads)

    def test_weights_read_once_from_gbuf(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        assert result.wgbuf_reads == pytest.approx(result.dram.weight_reads)

    def test_reg_accesses_close_to_lower_bound(self, impl1_model, vgg_layer_mid):
        result = impl1_model.run_layer(vgg_layer_mid)
        bound = reg_lower_bound(vgg_layer_mid)
        assert result.reg_accesses >= bound
        # The paper reports 5.9-11.8% extra register traffic; allow up to 25%.
        assert result.reg_accesses <= 1.25 * bound

    def test_dram_close_to_free_dataflow(self, impl1_model, vgg_layer_mid, capacity_66k):
        result = impl1_model.run_layer(vgg_layer_mid)
        free = choose_tiling(vgg_layer_mid, capacity_66k).traffic.total
        # The fixed on-chip memory split costs only a few percent (paper: 3-4%).
        assert result.dram.total <= 1.15 * free

    def test_explicit_tiling_respected(self, impl1_model, small_conv):
        tiling = Tiling(b=1, z=16, y=10, x=10)
        result = impl1_model.run_layer(small_conv, tiling=tiling)
        assert result.tiling == tiling.clip(small_conv)

    def test_utilizations_in_unit_range(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        for key, value in result.utilization.items():
            assert 0.0 <= value <= 1.0, key

    def test_compute_cycles_at_least_macs_over_pes(self, impl1_model, vgg_layer_mid):
        result = impl1_model.run_layer(vgg_layer_mid)
        assert result.compute_cycles >= vgg_layer_mid.macs / impl1_model.config.num_pes

    def test_waiting_cycles_nonnegative(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        assert result.waiting_cycles >= 0
        assert result.total_cycles == result.compute_cycles + result.waiting_cycles

    def test_aggregate_properties(self, impl1_model, small_conv):
        result = impl1_model.run_layer(small_conv)
        assert result.gbuf_accesses == result.gbuf_reads + result.gbuf_writes
        assert result.dram_accesses == result.dram.total


class TestNetworkRun:
    def test_network_aggregation(self, impl1_model, small_conv):
        layers = [small_conv, small_conv.with_batch(2)]
        network = impl1_model.run_network(layers)
        assert len(network.layers) == 2
        assert network.macs == sum(layer.macs for layer in layers)
        assert network.dram.total == pytest.approx(
            sum(result.dram.total for result in network.layers)
        )
        assert network.total_cycles == network.compute_cycles + network.waiting_cycles

    def test_network_utilization_weighted_average(self, impl1_model, small_conv):
        network = impl1_model.run_network([small_conv])
        assert network.utilization("pe") == pytest.approx(
            network.layers[0].utilization["pe"]
        )

    def test_more_pes_run_faster(self, vgg_layer_mid):
        small = AcceleratorModel(paper_implementation(1)).run_layer(vgg_layer_mid)
        large = AcceleratorModel(paper_implementation(3)).run_layer(vgg_layer_mid)
        assert large.compute_cycles < small.compute_cycles


class TestAcrossImplementations:
    @pytest.mark.parametrize("config", PAPER_IMPLEMENTATIONS, ids=lambda c: c.name)
    def test_every_implementation_handles_vgg_extremes(self, config, vgg_layers):
        model = AcceleratorModel(config)
        for layer in (vgg_layers[0], vgg_layers[-1]):
            result = model.run_layer(layer)
            assert result.dram.total > 0
            assert result.compute_cycles > 0
            assert result.reg_accesses >= layer.macs
