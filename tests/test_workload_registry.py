"""Tests for the workload registry and its routing through the stack."""

import pytest

from repro.core.layer import ConvLayer, total_macs
from repro.dataflows.registry import get_dataflow
from repro.dataflows.search import network_traffic
from repro.engine import SearchEngine
from repro.workloads.registry import (
    UnknownWorkloadError,
    Workload,
    get_workload,
    get_workload_spec,
    list_workloads,
    register_workload,
    resolve_layers,
    workload_names,
)
from repro.workloads.vgg import PAPER_BATCH_SIZE

REQUIRED_NETWORKS = ("vgg16", "alexnet", "resnet18", "mobilenet_v1", "googlenet", "bert_base")


class TestRegistryLookup:
    def test_required_networks_are_registered(self):
        names = workload_names()
        assert len(names) >= 6
        for name in REQUIRED_NETWORKS:
            assert name in names

    def test_list_workloads_sorted_and_described(self):
        workloads = list_workloads()
        assert [w.name for w in workloads] == workload_names()
        assert all(isinstance(w, Workload) and w.description for w in workloads)

    def test_get_workload_returns_conv_layers(self):
        layers = get_workload("alexnet")
        assert layers and all(isinstance(layer, ConvLayer) for layer in layers)

    def test_default_batch_vgg16_matches_paper(self):
        assert all(layer.batch == PAPER_BATCH_SIZE for layer in get_workload("vgg16"))

    def test_batch_override(self):
        assert all(layer.batch == 4 for layer in get_workload("vgg16", batch=4))

    def test_builder_params_pass_through(self):
        a = get_workload("random", seed=3)
        b = get_workload("random", seed=4)
        assert [l.describe() for l in a] != [l.describe() for l in b]

    def test_unknown_name_raises_with_known_names(self):
        with pytest.raises(UnknownWorkloadError, match="registered workloads"):
            get_workload("nope")
        # The clean message survives str() (KeyError would repr it).
        try:
            get_workload("nope")
        except UnknownWorkloadError as error:
            assert str(error).startswith("unknown workload")

    def test_invalid_batch_rejected(self):
        with pytest.raises(ValueError, match="batch"):
            get_workload("vgg16", batch=0)


class TestSpecParsing:
    def test_plain_name(self):
        assert len(get_workload_spec("alexnet")) == 5

    def test_name_with_batch(self):
        layers = get_workload_spec("resnet18:8")
        assert all(layer.batch == 8 for layer in layers)

    def test_bad_batch_text(self):
        with pytest.raises(ValueError, match="integer"):
            get_workload_spec("vgg16:three")

    def test_resolve_layers_passthrough_and_names(self):
        layers = get_workload("tiny")
        assert resolve_layers(layers) == layers
        assert resolve_layers("tiny") == layers
        assert resolve_layers(None, default="tiny") == layers
        with pytest.raises(ValueError):
            resolve_layers(None)


class TestRegistration:
    def test_register_and_replace(self):
        name = "unit_test_net"
        try:
            register_workload(name, "one tiny layer", lambda batch: [
                ConvLayer("only", batch, 2, 8, 8, 2, 3, 3)
            ])
            assert len(get_workload(name, batch=2)) == 1
            with pytest.raises(ValueError, match="already registered"):
                register_workload(name, "dup", lambda batch: [])
            register_workload(name, "replaced", lambda batch: [], replace=True)
            assert get_workload(name) == []
        finally:
            from repro.workloads import registry

            registry._REGISTRY.pop(name, None)

    def test_bad_names_rejected(self):
        with pytest.raises(ValueError, match="alphanumeric"):
            register_workload("bad name!", "x", lambda batch: [])


class TestEngineRouting:
    def test_engine_network_traffic_accepts_workload_name(self):
        engine = SearchEngine()
        by_name = engine.network_traffic("tiny", 4096)
        by_layers = engine.network_traffic(get_workload("tiny"), 4096)
        assert by_name == by_layers

    def test_engine_per_layer_results_accepts_spec(self):
        engine = SearchEngine()
        results = engine.per_layer_results("tiny:2", 4096, get_dataflow("Ours"))
        assert len(results) == len(get_workload("tiny"))

    def test_search_module_roundtrip(self):
        engine = SearchEngine()
        traffic = network_traffic("tiny", 4096, engine=engine)
        assert traffic.total > 0


class TestModernNetworkCorners:
    def test_mobilenet_depthwise_is_per_channel(self):
        from repro.workloads.mobilenet import mobilenet_v1_depthwise_layers

        depthwise = mobilenet_v1_depthwise_layers()
        assert depthwise
        assert all(layer.in_channels == 1 and layer.out_channels == 1 for layer in depthwise)
        # Full sliding-window reuse at stride 1, reduced at stride 2.
        assert {layer.window_reuse for layer in depthwise} == {9.0, 2.25}

    def test_mobilenet_pointwise_is_matmul_corner(self):
        from repro.workloads.mobilenet import mobilenet_v1_pointwise_layers

        pointwise = mobilenet_v1_pointwise_layers()
        assert len(pointwise) == 13
        assert all(layer.window_reuse == 1.0 for layer in pointwise)

    def test_mobilenet_folded_form_preserves_macs(self):
        expanded = get_workload("mobilenet_v1")
        folded = get_workload("mobilenet_v1", expand_depthwise=False)
        assert total_macs(expanded) == total_macs(folded)
        assert len(folded) < len(expanded)

    def test_mobilenet_width_multiplier_scales_channels(self):
        half = get_workload("mobilenet_v1", width_multiplier=0.5)
        assert total_macs(half) < 0.5 * total_macs(get_workload("mobilenet_v1"))

    def test_googlenet_mixes_kernels_at_same_resolution(self):
        layers = get_workload("googlenet")
        at_14 = {l.kernel_height for l in layers if l.in_height == 14 and "inception" in l.name}
        assert at_14 == {1, 3, 5}

    def test_googlenet_branch_reductions_feed_bigger_kernels(self):
        layers = {layer.name: layer for layer in get_workload("googlenet")}
        reduce_3x3 = layers["inception_3a/3x3_reduce"]
        conv_3x3 = layers["inception_3a/3x3"]
        assert reduce_3x3.out_channels == conv_3x3.in_channels == 96

    def test_bert_layers_are_pure_matmuls(self):
        layers = get_workload("bert_base")
        assert all(layer.window_reuse == 1.0 for layer in layers)
        assert all(layer.kernel_height == layer.kernel_width == 1 for layer in layers)

    def test_bert_macs_match_analytic_count(self):
        seq, hidden, heads, ffn, depth = 128, 768, 12, 3072, 12
        per_layer = 4 * seq * hidden * hidden + 2 * heads * seq * seq * (hidden // heads) \
            + 2 * seq * hidden * ffn
        assert total_macs(get_workload("bert_base")) == depth * per_layer

    def test_bert_requires_divisible_heads(self):
        from repro.workloads.transformer import transformer_encoder_layers

        with pytest.raises(ValueError, match="divisible"):
            transformer_encoder_layers(hidden=100, heads=3)

    @pytest.mark.parametrize("name", ["mobilenet_v1", "googlenet", "bert_base"])
    def test_modern_networks_respect_theorem2_bound(self, name):
        """Every shape family sits above the paper's Theorem 2 bound.

        The *achievable* Eq. (15) form is deliberately not asserted here: the
        new workloads live in the regime it does not cover -- a depthwise or
        pointwise layer whose weight tensor fits on-chip reaches once-through
        traffic below Eq. (15)'s ``2*MACs/sqrt(R*S)`` read term (see
        ``test_small_operand_layers_beat_eq15``).
        """
        from repro.core.lower_bound import theorem2_lower_bound

        engine = SearchEngine()
        layers = get_workload(name)
        # One layer per distinct shape family keeps this fast while touching
        # the depthwise, pointwise, inception and attention corners.
        seen, representatives = set(), []
        for layer in layers:
            key = (layer.in_channels, layer.kernel_height, layer.in_height)
            if key not in seen:
                seen.add(key)
                representatives.append(layer)
        for layer in representatives[:8]:
            result = engine.found_minimum(layer, 34048)
            assert result.total >= theorem2_lower_bound(layer, 34048) - 1e-6
            assert result.total >= layer.num_weights + layer.num_outputs - 1e-6

    def test_small_operand_layers_beat_eq15(self):
        """MobileNet's pointwise corner exposes Eq. (15)'s regime boundary.

        When a whole operand tensor fits on-chip (conv6_pw's 64K weight words
        do not, but its schedule can hold full input panels), the searched
        minimum drops below the Eq. (15) reference -- evidence the bound's
        sqrt(R*S) term is only tight when no operand is resident.
        """
        from repro.core.lower_bound import practical_lower_bound, theorem2_lower_bound

        engine = SearchEngine()
        pointwise = next(
            layer for layer in get_workload("mobilenet_v1") if layer.name == "conv6_pw"
        )
        found = engine.found_minimum(pointwise, 34048)
        assert found.total < practical_lower_bound(pointwise, 34048)
        assert found.total >= theorem2_lower_bound(pointwise, 34048)
