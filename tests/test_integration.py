"""End-to-end integration tests across the whole stack."""

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import paper_implementation
from repro.arch.performance import performance_report
from repro.core.lower_bound import practical_lower_bound, reg_lower_bound
from repro.core.optimal_dataflow import choose_tiling
from repro.dataflows.registry import get_dataflow
from repro.energy.model import EnergyModel, efficiency_gap
from repro.eyeriss.model import EyerissModel
from repro.workloads.alexnet import alexnet_conv_layers
from repro.workloads.resnet import resnet18_conv_layers


class TestFullStackOnVgg:
    """The paper's headline claims, checked end to end on the real workload."""

    @pytest.fixture(scope="class")
    def run(self, vgg_layers):
        config = paper_implementation(1)
        model = AcceleratorModel(config)
        network = model.run_network(vgg_layers)
        energy = EnergyModel().network_energy(network, config)
        return config, network, energy

    def test_dram_traffic_near_lower_bound(self, run, vgg_layers):
        config, network, _ = run
        bound = sum(
            practical_lower_bound(layer, config.effective_on_chip_words) for layer in vgg_layers
        )
        assert network.dram.total >= 0.95 * bound
        assert network.dram.total <= 1.45 * bound

    def test_input_and_weight_traffic_balanced(self, run):
        _, network, _ = run
        dram = network.dram
        assert 0.5 < dram.input_reads / dram.weight_reads < 2.0

    def test_gbuf_traffic_near_its_bound(self, run):
        _, network, _ = run
        dram_reads = network.dram.reads
        # GBuf lower bound: everything loaded is written once and read once.
        assert network.gbuf_accesses >= 2 * dram_reads * 0.99
        assert network.gbuf_accesses <= 3 * dram_reads

    def test_reg_traffic_near_its_bound(self, run, vgg_layers):
        _, network, _ = run
        bound = sum(reg_lower_bound(layer) for layer in vgg_layers)
        assert bound <= network.reg_accesses <= 1.2 * bound

    def test_energy_gap_in_paper_ballpark(self, run, vgg_layers):
        config, network, energy = run
        bound = EnergyModel().lower_bound_energy(vgg_layers, config.effective_on_chip_words)
        gap = efficiency_gap(energy, bound)
        # Paper: 37-87% across implementations; implementation 1 is the worst.
        assert 0.1 < gap < 1.2

    def test_computation_dominant(self, run):
        _, _, energy = run
        components = energy.component_pj_per_mac()
        assert components["MAC units"] == max(
            components[name] for name in ("MAC units", "DRAM", "GBufs", "GRegs", "Others")
        )

    def test_performance_report_consistent(self, run):
        config, network, energy = run
        report = performance_report(network, config, energy)
        assert 0.05 < report.total_seconds < 5.0
        assert 0.1 < report.power_watts < 20.0


class TestOtherWorkloads:
    @pytest.mark.parametrize("layers_fn", [alexnet_conv_layers, resnet18_conv_layers],
                             ids=["alexnet", "resnet18"])
    def test_dataflow_handles_other_networks(self, layers_fn):
        capacity = 32768
        ours = get_dataflow("Ours")
        for layer in layers_fn():
            bound = practical_lower_bound(layer, capacity)
            total = ours.search(layer, capacity).total
            assert total >= 0.9 * bound
            assert total <= 3.0 * bound  # small layers can sit far from the asymptotic bound

    def test_accelerator_handles_strided_layers(self):
        config = paper_implementation(2)
        model = AcceleratorModel(config)
        results = [model.run_layer(layer) for layer in alexnet_conv_layers()]
        assert all(result.dram.total > 0 for result in results)
        # AlexNet's stride-4 11x11 first layer is pathological for an IGBuf
        # sized around VGG-style 3x3 layers (its halo caps the spatial tile),
        # so only the remaining layers are expected to keep the array busy.
        assert all(result.utilization["pe"] > 0.05 for result in results)
        assert all(result.utilization["pe"] > 0.5 for result in results[1:])


class TestEyerissRelationship:
    def test_ours_beats_uncompressed_eyeriss_on_vgg(self, vgg_layers, capacity_66k):
        ours = get_dataflow("Ours")
        eyeriss = EyerissModel()
        ours_total = sum(ours.search(layer, int(173.5 * 1024 / 2)).total for layer in vgg_layers)
        eyeriss_total = eyeriss.network_dram(vgg_layers).total
        assert ours_total < eyeriss_total
