"""Tests for repro.energy.model (Table II energy model)."""

import pytest

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import paper_implementation
from repro.core.layer import ConvLayer
from repro.energy.model import (
    EnergyBreakdown,
    EnergyModel,
    OPERATION_ENERGY,
    efficiency_gap,
    lreg_access_energy_pj,
    sram_access_energy_pj,
)


class TestOperationEnergies:
    def test_table2_values_present(self):
        assert OPERATION_ENERGY["mac"] == pytest.approx(4.16)
        assert OPERATION_ENERGY["dram"] == pytest.approx(427.9)
        assert OPERATION_ENERGY["lreg_128B"] == pytest.approx(1.92)

    @pytest.mark.parametrize("size,expected", [(256, 3.39), (128, 1.92), (64, 1.16)])
    def test_lreg_energy_at_table_points(self, size, expected):
        assert lreg_access_energy_pj(size) == pytest.approx(expected)

    @pytest.mark.parametrize("size,expected", [(512, 0.30), (2048, 1.39)])
    def test_sram_energy_at_table_points(self, size, expected):
        assert sram_access_energy_pj(size) == pytest.approx(expected)

    def test_interpolation_monotone(self):
        assert lreg_access_energy_pj(64) < lreg_access_energy_pj(96) < lreg_access_energy_pj(128)
        assert sram_access_energy_pj(1024) < sram_access_energy_pj(3072)

    def test_extrapolation_stays_positive(self):
        assert lreg_access_energy_pj(32) > 0
        assert sram_access_energy_pj(8192) > sram_access_energy_pj(3200)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            sram_access_energy_pj(0)


class TestEnergyBreakdown:
    def test_totals_and_pj_per_mac(self):
        breakdown = EnergyBreakdown(dram=10, gbuf=1, mac=4, lreg_dynamic=2, lreg_static=1,
                                    greg=0.5, other=0.5, macs=2)
        assert breakdown.lreg == 3
        assert breakdown.total == pytest.approx(19.0)
        assert breakdown.pj_per_mac == pytest.approx(9.5)
        assert breakdown.on_chip_total == pytest.approx(9.0)

    def test_addition(self):
        a = EnergyBreakdown(dram=1, mac=2, macs=1)
        b = EnergyBreakdown(dram=3, mac=4, macs=2)
        combined = a + b
        assert combined.dram == 4
        assert combined.macs == 3

    def test_component_dict_matches_total(self):
        breakdown = EnergyBreakdown(dram=10, gbuf=2, mac=4, lreg_dynamic=3, lreg_static=1,
                                    greg=1, other=1, macs=4)
        components = breakdown.component_pj_per_mac()
        assert sum(components.values()) == pytest.approx(breakdown.pj_per_mac)

    def test_empty_breakdown(self):
        assert EnergyBreakdown().pj_per_mac == 0.0
        assert EnergyBreakdown().component_pj_per_mac() == {}


class TestEnergyModel:
    @pytest.fixture(scope="class")
    def layer_energy(self):
        layer = ConvLayer("l", 1, 32, 28, 28, 64, 3, 3, padding=1)
        config = paper_implementation(1)
        result = AcceleratorModel(config).run_layer(layer)
        return layer, config, result, EnergyModel().layer_energy(result, config)

    def test_all_components_positive(self, layer_energy):
        _, _, _, breakdown = layer_energy
        for value in (breakdown.dram, breakdown.gbuf, breakdown.mac,
                      breakdown.lreg_dynamic, breakdown.lreg_static, breakdown.greg,
                      breakdown.other):
            assert value > 0

    def test_mac_energy_exact(self, layer_energy):
        layer, _, result, breakdown = layer_energy
        assert breakdown.mac == pytest.approx(result.macs * 4.16)

    def test_dram_energy_exact(self, layer_energy):
        _, _, result, breakdown = layer_energy
        assert breakdown.dram == pytest.approx(result.dram.total * 427.9)

    def test_network_energy_sums(self, layer_energy):
        layer, config, _, single = layer_energy
        network = AcceleratorModel(config).run_network([layer, layer])
        total = EnergyModel().network_energy(network, config)
        assert total.total == pytest.approx(2 * single.total, rel=1e-6)

    def test_lower_bound_energy_below_actual(self, layer_energy):
        layer, config, _, breakdown = layer_energy
        bound = EnergyModel().lower_bound_energy([layer], config.effective_on_chip_words)
        assert bound.total < breakdown.total
        assert bound.macs == layer.macs

    def test_efficiency_gap(self, layer_energy):
        layer, config, _, breakdown = layer_energy
        bound = EnergyModel().lower_bound_energy([layer], config.effective_on_chip_words)
        gap = efficiency_gap(breakdown, bound)
        assert gap > 0
        with pytest.raises(ValueError):
            efficiency_gap(breakdown, EnergyBreakdown())

    def test_more_pes_reduce_lreg_static_share(self, vgg_layer_mid):
        energy_model = EnergyModel()
        small_cfg = paper_implementation(1)
        big_cfg = paper_implementation(3)
        small = energy_model.layer_energy(
            AcceleratorModel(small_cfg).run_layer(vgg_layer_mid), small_cfg
        )
        big = energy_model.layer_energy(
            AcceleratorModel(big_cfg).run_layer(vgg_layer_mid), big_cfg
        )
        # Paper's argument: more PEs -> shorter runtime and smaller LRegs ->
        # lower register energy per MAC.
        assert big.lreg / big.macs < small.lreg / small.macs
