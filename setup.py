"""Setup shim.

The offline evaluation environment ships setuptools without the ``wheel``
package, so PEP-517 editable installs fail with "invalid command
'bdist_wheel'".  This shim lets ``pip install -e . --no-use-pep517`` (and
plain ``python setup.py develop``) work; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
