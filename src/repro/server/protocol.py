"""Wire format of the search daemon: JSON documents, bit-exact round-trips.

The daemon's contract is that a served result equals a direct
``SearchEngine`` call *bit for bit*.  JSON can honour that: every number in
a :class:`~repro.dataflows.base.DataflowResult` is an int or a float, both
of which round-trip exactly through Python's ``json`` (floats are emitted
via ``repr``, which is shortest-exact), and tilings are ``{str: int}``
dictionaries.  :func:`result_to_wire` / :func:`result_from_wire` are the
two halves of that round-trip; the client reconstructs genuine
``DataflowResult`` / ``TrafficBreakdown`` dataclasses, so client-side
equality checks against local engine results are meaningful.

Requests name their layer either inline (a shape dictionary) or by
reference into the workload registry (``{"workload": "vgg16",
"layer_index": 3}``), and their capacity either in words or KiB
(converted with the same :func:`~repro.core.layer.kib_to_words` the CLI
uses).  Malformed requests raise :class:`ProtocolError`, which the daemon
maps to HTTP 400 with the message in the body.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer, kib_to_words
from repro.core.traffic import TrafficBreakdown
from repro.dataflows.base import DataflowResult

#: ConvLayer constructor fields, in wire order.
LAYER_FIELDS = (
    "name",
    "batch",
    "in_channels",
    "in_height",
    "in_width",
    "out_channels",
    "kernel_height",
    "kernel_width",
    "stride",
    "padding",
)

#: TrafficBreakdown fields, in wire order.
TRAFFIC_FIELDS = ("input_reads", "weight_reads", "output_reads", "output_writes")


class ProtocolError(ValueError):
    """A malformed or unserviceable request document (HTTP 400)."""


def layer_to_wire(layer: ConvLayer) -> dict:
    return {name: getattr(layer, name) for name in LAYER_FIELDS}


def layer_from_wire(document: dict) -> ConvLayer:
    if not isinstance(document, dict):
        raise ProtocolError(f"layer must be an object, got {type(document).__name__}")
    unknown = set(document) - set(LAYER_FIELDS)
    if unknown:
        raise ProtocolError(f"unknown layer fields: {', '.join(sorted(unknown))}")
    missing = set(LAYER_FIELDS[:-2]) - set(document)  # stride/padding default
    if missing:
        raise ProtocolError(f"layer is missing fields: {', '.join(sorted(missing))}")
    try:
        return ConvLayer(**document)
    except (TypeError, ValueError) as error:
        raise ProtocolError(f"invalid layer: {error}") from error


def traffic_to_wire(traffic: TrafficBreakdown) -> dict:
    return {name: getattr(traffic, name) for name in TRAFFIC_FIELDS}


def traffic_from_wire(document: dict) -> TrafficBreakdown:
    return TrafficBreakdown(**{name: document[name] for name in TRAFFIC_FIELDS})


def result_to_wire(result: DataflowResult) -> dict:
    return {
        "dataflow": result.dataflow,
        "layer_name": result.layer_name,
        "capacity_words": result.capacity_words,
        "tiling": dict(result.tiling),
        "traffic": traffic_to_wire(result.traffic),
    }


def result_from_wire(document: dict) -> DataflowResult:
    return DataflowResult(
        dataflow=document["dataflow"],
        layer_name=document["layer_name"],
        capacity_words=document["capacity_words"],
        tiling=dict(document["tiling"]),
        traffic=traffic_from_wire(document["traffic"]),
    )


# ---------------------------------------------------------------- requests


def resolve_dataflow(document: dict):
    """The registry dataflow a request names (``{"dataflow": "Ours"}``)."""
    # Imported here: the registry pulls in every dataflow module.
    from repro.dataflows.registry import get_dataflow

    name = document.get("dataflow")
    if not isinstance(name, str):
        raise ProtocolError("request needs a 'dataflow' name")
    try:
        return get_dataflow(name)
    except KeyError as error:
        raise ProtocolError(str(error.args[0])) from error


def resolve_layer(document: dict) -> ConvLayer:
    """The layer a request describes, inline or by workload reference."""
    from repro.workloads.registry import UnknownWorkloadError, get_workload_spec

    if "layer" in document:
        return layer_from_wire(document["layer"])
    workload = document.get("workload")
    if not isinstance(workload, str):
        raise ProtocolError(
            "request needs either an inline 'layer' object or a 'workload' "
            "reference with 'layer_index' or 'layer_name'"
        )
    try:
        layers = get_workload_spec(workload)
    except (UnknownWorkloadError, ValueError) as error:
        raise ProtocolError(str(error)) from error
    if "layer_index" in document:
        index = document["layer_index"]
        if not isinstance(index, int) or not 0 <= index < len(layers):
            raise ProtocolError(
                f"layer_index must be an int in [0, {len(layers)}), got {index!r}"
            )
        return layers[index]
    if "layer_name" in document:
        name = document["layer_name"]
        for layer in layers:
            if layer.name == name:
                return layer
        raise ProtocolError(f"workload {workload!r} has no layer named {name!r}")
    raise ProtocolError("workload reference needs 'layer_index' or 'layer_name'")


def resolve_capacity(document: dict) -> int:
    """A request's capacity in words (``capacity_words`` or ``capacity_kib``)."""
    if "capacity_words" in document and "capacity_kib" in document:
        raise ProtocolError("pass capacity_words or capacity_kib, not both")
    if "capacity_words" in document:
        capacity = document["capacity_words"]
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ProtocolError(
                f"capacity_words must be a positive integer, got {capacity!r}"
            )
        return capacity
    if "capacity_kib" in document:
        kib = document["capacity_kib"]
        if not isinstance(kib, (int, float)) or isinstance(kib, bool) or kib <= 0:
            raise ProtocolError(f"capacity_kib must be a positive number, got {kib!r}")
        return kib_to_words(kib)
    raise ProtocolError("request needs 'capacity_words' or 'capacity_kib'")


def resolve_capacities(document: dict) -> list:
    """A multi-capacity request's word list (``capacities_words`` / ``_kib``)."""
    if "capacities_words" in document and "capacities_kib" in document:
        raise ProtocolError("pass capacities_words or capacities_kib, not both")
    for field, convert in (
        ("capacities_words", lambda value: resolve_capacity({"capacity_words": value})),
        ("capacities_kib", lambda value: resolve_capacity({"capacity_kib": value})),
    ):
        if field in document:
            values = document[field]
            if not isinstance(values, list) or not values:
                raise ProtocolError(f"{field} must be a non-empty list")
            return [convert(value) for value in values]
    raise ProtocolError("request needs 'capacities_words' or 'capacities_kib'")
