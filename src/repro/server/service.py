"""Request coalescing and micro-batching in front of one shared engine.

:class:`SearchService` is the concurrency heart of the daemon.  It owns the
process's single :class:`~repro.engine.SearchEngine` and turns many
concurrent ``search`` awaits into few engine invocations:

* **Coalescing** -- each distinct :func:`~repro.engine.task_key` has at
  most one in-flight future; a request arriving while "its" computation is
  already running (or queued) awaits that same future instead of submitting
  anything.  Such requests count in ``stats.coalesced`` and deliberately do
  *not* touch the hit/miss counters, preserving the engine invariant that
  ``hits + misses`` equals the number of tasks actually submitted.

* **Micro-batching** -- fresh keys are not executed immediately: they queue
  behind a short flush window (default 2 ms).  Everything pending at flush
  time goes to the engine as *one* ``search_tasks`` call, whose internal
  grouping turns same-``(dataflow, layer)`` tasks into a single
  ``search_many``-style grid evaluation on the NumPy backend.  Tasks that
  shared their flush group with at least one compatible neighbour count in
  ``stats.batched``.

The engine itself is synchronous and not thread-safe, so every engine call
funnels through a dedicated single-thread executor; the event loop stays
free to accept and coalesce requests while a batch computes.  Results are
bit-identical to direct engine calls: the service returns exactly what
``search_tasks`` returns, re-labelled per requester the same way the engine
re-labels shape-equal layers.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.engine import SearchEngine, task_key

#: Seconds a fresh key waits for compatible neighbours before flushing.
DEFAULT_FLUSH_WINDOW_S = 0.002

#: Queue length that triggers an immediate flush regardless of the window.
DEFAULT_MAX_BATCH = 256


class SearchService:
    """Coalescing, micro-batching async facade over one ``SearchEngine``."""

    def __init__(
        self,
        engine: SearchEngine,
        flush_window_s: float = DEFAULT_FLUSH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
    ):
        if flush_window_s < 0:
            raise ValueError(f"flush_window_s must be >= 0, got {flush_window_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.flush_window_s = flush_window_s
        self.max_batch = max_batch
        self._inflight = {}  # task_key -> asyncio.Future resolving to a result
        self._queue = []  # [(key, (dataflow, layer, capacity_words))] awaiting flush
        self._flush_handle = None  # armed window timer, if any
        # One thread: the engine is synchronous and not thread-safe, so all
        # its work serializes here while the event loop keeps coalescing.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="search-engine"
        )

    # --------------------------------------------------------------- serving

    async def search(self, dataflow, layer, capacity_words: int):
        """Best result for one task, or ``None`` when no tiling fits.

        Bit-identical to ``engine.try_search`` -- including the re-label of
        shape-equal layers to *this* request's layer name.
        """
        key = task_key(dataflow, layer, capacity_words)
        future = self._inflight.get(key)
        if future is not None:
            self.engine.stats.coalesced += 1
        else:
            future = asyncio.get_running_loop().create_future()
            self._inflight[key] = future
            self._queue.append((key, (dataflow, layer, capacity_words)))
            self._arm_flush()
        # shield: one client dropping its connection must not cancel a
        # computation other clients are awaiting.
        result = await asyncio.shield(future)
        if result is None:
            return None
        return replace(result, layer_name=layer.name, tiling=dict(result.tiling))

    async def search_many(self, dataflow, layer, capacities) -> list:
        """One result (or ``None``) per capacity, like ``engine.search_many``.

        Submitted concurrently, so the capacities land in one flush window
        and execute as a single grid evaluation per ``(dataflow, layer)``.
        """
        return list(
            await asyncio.gather(
                *(self.search(dataflow, layer, capacity) for capacity in capacities)
            )
        )

    async def run_in_engine_thread(self, func, *args):
        """Run ``func(*args)`` on the engine thread (serialized with batches)."""
        return await asyncio.get_running_loop().run_in_executor(
            self._executor, func, *args
        )

    # -------------------------------------------------------------- batching

    def _arm_flush(self) -> None:
        loop = asyncio.get_running_loop()
        if len(self._queue) >= self.max_batch:
            if self._flush_handle is not None:
                self._flush_handle.cancel()
                self._flush_handle = None
            self._flush()
        elif self._flush_handle is None:
            self._flush_handle = loop.call_later(self.flush_window_s, self._on_window)

    def _on_window(self) -> None:
        self._flush_handle = None
        self._flush()

    def _flush(self) -> None:
        if not self._queue:
            return
        batch, self._queue = self._queue, []
        groups = {}
        for key, _ in batch:
            # key = (dataflow signature, layer signature, capacity); the
            # first two components are the engine's grid-grouping identity.
            groups[key[:2]] = groups.get(key[:2], 0) + 1
        for size in groups.values():
            if size > 1:
                self.engine.stats.batched += size
        asyncio.get_running_loop().create_task(self._run_batch(batch))

    async def _run_batch(self, batch: list) -> None:
        tasks = [task for _, task in batch]
        try:
            results = await asyncio.get_running_loop().run_in_executor(
                self._executor, self.engine.search_tasks, tasks
            )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            for key, _ in batch:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(error)
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                raise
            return
        for (key, _), result in zip(batch, results):
            future = self._inflight.pop(key, None)
            if future is not None and not future.done():
                future.set_result(result)

    # ----------------------------------------------------------- maintenance

    async def drain(self) -> None:
        """Wait until every queued and in-flight computation has resolved."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._flush()
        while self._inflight:
            await asyncio.wait(list(self._inflight.values()))

    def close(self) -> None:
        """Stop the engine thread (pending batches finish first)."""
        if self._flush_handle is not None:
            self._flush_handle.cancel()
            self._flush_handle = None
        self._executor.shutdown(wait=True)
