"""A small stdlib client for the search daemon.

:class:`SearchClient` wraps ``http.client`` -- no new dependency -- and
mirrors the engine's surface: ``search`` returns a genuine
:class:`~repro.dataflows.base.DataflowResult` (or ``None`` when no tiling
fits), ``search_many`` a list of them, so callers can compare served
results against local engine results with plain ``==`` and expect
bit-identity.  One client holds one keep-alive connection; it is **not**
thread-safe -- give each thread its own client (they may all point at the
same daemon; coalescing happens server-side).

    from repro.server import SearchClient

    with SearchClient(port=8765) as client:
        result = client.search("Ours", workload="vgg16", layer_index=3,
                               capacity_kib=128)
        print(result.traffic.total())

Experiment runs stream: ``run_experiments``/``resume_experiments`` yield
one event dictionary per orchestration unit as the daemon emits them, with
a final ``{"event": "report", ...}``.
"""

from __future__ import annotations

import http.client
import json
import socket

from repro.server.protocol import layer_to_wire, result_from_wire

DEFAULT_TIMEOUT_S = 300.0


class ServerError(RuntimeError):
    """A non-2xx daemon response; carries the HTTP status and message."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class SearchClient:
    """One keep-alive connection to a running search daemon."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._connection = None

    # ----------------------------------------------------------- plumbing

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def _request(self, method: str, path: str, document: dict = None):
        body = None
        headers = {}
        if document is not None:
            body = json.dumps(document).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive connection (daemon restarted, idle
            # timeout): reconnect once and retry.
            self.close()
            connection = self._connect()
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
        return response

    def _json(self, method: str, path: str, document: dict = None) -> dict:
        response = self._request(method, path, document)
        payload = response.read()
        parsed = self._parse(response.status, payload)
        if response.status != 200:
            raise ServerError(response.status, parsed.get("error", payload.decode()))
        return parsed

    @staticmethod
    def _parse(status: int, payload: bytes) -> dict:
        try:
            return json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServerError(status, f"unparseable response: {error}") from error

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "SearchClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------- queries

    def healthz(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def workloads(self) -> list:
        return self._json("GET", "/workloads")["workloads"]

    def dataflows(self) -> list:
        return self._json("GET", "/dataflows")["dataflows"]

    # ------------------------------------------------------------ searches

    def search(
        self,
        dataflow: str,
        layer=None,
        workload: str = None,
        layer_index: int = None,
        layer_name: str = None,
        capacity_words: int = None,
        capacity_kib: float = None,
    ):
        """Best served result for one task, or ``None`` when nothing fits."""
        document = self._task_document(
            dataflow, layer, workload, layer_index, layer_name
        )
        if capacity_words is not None:
            document["capacity_words"] = capacity_words
        if capacity_kib is not None:
            document["capacity_kib"] = capacity_kib
        answer = self._json("POST", "/search", document)
        if not answer["feasible"]:
            return None
        return result_from_wire(answer["result"])

    def search_many(
        self,
        dataflow: str,
        layer=None,
        workload: str = None,
        layer_index: int = None,
        layer_name: str = None,
        capacities_words: list = None,
        capacities_kib: list = None,
    ) -> list:
        """One result (or ``None``) per capacity, in request order."""
        document = self._task_document(
            dataflow, layer, workload, layer_index, layer_name
        )
        if capacities_words is not None:
            document["capacities_words"] = list(capacities_words)
        if capacities_kib is not None:
            document["capacities_kib"] = list(capacities_kib)
        answer = self._json("POST", "/search-many", document)
        return [
            result_from_wire(item["result"]) if item["feasible"] else None
            for item in answer["results"]
        ]

    @staticmethod
    def _task_document(dataflow, layer, workload, layer_index, layer_name) -> dict:
        document = {"dataflow": dataflow}
        if layer is not None:
            document["layer"] = layer_to_wire(layer)
        if workload is not None:
            document["workload"] = workload
        if layer_index is not None:
            document["layer_index"] = layer_index
        if layer_name is not None:
            document["layer_name"] = layer_name
        return document

    # --------------------------------------------------------- experiments

    def run_experiments(
        self,
        experiments: list,
        out_dir: str,
        workloads: list = None,
        backends: list = None,
        params: dict = None,
        workers: int = None,
        shard: str = None,
        cache_store: str = None,
        max_units: int = None,
    ):
        """Start an orchestrated run; yields one event dict per unit.

        ``out_dir`` is relative to the daemon's work dir.  The final event is
        ``{"event": "report", "report": {...}}`` (or ``{"event": "error"}``).
        """
        document = {"experiments": list(experiments), "out_dir": out_dir}
        if workloads is not None:
            document["workloads"] = list(workloads)
        if backends is not None:
            document["backends"] = list(backends)
        if params is not None:
            document["params"] = params
        if workers is not None:
            document["workers"] = workers
        if shard is not None:
            document["shard"] = shard
        if cache_store is not None:
            document["cache_store"] = cache_store
        if max_units is not None:
            document["max_units"] = max_units
        return self._stream("/experiments/run", document)

    def resume_experiments(
        self,
        out_dir: str,
        workers: int = None,
        cache_store: str = None,
        max_units: int = None,
    ):
        """Resume a previous run in the daemon's work dir; yields events."""
        document = {"out_dir": out_dir}
        if workers is not None:
            document["workers"] = workers
        if cache_store is not None:
            document["cache_store"] = cache_store
        if max_units is not None:
            document["max_units"] = max_units
        return self._stream("/experiments/resume", document)

    def _stream(self, path: str, document: dict):
        """Yield NDJSON events from a streaming endpoint.

        Uses a dedicated connection (the stream monopolises the socket until
        the run finishes; ``http.client`` de-chunks transparently).
        """
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            connection.request(
                "POST",
                path,
                body=json.dumps(document).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status != 200:
                payload = response.read()
                parsed = self._parse(response.status, payload)
                raise ServerError(
                    response.status, parsed.get("error", payload.decode())
                )
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    # ----------------------------------------------------------- lifecycle

    def shutdown(self) -> dict:
        """Ask the daemon to shut down gracefully (it flushes its cache)."""
        try:
            return self._json("POST", "/shutdown")
        except (http.client.HTTPException, socket.error):
            # The daemon may close the socket right after (or while)
            # acknowledging; that still counts as a successful shutdown.
            return {"status": "shutting-down"}
        finally:
            self.close()
