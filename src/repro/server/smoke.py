"""End-to-end smoke for the search daemon; the CI ``server-smoke`` gate.

Run as ``python -m repro.server.smoke``.  It spawns a real daemon
subprocess with a SQLite-backed cache, then proves the service claims that
matter:

1. **bit-identity under concurrency** -- 32 threads fire overlapping
   searches (every distinct task requested several times); every served
   result must equal the direct ``SearchEngine`` answer exactly;
2. **coalescing and batching are active** -- ``/stats`` must report
   ``coalesced > 0`` (duplicate in-flight requests shared computations) and
   ``batched > 0`` (compatible capacities merged into grid evaluations);
3. **experiment streaming works** -- a small orchestrated run streams
   per-unit NDJSON events ending in a report;
4. **SIGTERM is graceful** -- the daemon exits 0, and the SQLite cache it
   leaves behind reopens cleanly with the searched entries present and
   servable as hits.

Exits 0 on success, 1 with a diagnostic on any failure.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time

DATAFLOWS = ("Ours", "OutR-A", "InR-B")
CAPACITIES_KIB = (16, 64)
LAYER_INDICES = (0, 1)
REPEATS = 3  # 3 repeats x 12 distinct tasks + 1 warm-up batch = 37 requests

STARTUP_TIMEOUT_S = 30.0
SHUTDOWN_TIMEOUT_S = 30.0


def fail(message: str) -> None:
    print(f"server smoke: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def start_daemon(cache_path: str, work_dir: str) -> tuple:
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server.daemon",
            "--port",
            "0",
            "--cache-file",
            cache_path,
            "--work-dir",
            work_dir,
            "--flush-window-ms",
            "5",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT_S
    line = ""
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if line:
            break
        if process.poll() is not None:
            fail(f"daemon died at startup: {process.stderr.read()}")
    if not line:
        process.kill()
        fail("daemon produced no listening announcement in time")
    try:
        announcement = json.loads(line)
        assert announcement["event"] == "listening"
    except (json.JSONDecodeError, KeyError, AssertionError):
        process.kill()
        fail(f"unexpected startup line: {line!r}")
    return process, announcement["port"]


def main() -> int:
    from repro.core.layer import kib_to_words
    from repro.dataflows.registry import get_dataflow
    from repro.engine import SearchCache, SearchEngine
    from repro.server.client import SearchClient
    from repro.workloads.registry import get_workload_spec

    tasks = [
        (dataflow, index, kib)
        for dataflow in DATAFLOWS
        for index in LAYER_INDICES
        for kib in CAPACITIES_KIB
    ]
    layers = get_workload_spec("tiny")

    # Ground truth, computed directly (fresh engine, no cache file).
    engine = SearchEngine()
    expected = {
        (name, index, kib): engine.try_search(
            get_dataflow(name), layers[index], kib_to_words(kib)
        )
        for name, index, kib in tasks
    }

    tmp = tempfile.mkdtemp(prefix="repro-server-smoke-")
    cache_path = os.path.join(tmp, "cache.sqlite")
    work_dir = os.path.join(tmp, "runs")
    process, port = start_daemon(cache_path, work_dir)
    try:
        # --- 1. concurrency: every task requested REPEATS times at once ---
        requests = tasks * REPEATS
        served = {}
        errors = []
        lock = threading.Lock()
        barrier = threading.Barrier(len(requests))

        def worker(slot: int, task: tuple) -> None:
            dataflow, index, kib = task
            try:
                with SearchClient(port=port) as client:
                    barrier.wait(timeout=60)
                    result = client.search(
                        dataflow, workload="tiny", layer_index=index, capacity_kib=kib
                    )
                with lock:
                    served[(slot, task)] = result
            except Exception as error:  # noqa: BLE001 - collected and reported
                with lock:
                    errors.append(f"{task}: {type(error).__name__}: {error}")

        threads = [
            threading.Thread(target=worker, args=(slot, task))
            for slot, task in enumerate(requests)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        if errors:
            fail("request errors: " + "; ".join(errors[:5]))
        if len(served) != len(requests):
            fail(f"served {len(served)} of {len(requests)} requests")
        for (_slot, task), result in served.items():
            if result != expected[task]:
                fail(
                    f"served result differs from direct engine for {task}:\n"
                    f"  served:   {result}\n  expected: {expected[task]}"
                )

        with SearchClient(port=port) as client:
            # One multi-capacity request exercises the search-many endpoint
            # (and is a guaranteed same-layer batch on top of the stampede).
            many = client.search_many(
                "Ours",
                workload="tiny",
                layer_index=0,
                capacities_kib=list(CAPACITIES_KIB),
            )
            expected_many = [
                expected[("Ours", 0, kib)] for kib in CAPACITIES_KIB
            ]
            if many != expected_many:
                fail("search_many results differ from direct engine")

            # --- 2. coalescing/batching counters ----------------------------
            stats = client.stats()
            engine_stats = stats["engine"]
            if engine_stats.get("coalesced", 0) <= 0:
                fail(f"expected coalesced > 0 under duplicates, got {engine_stats}")
            if engine_stats.get("batched", 0) <= 0:
                fail(f"expected batched > 0 under concurrent load, got {engine_stats}")
            if stats["cache_entries"] < len(tasks):
                fail(
                    f"cache holds {stats['cache_entries']} entries, "
                    f"expected >= {len(tasks)}"
                )

            # --- 3. experiment streaming ------------------------------------
            events = list(
                client.run_experiments(
                    ["table2"], out_dir="smoke-run", workloads=["tiny"]
                )
            )
            if not events or events[-1].get("event") != "report":
                fail(f"experiment stream did not end in a report: {events[-2:]}")
            report = events[-1]["report"]
            if report.get("units_failed", 1) != 0:
                fail(f"streamed run reported failures: {report}")
            if not any(event.get("event") == "unit" for event in events):
                fail(f"no per-unit progress events streamed: {events}")

        # --- 4. graceful SIGTERM -------------------------------------------
        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=SHUTDOWN_TIMEOUT_S)
        except subprocess.TimeoutExpired:
            process.kill()
            fail("daemon did not exit within the SIGTERM grace window")
        if code != 0:
            fail(f"daemon exited {code} on SIGTERM: {process.stderr.read()}")

        # The cache must reopen cleanly and serve the searched entries as
        # hits -- proof the SQLite store was flushed before exit.
        reopened = SearchCache(path=cache_path)
        try:
            if len(reopened) < len(tasks):
                fail(
                    f"reopened cache holds {len(reopened)} entries, "
                    f"expected >= {len(tasks)}"
                )
        finally:
            reopened.close()
        warm = SearchEngine(cache_path=cache_path)
        try:
            for dataflow, index, kib in tasks:
                result = warm.try_search(
                    get_dataflow(dataflow), layers[index], kib_to_words(kib)
                )
                if result != expected[(dataflow, index, kib)]:
                    fail(
                        "restarted cache served a different result for "
                        f"{(dataflow, index, kib)}"
                    )
            if warm.stats.hits != len(tasks) or warm.stats.misses != 0:
                fail(f"restarted cache was not fully warm: {warm.stats}")
        finally:
            warm.cache.close()
    finally:
        if process.poll() is None:
            process.kill()
            process.wait()

    print(
        "server smoke: ALL OK "
        f"({len(requests) + 2} requests, coalesced={engine_stats['coalesced']}, "
        f"batched={engine_stats['batched']}, cache_entries={stats['cache_entries']})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
