"""The asyncio HTTP/1.1 daemon: one shared engine serving concurrent clients.

The server is handwritten over ``asyncio`` streams -- no web framework, no
new runtime dependency -- because the protocol surface is deliberately tiny:
JSON request bodies, JSON responses, and chunked NDJSON for streaming
experiment progress.  Keep-alive is supported (the benchmark client reuses
connections); request parsing enforces small hard limits so a malformed
client cannot balloon memory.

Endpoints
---------

======================  ====  =====================================================
``/healthz``            GET   liveness: version, backend, uptime, cache size
``/stats``              GET   engine counters (hits/misses/coalesced/batched/...)
``/workloads``          GET   registered workload names
``/dataflows``          GET   registered dataflow names
``/search``             POST  one ``(dataflow, layer, capacity)`` search
``/search-many``        POST  one dataflow+layer over many capacities
``/experiments/run``    POST  orchestrated run; streams per-unit NDJSON progress
``/experiments/resume`` POST  resume an orchestrated run; same stream
``/shutdown``           POST  graceful shutdown (same path as SIGTERM)
======================  ====  =====================================================

All searches route through the :class:`~repro.server.service.SearchService`
coalescer/batcher, so responses are bit-identical to direct engine calls
while concurrent duplicates cost one computation.  On SIGTERM/SIGINT (or
``POST /shutdown``) the daemon stops accepting connections, drains in-flight
work, persists the cache (a SQLite-backed cache is already durable and is
WAL-checkpointed) and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
import time

from repro import __version__
from repro.engine import SearchEngine, resolve_store
from repro.orchestration.experiments import resolve_experiment_name
from repro.orchestration.manifest import (
    DEFAULT_WORKLOADS,
    ManifestSpec,
    RunManifest,
    parse_shard,
)
from repro.orchestration.runner import Runner, load_run_metadata
from repro.server.protocol import (
    ProtocolError,
    resolve_capacities,
    resolve_capacity,
    resolve_dataflow,
    resolve_layer,
    result_to_wire,
)
from repro.server.service import (
    DEFAULT_FLUSH_WINDOW_S,
    DEFAULT_MAX_BATCH,
    SearchService,
)
from repro.workloads.registry import UnknownWorkloadError, get_workload_spec

#: Hard parse limits; a request larger than this is a client bug.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_LINES = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class _BadRequest(Exception):
    """Unparseable HTTP; the connection is answered 400 and closed."""


class _Request:
    def __init__(self, method: str, path: str, headers: dict, body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body

    def json(self) -> dict:
        if not self.body:
            return {}
        try:
            document = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(f"request body is not valid JSON: {error}") from error
        if not isinstance(document, dict):
            raise ProtocolError("request body must be a JSON object")
        return document

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


async def _read_request(reader: asyncio.StreamReader):
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed connection."""
    try:
        request_line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise _BadRequest("truncated request line") from error
    except asyncio.LimitOverrunError as error:
        raise _BadRequest("request line too long") from error
    if len(request_line) > MAX_REQUEST_LINE:
        raise _BadRequest("request line too long")
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise _BadRequest(f"malformed request line: {request_line!r}")
    method, target, _version = parts
    path = target.split("?", 1)[0]
    headers = {}
    for _ in range(MAX_HEADER_LINES):
        line = await reader.readuntil(b"\n")
        if line in (b"\r\n", b"\n"):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise _BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    else:
        raise _BadRequest("too many header lines")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError as error:
        raise _BadRequest("malformed Content-Length") from error
    if length < 0 or length > MAX_BODY_BYTES:
        raise _BadRequest(f"body of {length} bytes exceeds the {MAX_BODY_BYTES} limit")
    body = await reader.readexactly(length) if length else b""
    return _Request(method, path, headers, body)


def _json_bytes(document) -> bytes:
    return (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")


def _response_head(status: int, content_type: str, extra: str = "") -> bytes:
    return (
        f"HTTP/1.1 {status} {_REASONS[status]}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Server: repro-search/{__version__}\r\n"
        f"{extra}\r\n"
    ).encode("latin-1")


class SearchDaemon:
    """One resident engine behind a small asyncio HTTP server."""

    def __init__(
        self,
        engine: SearchEngine = None,
        host: str = "127.0.0.1",
        port: int = 8765,
        flush_window_s: float = DEFAULT_FLUSH_WINDOW_S,
        max_batch: int = DEFAULT_MAX_BATCH,
        work_dir: str = None,
    ):
        self.engine = engine if engine is not None else SearchEngine()
        self.service = SearchService(
            self.engine, flush_window_s=flush_window_s, max_batch=max_batch
        )
        self.host = host
        self.port = port
        # Experiment trees are confined here; requests address them by
        # relative name so a client can never write outside the sandbox.
        self.work_dir = os.path.abspath(work_dir or os.path.join(os.getcwd(), "serve-runs"))
        self.requests_served = 0
        self._started_monotonic = time.monotonic()
        self._server = None
        self._shutdown = None  # created on start(), inside the loop
        self._connections = set()

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (signal handlers and POST /shutdown)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until :meth:`request_shutdown`; then drain and persist."""
        await self._shutdown.wait()
        await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, drain in-flight work, persist the cache."""
        self._server.close()
        await self._server.wait_closed()
        await self.service.drain()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        # Flush search results: pickle caches need an explicit save; a
        # SQLite cache is already durable and save() checkpoints its WAL.
        if self.engine.cache is not None and self.engine.cache.path:
            await self.service.run_in_engine_thread(self.engine.save)
        self.service.close()
        if self.engine.cache is not None:
            self.engine.cache.close()

    def uptime_seconds(self) -> float:
        return time.monotonic() - self._started_monotonic

    # ------------------------------------------------------------ connection

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except _BadRequest as error:
                    body = _json_bytes({"error": str(error)})
                    writer.write(
                        _response_head(
                            400,
                            "application/json",
                            f"Content-Length: {len(body)}\r\nConnection: close\r\n",
                        )
                        + body
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                self.requests_served += 1
                keep_alive = await self._dispatch(request, writer)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: _Request, writer) -> bool:
        handler = self._ROUTES.get(request.path)
        if handler is None:
            await self._send_json(writer, request, 404, {"error": f"no such endpoint: {request.path}"})
            return request.keep_alive
        method, bound = handler
        if request.method != method:
            await self._send_json(
                writer, request, 405, {"error": f"{request.path} expects {method}"}
            )
            return request.keep_alive
        try:
            if bound in ("_stream_run", "_stream_resume"):
                # Streaming endpoints own the socket until the run finishes;
                # the connection closes afterwards (chunked + close is the
                # simplest correct framing for a long-lived stream).
                await getattr(self, bound)(request, writer)
                return False
            status, document = await getattr(self, bound)(request)
        except (ProtocolError, UnknownWorkloadError) as error:
            status, document = 400, {"error": str(error)}
        except ValueError as error:
            # The package-wide convention: ValueError marks an operator
            # mistake (infeasible capacity, bad spec), not an internal bug.
            status, document = 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - a handler bug must not
            # kill the connection loop, let alone the daemon.
            status, document = 500, {"error": f"{type(error).__name__}: {error}"}
        await self._send_json(writer, request, status, document)
        return request.keep_alive

    async def _send_json(self, writer, request: _Request, status: int, document) -> None:
        body = _json_bytes(document)
        connection = "keep-alive" if request.keep_alive else "close"
        writer.write(
            _response_head(
                status,
                "application/json",
                f"Content-Length: {len(body)}\r\nConnection: {connection}\r\n",
            )
            + body
        )
        await writer.drain()

    # ------------------------------------------------------------- endpoints

    async def _handle_healthz(self, request: _Request):
        cache = self.engine.cache
        return 200, {
            "status": "ok",
            "version": __version__,
            "pid": os.getpid(),
            "uptime_seconds": round(self.uptime_seconds(), 3),
            "backend": self.engine.backend,
            "workers": self.engine.workers,
            "cache_entries": len(cache) if cache is not None else None,
            "cache_path": cache.path if cache is not None else None,
            "cache_store": cache.store_backend if cache is not None else None,
        }

    async def _handle_stats(self, request: _Request):
        cache = self.engine.cache
        return 200, {
            "engine": self.engine.stats.as_dict(),
            "cache_entries": len(cache) if cache is not None else 0,
            "cache_evictions": cache.evictions if cache is not None else 0,
            "requests_served": self.requests_served,
            "uptime_seconds": round(self.uptime_seconds(), 3),
        }

    async def _handle_workloads(self, request: _Request):
        from repro.workloads.registry import list_workloads

        return 200, {
            "workloads": [
                {
                    "name": workload.name,
                    "default_batch": workload.default_batch,
                    "description": workload.description,
                }
                for workload in list_workloads()
            ]
        }

    async def _handle_dataflows(self, request: _Request):
        from repro.dataflows.registry import dataflow_names

        return 200, {"dataflows": dataflow_names()}

    async def _handle_search(self, request: _Request):
        document = request.json()
        dataflow = resolve_dataflow(document)
        layer = resolve_layer(document)
        capacity = resolve_capacity(document)
        result = await self.service.search(dataflow, layer, capacity)
        if result is None:
            return 200, {"feasible": False, "result": None}
        return 200, {"feasible": True, "result": result_to_wire(result)}

    async def _handle_search_many(self, request: _Request):
        document = request.json()
        dataflow = resolve_dataflow(document)
        layer = resolve_layer(document)
        capacities = resolve_capacities(document)
        results = await self.service.search_many(dataflow, layer, capacities)
        return 200, {
            "results": [
                {"feasible": False, "result": None}
                if result is None
                else {"feasible": True, "result": result_to_wire(result)}
                for result in results
            ]
        }

    async def _handle_shutdown(self, request: _Request):
        # The response is written by the dispatcher before the serve loop
        # reacts to the event, so the client sees the acknowledgement.
        asyncio.get_running_loop().call_soon(self.request_shutdown)
        return 200, {"status": "shutting-down"}

    # ----------------------------------------------------- experiment streams

    def _resolve_out_dir(self, name) -> str:
        if not isinstance(name, str) or not name:
            raise ProtocolError("request needs an 'out_dir' (relative run name)")
        resolved = os.path.abspath(os.path.join(self.work_dir, name))
        if resolved != self.work_dir and not resolved.startswith(
            self.work_dir + os.sep
        ):
            raise ProtocolError(f"out_dir {name!r} escapes the server work dir")
        return resolved

    def _build_run(self, document: dict):
        workloads = document.get("workloads", list(DEFAULT_WORKLOADS))
        experiments = document.get("experiments")
        if not experiments:
            raise ProtocolError("request needs a non-empty 'experiments' list")
        backends = document.get("backends", ["auto"])
        params = document.get("params", {})
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be an object")
        for workload in workloads:
            get_workload_spec(workload)  # fail fast, like the CLI
        resolved = []
        for name in experiments:
            canonical = resolve_experiment_name(name)
            if canonical not in resolved:
                resolved.append(canonical)
        spec = ManifestSpec(
            workloads=tuple(workloads),
            experiments=tuple(resolved),
            backends=tuple(backends),
            params=params,
        )
        manifest = RunManifest.from_spec(spec)
        out_dir = self._resolve_out_dir(document.get("out_dir"))
        workers = int(document.get("workers", 1))
        cache_store = document.get("cache_store", "sqlite")
        runner = Runner(manifest, out_dir, workers=workers, cache_store=cache_store)
        shard = parse_shard(str(document.get("shard", "1/1")))
        return runner, shard, document.get("max_units")

    async def _stream_run(self, request: _Request, writer) -> None:
        document = request.json()
        runner, shard, max_units = self._build_run(document)
        await self._stream_runner(writer, runner, shard, max_units, resume=True)

    async def _stream_resume(self, request: _Request, writer) -> None:
        document = request.json()
        out_dir = self._resolve_out_dir(document.get("out_dir"))
        metadata = load_run_metadata(out_dir)
        manifest = RunManifest.from_spec(ManifestSpec.from_dict(metadata["spec"]))
        workers = int(document.get("workers", metadata.get("workers", 1)))
        cache_store = document.get("cache_store", "sqlite")
        runner = Runner(manifest, out_dir, workers=workers, cache_store=cache_store)
        shard = tuple(metadata["shard"])
        await self._stream_runner(
            writer, runner, shard, document.get("max_units"), resume=True
        )

    async def _stream_runner(self, writer, runner, shard, max_units, resume) -> None:
        """Run one shard on a worker thread, streaming NDJSON unit events."""
        loop = asyncio.get_running_loop()
        events = asyncio.Queue()
        _DONE = object()

        def progress(event):
            loop.call_soon_threadsafe(events.put_nowait, event)

        async def pump():
            try:
                report = await asyncio.to_thread(
                    runner.run,
                    shard=shard,
                    resume=resume,
                    max_units=max_units,
                    progress=progress,
                )
                events.put_nowait({"event": "report", "report": report.as_dict()})
            except Exception as error:  # noqa: BLE001 - surfaced to the client
                events.put_nowait(
                    {"event": "error", "error": f"{type(error).__name__}: {error}"}
                )
            finally:
                events.put_nowait(_DONE)

        writer.write(
            _response_head(
                200,
                "application/x-ndjson",
                "Transfer-Encoding: chunked\r\nConnection: close\r\n",
            )
        )
        await writer.drain()
        task = asyncio.create_task(pump())
        try:
            while True:
                event = await events.get()
                if event is _DONE:
                    break
                chunk = _json_bytes(event)
                writer.write(f"{len(chunk):X}\r\n".encode("latin-1") + chunk + b"\r\n")
                await writer.drain()
            writer.write(b"0\r\n\r\n")
            await writer.drain()
        finally:
            await task

    _ROUTES = {
        "/healthz": ("GET", "_handle_healthz"),
        "/stats": ("GET", "_handle_stats"),
        "/workloads": ("GET", "_handle_workloads"),
        "/dataflows": ("GET", "_handle_dataflows"),
        "/search": ("POST", "_handle_search"),
        "/search-many": ("POST", "_handle_search_many"),
        "/experiments/run": ("POST", "_stream_run"),
        "/experiments/resume": ("POST", "_stream_resume"),
        "/shutdown": ("POST", "_handle_shutdown"),
    }


# ------------------------------------------------------------------ serve CLI


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments serve",
        description="Run the search daemon: a long-lived engine serving "
        "concurrent clients with request coalescing, micro-batching and a "
        "persistent shared cache.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port",
        type=int,
        default=8765,
        help="TCP port (0 picks a free one; the chosen port is announced "
        "on stdout as a JSON 'listening' event)",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help="persistent cache path; a .sqlite/.db extension (recommended "
        "for serving) selects the concurrency-safe SQLite store, .pkl the "
        "single-payload pickle store",
    )
    parser.add_argument(
        "--cache-store",
        choices=["auto", "pickle", "sqlite"],
        default="auto",
        help="persistence backend for --cache-file (default: by extension)",
    )
    parser.add_argument(
        "--cache-max-entries",
        type=int,
        default=None,
        help="LRU bound on the cache (default: unbounded)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the tiling searches (0 = all cores)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="search backend (results are bit-identical either way)",
    )
    parser.add_argument(
        "--flush-window-ms",
        type=float,
        default=DEFAULT_FLUSH_WINDOW_S * 1000.0,
        help="micro-batch flush window in milliseconds (default 2.0): how "
        "long a fresh search waits for compatible neighbours",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=DEFAULT_MAX_BATCH,
        help="queue length that triggers an immediate flush (default 256)",
    )
    parser.add_argument(
        "--work-dir",
        default=None,
        help="directory experiment runs write their artifact trees under "
        "(default: ./serve-runs); clients address runs relative to it",
    )
    return parser


def main(argv: list = None) -> int:
    """``repro-experiments serve``: run the daemon until SIGTERM/SIGINT."""
    args = build_serve_parser().parse_args(argv)
    try:
        resolve_store(args.cache_store, args.cache_file)
        engine = SearchEngine(
            workers=args.workers,
            cache_path=args.cache_file,
            backend=args.backend,
            cache_max_entries=args.cache_max_entries,
            cache_store=args.cache_store,
        )
        daemon = SearchDaemon(
            engine=engine,
            host=args.host,
            port=args.port,
            flush_window_s=args.flush_window_ms / 1000.0,
            max_batch=args.max_batch,
            work_dir=args.work_dir,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return asyncio.run(_serve(daemon))


async def _serve(daemon: SearchDaemon) -> int:
    await daemon.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, daemon.request_shutdown)
    # Machine-readable announcement: the smoke harness, the benchmark and
    # the CI jobs parse this line to learn the bound port.
    print(
        json.dumps(
            {
                "event": "listening",
                "host": daemon.host,
                "port": daemon.port,
                "pid": os.getpid(),
                "version": __version__,
            },
            sort_keys=True,
        ),
        flush=True,
    )
    await daemon.serve_until_shutdown()
    print(
        f"served {daemon.requests_served} requests in "
        f"{daemon.uptime_seconds():.1f}s; engine: {daemon.engine.stats}",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
