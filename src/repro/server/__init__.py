"""Search-as-a-service: a long-lived asyncio daemon in front of the engine.

Every flat CLI invocation pays full process startup, cache loading and pool
spin-up, and nothing can serve concurrent clients.  This package keeps one
:class:`~repro.engine.SearchEngine` resident behind a small handwritten
HTTP/1.1 server (stdlib only):

* identical in-flight ``(dataflow, layer, capacity)`` searches from
  concurrent requests **coalesce** into one computation via per-key futures
  (:class:`~repro.server.service.SearchService`);
* compatible pending requests (same ``(dataflow, layer)``, different
  capacities) **micro-batch** into one ``search_many`` grid evaluation
  behind a short flush window;
* the cache persists in a concurrency-safe **SQLite** store
  (:class:`~repro.engine.SqliteStore`) that survives restarts and is shared
  safely with orchestrator shards;
* orchestrated experiments (``run``/``resume``) are exposed as endpoints
  with **streaming** per-unit progress.

Start it with ``repro-experiments serve``; talk to it with
:class:`~repro.server.client.SearchClient`.  Responses are bit-identical to
direct engine calls -- the smoke harness (:mod:`repro.server.smoke`) and the
CI gates prove it under concurrency.
"""

from __future__ import annotations

from repro.server.client import SearchClient, ServerError
from repro.server.daemon import SearchDaemon
from repro.server.service import SearchService

__all__ = [
    "SearchClient",
    "SearchDaemon",
    "SearchService",
    "ServerError",
]
