"""Command-line entry point: regenerate any of the paper's tables/figures.

Examples::

    repro-experiments fig13 --capacities 16 66.5 128 256
    repro-experiments fig13 --workers 8           # parallel tiling searches
    repro-experiments fig14 --workload resnet18   # any registered network
    repro-experiments fig13 --workload mobilenet_v1 --capacities 66.5
    repro-experiments workloads                   # list the registry
    repro-experiments goldens --write             # re-pin the golden figures
    repro-experiments table3 --no-cache           # force cold searches
    repro-experiments all --cache-file /tmp/repro-cache.pkl

Every search-based experiment routes through a
:class:`repro.engine.SearchEngine`; ``--workers`` fans the exhaustive tiling
searches out across processes, ``--backend {auto,numpy,python}`` selects the
vectorized (NumPy) or scalar-reference search backend (bit-identical
results; ``auto`` uses numpy when installed), ``--no-cache`` disables
memoization, and ``--cache-file`` persists results so later invocations
start warm.  ``--workload NAME[:batch]`` runs any figure on any workload
registered in :mod:`repro.workloads.registry` (default: the paper's VGG-16
at batch 3).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.energy_report import energy_report
from repro.analysis.eyeriss_compare import eyeriss_comparison
from repro.analysis.goldens import (
    check_goldens,
    default_goldens_dir,
    write_goldens,
)
from repro.analysis.performance_report import performance_comparison
from repro.analysis.report import (
    format_dict_rows,
    format_energy_report,
    format_gbuf_dram_ratio,
    format_memory_sweep,
    format_table,
)
from repro.analysis.sweep import (
    gbuf_dram_ratio,
    gbuf_per_layer,
    memory_sweep,
    per_layer_dram,
    reg_per_layer,
)
from repro.analysis.utilization_report import utilization_report
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.core.layer import total_macs
from repro.energy.model import OPERATION_ENERGY
from repro.engine import SearchEngine, set_default_engine
from repro.workloads.registry import (
    UnknownWorkloadError,
    get_workload_spec,
    list_workloads,
)


def _print_table1(layers, engine) -> None:
    print("Table I: implementations of our architecture")
    for config in PAPER_IMPLEMENTATIONS:
        print("  " + config.describe())


def _print_table2(layers, engine) -> None:
    print("Table II: energy consumption of operations (pJ)")
    for name, value in OPERATION_ENERGY.items():
        print(f"  {name:>14}: {value}")


def _print_fig13(capacities, layers, engine) -> None:
    sweep = memory_sweep(capacities_kib=capacities, layers=layers, engine=engine)
    print("Fig. 13: DRAM access volume (GB) vs effective on-chip memory")
    print(format_memory_sweep(sweep))


def _print_fig14(capacity_kib, layers, engine) -> None:
    rows = per_layer_dram(capacity_kib=capacity_kib, layers=layers, engine=engine)
    print(f"Fig. 14: per-layer DRAM access volume (MB) at {capacity_kib} KB on-chip memory")
    print(format_dict_rows(rows))


def _print_fig15_table3(layers, engine) -> None:
    comparison = eyeriss_comparison(layers=layers, engine=engine)
    print("Fig. 15: per-layer DRAM access (MB) at 173.5 KB effective on-chip memory")
    print(format_dict_rows(comparison["per_layer"]))
    print()
    print("Table III: comparison with Eyeriss on DRAM access")
    for name, row in comparison["summary"]["rows"].items():
        print(
            f"  {name:>20}: {row['dram_access_mb']:.1f} MB, "
            f"{row['dram_access_per_mac']:.4f} access/MAC"
        )


def _print_fig16(layers, engine) -> None:
    rows = gbuf_per_layer(layers=layers)
    print("Fig. 16: per-layer GBuf access volume (MB)")
    print(format_dict_rows(rows))


def _print_table4(layers, engine) -> None:
    print("Table IV: GBuf vs DRAM access volume (implementation 1)")
    print(format_gbuf_dram_ratio(gbuf_dram_ratio(layers=layers)))


def _print_fig17(layers, engine) -> None:
    rows = reg_per_layer(layers=layers)
    print("Fig. 17: per-layer register access volume (GB)")
    print(format_dict_rows(rows))


def _print_fig18(layers, engine) -> None:
    print("Fig. 18: energy efficiency")
    print(format_energy_report(energy_report(layers=layers)))


def _print_fig19(layers, engine) -> None:
    rows = performance_comparison(layers=layers)
    print("Fig. 19: performance and power")
    print(format_dict_rows(rows))


def _print_fig20(layers, engine) -> None:
    rows = utilization_report(layers=layers)
    print("Fig. 20: memory and PE utilisation")
    print(format_dict_rows(rows))


def _print_workloads(layers, engine) -> None:
    rows = []
    for workload in list_workloads():
        built = workload.build()
        rows.append(
            [
                workload.name,
                len(built),
                workload.default_batch,
                f"{total_macs(built) / 1e9:.3f}",
                ",".join(workload.tags),
                workload.description,
            ]
        )
    print("Registered workloads (run any figure with --workload NAME[:batch])")
    print(format_table(["name", "layers", "batch", "GMACs", "tags", "description"], rows))


_EXPERIMENTS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "fig13": None,  # handled specially (capacities argument)
    "fig14": None,  # handled specially (capacity argument)
    "fig15": _print_fig15_table3,
    "table3": _print_fig15_table3,
    "fig16": _print_fig16,
    "table4": _print_table4,
    "fig17": _print_fig17,
    "fig18": _print_fig18,
    "fig19": _print_fig19,
    "fig20": _print_fig20,
    "workloads": _print_workloads,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the HPCA'20 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["goldens", "all"],
        help="which table/figure to regenerate ('workloads' lists the "
        "registry, 'goldens' checks or re-pins the regression numbers)",
    )
    parser.add_argument(
        "--workload",
        default="vgg16",
        metavar="NAME[:batch]",
        help="registered workload to run the figures on (see the "
        "'workloads' subcommand; default vgg16, the paper's network)",
    )
    parser.add_argument(
        "--capacities",
        type=float,
        nargs="+",
        default=[16, 32, 64, 66.5, 128, 173.5, 256],
        help="effective on-chip memory sizes in KB for fig13",
    )
    parser.add_argument(
        "--capacity",
        type=float,
        default=66.5,
        help="effective on-chip memory size in KB for fig14 (default 66.5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the tiling searches (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="search backend: 'numpy' evaluates each dataflow's whole "
        "candidate grid as arrays (one evaluation serves every capacity), "
        "'python' is the scalar reference loop; results are bit-identical. "
        "'auto' (default) picks numpy when installed",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable search memoization (every search runs cold)",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help="pickle file to load the search cache from and save it back to",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache statistics after the run",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="with 'goldens': re-pin the golden JSON files instead of checking them",
    )
    parser.add_argument(
        "--goldens-dir",
        default=None,
        help="directory of the golden JSON files (default tests/goldens)",
    )
    return parser


def build_engine(args) -> SearchEngine:
    """Construct the search engine described by the parsed CLI options."""
    if args.no_cache and args.cache_file:
        raise SystemExit("--no-cache and --cache-file are mutually exclusive")
    return SearchEngine(
        workers=args.workers,
        cache=not args.no_cache,
        cache_path=args.cache_file,
        backend=args.backend,
    )


def _run_goldens(args, engine) -> int:
    directory = args.goldens_dir or default_goldens_dir()
    if args.write:
        for path in write_goldens(directory, engine=engine):
            print(f"wrote {path}")
        return 0
    report = check_goldens(directory, engine=engine)
    failures = 0
    for workload, problems in report.items():
        status = "ok" if not problems else f"{len(problems)} mismatches"
        print(f"goldens[{workload}]: {status}")
        for problem in problems[:20]:
            print(f"  {problem}")
        failures += len(problems)
    if failures:
        print(f"{failures} golden mismatches; if intentional, re-pin with "
              "`python -m repro.cli goldens --write`", file=sys.stderr)
        return 1
    return 0


def main(argv: list = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        engine = build_engine(args)
        # Resolve the workload up front so a bad name/batch fails fast with a
        # clear message instead of mid-way through a long run.
        layers = get_workload_spec(args.workload)
    except (UnknownWorkloadError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Anything routed through repro.dataflows.search without an explicit
    # engine (examples, ad-hoc imports) should see the same cache for the
    # duration of the run; the previous default is restored afterwards so
    # programmatic callers of main() keep their own engine.
    previous_engine = set_default_engine(engine)
    try:
        status = 0
        if args.experiment == "goldens":
            status = _run_goldens(args, engine)
        elif args.experiment == "all":
            for name in ("table1", "table2", "fig13", "fig14", "fig15", "fig16",
                         "table4", "fig17", "fig18", "fig19", "fig20"):
                _dispatch(name, args, layers, engine)
                print()
        else:
            _dispatch(args.experiment, args, layers, engine)
        if args.cache_file:
            engine.save()
        if args.stats:
            print(f"engine: {engine.stats}", file=sys.stderr)
        return status
    # ValueError is this package's convention for infeasible user-chosen
    # parameters (capacity too small for any tiling, bad worker counts), so
    # it maps to a clean exit; genuine internal bugs surface as other
    # exception types and keep their tracebacks.
    except (UnknownWorkloadError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        set_default_engine(previous_engine)


def _dispatch(name: str, args, layers, engine) -> None:
    if name == "fig13":
        _print_fig13(args.capacities, layers, engine)
    elif name == "fig14":
        _print_fig14(args.capacity, layers, engine)
    else:
        _EXPERIMENTS[name](layers, engine)


if __name__ == "__main__":
    sys.exit(main())
