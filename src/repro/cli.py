"""Command-line entry point: regenerate any of the paper's tables/figures.

Examples::

    repro-experiments fig13 --capacities 16 66.5 128 256
    repro-experiments fig13 --workers 8           # parallel tiling searches
    repro-experiments fig14 --workload resnet18   # any registered network
    repro-experiments fig13 --workload mobilenet_v1 --capacities 66.5
    repro-experiments workloads                   # list the registry
    repro-experiments goldens --write             # re-pin the golden figures
    repro-experiments timing --bandwidths 3.2 6.4 # stall-accurate sweep
    repro-experiments table3 --no-cache           # force cold searches
    repro-experiments all --cache-file /tmp/repro-cache.pkl

Every search-based experiment routes through a
:class:`repro.engine.SearchEngine`; ``--workers`` fans the exhaustive tiling
searches out across processes, ``--backend {auto,numpy,python}`` selects the
vectorized (NumPy) or scalar-reference search backend (bit-identical
results; ``auto`` uses numpy when installed), ``--no-cache`` disables
memoization, and ``--cache-file`` persists results so later invocations
start warm.  ``--workload NAME[:batch]`` runs any figure on any workload
registered in :mod:`repro.workloads.registry` (default: the paper's VGG-16
at batch 3).

Full-paper reproductions are orchestrated by the ``run`` / ``resume`` /
``merge`` / ``reproduce-all`` subcommands (sharded across machines,
resumable after a kill, merged into one machine-readable artifact tree; see
:mod:`repro.orchestration.cli`)::

    repro-experiments reproduce-all --out-dir out/shard-1 --shard 1/4
    repro-experiments resume --out-dir out/shard-1
    repro-experiments merge out/shard-* --out-dir out/merged \\
        --diff-goldens tests/goldens

Hardware design-space exploration: the ``dse`` experiment sweeps candidate
accelerator configs under an SRAM budget and prints the Pareto frontier
over (DRAM traffic, energy, execution time); ``frontier`` merges the
archived slice frontiers of orchestrated sweeps::

    repro-experiments dse --budget 140 --objectives dram energy time
    repro-experiments run --out-dir out/dse --experiments dse \\
        --budget 140 --dse-slices 4 --shard 1/2
    repro-experiments frontier out/merged --workload vgg16

Searches can also be served from a long-lived daemon -- one resident engine
with request coalescing, micro-batching and a shared SQLite-backed cache
(see :mod:`repro.server`)::

    repro-experiments serve --port 8765 --cache-file cache.sqlite
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.goldens import (
    check_goldens,
    default_goldens_dir,
    write_goldens,
)
from repro.analysis.sweep import (
    FIG13_DEFAULT_CAPACITIES_KIB,
    FIG14_DEFAULT_CAPACITY_KIB,
)
from repro.core.layer import total_macs
from repro.dse.smart import EXPLORERS
from repro.engine import SearchEngine, set_default_engine
from repro.orchestration.experiments import (
    EXPERIMENT_ALIASES,
    PAPER_EXPERIMENTS,
    ExperimentContext,
    experiment_names,
    get_experiment,
    resolve_experiment_name,
)
from repro.workloads.registry import (
    UnknownWorkloadError,
    get_workload_spec,
    list_workloads,
)

#: Subcommands handled by the orchestration CLI (sharded runs, merge,
#: cross-artifact frontier merges).
ORCHESTRATION_COMMANDS = (
    "run",
    "fleet",
    "resume",
    "merge",
    "reproduce-all",
    "frontier",
)

#: Subcommand handled by the server CLI (the long-lived search daemon).
SERVE_COMMAND = "serve"

def _experiment_choices() -> list:
    """Flat experiment choices, derived from the registry.

    Every registered experiment is reachable automatically; ``fig15`` and
    ``table3`` stand in for the one ``fig15_table3`` entry (the aliased
    name itself is hidden), ``goldens`` keeps its dedicated subcommand
    handling, and ``workloads`` is the registry listing.
    """
    names = set(experiment_names()) - {"goldens"} - set(EXPERIMENT_ALIASES.values())
    return sorted(names | set(EXPERIMENT_ALIASES) | {"workloads"})


def _print_workloads(layers, engine) -> None:
    """The registry listing, one block per family with its full parameter set.

    The parameters line is introspected from each builder's signature
    (:meth:`~repro.workloads.registry.Workload.parameters`), so this listing
    -- not the docs -- is the canonical source of truth for what each family
    accepts (``?`` marks a parameter whose default is derived, e.g.
    ``head_dim = hidden // heads``).
    """
    print("Registered workloads (run any figure with --workload NAME[:batch])")
    for workload in list_workloads():
        built = workload.build()
        print()
        print(f"{workload.name}: {workload.description}")
        print(
            f"    {len(built)} layers | {total_macs(built) / 1e9:.3f} GMACs | "
            f"tags: {','.join(workload.tags) or '-'}"
        )
        print(f"    params: {workload.describe_parameters()}")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the HPCA'20 paper.",
        epilog="Orchestrated full-paper reproductions: the 'run', 'resume', "
        "'merge' and 'reproduce-all' subcommands shard the whole reproduction "
        "across machines with resumable, machine-readable artifact trees "
        "(see 'repro-experiments reproduce-all --help').",
    )
    parser.add_argument(
        "experiment",
        choices=_experiment_choices() + ["goldens", "all"],
        help="which table/figure to regenerate ('workloads' lists the "
        "registry, 'goldens' checks or re-pins the regression numbers)",
    )
    parser.add_argument(
        "--workload",
        default="vgg16",
        metavar="NAME[:batch]",
        help="registered workload to run the figures on (see the "
        "'workloads' subcommand; default vgg16, the paper's network)",
    )
    parser.add_argument(
        "--capacities",
        type=float,
        nargs="+",
        default=list(FIG13_DEFAULT_CAPACITIES_KIB),
        help="effective on-chip memory sizes in KB for fig13",
    )
    parser.add_argument(
        "--capacity",
        type=float,
        default=FIG14_DEFAULT_CAPACITY_KIB,
        help="effective on-chip memory size in KB for fig14 (default 66.5)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="KIB",
        help="dse: effective on-chip memory budget in KiB for the candidate "
        "configs (default 140, just above Table I's implementation 5)",
    )
    parser.add_argument(
        "--objectives",
        nargs="+",
        choices=["dram", "energy", "time", "stall_time"],
        default=None,
        help="dse: objectives the Pareto frontier minimises (default: "
        "dram/energy/time; 'stall_time' adds the tile-level simulator's "
        "stall-aware latency)",
    )
    parser.add_argument(
        "--bandwidths",
        type=float,
        nargs="+",
        default=None,
        metavar="GBPS",
        help="timing: DRAM bandwidth sweep points in GB/s "
        "(default 3.2 6.4 12.8; the paper's interface is 6.4)",
    )
    parser.add_argument(
        "--explorer",
        choices=list(EXPLORERS),
        default=None,
        help="dse: frontier explorer -- 'exhaustive' (default) scores every "
        "candidate config; 'halving', 'local' and 'evolution' evaluate a "
        "subset and attach a trust-region exactness certificate to the "
        "payload (seeded by --seed, default 0)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="traffic: RNG seed of the request-trace generator (default 0); "
        "with --traffic-mix, the seed of the DSE objective's mix; with a "
        "smart --explorer, the explorer's RNG seed",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="traffic: number of requests in the generated trace (default 32)",
    )
    parser.add_argument(
        "--traffic-mix",
        default=None,
        metavar="NAME[:batch]",
        help="dse: weight the objectives by a serving-traffic mix over this "
        "LLM decode model (opt-in; e.g. --traffic-mix llama_decode:32)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the tiling searches (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "numpy", "python"],
        default="auto",
        help="search backend: 'numpy' evaluates each dataflow's whole "
        "candidate grid as arrays (one evaluation serves every capacity), "
        "'python' is the scalar reference loop; results are bit-identical. "
        "'auto' (default) picks numpy when installed",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable search memoization (every search runs cold)",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help="pickle file to load the search cache from and save it back to",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache statistics after the run",
    )
    parser.add_argument(
        "--write",
        action="store_true",
        help="with 'goldens' (or 'timing'): re-pin the golden JSON files "
        "instead of checking/printing them",
    )
    parser.add_argument(
        "--goldens-dir",
        default=None,
        help="directory of the golden JSON files (default tests/goldens)",
    )
    return parser


def build_engine(args) -> SearchEngine:
    """Construct the search engine described by the parsed CLI options."""
    if args.no_cache and args.cache_file:
        raise SystemExit("--no-cache and --cache-file are mutually exclusive")
    return SearchEngine(
        workers=args.workers,
        cache=not args.no_cache,
        cache_path=args.cache_file,
        backend=args.backend,
    )


def _run_goldens(args, engine) -> int:
    directory = args.goldens_dir or default_goldens_dir()
    if args.write:
        for path in write_goldens(directory, engine=engine):
            print(f"wrote {path}")
        return 0
    report = check_goldens(directory, engine=engine)
    failures = 0
    for workload, problems in report.items():
        status = "ok" if not problems else f"{len(problems)} mismatches"
        print(f"goldens[{workload}]: {status}")
        for problem in problems[:20]:
            print(f"  {problem}")
        failures += len(problems)
    if failures:
        print(f"{failures} golden mismatches; if intentional, re-pin with "
              "`python -m repro.cli goldens --write`", file=sys.stderr)
        return 1
    return 0


def main(argv: list = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] in ORCHESTRATION_COMMANDS:
        # Orchestrated (sharded/resumable) reproductions have their own
        # subcommand parser; everything else keeps the flat experiment form.
        from repro.orchestration.cli import main as orchestration_main

        return orchestration_main(argv)
    if argv and argv[0] == SERVE_COMMAND:
        # The long-lived search daemon (request coalescing, micro-batching,
        # shared persistent cache; see repro.server).
        from repro.server.daemon import main as serve_main

        return serve_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        engine = build_engine(args)
        # Resolve the workload up front so a bad name/batch fails fast with a
        # clear message instead of mid-way through a long run.
        layers = get_workload_spec(args.workload)
    except (UnknownWorkloadError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # Anything routed through repro.dataflows.search without an explicit
    # engine (examples, ad-hoc imports) should see the same cache for the
    # duration of the run; the previous default is restored afterwards so
    # programmatic callers of main() keep their own engine.
    previous_engine = set_default_engine(engine)
    try:
        status = 0
        if args.experiment == "goldens":
            status = _run_goldens(args, engine)
        elif args.experiment == "timing" and args.write:
            # Re-pin the timing golden (the dedicated 3-point VGG-16 sweep),
            # mirroring `goldens --write`.
            from repro.analysis.timing_report import (
                timing_golden_path,
                write_timing_golden,
            )

            path = write_timing_golden(
                timing_golden_path(args.goldens_dir) if args.goldens_dir else None
            )
            print(f"wrote {path}")
        elif args.experiment == "traffic" and args.write:
            # Re-pin both LLM-serving goldens: the traffic-mix payload and
            # the llama_decode single-workload payload.
            from repro.analysis.traffic_report import (
                llm_golden_path,
                traffic_golden_path,
                write_llm_golden,
                write_traffic_golden,
            )

            directory = args.goldens_dir
            for path in (
                write_traffic_golden(
                    traffic_golden_path(directory) if directory else None, engine=engine
                ),
                write_llm_golden(
                    llm_golden_path(directory) if directory else None, engine=engine
                ),
            ):
                print(f"wrote {path}")
        elif args.experiment == "all":
            # The canonical paper order from the registry; 'goldens' keeps
            # its dedicated subcommand instead of riding along here.
            for name in PAPER_EXPERIMENTS:
                if name == "goldens":
                    continue
                _dispatch(name, args, layers, engine)
                print()
        else:
            _dispatch(args.experiment, args, layers, engine)
        if args.cache_file:
            engine.save()
        if args.stats:
            print(f"engine: {engine.stats}", file=sys.stderr)
        return status
    # ValueError is this package's convention for infeasible user-chosen
    # parameters (capacity too small for any tiling, bad worker counts), so
    # it maps to a clean exit; genuine internal bugs surface as other
    # exception types and keep their tracebacks.
    except (UnknownWorkloadError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        set_default_engine(previous_engine)


def _dispatch(name: str, args, layers, engine) -> None:
    """Compute and print one experiment through the shared registry.

    The same :class:`~repro.orchestration.experiments.Experiment` entries
    drive the orchestrated runs, so the printed figures and the archived
    JSON artifacts can never diverge.
    """
    if name == "workloads":
        _print_workloads(layers, engine)
        return
    experiment = get_experiment(resolve_experiment_name(name))
    params = dict(experiment.default_params)
    if name == "fig13":
        params["capacities_kib"] = list(args.capacities)
    elif name == "fig14":
        params["capacity_kib"] = args.capacity
    elif name == "dse":
        if args.budget is not None:
            params["budget_kib"] = args.budget
        if args.objectives:
            params["objectives"] = list(args.objectives)
        if args.traffic_mix:
            mix = {"model": args.traffic_mix}
            if args.seed is not None:
                mix["seed"] = args.seed
            if args.requests is not None:
                mix["requests"] = args.requests
            params["mix"] = mix
        if args.explorer:
            params["explorer"] = args.explorer
            if args.seed is not None:
                params["seed"] = args.seed
    elif name == "timing":
        if args.bandwidths:
            params["bandwidths_gbps"] = list(args.bandwidths)
    elif name == "traffic":
        if args.seed is not None:
            params["seed"] = args.seed
        if args.requests is not None:
            params["requests"] = args.requests
    context = ExperimentContext(
        workload=args.workload, layers=layers, engine=engine, params=params
    )
    print(experiment.render(experiment.build(context), params))


if __name__ == "__main__":
    sys.exit(main())
