"""Command-line entry point: regenerate any of the paper's tables/figures.

Examples::

    repro-experiments fig13 --capacities 16 66.5 128 256
    repro-experiments fig13 --workers 8           # parallel tiling searches
    repro-experiments table3 --no-cache           # force cold searches
    repro-experiments all --cache-file /tmp/repro-cache.pkl
    repro-experiments fig18

Every search-based experiment routes through a
:class:`repro.engine.SearchEngine`; ``--workers`` fans the exhaustive tiling
searches out across processes, ``--no-cache`` disables memoization, and
``--cache-file`` persists results so later invocations start warm.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.energy_report import energy_report
from repro.analysis.eyeriss_compare import eyeriss_comparison
from repro.analysis.performance_report import performance_comparison
from repro.analysis.report import (
    format_dict_rows,
    format_energy_report,
    format_gbuf_dram_ratio,
    format_memory_sweep,
)
from repro.analysis.sweep import (
    gbuf_dram_ratio,
    gbuf_per_layer,
    memory_sweep,
    per_layer_dram,
    reg_per_layer,
)
from repro.analysis.utilization_report import utilization_report
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.energy.model import OPERATION_ENERGY
from repro.engine import SearchEngine, set_default_engine
from repro.workloads.vgg import vgg16_conv_layers


def _print_table1() -> None:
    print("Table I: implementations of our architecture")
    for config in PAPER_IMPLEMENTATIONS:
        print("  " + config.describe())


def _print_table2() -> None:
    print("Table II: energy consumption of operations (pJ)")
    for name, value in OPERATION_ENERGY.items():
        print(f"  {name:>14}: {value}")


def _print_fig13(capacities, engine) -> None:
    sweep = memory_sweep(capacities_kib=capacities, engine=engine)
    print("Fig. 13: DRAM access volume (GB) vs effective on-chip memory")
    print(format_memory_sweep(sweep))


def _print_fig14(engine) -> None:
    rows = per_layer_dram(engine=engine)
    print("Fig. 14: per-layer DRAM access volume (MB) at 66.5 KB on-chip memory")
    print(format_dict_rows(rows))


def _print_fig15_table3(engine) -> None:
    comparison = eyeriss_comparison(engine=engine)
    print("Fig. 15: per-layer DRAM access (MB) at 173.5 KB effective on-chip memory")
    print(format_dict_rows(comparison["per_layer"]))
    print()
    print("Table III: comparison with Eyeriss on DRAM access")
    for name, row in comparison["summary"]["rows"].items():
        print(
            f"  {name:>20}: {row['dram_access_mb']:.1f} MB, "
            f"{row['dram_access_per_mac']:.4f} access/MAC"
        )


def _print_fig16() -> None:
    rows = gbuf_per_layer()
    print("Fig. 16: per-layer GBuf access volume (MB)")
    print(format_dict_rows(rows))


def _print_table4() -> None:
    print("Table IV: GBuf vs DRAM access volume (implementation 1)")
    print(format_gbuf_dram_ratio(gbuf_dram_ratio()))


def _print_fig17() -> None:
    rows = reg_per_layer()
    print("Fig. 17: per-layer register access volume (GB)")
    print(format_dict_rows(rows))


def _print_fig18() -> None:
    print("Fig. 18: energy efficiency")
    print(format_energy_report(energy_report()))


def _print_fig19() -> None:
    rows = performance_comparison()
    print("Fig. 19: performance and power")
    print(format_dict_rows(rows))


def _print_fig20() -> None:
    rows = utilization_report()
    print("Fig. 20: memory and PE utilisation")
    print(format_dict_rows(rows))


_EXPERIMENTS = {
    "table1": _print_table1,
    "table2": _print_table2,
    "fig13": None,  # handled specially (capacities argument)
    "fig14": _print_fig14,
    "fig15": _print_fig15_table3,
    "table3": _print_fig15_table3,
    "fig16": _print_fig16,
    "table4": _print_table4,
    "fig17": _print_fig17,
    "fig18": _print_fig18,
    "fig19": _print_fig19,
    "fig20": _print_fig20,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the HPCA'20 paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--capacities",
        type=float,
        nargs="+",
        default=[16, 32, 64, 66.5, 128, 173.5, 256],
        help="effective on-chip memory sizes in KB for fig13",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the tiling searches (0 = all cores, default 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable search memoization (every search runs cold)",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        help="pickle file to load the search cache from and save it back to",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine cache statistics after the run",
    )
    return parser


def build_engine(args) -> SearchEngine:
    """Construct the search engine described by the parsed CLI options."""
    if args.no_cache and args.cache_file:
        raise SystemExit("--no-cache and --cache-file are mutually exclusive")
    return SearchEngine(
        workers=args.workers,
        cache=not args.no_cache,
        cache_path=args.cache_file,
    )


def main(argv: list = None) -> int:
    args = build_parser().parse_args(argv)
    engine = build_engine(args)
    # Anything routed through repro.dataflows.search without an explicit
    # engine (examples, ad-hoc imports) should see the same cache for the
    # duration of the run; the previous default is restored afterwards so
    # programmatic callers of main() keep their own engine.
    previous_engine = set_default_engine(engine)
    try:
        # Touch the workload once so argument errors surface before long runs.
        vgg16_conv_layers()
        if args.experiment == "all":
            for name in ("table1", "table2", "fig13", "fig14", "fig15", "fig16",
                         "table4", "fig17", "fig18", "fig19", "fig20"):
                _dispatch(name, args, engine)
                print()
        else:
            _dispatch(args.experiment, args, engine)
        if args.cache_file:
            engine.save()
        if args.stats:
            print(f"engine: {engine.stats}", file=sys.stderr)
    finally:
        set_default_engine(previous_engine)
    return 0


#: Experiments whose drivers run tiling searches and take the engine.
_SEARCH_EXPERIMENTS = frozenset({"fig14", "fig15", "table3"})


def _dispatch(name: str, args, engine) -> None:
    if name == "fig13":
        _print_fig13(args.capacities, engine)
    elif name in _SEARCH_EXPERIMENTS:
        _EXPERIMENTS[name](engine)
    else:
        _EXPERIMENTS[name]()


if __name__ == "__main__":
    sys.exit(main())
