"""Reproduction of "Communication Lower Bound in Convolution Accelerators" (HPCA 2020).

Public API overview
-------------------

* :class:`repro.core.layer.ConvLayer` -- describe a convolutional or FC layer.
* :func:`repro.core.lower_bound.practical_lower_bound` -- the off-chip
  communication lower bound of Eq. (15).
* :func:`repro.core.optimal_dataflow.choose_tiling` -- the paper's
  communication-optimal tiling and its DRAM traffic.
* :mod:`repro.dataflows` -- the Fig. 12 baseline dataflows and the cross-
  dataflow "found minimum" search.
* :mod:`repro.engine` -- the parallel, memoized :class:`SearchEngine` that
  deduplicates tiling searches and fans them out over worker processes.
* :mod:`repro.arch` -- the accelerator architecture model (Table I
  implementations, access counting, cycles, utilisation).
* :mod:`repro.energy` -- the Table II energy model and the DRAM model.
* :mod:`repro.eyeriss` -- the Eyeriss row-stationary baseline.
* :mod:`repro.workloads` -- VGG-16 (the paper's workload), AlexNet, ResNet-18
  and synthetic layers.
* :mod:`repro.analysis` -- one driver per paper table/figure.

Quick example::

    from repro import ConvLayer, practical_lower_bound, choose_tiling

    layer = ConvLayer("conv3_2", batch=3, in_channels=256, in_height=56,
                      in_width=56, out_channels=256, kernel_height=3,
                      kernel_width=3, padding=1)
    S = 66 * 1024 // 2                      # 66 KB of on-chip memory, in words
    bound = practical_lower_bound(layer, S)
    choice = choose_tiling(layer, S)
    print(choice.tiling.describe(), choice.traffic.total / bound)
"""

from repro.core.layer import ConvLayer
from repro.core.tiling import Tiling
from repro.core.traffic import TrafficBreakdown
from repro.core.lower_bound import (
    practical_lower_bound,
    theorem2_lower_bound,
    reg_lower_bound,
    gbuf_lower_bound,
    naive_traffic,
)
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.arch.config import AcceleratorConfig, PAPER_IMPLEMENTATIONS, paper_implementation
from repro.arch.accelerator import AcceleratorModel
from repro.energy.model import EnergyModel
from repro.engine import SearchEngine, get_default_engine, set_default_engine
from repro.workloads.vgg import vgg16_conv_layers
from repro.workloads.registry import (
    get_workload,
    list_workloads,
    register_workload,
    workload_names,
)

__version__ = "1.8.0"

__all__ = [
    "ConvLayer",
    "Tiling",
    "TrafficBreakdown",
    "practical_lower_bound",
    "theorem2_lower_bound",
    "reg_lower_bound",
    "gbuf_lower_bound",
    "naive_traffic",
    "choose_tiling",
    "dataflow_traffic",
    "AcceleratorConfig",
    "PAPER_IMPLEMENTATIONS",
    "paper_implementation",
    "AcceleratorModel",
    "EnergyModel",
    "SearchEngine",
    "get_default_engine",
    "set_default_engine",
    "vgg16_conv_layers",
    "get_workload",
    "list_workloads",
    "register_workload",
    "workload_names",
    "__version__",
]
