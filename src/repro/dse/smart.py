"""Smart DSE explorers with trust-region exactness certificates.

The exhaustive sweep (:mod:`repro.dse.explore`) walks every candidate
config; with timing bandwidth points and traffic mixes multiplying the
space toward 10^8 points that stops being an option.  This module adds
three *explorer drivers* that evaluate only a subset of the space:

* ``halving`` -- successive halving over a coarse-to-fine grid: evaluate a
  strided sub-grid of the axis indices, keep the Pareto survivors, halve
  the stride and refine only the index windows around the survivors;
* ``local`` -- Pareto local search: seeded random starts, then repeatedly
  expand the +/-1 index neighborhood of every unexpanded frontier point
  until the frontier is closed under its own neighborhoods;
* ``evolution`` -- a seeded evolutionary driver: the current frontier is
  the mating pool, children are per-axis crossovers with +/-1 index
  mutations, generations stop after a patience of frontier-stable rounds.

All drivers batch their evaluations through one scoring callable so the
engine's ``search_many`` family batching keeps serving every capacity
point of a generation at once, and all of them end with the same
**exactness certificate** pass: a trust region around every returned
frontier point is re-verified by exhaustive enumeration
(:func:`repro.dse.space.enumerate_splits` restricted to the
neighborhood), iterated to a fixed point -- any neighbor that beats or
extends the frontier joins it and its own neighborhood is enumerated
next round, so the certificate crawls along the frontier surface until
no enumerated point changes it.  The payload records
``certificate: {verified, region, exhaustive_points}``; ``verified``
guarantees no config within ``region`` index steps of any frontier point
dominates the frontier.

Determinism follows the integer-only seeding idiom of
:mod:`repro.workloads.traffic`: one ``random.Random(seed)`` stream, only
``randrange`` draws, every batch sorted before evaluation -- the same
seed produces the byte-identical payload on both engine backends.  Slices
``(k, n)`` become *islands*: island ``k`` runs on seed ``seed + k - 1``
and island frontiers merge associatively like slice frontiers
(:func:`repro.dse.pareto.merge_frontiers`).
"""

from __future__ import annotations

import random

from repro.dse.pareto import pareto_frontier
from repro.dse.space import CandidateSpace, enumerate_splits

#: Every accepted ``--explorer`` choice; the default walks the whole space.
EXPLORERS = ("exhaustive", "halving", "local", "evolution")

#: The explorer that needs no certificate (its enumeration *is* the proof).
DEFAULT_EXPLORER = "exhaustive"

#: Trust-region radius of the certificate pass, in axis-index steps.
DEFAULT_CERTIFICATE_REGION = 1

#: Fixed-point iteration cap of the certificate crawl; hitting it records
#: ``verified: False`` instead of looping on a pathological landscape.
MAX_CERTIFICATE_ROUNDS = 256

#: Random starts of the ``local`` driver.
LOCAL_STARTS = 4

#: Population, generation cap and frontier-stable patience of ``evolution``.
EVOLUTION_POPULATION = 16
EVOLUTION_GENERATIONS = 32
EVOLUTION_PATIENCE = 3

#: Rejection-sampling budget per requested random split.
RANDOM_SPLIT_TRIES = 128


def validate_explorer(name) -> str:
    """Normalise and check an explorer name (``ValueError`` on unknown)."""
    if name not in EXPLORERS:
        choices = ", ".join(EXPLORERS)
        raise ValueError(f"unknown explorer {name!r}; choose from: {choices}")
    return name


def validate_seed(seed) -> int:
    """Check an explorer seed (integer-only, like the traffic generator)."""
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValueError(f"explorer seed must be an integer, got {seed!r}")
    return seed


def split_of_row(row: dict) -> tuple:
    """The ``(rows, cols, lreg, igbuf, wgbuf)`` split of a scored row."""
    return (
        row["pe_rows"],
        row["pe_cols"],
        row["lreg_words_per_pe"],
        row["igbuf_words"],
        row["wgbuf_words"],
    )


class SplitGrid:
    """Index-space view of a candidate space under one budget.

    Drivers navigate axis *indices* (coarse sub-grids, +/-1 neighborhoods,
    windows around survivors); every materialised candidate set goes
    through :func:`enumerate_splits` on a windowed sub-space, so any split
    a driver can reach is by construction a split of the full space.
    """

    def __init__(self, space: CandidateSpace, budget_words: int, backend: str = "auto"):
        if budget_words < 1:
            raise ValueError(f"budget must be at least one on-chip word, got {budget_words}")
        self.space = space
        self.budget_words = budget_words
        self.backend = backend
        # One entry per split coordinate; the PE axis serves rows and cols.
        self.axes = (
            space.pe_dims,
            space.pe_dims,
            space.lreg_words,
            space.igbuf_words,
            space.wgbuf_words,
        )
        self._index = [
            {value: position for position, value in enumerate(axis)} for axis in self.axes
        ]

    def feasible(self, split: tuple) -> bool:
        """Structural rules plus the budget, without materialising a config."""
        rows, cols, lreg, igbuf, wgbuf = split
        space = self.space
        if rows % space.group_rows or cols % space.group_cols:
            return False
        if not cols <= rows <= space.max_aspect * cols:
            return False
        return rows * cols * lreg + igbuf + wgbuf <= self.budget_words

    def random_split(self, rng: random.Random, tries: int = RANDOM_SPLIT_TRIES):
        """One feasible split drawn uniformly in index space (or ``None``)."""
        for _ in range(tries):
            split = tuple(axis[rng.randrange(len(axis))] for axis in self.axes)
            if self.feasible(split):
                return split
        return None

    def _sub_space(self, keep_indices: list) -> CandidateSpace:
        """The sub-space spanning the given index set per axis.

        The PE axis keeps the union of the rows-window and the cols-window
        (indices 0 and 1 of ``keep_indices``), so enumerating the sub-space
        covers every (rows, cols) pair both windows can form.
        """
        pe_keep = sorted(set(keep_indices[0]) | set(keep_indices[1]))
        space = self.space
        return CandidateSpace(
            pe_dims=tuple(space.pe_dims[i] for i in pe_keep),
            lreg_words=tuple(space.lreg_words[i] for i in sorted(set(keep_indices[2]))),
            igbuf_words=tuple(space.igbuf_words[i] for i in sorted(set(keep_indices[3]))),
            wgbuf_words=tuple(space.wgbuf_words[i] for i in sorted(set(keep_indices[4]))),
            group_rows=space.group_rows,
            group_cols=space.group_cols,
            max_aspect=space.max_aspect,
        )

    def coarse_splits(self, stride: int) -> list:
        """Feasible splits of the strided sub-grid (endpoints always kept)."""
        keep = [
            sorted(set(range(0, len(axis), stride)) | {len(axis) - 1}) for axis in self.axes
        ]
        return enumerate_splits(self.budget_words, self._sub_space(keep), self.backend)

    def window_splits(self, split: tuple, radius: int, stride: int = 1) -> list:
        """Feasible splits within ``radius`` index steps of ``split``.

        ``stride`` probes the window at a coarser granularity (offsets that
        are multiples of ``stride`` from the anchor), which is how halving
        refines: radius = previous stride, stride = the new, halved one.
        """
        keep = []
        for axis, index_of, value in zip(self.axes, self._index, split):
            center = index_of[value]
            keep.append(
                [
                    i
                    for i in range(max(0, center - radius), min(len(axis), center + radius + 1))
                    if (i - center) % stride == 0
                ]
            )
        return enumerate_splits(self.budget_words, self._sub_space(keep), self.backend)

    def mutate(self, split: tuple, rng: random.Random, rate: int = 3):
        """One evolutionary mutation: +/-1 index steps at ~1/``rate`` per axis.

        Returns the mutated split when feasible, ``None`` otherwise (the
        caller simply skips infeasible children).
        """
        indices = [index_of[value] for index_of, value in zip(self._index, split)]
        for position, axis in enumerate(self.axes):
            if rng.randrange(rate):
                continue
            step = 1 if rng.randrange(2) else -1
            indices[position] = min(len(axis) - 1, max(0, indices[position] + step))
        child = tuple(axis[i] for axis, i in zip(self.axes, indices))
        return child if self.feasible(child) else None


class ConfigEvaluator:
    """Memoized batch scoring of splits through one callable.

    ``score(splits)`` returns one row dict per split (``None`` when the
    config is infeasible for every dataflow); the evaluator deduplicates
    across batches so a split is never searched twice, and keeps its rows
    in the deterministic split order.
    """

    def __init__(self, score, objectives):
        self._score = score
        self.objectives = tuple(objectives)
        self._rows = {}

    def seen(self, split: tuple) -> bool:
        return split in self._rows

    @property
    def evaluated_count(self) -> int:
        return len(self._rows)

    @property
    def infeasible_count(self) -> int:
        return sum(1 for row in self._rows.values() if row is None)

    def evaluate(self, splits) -> int:
        """Score every not-yet-seen split (one batched call); returns #new."""
        fresh = sorted(set(splits) - self._rows.keys())
        if not fresh:
            return 0
        for split, row in zip(fresh, self._score(fresh)):
            self._rows[split] = row
        return len(fresh)

    def rows(self) -> list:
        """Every feasible scored row, ordered by split tuple."""
        return [row for _, row in sorted(self._rows.items()) if row is not None]

    def frontier(self) -> list:
        return pareto_frontier(self.rows(), self.objectives)

    def frontier_splits(self) -> list:
        return [split_of_row(row) for row in self.frontier()]


# ---------------------------------------------------------------- drivers


def _initial_stride(grid: SplitGrid) -> int:
    """Largest power of two strictly below the longest axis length."""
    longest = max(len(axis) for axis in grid.axes)
    stride = 1
    while stride * 2 < longest:
        stride *= 2
    return stride


def _seed_coarse(evaluator: ConfigEvaluator, grid: SplitGrid, stride: int) -> int:
    """Evaluate the coarse grid, halving the stride until something scores.

    A thin budget can leave a strided sub-grid with no feasible config at
    all; retreating toward stride 1 degrades gracefully to the exhaustive
    enumeration instead of returning an empty frontier next to a
    non-empty space.
    """
    while True:
        evaluator.evaluate(grid.coarse_splits(stride))
        if evaluator.frontier_splits() or stride == 1:
            return stride
        stride //= 2


def _drive_halving(evaluator, grid, rng) -> dict:
    stride = _seed_coarse(evaluator, grid, _initial_stride(grid))
    start_stride = stride
    rounds = 0
    while stride > 1:
        previous, stride = stride, stride // 2
        rounds += 1
        batch = []
        for split in evaluator.frontier_splits():
            batch.extend(grid.window_splits(split, radius=previous, stride=stride))
        evaluator.evaluate(batch)
    return {"driver": "halving", "start_stride": start_stride, "rounds": rounds}


def _drive_local(evaluator, grid, rng) -> dict:
    starts = []
    for _ in range(LOCAL_STARTS):
        split = grid.random_split(rng)
        if split is not None:
            starts.append(split)
    if starts:
        evaluator.evaluate(starts)
    if not evaluator.frontier_splits():
        # Rejection sampling found nothing (thin budget): fall back to the
        # deterministic coarse seeding the halving driver uses.
        _seed_coarse(evaluator, grid, _initial_stride(grid))
    expanded = set()
    rounds = 0
    while True:
        pending = [split for split in evaluator.frontier_splits() if split not in expanded]
        if not pending:
            break
        rounds += 1
        batch = []
        for split in pending:
            expanded.add(split)
            batch.extend(grid.window_splits(split, radius=1))
        evaluator.evaluate(batch)
    return {"driver": "local", "starts": len(starts), "rounds": rounds}


def _drive_evolution(evaluator, grid, rng) -> dict:
    starts = []
    for _ in range(EVOLUTION_POPULATION):
        split = grid.random_split(rng)
        if split is not None:
            starts.append(split)
    if starts:
        evaluator.evaluate(starts)
    if not evaluator.frontier_splits():
        _seed_coarse(evaluator, grid, _initial_stride(grid))
    stale = 0
    generations = 0
    while generations < EVOLUTION_GENERATIONS and stale < EVOLUTION_PATIENCE:
        parents = evaluator.frontier_splits()
        if not parents:
            break
        generations += 1
        children = []
        for _ in range(EVOLUTION_POPULATION):
            mother = parents[rng.randrange(len(parents))]
            father = parents[rng.randrange(len(parents))]
            child = tuple(
                mother[position] if rng.randrange(2) else father[position]
                for position in range(len(mother))
            )
            child = grid.mutate(child, rng)
            if child is not None:
                children.append(child)
        evaluator.evaluate(children)
        stale = 0 if evaluator.frontier_splits() != parents else stale + 1
    return {"driver": "evolution", "starts": len(starts), "generations": generations}


_DRIVERS = {
    "halving": _drive_halving,
    "local": _drive_local,
    "evolution": _drive_evolution,
}


# ------------------------------------------------------------- certificate


def run_certificate(evaluator: ConfigEvaluator, grid: SplitGrid, region: int) -> dict:
    """Re-verify a trust region around every frontier point, to a fixed point.

    Each round exhaustively enumerates the ``region``-step neighborhood of
    every current frontier point; unseen neighbors are evaluated and the
    frontier recomputed.  At the fixed point every neighborhood config has
    been scored and none dominates the frontier -- that is the exactness
    guarantee ``verified: True`` records.  ``exhaustive_points`` counts the
    distinct splits the enumeration covered.
    """
    if region < 1:
        raise ValueError(f"certificate region must be >= 1, got {region}")
    covered = set()
    for _ in range(MAX_CERTIFICATE_ROUNDS):
        needed = set()
        for split in evaluator.frontier_splits():
            for neighbor in grid.window_splits(split, radius=region):
                covered.add(neighbor)
                if not evaluator.seen(neighbor):
                    needed.add(neighbor)
        if not needed:
            return {"verified": True, "region": region, "exhaustive_points": len(covered)}
        evaluator.evaluate(needed)
    return {"verified": False, "region": region, "exhaustive_points": len(covered)}


def run_smart_explorer(
    score,
    objectives,
    space: CandidateSpace,
    budget_words: int,
    explorer: str,
    seed: int = 0,
    slice_spec=(1, 1),
    backend: str = "auto",
    certificate_region: int = DEFAULT_CERTIFICATE_REGION,
) -> dict:
    """Run one smart driver plus its certificate; returns the result parts.

    ``slice_spec=(k, n)`` runs island ``k``: the same driver on seed
    ``seed + k - 1``.  Certificates are per island; island frontiers merge
    associatively exactly like exhaustive slice frontiers.
    """
    explorer = validate_explorer(explorer)
    if explorer == DEFAULT_EXPLORER:
        raise ValueError("the exhaustive sweep does not run through a smart driver")
    seed = validate_seed(seed)
    index, _ = slice_spec
    grid = SplitGrid(space, budget_words, backend=backend)
    evaluator = ConfigEvaluator(score, objectives)
    rng = random.Random(seed + index - 1)
    stats = _DRIVERS[explorer](evaluator, grid, rng)
    certificate = run_certificate(evaluator, grid, certificate_region)
    return {
        "rows": evaluator.rows(),
        "frontier": evaluator.frontier(),
        "evaluated_count": evaluator.evaluated_count,
        "infeasible_count": evaluator.infeasible_count,
        "stats": stats,
        "certificate": certificate,
    }
