"""First-order objective model: traffic -> (DRAM, energy, time) per config.

The tile-exact :class:`~repro.arch.accelerator.AcceleratorModel` walks every
block of every layer and is the reference for the paper's five
implementations; at design-space scale (hundreds of configs per sweep) the
DSE instead scores each candidate from the *searched* per-layer DRAM traffic
with a first-order access-count model:

* every DRAM-fetched input/weight word is written to its GBuf once, read out
  once, and lands in a GReg once (replication across PE groups is a
  second-order effect and is ignored);
* every MAC updates an LReg once; every output word leaving the array is
  read from an LReg once, and every re-fetched partial sum (``output_reads``)
  costs one extra LReg write;
* compute time is MAC-bound (``ceil(macs / num_pes)`` cycles per layer) and
  DRAM transfers overlap compute behind double buffering, so a layer's
  cycles are ``max(compute, transfer)``.

The counts feed the *same* Table II energy model every figure uses
(:meth:`repro.energy.model.EnergyModel.energy_from_counts` -- the exact
arithmetic of ``layer_energy``) and the same Fig. 19 performance model
(:func:`repro.arch.performance.performance_report`), so DSE objectives and
the paper figures share one set of constants.  ``tests/test_dse.py``
cross-checks the estimate against the tile-exact model on the Table I
implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.performance import performance_report
from repro.core.layer import ceil_div
from repro.core.traffic import BYTES_PER_WORD
from repro.energy.dram import DramModel
from repro.energy.model import EnergyModel


@dataclass(frozen=True)
class CycleEstimate:
    """Just enough of a network-run result to drive ``performance_report``."""

    compute_cycles: float
    waiting_cycles: float

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.waiting_cycles


def estimate_cycles(
    config: AcceleratorConfig,
    layers,
    per_layer_traffic,
    dram: DramModel,
    weights=None,
) -> CycleEstimate:
    """MAC-bound compute overlapped with DRAM streaming, per layer.

    ``weights[i]`` repeats layer ``i`` that many times (a traffic mix scores
    each unique shape once and multiplies); ``None`` means every layer runs
    once.  Stalls are computed per execution, then scaled -- repeating a
    layer repeats its fill/drain behaviour, it does not amortise it.
    """
    bytes_per_cycle = dram.peak_bandwidth_bytes_per_s / config.clock_hz
    if weights is None:
        weights = (1,) * len(layers)
    compute_total = 0
    waiting_total = 0.0
    for layer, traffic, weight in zip(layers, per_layer_traffic, weights):
        compute = ceil_div(layer.macs, config.num_pes)
        transfer = traffic.total * BYTES_PER_WORD / bytes_per_cycle
        compute_total += weight * compute
        waiting_total += weight * max(0.0, transfer - compute)
    return CycleEstimate(compute_cycles=compute_total, waiting_cycles=waiting_total)


def estimate_counts(layers, per_layer_traffic, weights=None) -> dict:
    """First-order access counts (see the module docstring for the model).

    ``weights[i]`` repeats layer ``i`` that many times; ``None`` means once.
    """
    if weights is None:
        weights = (1,) * len(layers)
    input_reads = sum(w * t.input_reads for t, w in zip(per_layer_traffic, weights))
    weight_reads = sum(w * t.weight_reads for t, w in zip(per_layer_traffic, weights))
    output_reads = sum(w * t.output_reads for t, w in zip(per_layer_traffic, weights))
    output_writes = sum(w * t.output_writes for t, w in zip(per_layer_traffic, weights))
    macs = sum(w * layer.macs for layer, w in zip(layers, weights))
    return {
        "dram_words": sum(w * t.total for t, w in zip(per_layer_traffic, weights)),
        "igbuf_reads": input_reads,
        "igbuf_writes": input_reads,
        "wgbuf_reads": weight_reads,
        "wgbuf_writes": weight_reads,
        "greg_writes": input_reads + weight_reads,
        "macs": macs,
        "lreg_writes": macs + output_reads,
        "lreg_reads": output_writes + output_reads,
    }


def stall_aware_time_ms(config: AcceleratorConfig, layers, dram: DramModel) -> float:
    """Stall-aware latency from the tile-level timing simulator, in ms.

    Runs the double-buffered per-tile simulator (:mod:`repro.timing`) at
    the DRAM model's peak bandwidth with the accelerator's own tiling
    choice, so the objective reflects fill/steady/drain stalls the
    first-order ``max(compute, transfer)`` estimate cannot see.  Raises
    ``ValueError`` when no tiling of some layer fits the config's memories
    (the DSE counts such configs as infeasible).  One full simulation per
    candidate config: far costlier than the first-order trio, which is why
    the ``stall_time`` objective is opt-in.
    """
    from repro.timing import TimingSimulator

    simulator = TimingSimulator(config, dram.peak_bandwidth_bytes_per_s)
    network = simulator.run_network(layers)
    return network.total_cycles / config.clock_hz * 1e3


def config_objectives(
    config: AcceleratorConfig,
    layers,
    per_layer_traffic,
    energy_model: EnergyModel = None,
    include_stall_time: bool = False,
    weights=None,
) -> dict:
    """The DSE objective vector of one config on one workload.

    ``per_layer_traffic`` is the co-searched best
    :class:`~repro.core.traffic.TrafficBreakdown` per layer.  Returns the
    three minimised objectives plus the derived quantities a frontier reader
    wants alongside them; ``include_stall_time`` adds the tile-level
    simulator's stall-aware latency (may raise ``ValueError`` for configs
    whose memories fit no tiling).  ``weights`` repeats each layer (a
    traffic mix scores unique shapes and multiplies); the stall-aware
    objective has no weighted form, so combining the two is an error.
    """
    if include_stall_time and weights is not None:
        raise ValueError(
            "the 'stall_time' objective replays whole networks through the "
            "tile-level simulator and has no weighted-mix form; drop "
            "'stall_time' from the objectives or drop the mix"
        )
    if energy_model is None:
        energy_model = EnergyModel()
    counts = estimate_counts(layers, per_layer_traffic, weights=weights)
    cycles = estimate_cycles(
        config, layers, per_layer_traffic, energy_model.dram, weights=weights
    )
    breakdown = energy_model.energy_from_counts(
        config, total_cycles=cycles.total_cycles, **counts
    )
    report = performance_report(cycles, config, breakdown)
    objectives = {
        "dram": counts["dram_words"] * BYTES_PER_WORD / (1024.0 ** 3),
        "energy": breakdown.pj_per_mac,
        "time": report.total_seconds * 1e3,
        "power_watts": report.power_watts,
        "waiting_fraction": report.waiting_fraction,
    }
    if include_stall_time:
        objectives["stall_time"] = stall_aware_time_ms(config, layers, energy_model.dram)
    return objectives
