"""Order-invariant Pareto frontiers with an associative cross-shard merge.

Frontier rows are the plain dictionaries the DSE sweep emits: each carries a
unique ``"config"`` name and an ``"objectives"`` mapping.  All objectives
are minimised.

Two properties the orchestrated (sharded) sweeps rely on, both exercised by
the hypothesis suite in ``tests/test_dse_properties.py``:

* **order invariance** -- the frontier is a canonically sorted set, so
  feeding the rows in any order produces the byte-identical frontier;
* **associative merge** -- ``pareto_frontier`` is idempotent and merging is
  just the frontier of the union, so any grouping of shard frontiers merges
  to the frontier of the unsharded sweep: a row dominated in the union is
  dominated by some non-dominated row (dominance is transitive), which every
  shard merge preserves.

Ties are kept: two rows with identical objective vectors do not dominate
each other, so both stay on the frontier (deterministically ordered by
config name).
"""

from __future__ import annotations

import json

#: Default objective names of the DSE sweep, in canonical order.
OBJECTIVE_KEYS = ("dram", "energy", "time")

#: Opt-in objectives that are priced only when requested: ``stall_time`` is
#: the tile-level timing simulator's stall-aware latency (one simulation
#: per candidate config, so it costs far more than the first-order trio).
OPTIONAL_OBJECTIVE_KEYS = ("stall_time",)

#: Every accepted objective, in canonical order (defaults first).
ALL_OBJECTIVE_KEYS = OBJECTIVE_KEYS + OPTIONAL_OBJECTIVE_KEYS


def validate_objectives(objectives) -> tuple:
    """Normalise an objective selection to a canonical, validated tuple."""
    objectives = tuple(objectives)
    if not objectives:
        raise ValueError("at least one objective is required")
    unknown = [key for key in objectives if key not in ALL_OBJECTIVE_KEYS]
    if unknown:
        choices = ", ".join(ALL_OBJECTIVE_KEYS)
        raise ValueError(f"unknown objectives {unknown}; choose from: {choices}")
    if len(set(objectives)) != len(objectives):
        raise ValueError(f"duplicate objectives in {list(objectives)}")
    # Canonical order makes the frontier independent of how the caller
    # spelled the selection.
    return tuple(key for key in ALL_OBJECTIVE_KEYS if key in objectives)


def objective_vector(row: dict, objectives) -> tuple:
    """The row's objective values in the requested order."""
    return tuple(row["objectives"][key] for key in objectives)


def dominates(left: dict, right: dict, objectives) -> bool:
    """Strict Pareto dominance: <= everywhere and < somewhere (minimising)."""
    left_vector = objective_vector(left, objectives)
    right_vector = objective_vector(right, objectives)
    return all(a <= b for a, b in zip(left_vector, right_vector)) and any(
        a < b for a, b in zip(left_vector, right_vector)
    )


def frontier_sort_key(row: dict, objectives):
    """Canonical frontier order: objective vector, then config name."""
    return (objective_vector(row, objectives), row["config"])


def pareto_frontier(rows, objectives=OBJECTIVE_KEYS) -> list:
    """Non-dominated rows in canonical order (input order irrelevant).

    A pre-sort by the canonical key lets the scan only test candidates
    against already-accepted rows: in sorted order a row can only be
    dominated by a predecessor (a later row is >= in the first objective
    where they differ, and equal vectors never dominate).
    """
    objectives = validate_objectives(objectives)
    ordered = sorted(rows, key=lambda row: frontier_sort_key(row, objectives))
    frontier = []
    for row in ordered:
        if any(dominates(kept, row, objectives) for kept in frontier):
            continue
        frontier.append(row)
    return frontier


def merge_frontiers(frontiers, objectives=OBJECTIVE_KEYS) -> list:
    """Frontier of the union of shard frontiers (associative, order-free).

    A *set* union: byte-identical rows collapse to one first, so a config
    reached through overlapping shardings or smart-explorer seed islands
    does not masquerade as a kept tie of itself.  Genuinely distinct rows
    with equal objective vectors still tie and both stay.
    """
    unique = {}
    for frontier in frontiers:
        for row in frontier:
            unique.setdefault(json.dumps(row, sort_keys=True), row)
    return pareto_frontier(unique.values(), objectives)


def frontier_non_dominated(frontier, rows, objectives=OBJECTIVE_KEYS) -> bool:
    """Whether no candidate row strictly dominates any frontier point.

    The contract a smart explorer's exactness certificate asserts against
    the exhaustive sweep: a certified frontier may be a subset of the
    evaluated space, but nothing the exhaustive enumeration found may beat
    any of its points.
    """
    objectives = validate_objectives(objectives)
    return not any(
        dominates(row, kept, objectives) for kept in frontier for row in rows
    )


def contains_or_dominates(frontier, row: dict, objectives=OBJECTIVE_KEYS) -> bool:
    """Whether the frontier holds ``row`` itself or a point dominating it.

    True for *every* evaluated candidate by construction; exposed so tests
    can assert it for specific anchors (the Table I implementations).
    """
    objectives = validate_objectives(objectives)
    vector = objective_vector(row, objectives)
    for kept in frontier:
        if kept["config"] == row["config"]:
            return True
        kept_vector = objective_vector(kept, objectives)
        if all(a <= b for a, b in zip(kept_vector, vector)):
            return True
    return False
