"""The DSE sweep driver: enumerate, co-search, score, take the frontier.

One sweep, given an SRAM budget and a workload:

1. enumerate candidate configs under the budget (:mod:`repro.dse.space`);
2. group them into **families** by memory split ``(Psum, IGBuf, WGBuf)`` --
   configs of a family share their whole tiling search, and the engine's
   ``search_many`` answers all capacity points of a family's dataflow with
   one vectorized grid evaluation on the NumPy backend;
3. co-search the best dataflow + tiling per (family, layer): the paper's
   dataflow constrained to the family's exact split, against every Fig. 12
   baseline at the family's total capacity (the baselines model loop orders
   without a split notion, so their traffic is a per-capacity bound shared
   across families of equal totals);
4. score every config with the first-order objective model
   (:mod:`repro.dse.objectives`) and keep the Pareto frontier
   (:mod:`repro.dse.pareto`).

Sweeps shard over the *config space*: ``slice_spec=(k, n)`` processes the
``k``-th contiguous slice of the canonical enumeration, and the slice
frontiers merge associatively to the unsharded frontier
(:func:`repro.dse.pareto.merge_frontiers`).  The ``dse`` experiment
registered here exposes exactly that through the run orchestrator; the
``frontier`` CLI subcommand performs the merge over archived artifacts.
"""

from __future__ import annotations

import json
import os

from repro.core.layer import kib_to_words, total_macs
from repro.dataflows.registry import BASELINE_DATAFLOWS
from repro.dataflows.ours import OptimalDataflow
from repro.dse.objectives import config_objectives
from repro.dse.pareto import pareto_frontier, validate_objectives
from repro.dse.smart import (
    DEFAULT_CERTIFICATE_REGION,
    DEFAULT_EXPLORER,
    run_smart_explorer,
    validate_explorer,
    validate_seed,
)
from repro.dse.space import CandidateSpace, build_config, count_splits, enumerate_configs
from repro.engine import get_default_engine, validate_shard
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers

#: Default sweep budget in KiB of effective on-chip memory: a little above
#: Implementation 5 (131.625 KiB), so every Table I design point is inside
#: the default design space.
DEFAULT_BUDGET_KIB = 140.0

#: Artifact format marker of one sweep payload.
DSE_FORMAT = "repro-dse-v1"


def slice_configs(configs: list, slice_spec) -> list:
    """Contiguous slice ``k/n`` of the canonical enumeration order.

    The same partition rule as manifest sharding: slices are disjoint and
    their union over ``k`` is the full list for every ``n``, which is what
    makes the sharded frontier merge equal the unsharded frontier.
    """
    index, count = validate_shard(*slice_spec)
    start = (index - 1) * len(configs) // count
    end = index * len(configs) // count
    return configs[start:end]


def co_search_families(engine, layers, families: list) -> dict:
    """Best (dataflow, traffic) per layer for each family.

    ``families`` is a list of ``(psum_words, igbuf_words, wgbuf_words)``
    triples.  Returns ``{family: [(dataflow_name, TrafficBreakdown), ...]}``
    with one entry per layer, or ``None`` for families where some layer fits
    no dataflow at all.  Ties break deterministically: the constrained
    paper dataflow first, then the Fig. 12 registry order.
    """
    families = sorted(set(families))
    capacities = sorted({sum(family) for family in families})
    baseline_results = {
        (baseline.name, layer_index): engine.search_many(layer, capacities, baseline)
        for baseline in BASELINE_DATAFLOWS
        for layer_index, layer in enumerate(layers)
    }
    capacity_index = {capacity: index for index, capacity in enumerate(capacities)}

    per_family = {}
    for family in families:
        psum_words, igbuf_words, wgbuf_words = family
        total = sum(family)
        constrained = OptimalDataflow(
            psum_words=psum_words,
            input_buffer_words=igbuf_words,
            weight_buffer_words=wgbuf_words,
        )
        rows = []
        for layer_index, layer in enumerate(layers):
            candidates = engine.search_many(layer, [total], constrained)
            for baseline in BASELINE_DATAFLOWS:
                result = baseline_results[(baseline.name, layer_index)][capacity_index[total]]
                candidates.append(result)
            feasible = [result for result in candidates if result is not None]
            if not feasible:
                rows = None
                break
            best = min(feasible, key=lambda result: result.traffic.total)
            rows.append((best.dataflow, best.traffic))
        per_family[family] = rows
    return per_family


def validate_mix(mix) -> tuple:
    """Check a traffic-mix params dict; returns ``(model, overrides)``.

    A mix needs a ``model`` workload spec and may override any other
    :class:`~repro.workloads.traffic.TrafficMixSpec` field.  Both failure
    modes raise ``ValueError`` -- not the raw ``KeyError``/``TypeError`` a
    hand-edited manifest used to surface -- so the CLIs turn them into the
    standard exit-2 one-liner.
    """
    from dataclasses import fields

    from repro.workloads.traffic import TrafficMixSpec

    if not isinstance(mix, dict):
        raise ValueError(f"a dse traffic mix must be a params dict, got {type(mix).__name__}")
    overrides = dict(mix)
    model = overrides.pop("model", None)
    if not isinstance(model, str) or not model:
        raise ValueError(
            "a dse traffic mix needs a 'model' workload spec (e.g. "
            f"{{'model': 'llama_decode:32'}}); got keys {sorted(mix)}"
        )
    allowed = sorted(field.name for field in fields(TrafficMixSpec) if field.name != "models")
    unknown = sorted(set(overrides) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown traffic-mix override keys {unknown}; choose from: " + ", ".join(allowed)
        )
    return model, overrides


def _mix_layers(mix: dict) -> tuple:
    """Weighted unique-shape layers of a serving-traffic mix.

    ``mix`` holds a ``model`` spec (``"llama_decode:32"``) plus optional
    :class:`~repro.workloads.traffic.TrafficMixSpec` overrides (``seed``,
    ``requests``, ...).  Returns ``(exemplar_layers, weights)`` -- the
    deduped shapes the co-search runs once each, and how many times each
    executes across the whole trace.
    """
    from repro.workloads.traffic import (
        TrafficMixSpec,
        aggregate_trace,
        generate_trace,
        served_model,
        weighted_unique_layers,
    )

    model, overrides = validate_mix(mix)
    spec = TrafficMixSpec(models=(served_model(model),), **overrides)
    trace = generate_trace(spec)
    loads = aggregate_trace(spec, trace)
    return weighted_unique_layers(spec, loads)


def score_config_rows(engine, layers, configs, objectives, weights=None) -> list:
    """Score candidate configs; one row dict (or ``None``) per config.

    The shared scoring stage of the exhaustive sweep and every smart
    explorer batch: families are co-searched once
    (:func:`co_search_families`), then each config is priced by the
    first-order objective model.  ``None`` marks a config infeasible --
    either no dataflow fits its family or the stall-aware objective's
    stricter tiling search rejects it.  The returned list is aligned with
    ``configs`` and deterministic for a given engine backend (and, because
    search results are bit-identical across backends, across backends too).
    """
    objectives = validate_objectives(objectives)
    families = [
        (config.psum_words, config.igbuf_words, config.wgbuf_words) for config in configs
    ]
    per_family = co_search_families(engine, layers, families)
    include_stall_time = "stall_time" in objectives
    scored = []
    for config in configs:
        family = (config.psum_words, config.igbuf_words, config.wgbuf_words)
        searched = per_family[family]
        if searched is None:
            scored.append(None)
            continue
        dataflow_wins = {}
        for dataflow_name, _ in searched:
            dataflow_wins[dataflow_name] = dataflow_wins.get(dataflow_name, 0) + 1
        try:
            priced = config_objectives(
                config,
                layers,
                [traffic for _, traffic in searched],
                include_stall_time=include_stall_time,
                weights=weights,
            )
        except ValueError:
            # The stall-aware objective runs the tile-level simulator with
            # the accelerator's own tiling search, which is stricter than
            # the family co-search (per-PE Psum fit, PE-aligned candidates);
            # a config whose memories fit no tiling is simply infeasible.
            scored.append(None)
            continue
        scored.append(
            {
                "config": config.name,
                "pe_rows": config.pe_rows,
                "pe_cols": config.pe_cols,
                "num_pes": config.num_pes,
                "lreg_words_per_pe": config.lreg_words_per_pe,
                "igbuf_words": config.igbuf_words,
                "wgbuf_words": config.wgbuf_words,
                "psum_words": config.psum_words,
                "effective_kib": config.effective_on_chip_kib,
                "dataflows": dict(sorted(dataflow_wins.items())),
                "objectives": priced,
            }
        )
    return scored


def design_space_exploration(
    budget_kib: float = DEFAULT_BUDGET_KIB,
    layers=None,
    engine=None,
    objectives=None,
    space: CandidateSpace = None,
    slice_spec=(1, 1),
    max_configs: int = None,
    mix: dict = None,
    explorer: str = DEFAULT_EXPLORER,
    seed: int = 0,
    certificate_region: int = DEFAULT_CERTIFICATE_REGION,
) -> dict:
    """Run one sweep (or one slice of it); returns the JSON-ready payload.

    ``mix`` switches the sweep's workload to a serving-traffic mix (see
    :func:`_mix_layers`): candidates are scored on the mix's weighted unique
    shapes instead of ``layers``, so the frontier optimises for the traffic
    actually served rather than one network run once.

    ``explorer`` picks the frontier driver: the default exhaustive sweep
    walks every candidate and its payload is unchanged from before the
    smart explorers existed; ``halving``, ``local`` and ``evolution``
    (:mod:`repro.dse.smart`) evaluate a subset and extend the payload with
    ``explorer``, ``seed``, ``evaluated_count``, ``explorer_stats`` and the
    trust-region exactness ``certificate``.  For smart runs ``slice_spec``
    selects a seed *island* instead of an enumeration slice.
    """
    if engine is None:
        engine = get_default_engine()
    objectives = validate_objectives(objectives or ("dram", "energy", "time"))
    explorer = validate_explorer(explorer)
    weights = None
    if mix is not None:
        if "stall_time" in objectives:
            raise ValueError(
                "the 'stall_time' objective replays whole networks through "
                "the tile-level simulator and has no weighted-mix form; "
                "drop 'stall_time' from the objectives or drop the mix"
            )
        layers, weights = _mix_layers(mix)
    else:
        layers = resolve_layers(layers, "vgg16")
    if space is None:
        space = CandidateSpace()
    if budget_kib <= 0:
        raise ValueError(f"budget must be positive, got {budget_kib} KiB")
    budget_words = kib_to_words(budget_kib)
    slice_spec = validate_shard(*slice_spec)

    if weights is None:
        gmacs = total_macs(layers) / 1e9
    else:
        gmacs = sum(w * layer.macs for layer, w in zip(layers, weights)) / 1e9
    header = {
        "format": DSE_FORMAT,
        "budget_kib": float(budget_kib),
        "budget_words": budget_words,
        "objectives": list(objectives),
        "slice": list(slice_spec),
        "space": space.as_dict(),
        "max_configs": max_configs,
        "mix": dict(mix) if mix is not None else None,
        "layer_count": len(layers),
        "gmacs": gmacs,
    }

    if explorer != DEFAULT_EXPLORER:
        if max_configs is not None:
            raise ValueError(
                "max_configs truncates the canonical enumeration, which only "
                "the 'exhaustive' explorer walks; drop max_configs or use "
                "explorer='exhaustive'"
            )
        seed = validate_seed(seed)
        result = run_smart_explorer(
            score=lambda splits: score_config_rows(
                engine,
                layers,
                [build_config(space, *split) for split in splits],
                objectives,
                weights=weights,
            ),
            objectives=objectives,
            space=space,
            budget_words=budget_words,
            explorer=explorer,
            seed=seed,
            slice_spec=slice_spec,
            backend=engine.backend,
            certificate_region=certificate_region,
        )
        header.update(
            {
                "config_count_total": count_splits(budget_words, space),
                "config_count": len(result["rows"]),
                "infeasible_count": result["infeasible_count"],
                "configs": result["rows"],
                "frontier": result["frontier"],
                "explorer": explorer,
                "seed": seed,
                "evaluated_count": result["evaluated_count"],
                "explorer_stats": result["stats"],
                "certificate": result["certificate"],
            }
        )
        return header

    configs = enumerate_configs(budget_words, space, backend=engine.backend)
    if max_configs is not None:
        if max_configs < 1:
            raise ValueError(f"max_configs must be >= 1, got {max_configs}")
        # Truncate *before* slicing so every slice of a capped sweep
        # partitions the same config set.
        configs = configs[:max_configs]
    total_configs = len(configs)
    sliced = slice_configs(configs, slice_spec)

    scored = score_config_rows(engine, layers, sliced, objectives, weights=weights)
    rows = [row for row in scored if row is not None]
    header.update(
        {
            "config_count_total": total_configs,
            "config_count": len(rows),
            "infeasible_count": scored.count(None),
            "configs": rows,
            "frontier": pareto_frontier(rows, objectives),
        }
    )
    return header


# ------------------------------------------------------------------- goldens

#: Pinned parameters of the DSE golden sweep (``tests/goldens/dse_vgg16.json``).
#: A trimmed space keeps the pinned sweep fast while still spanning PE count,
#: LReg depth and both Table I buffer sizes; regenerate after an intentional
#: model change with::
#:
#:     PYTHONPATH=src python -c "from repro.dse.explore import write_dse_golden; write_dse_golden()"
DSE_GOLDEN_PARAMS = {
    "budget_kib": 140.0,
    "objectives": ["dram", "energy", "time"],
    "slice": [1, 1],
    "max_configs": None,
    "space": {
        "pe_dims": [16, 32, 64],
        "lreg_words": [32, 64, 128],
        "igbuf_words": [1024, 1536],
        "wgbuf_words": [256, 320],
    },
}

DSE_GOLDEN_WORKLOAD = "vgg16"


def compute_dse_golden(engine=None) -> dict:
    """The golden sweep payload under the pinned parameters."""
    params = DSE_GOLDEN_PARAMS
    return design_space_exploration(
        budget_kib=params["budget_kib"],
        layers=DSE_GOLDEN_WORKLOAD,
        engine=engine,
        objectives=tuple(params["objectives"]),
        space=CandidateSpace.from_dict(params["space"]),
        slice_spec=tuple(params["slice"]),
        max_configs=params["max_configs"],
    )


def dse_golden_path(directory: str = None) -> str:
    from repro.analysis.goldens import default_goldens_dir

    return os.path.join(directory or default_goldens_dir(), f"dse_{DSE_GOLDEN_WORKLOAD}.json")


def write_dse_golden(path: str = None, engine=None) -> str:
    """Re-pin the DSE golden file; returns the path written."""
    from repro.analysis.goldens import sanitize_payload

    path = path or dse_golden_path()
    payload = sanitize_payload(compute_dse_golden(engine=engine))
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


# ------------------------------------------------------- experiment registry


def _build_dse(ctx):
    # ``explorer`` and ``seed`` are read with defaults instead of living in
    # ``default_params``: unit ids hash the expanded params, so adding keys
    # to the defaults would re-identify every archived dse unit.
    params = ctx.params
    space = params.get("space")
    return design_space_exploration(
        budget_kib=params["budget_kib"],
        layers=ctx.layers,
        engine=ctx.engine,
        objectives=tuple(params["objectives"]),
        space=CandidateSpace.from_dict(space) if space else None,
        slice_spec=tuple(params["slice"]),
        max_configs=params.get("max_configs"),
        mix=params.get("mix"),
        explorer=params.get("explorer", DEFAULT_EXPLORER),
        seed=params.get("seed", 0),
    )


def _validate_dse_params(params: dict) -> None:
    """Fail fast on ``dse`` params no unit could run.

    ``RunManifest.from_spec`` calls this per expanded variant, so a
    hand-edited spec dies at manifest expansion with one exit-2 one-liner
    instead of N failed units at execution time.
    """
    mix = params.get("mix")
    if mix is not None:
        validate_mix(mix)
    explorer = validate_explorer(params.get("explorer", DEFAULT_EXPLORER))
    validate_seed(params.get("seed", 0))
    if explorer != DEFAULT_EXPLORER and params.get("max_configs") is not None:
        raise ValueError(
            "max_configs truncates the canonical enumeration, which only "
            "the 'exhaustive' explorer walks; drop max_configs or use "
            "explorer='exhaustive'"
        )


def _render_dse(payload, params):
    from repro.analysis.report import format_dse_frontier

    return format_dse_frontier(payload)


register_experiment(
    Experiment(
        name="dse",
        title="DSE: Pareto co-search of accelerator configs",
        build=_build_dse,
        render=_render_dse,
        uses_search=True,
        default_params={
            "budget_kib": DEFAULT_BUDGET_KIB,
            "objectives": ["dram", "energy", "time"],
            "slice": [1, 1],
            "max_configs": None,
            "space": None,
            "mix": None,
        },
        validate_params=_validate_dse_params,
    )
)
