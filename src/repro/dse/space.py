"""Budget-constrained enumeration of candidate accelerator configurations.

A candidate is a point in the cross product of

* a PE array shape ``p x q`` (both multiples of the 4x4 PE-group grid, with
  ``q <= p <= max_aspect * q`` like the paper's implementations),
* a per-PE LReg capacity (the Psum store),
* an IGBuf capacity and a WGBuf capacity,

kept when its *effective on-chip memory* (Psums + GBufs, the quantity the
paper's bounds are stated in) fits the SRAM budget.  The grids default to
power-of-two ladders around the Table I values, so every paper
implementation's memory split is itself an enumerable candidate.

Enumeration order is canonical -- the nested cross product of the axis lists
in declaration order -- and both backends produce the identical list: the
scalar path walks nested ``for`` loops, the vectorized path materializes the
same cross product with :func:`repro.dataflows.grid.meshgrid_ravel` and
masks it against the budget in staged array expressions
(``benchmarks/bench_dse.py`` asserts the bit-identity at 10^6-candidate
scale and gates the end-to-end sweep speedup).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import AcceleratorConfig
from repro.engine import resolve_backend

#: PE array side lengths offered along each dimension (Table I uses 16-64).
DEFAULT_PE_DIMS = (8, 16, 32, 64, 128)

#: Per-PE LReg capacities in words (Table I uses 32-128; 2 bytes per word).
DEFAULT_LREG_WORDS = (16, 32, 64, 128, 256)

#: IGBuf capacities in words (Table I uses 1024 and 1536).
DEFAULT_IGBUF_WORDS = (512, 1024, 1536, 2048, 3072)

#: WGBuf capacities in words (Table I uses 256 and 320).
DEFAULT_WGBUF_WORDS = (128, 256, 320, 512, 640)

#: GReg bytes per PE used by the sizing heuristic (Implementation 5's ratio:
#: 36 KB over 2048 PEs).  GRegs are outside the effective-memory budget and
#: outside the first-order objective model, so the heuristic only has to be
#: deterministic and roughly Table-I-shaped.
GREG_BYTES_PER_PE = 18

#: Floor of the GReg heuristic (small arrays still need working broadcast room).
GREG_BYTES_MIN = 8 * 1024


@dataclass(frozen=True)
class CandidateSpace:
    """Axis lists of the config cross product plus the structural rules."""

    pe_dims: tuple = DEFAULT_PE_DIMS
    lreg_words: tuple = DEFAULT_LREG_WORDS
    igbuf_words: tuple = DEFAULT_IGBUF_WORDS
    wgbuf_words: tuple = DEFAULT_WGBUF_WORDS
    group_rows: int = 4
    group_cols: int = 4
    max_aspect: int = 4

    def __post_init__(self) -> None:
        for name in ("pe_dims", "lreg_words", "igbuf_words", "wgbuf_words"):
            values = tuple(int(value) for value in getattr(self, name))
            if not values:
                raise ValueError(f"candidate space axis {name} is empty")
            if any(value < 1 for value in values):
                raise ValueError(f"candidate space axis {name} holds values < 1")
            if list(values) != sorted(set(values)):
                raise ValueError(f"candidate space axis {name} must be sorted and unique")
            object.__setattr__(self, name, values)
        if self.group_rows < 1 or self.group_cols < 1 or self.max_aspect < 1:
            raise ValueError("group dimensions and max_aspect must be >= 1")

    def pe_pairs(self) -> list:
        """``(rows, cols)`` array shapes in canonical (rows, cols) loop order.

        Like Table I the array is at least as tall as wide (``rows >= cols``)
        and no more elongated than ``max_aspect``; both sides must be
        multiples of the PE-group grid.
        """
        pairs = []
        for rows in self.pe_dims:
            if rows % self.group_rows:
                continue
            for cols in self.pe_dims:
                if cols % self.group_cols:
                    continue
                if cols <= rows <= self.max_aspect * cols:
                    pairs.append((rows, cols))
        return pairs

    def as_dict(self) -> dict:
        return {
            "pe_dims": list(self.pe_dims),
            "lreg_words": list(self.lreg_words),
            "igbuf_words": list(self.igbuf_words),
            "wgbuf_words": list(self.wgbuf_words),
            "group_rows": self.group_rows,
            "group_cols": self.group_cols,
            "max_aspect": self.max_aspect,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CandidateSpace":
        return cls(
            pe_dims=tuple(data["pe_dims"]),
            lreg_words=tuple(data["lreg_words"]),
            igbuf_words=tuple(data["igbuf_words"]),
            wgbuf_words=tuple(data["wgbuf_words"]),
            group_rows=data.get("group_rows", 4),
            group_cols=data.get("group_cols", 4),
            max_aspect=data.get("max_aspect", 4),
        )


def config_name(rows: int, cols: int, lreg: int, igbuf: int, wgbuf: int) -> str:
    """Deterministic name of one candidate (doubles as its identity)."""
    return f"dse-{rows}x{cols}-l{lreg}-ig{igbuf}-wg{wgbuf}"


def build_config(space: CandidateSpace, rows: int, cols: int, lreg: int, igbuf: int, wgbuf: int) -> AcceleratorConfig:
    """Materialise one candidate as an :class:`AcceleratorConfig`."""
    return AcceleratorConfig(
        name=config_name(rows, cols, lreg, igbuf, wgbuf),
        pe_rows=rows,
        pe_cols=cols,
        lreg_words_per_pe=lreg,
        igbuf_words=igbuf,
        wgbuf_words=wgbuf,
        greg_bytes=max(GREG_BYTES_MIN, GREG_BYTES_PER_PE * rows * cols),
        group_rows=space.group_rows,
        group_cols=space.group_cols,
    )


def enumerate_splits(budget_words: int, space: CandidateSpace = None, backend: str = "auto") -> list:
    """All ``(rows, cols, lreg, igbuf, wgbuf)`` splits under the budget.

    The list is in canonical enumeration order (PE pairs outermost, WGBuf
    innermost) and identical on both backends; the budget is applied to the
    effective on-chip words ``rows*cols*lreg + igbuf + wgbuf``.
    """
    if budget_words < 1:
        raise ValueError(f"budget must be at least one on-chip word, got {budget_words}")
    if space is None:
        space = CandidateSpace()
    backend = resolve_backend(backend)
    pairs = space.pe_pairs()
    if not pairs:
        return []
    if backend == "numpy":
        return _enumerate_vectorized(budget_words, space, pairs)
    return _enumerate_scalar(budget_words, space, pairs)


def _enumerate_scalar(budget_words: int, space: CandidateSpace, pairs: list) -> list:
    """Reference nested-loop enumeration (always available)."""
    splits = []
    for rows, cols in pairs:
        num_pes = rows * cols
        for lreg in space.lreg_words:
            psum = num_pes * lreg
            if psum >= budget_words:
                continue
            for igbuf in space.igbuf_words:
                for wgbuf in space.wgbuf_words:
                    if psum + igbuf + wgbuf <= budget_words:
                        splits.append((rows, cols, lreg, igbuf, wgbuf))
    return splits


def _enumerate_vectorized(budget_words: int, space: CandidateSpace, pairs: list) -> list:
    """NumPy enumeration: staged meshgrids over the candidate cross product.

    Mirrors the scalar loop structure in array form: first the (PE pair,
    LReg) psum grid is masked against the budget, then only the surviving
    combos are crossed with the buffer grids and masked on the full
    footprint.  Flattening in C order keeps flat index ``i`` aligned with
    the ``i``-th candidate of the scalar nested loops, so the returned list
    is bit-identical.
    """
    import numpy as np

    from repro.dataflows.grid import meshgrid_ravel

    num_pes_by_pair = np.asarray([rows * cols for rows, cols in pairs], dtype=np.int64)
    pair_index, lreg = meshgrid_ravel(range(len(pairs)), space.lreg_words)
    psum = num_pes_by_pair[pair_index] * lreg
    stage_one = np.flatnonzero(psum < budget_words)
    if stage_one.size == 0:
        return []

    combo_index, igbuf, wgbuf = meshgrid_ravel(
        range(stage_one.size), space.igbuf_words, space.wgbuf_words
    )
    keep = np.flatnonzero(psum[stage_one][combo_index] + igbuf + wgbuf <= budget_words)
    combo = stage_one[combo_index[keep]]
    rows = np.asarray([rows for rows, _ in pairs], dtype=np.int64)[pair_index[combo]]
    cols = np.asarray([cols for _, cols in pairs], dtype=np.int64)[pair_index[combo]]
    # ``tolist`` + ``zip`` converts survivors to plain-int tuples at C speed.
    return list(
        zip(
            rows.tolist(),
            cols.tolist(),
            lreg[combo].tolist(),
            igbuf[keep].tolist(),
            wgbuf[keep].tolist(),
        )
    )


def count_splits(budget_words: int, space: CandidateSpace = None) -> int:
    """``len(enumerate_splits(...))`` without materialising the list.

    The smart explorers report the full space size in
    ``config_count_total`` while only ever enumerating windowed sub-spaces;
    at 10^8-point scale the count must not build 10^8 tuples.  Pure
    arithmetic (a bisect over the sorted WGBuf axis per (pair, LReg,
    IGBuf) combo), so there is no backend parameter to keep bit-identical.
    """
    from bisect import bisect_right

    if budget_words < 1:
        raise ValueError(f"budget must be at least one on-chip word, got {budget_words}")
    if space is None:
        space = CandidateSpace()
    total = 0
    for rows, cols in space.pe_pairs():
        num_pes = rows * cols
        for lreg in space.lreg_words:
            psum = num_pes * lreg
            if psum >= budget_words:
                continue
            remainder = budget_words - psum
            for igbuf in space.igbuf_words:
                if igbuf > remainder:
                    break
                total += bisect_right(space.wgbuf_words, remainder - igbuf)
    return total


def enumerate_configs(budget_words: int, space: CandidateSpace = None, backend: str = "auto") -> list:
    """Candidate :class:`AcceleratorConfig`\\ s under ``budget_words``.

    Canonical enumeration order; both backends return the identical list.
    """
    if space is None:
        space = CandidateSpace()
    return [
        build_config(space, *split)
        for split in enumerate_splits(budget_words, space, backend)
    ]
