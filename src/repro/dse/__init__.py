"""Hardware design-space exploration (DSE).

The paper evaluates five hand-picked accelerator implementations (Table I)
and searches tilings per dataflow.  This package inverts that: given an
SRAM budget it enumerates candidate :class:`~repro.arch.config.
AcceleratorConfig`\\ s (PE array shapes, IGBuf/WGBuf/LReg capacity splits),
co-searches the best dataflow + tiling per (config, workload) through the
memoized :class:`~repro.engine.SearchEngine`, scores every candidate on
(DRAM traffic, energy, execution time) with the Table II energy model and
the Fig. 19 performance model, and emits the Pareto frontier.

* :mod:`repro.dse.space` -- budget-constrained config enumeration
  (vectorized over the candidate cross product when NumPy is available);
* :mod:`repro.dse.pareto` -- order-invariant Pareto frontiers with an
  associative cross-shard merge;
* :mod:`repro.dse.objectives` -- first-order objective estimator built on
  :mod:`repro.energy.model` and :mod:`repro.arch.performance`;
* :mod:`repro.dse.explore` -- the sweep driver, registered as the ``dse``
  experiment for the run orchestrator and the CLI.
"""

from __future__ import annotations

from repro.dse.explore import (
    DEFAULT_BUDGET_KIB,
    design_space_exploration,
    write_dse_golden,
)
from repro.dse.objectives import config_objectives
from repro.dse.pareto import (
    OBJECTIVE_KEYS,
    dominates,
    merge_frontiers,
    pareto_frontier,
)
from repro.dse.space import CandidateSpace, enumerate_configs

__all__ = [
    "CandidateSpace",
    "DEFAULT_BUDGET_KIB",
    "OBJECTIVE_KEYS",
    "config_objectives",
    "design_space_exploration",
    "dominates",
    "enumerate_configs",
    "merge_frontiers",
    "pareto_frontier",
    "write_dse_golden",
]
