"""Merge archived DSE sweep artifacts into whole-sweep Pareto frontiers.

An orchestrated DSE sweep leaves one artifact per ``dse`` unit (a slice of
the config space for one workload under one backend).  This module gathers
those artifacts back out of any number of run/merged trees, groups them by
sweep identity (workload, backend and every parameter *except* the slice),
verifies slice completeness and takes the frontier of the deduplicated row
union -- which, because frontier merging is associative and order-invariant
(see :mod:`repro.dse.pareto`), reproduces the unsharded sweep's frontier
bit-identically.
"""

from __future__ import annotations

import glob
import json
import os

from repro.dse.pareto import pareto_frontier
from repro.orchestration.manifest import canonical_json
from repro.orchestration.runner import UNITS_DIRNAME

#: Format marker of the frontier report document (``--json`` output).
FRONTIER_FORMAT = "repro-dse-frontier-v1"


def _load_unit(path: str) -> dict:
    try:
        with open(path) as handle:
            document = json.load(handle)
    except ValueError as error:
        raise ValueError(f"unit artifact {path} is not valid JSON ({error})") from None
    if not isinstance(document, dict):
        raise ValueError(f"unit artifact {path} is not a unit document")
    return document


def collect_dse_units(run_dirs: list, workload: str = None) -> list:
    """All ``dse`` unit documents in the trees (deduplicated by unit id)."""
    units = {}
    for run_dir in run_dirs:
        units_dir = os.path.join(run_dir, UNITS_DIRNAME)
        if not os.path.isdir(units_dir):
            raise ValueError(f"{units_dir} is missing; {run_dir!r} is not a run tree")
        for path in sorted(glob.glob(os.path.join(units_dir, "*.json"))):
            document = _load_unit(path)
            if document.get("experiment") != "dse":
                continue
            if workload is not None and document.get("workload") != workload:
                continue
            unit_id = document.get("unit_id", os.path.basename(path))
            previous = units.get(unit_id)
            if previous is None:
                units[unit_id] = document
            elif canonical_json(previous) != canonical_json(document):
                # Like merge_runs' byte comparison: a unit id appearing in
                # several trees is fine only when the artifacts agree --
                # silently keeping the first would let a stale tree win by
                # glob order.
                raise ValueError(
                    f"unit {unit_id!r} differs between run trees; "
                    "the trees hold incompatible sweeps"
                )
    return [units[unit_id] for unit_id in sorted(units)]


def merge_dse_artifacts(run_dirs: list, workload: str = None) -> dict:
    """Group ``dse`` units by sweep and merge each group's slice frontiers.

    Returns the frontier report document: one group per (workload, backend,
    params-minus-slice) with the merged frontier, accumulated config counts
    and a ``complete`` flag (every slice ``1..n`` of the sweep present).
    """
    units = collect_dse_units(run_dirs, workload=workload)
    if not units:
        scope = f" for workload {workload!r}" if workload else ""
        raise ValueError(
            f"no 'dse' unit artifacts found{scope} in: " + ", ".join(run_dirs)
        )

    groups = {}
    for document in units:
        params = dict(document.get("params", {}))
        params.pop("slice", None)
        key = canonical_json(
            {
                "workload": document.get("workload"),
                "backend": document.get("backend"),
                "params": params,
            }
        )
        groups.setdefault(key, []).append(document)

    report_groups = []
    for key in sorted(groups):
        documents = groups[key]
        payloads = [document["payload"] for document in documents]
        slices = sorted(tuple(payload["slice"]) for payload in payloads)
        # Group the payloads by their slicing granularity n.  Complete when
        # some slicing 1..n is fully present (an unsliced unit alone covers
        # the sweep even next to partial finer slicings), and the config
        # counts come from ONE slicing -- summing across overlapping
        # slicings would count the same configs twice.
        by_count = {}
        for payload in payloads:
            index, count = payload["slice"]
            by_count.setdefault(count, {})[index] = payload
        complete_counts = [
            count
            for count, indexed in by_count.items()
            if set(indexed) == set(range(1, count + 1))
        ]
        complete = bool(complete_counts)
        if complete:
            counting = min(complete_counts)
        else:
            # Best partial view: the slicing covering the most slices
            # (coarser granularity breaking ties).
            counting = max(by_count, key=lambda count: (len(by_count[count]), -count))
        counted_payloads = list(by_count[counting].values())
        # The group key only covers the *params*; the payload fields derived
        # from them must agree across the group, or a corrupt/mismatched
        # artifact would be silently adopted from whichever payload sorted
        # first.
        reference = payloads[0]
        for payload in payloads[1:]:
            for field in ("config_count_total", "budget_kib", "objectives"):
                if payload[field] != reference[field]:
                    raise ValueError(
                        f"'dse' artifacts of one sweep disagree on {field} "
                        f"({payload[field]!r} vs {reference[field]!r}); "
                        "the trees hold incompatible sweeps"
                    )
        objectives = payloads[0]["objectives"]
        # The same config can reach this point through overlapping slicings
        # (e.g. an unsliced run merged with a 2-slice run); identical rows
        # deduplicate, a config whose rows disagree means the trees hold
        # different sweeps and cannot be merged.
        rows = {}
        for payload in payloads:
            for row in payload["frontier"]:
                text = canonical_json(row)
                previous = rows.setdefault(row["config"], text)
                if previous != text:
                    raise ValueError(
                        f"config {row['config']!r} differs between artifacts; "
                        "the trees hold incompatible sweeps"
                    )
        report_groups.append(
            {
                "workload": documents[0].get("workload"),
                "backend": documents[0].get("backend"),
                # Exhaustive enumeration needs no certificate, so a group is
                # uncertified only when a smart island's fixed point failed.
                "explorer": documents[0].get("params", {}).get("explorer", "exhaustive"),
                "certified": all(
                    payload.get("certificate", {}).get("verified", True)
                    for payload in payloads
                ),
                "budget_kib": payloads[0]["budget_kib"],
                "objectives": list(objectives),
                "slices": [list(entry) for entry in slices],
                "complete": complete,
                "config_count_total": payloads[0]["config_count_total"],
                "config_count": sum(
                    payload["config_count"] for payload in counted_payloads
                ),
                "infeasible_count": sum(
                    payload["infeasible_count"] for payload in counted_payloads
                ),
                "frontier": pareto_frontier(
                    [json.loads(text) for text in rows.values()], tuple(objectives)
                ),
            }
        )
    return {"format": FRONTIER_FORMAT, "groups": report_groups}
