"""Registry of named, parameterizable workloads.

Every network in the repository is exposed as a :class:`Workload` entry, so
any figure/sweep driver, the CLI and the :class:`~repro.engine.SearchEngine`
can run on any registered network by name::

    from repro.workloads.registry import get_workload, list_workloads

    layers = get_workload("vgg16", batch=4)      # list of ConvLayer
    layers = get_workload("mobilenet_v1")        # modern depthwise workload
    for workload in list_workloads():
        print(workload.name, workload.description)

CLI-style specs carry an optional batch override after a colon
(``"resnet18:8"``); :func:`get_workload_spec` parses them.  Functions that
default to the paper's VGG-16 accept either a layer list or a workload
name/spec via :func:`resolve_layers`.

Registering a new network takes one call::

    register_workload(
        "mynet", "My network (Me et al., 2026)", mynet_conv_layers,
        default_batch=1, tags=("cnn",),
    )

where the builder is ``builder(batch, **params) -> list[ConvLayer]``.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field

from repro.workloads.alexnet import alexnet_conv_layers
from repro.workloads.generator import random_network, small_test_layers
from repro.workloads.googlenet import googlenet_conv_layers
from repro.workloads.llm import (
    llama_decode_layers,
    llama_prefill_layers,
    mixtral_decode_layers,
)
from repro.workloads.mobilenet import mobilenet_v1_layers
from repro.workloads.resnet import resnet18_conv_layers
from repro.workloads.transformer import bert_base_layers, bert_large_layers
from repro.workloads.vgg import PAPER_BATCH_SIZE, vgg16_conv_layers, vgg16_fc_layers


class UnknownWorkloadError(KeyError):
    """Raised for a workload name that is not in the registry."""

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Workload:
    """One registered network: a named, parameterizable layer-list builder."""

    name: str
    description: str
    builder: object = field(repr=False)
    default_batch: int = 1
    tags: tuple = ()

    def build(self, batch: int = None, **params) -> list:
        """Materialise the layer list (``batch=None`` uses the default)."""
        if batch is None:
            batch = self.default_batch
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        return self.builder(batch, **params)

    def parameters(self) -> dict:
        """Tunable builder parameters and their defaults, ``batch`` first.

        Introspected from the builder's signature so the CLI listing and the
        docs have one source of truth.  The first positional parameter is the
        batch override (reported with the registry's ``default_batch``);
        cosmetic (``prefix``) and var-keyword parameters are omitted.
        """
        params = {"batch": self.default_batch}
        signature = inspect.signature(self.builder)
        for index, parameter in enumerate(signature.parameters.values()):
            if index == 0 or parameter.name == "prefix":
                continue
            if parameter.kind in (parameter.VAR_POSITIONAL, parameter.VAR_KEYWORD):
                continue
            params[parameter.name] = (
                None if parameter.default is parameter.empty else parameter.default
            )
        return params

    def describe_parameters(self) -> str:
        """One-line ``name=default`` rendering of :meth:`parameters`."""
        return " ".join(
            f"{name}={'?' if value is None else value}"
            for name, value in self.parameters().items()
        )


_REGISTRY = {}


def register_workload(
    name: str,
    description: str,
    builder,
    default_batch: int = 1,
    tags: tuple = (),
    replace: bool = False,
) -> Workload:
    """Add ``builder(batch, **params) -> list[ConvLayer]`` under ``name``."""
    if not name or not name.replace("_", "").isalnum():
        raise ValueError(f"workload names are alphanumeric/underscore, got {name!r}")
    if name in _REGISTRY and not replace:
        raise ValueError(f"workload {name!r} is already registered")
    workload = Workload(
        name=name,
        description=description,
        builder=builder,
        default_batch=default_batch,
        tags=tuple(tags),
    )
    _REGISTRY[name] = workload
    return workload


def workload_names() -> list:
    """Sorted names of every registered workload."""
    return sorted(_REGISTRY)


def list_workloads() -> list:
    """All registered :class:`Workload` entries, sorted by name."""
    return [_REGISTRY[name] for name in workload_names()]


def get_workload(name: str, batch: int = None, **params) -> list:
    """Layer list of the workload registered under ``name``."""
    try:
        workload = _REGISTRY[name]
    except KeyError:
        known = ", ".join(workload_names())
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; registered workloads: {known}"
        ) from None
    return workload.build(batch=batch, **params)


def get_workload_spec(spec: str, **params) -> list:
    """Layer list for a CLI-style ``NAME[:batch]`` spec (e.g. ``"vgg16:4"``)."""
    name, _, batch_text = spec.partition(":")
    if not batch_text:
        return get_workload(name, **params)
    try:
        batch = int(batch_text)
    except ValueError:
        raise ValueError(
            f"invalid workload spec {spec!r}: batch must be an integer"
        ) from None
    return get_workload(name, batch=batch, **params)


def resolve_layers(layers, default: str = None) -> list:
    """Normalise a layers argument: a list passes through, a name/spec is built.

    ``None`` resolves to the ``default`` workload spec (typically ``"vgg16"``,
    the paper's evaluation network).
    """
    if layers is None:
        if default is None:
            raise ValueError("no layers given and no default workload configured")
        layers = default
    if isinstance(layers, str):
        return get_workload_spec(layers)
    return list(layers)


# ---------------------------------------------------------------- built-ins


def _tiny_builder(batch: int) -> list:
    return [layer.with_batch(batch) for layer in small_test_layers()]


def _random_builder(batch: int, seed: int = 0, depth: int = 5, **kwargs) -> list:
    return [layer.with_batch(batch) for layer in random_network(seed, depth=depth, **kwargs)]


def _vgg16_full_builder(batch: int) -> list:
    return vgg16_conv_layers(batch) + vgg16_fc_layers(batch)


register_workload(
    "vgg16",
    "VGG-16 conv layers, the paper's evaluation workload (batch 3)",
    vgg16_conv_layers,
    default_batch=PAPER_BATCH_SIZE,
    tags=("cnn", "paper"),
)
register_workload(
    "vgg16_full",
    "VGG-16 conv + FC layers (FCs as R=1 matmuls)",
    _vgg16_full_builder,
    default_batch=PAPER_BATCH_SIZE,
    tags=("cnn", "matmul"),
)
register_workload(
    "alexnet",
    "AlexNet conv layers: mixed 11x11/5x5/3x3 kernels, strides up to 4",
    alexnet_conv_layers,
    tags=("cnn",),
)
register_workload(
    "resnet18",
    "ResNet-18 conv layers incl. strided 1x1 projection shortcuts",
    resnet18_conv_layers,
    tags=("cnn",),
)
register_workload(
    "mobilenet_v1",
    "MobileNet-V1: per-channel depthwise (Ci=1) + pointwise 1x1 (R=1) layers",
    mobilenet_v1_layers,
    tags=("cnn", "depthwise", "modern"),
)
register_workload(
    "googlenet",
    "GoogLeNet: inception branches mixing 1x1/3x3/5x5 kernels per module",
    googlenet_conv_layers,
    tags=("cnn", "inception", "modern"),
)
register_workload(
    "bert_base",
    "BERT-base encoder: attention + FFN matmuls via from_fc (seq 128)",
    bert_base_layers,
    tags=("transformer", "matmul", "modern"),
)
register_workload(
    "bert_large",
    "BERT-large encoder: 24 layers, hidden 1024, 16 heads (seq 128)",
    bert_large_layers,
    tags=("transformer", "matmul", "modern"),
)
register_workload(
    "llama_decode",
    "Llama-3-8B decode step: skinny GEMMs + GQA KV-cache matmuls (batch=sessions)",
    llama_decode_layers,
    default_batch=32,
    tags=("llm", "decode", "matmul", "modern"),
)
register_workload(
    "llama_prefill",
    "Llama-3-8B prefill: prompt-ingestion matmuls with grouped-query attention",
    llama_prefill_layers,
    default_batch=1,
    tags=("llm", "prefill", "matmul", "modern"),
)
register_workload(
    "mixtral_decode",
    "Mixtral-style MoE decode step: GQA attention + top-k routed expert FFNs",
    mixtral_decode_layers,
    default_batch=32,
    tags=("llm", "decode", "moe", "matmul", "modern"),
)
register_workload(
    "tiny",
    "Hand-picked small layers for smoke tests and CLI dry runs",
    _tiny_builder,
    tags=("synthetic",),
)
register_workload(
    "random",
    "Reproducible random network (params: seed, depth, max_* bounds)",
    _random_builder,
    tags=("synthetic",),
)
