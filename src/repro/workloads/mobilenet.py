"""MobileNet-V1 layer dimensions (Howard et al., 2017).

MobileNet replaces standard convolutions with depthwise-separable blocks:
a *depthwise* 3x3 convolution that filters each channel independently,
followed by a *pointwise* 1x1 convolution that mixes channels.  Both pieces
land on extreme corners of the paper's communication bound:

* a depthwise convolution over ``C`` channels is exactly ``C`` independent
  single-channel convolutions -- ``ConvLayer`` objects with
  ``in_channels = 1`` and ``out_channels = 1`` (tiny ``Ci``, full
  sliding-window reuse ``R = 9``);
* a pointwise convolution is a 1x1 kernel with ``R = 1``, i.e. the pure
  matrix-multiplication corner of the bound (Section III-B).

The decomposition is exact: per-channel layers carry their own 3x3 kernel,
so MAC and word counts sum to the standard depthwise totals.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer

#: Depthwise-separable blocks of MobileNet-V1 at 224x224 input:
#: (input spatial size of the block, in_channels, out_channels, stride of
#: the depthwise stage).  Channel counts are scaled by the width multiplier.
_MOBILENET_V1_BLOCKS = (
    (112, 32, 64, 1),
    (112, 64, 128, 2),
    (56, 128, 128, 1),
    (56, 128, 256, 2),
    (28, 256, 256, 1),
    (28, 256, 512, 2),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 512, 1),
    (14, 512, 1024, 2),
    (7, 1024, 1024, 1),
)

#: Final classifier: global average pool to 1x1x1024, then FC to 1000 classes.
_CLASSIFIER_SHAPE = (1024, 1000)


def _scaled(channels: int, width_multiplier: float) -> int:
    """Channel count under a width multiplier (never below one channel)."""
    return max(1, int(channels * width_multiplier))


def mobilenet_v1_layers(
    batch: int = 1,
    width_multiplier: float = 1.0,
    expand_depthwise: bool = True,
    include_classifier: bool = True,
) -> list:
    """MobileNet-V1 as a flat list of :class:`ConvLayer` objects.

    With ``expand_depthwise=True`` (the default) every depthwise stage over
    ``C`` channels contributes ``C`` shape-identical per-channel layers named
    ``convN_dw/cJJJJ``; the search engine deduplicates them to a single
    exhaustive search per stage.  With ``expand_depthwise=False`` each stage
    contributes one representative per-channel layer whose batch is folded
    with the channel count (``batch * C``) -- traffic-equivalent for the
    input/output tensors and far fewer rows in per-layer reports, but the
    shared-kernel approximation undercounts the (tiny) weight volume.
    """
    if width_multiplier <= 0:
        raise ValueError(f"width_multiplier must be > 0, got {width_multiplier}")
    layers = [
        ConvLayer(
            "conv1",
            batch,
            3,
            224,
            224,
            _scaled(32, width_multiplier),
            3,
            3,
            stride=2,
            padding=1,
        )
    ]
    for index, (size, in_channels, out_channels, stride) in enumerate(
        _MOBILENET_V1_BLOCKS, start=2
    ):
        in_channels = _scaled(in_channels, width_multiplier)
        out_channels = _scaled(out_channels, width_multiplier)
        if expand_depthwise:
            layers.extend(
                ConvLayer(
                    f"conv{index}_dw/c{channel:04d}",
                    batch,
                    1,
                    size,
                    size,
                    1,
                    3,
                    3,
                    stride=stride,
                    padding=1,
                )
                for channel in range(in_channels)
            )
        else:
            layers.append(
                ConvLayer(
                    f"conv{index}_dw(x{in_channels})",
                    batch * in_channels,
                    1,
                    size,
                    size,
                    1,
                    3,
                    3,
                    stride=stride,
                    padding=1,
                )
            )
        layers.append(
            ConvLayer(
                f"conv{index}_pw",
                batch,
                in_channels,
                size // stride,
                size // stride,
                out_channels,
                1,
                1,
                stride=1,
                padding=0,
            )
        )
    if include_classifier:
        in_features, out_features = _CLASSIFIER_SHAPE
        layers.append(
            ConvLayer.from_fc(
                "fc", batch, _scaled(in_features, width_multiplier), out_features
            )
        )
    return layers


def mobilenet_v1_depthwise_layers(batch: int = 1, width_multiplier: float = 1.0) -> list:
    """Only the (expanded) depthwise layers -- the tiny-``Ci`` bound corner."""
    return [
        layer
        for layer in mobilenet_v1_layers(batch, width_multiplier)
        if "_dw" in layer.name
    ]


def mobilenet_v1_pointwise_layers(batch: int = 1, width_multiplier: float = 1.0) -> list:
    """Only the pointwise 1x1 layers -- the ``R = 1`` matmul bound corner."""
    return [
        layer
        for layer in mobilenet_v1_layers(batch, width_multiplier)
        if layer.name.endswith("_pw")
    ]
