"""GoogLeNet (Inception-v1) layer dimensions (Szegedy et al., 2015).

Each inception module runs four parallel branches over the same input --
1x1 convolutions, a 1x1 reduction feeding a 3x3, a 1x1 reduction feeding a
5x5, and a 1x1 projection after pooling -- whose outputs are concatenated.
For the traffic models the branches are independent convolutions, so the
network flattens to a list of :class:`ConvLayer` objects with *mixed kernel
sizes at the same spatial resolution*: 1x1 (``R = 1``), 3x3 (``R = 9``) and
5x5 (``R = 25``) all drawing from one input tensor shape, which exercises
the sliding-window-reuse dimension of the bound far more densely than VGG's
uniform 3x3 stack.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer

#: Inception modules: (name, input spatial size, in_channels,
#: #1x1, #3x3 reduce, #3x3, #5x5 reduce, #5x5, pool projection).
#: Output channels of a module = #1x1 + #3x3 + #5x5 + pool projection.
_INCEPTION_MODULES = (
    ("3a", 28, 192, 64, 96, 128, 16, 32, 32),
    ("3b", 28, 256, 128, 128, 192, 32, 96, 64),
    ("4a", 14, 480, 192, 96, 208, 16, 48, 64),
    ("4b", 14, 512, 160, 112, 224, 24, 64, 64),
    ("4c", 14, 512, 128, 128, 256, 24, 64, 64),
    ("4d", 14, 512, 112, 144, 288, 32, 64, 64),
    ("4e", 14, 528, 256, 160, 320, 32, 128, 128),
    ("5a", 7, 832, 256, 160, 320, 32, 128, 128),
    ("5b", 7, 832, 384, 192, 384, 48, 128, 128),
)


def inception_branch_layers(
    name: str,
    batch: int,
    size: int,
    in_channels: int,
    n1x1: int,
    n3x3_reduce: int,
    n3x3: int,
    n5x5_reduce: int,
    n5x5: int,
    pool_proj: int,
) -> list:
    """The six convolutions of one inception module, branch by branch."""
    return [
        ConvLayer(f"inception_{name}/1x1", batch, in_channels, size, size, n1x1, 1, 1),
        ConvLayer(f"inception_{name}/3x3_reduce", batch, in_channels, size, size,
                  n3x3_reduce, 1, 1),
        ConvLayer(f"inception_{name}/3x3", batch, n3x3_reduce, size, size, n3x3,
                  3, 3, stride=1, padding=1),
        ConvLayer(f"inception_{name}/5x5_reduce", batch, in_channels, size, size,
                  n5x5_reduce, 1, 1),
        ConvLayer(f"inception_{name}/5x5", batch, n5x5_reduce, size, size, n5x5,
                  5, 5, stride=1, padding=2),
        # The pooling branch's 3x3 max-pool moves no MACs; only its 1x1
        # projection is a convolution.
        ConvLayer(f"inception_{name}/pool_proj", batch, in_channels, size, size,
                  pool_proj, 1, 1),
    ]


def googlenet_conv_layers(batch: int = 1) -> list:
    """All convolutional layers of GoogLeNet: the stem plus nine inception modules."""
    layers = [
        ConvLayer("conv1/7x7_s2", batch, 3, 224, 224, 64, 7, 7, stride=2, padding=3),
        ConvLayer("conv2/3x3_reduce", batch, 64, 56, 56, 64, 1, 1),
        ConvLayer("conv2/3x3", batch, 64, 56, 56, 192, 3, 3, stride=1, padding=1),
    ]
    for module in _INCEPTION_MODULES:
        name, size, in_channels = module[0], module[1], module[2]
        layers.extend(inception_branch_layers(name, batch, size, in_channels, *module[3:]))
    return layers
