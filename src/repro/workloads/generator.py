"""Synthetic workload generation for tests and stress experiments."""

from __future__ import annotations

import random

from repro.core.layer import ConvLayer


def random_layer(
    rng: random.Random,
    name: str = "random",
    max_batch: int = 4,
    max_channels: int = 64,
    max_spatial: int = 32,
    max_kernel: int = 5,
) -> ConvLayer:
    """Draw a random but valid convolutional layer from ``rng``."""
    kernel_height = rng.randint(1, max_kernel)
    kernel_width = rng.randint(1, max_kernel)
    stride = rng.randint(1, 2)
    padding = rng.randint(0, min(kernel_height, kernel_width) // 2)
    in_height = rng.randint(kernel_height, max_spatial)
    in_width = rng.randint(kernel_width, max_spatial)
    return ConvLayer(
        name=name,
        batch=rng.randint(1, max_batch),
        in_channels=rng.randint(1, max_channels),
        in_height=in_height,
        in_width=in_width,
        out_channels=rng.randint(1, max_channels),
        kernel_height=kernel_height,
        kernel_width=kernel_width,
        stride=stride,
        padding=padding,
    )


def random_network(seed: int, depth: int = 5, **kwargs) -> list:
    """A reproducible list of random layers."""
    rng = random.Random(seed)
    return [random_layer(rng, name=f"rand{i}", **kwargs) for i in range(depth)]


def small_test_layers() -> list:
    """Hand-picked small layers used by the functional simulator tests.

    Kept small enough that the functional simulator (which moves real numbers
    through instrumented memories) runs in well under a second per layer.
    """
    return [
        ConvLayer("tiny_3x3", 1, 2, 8, 8, 4, 3, 3, stride=1, padding=0),
        ConvLayer("tiny_pad", 1, 3, 7, 9, 5, 3, 3, stride=1, padding=1),
        ConvLayer("tiny_stride2", 2, 2, 9, 9, 3, 3, 3, stride=2, padding=0),
        ConvLayer("tiny_1x1", 1, 6, 6, 6, 8, 1, 1, stride=1, padding=0),
        ConvLayer("tiny_5x5", 1, 2, 12, 12, 2, 5, 5, stride=1, padding=2),
        ConvLayer("tiny_rect", 2, 3, 6, 10, 4, 3, 2, stride=1, padding=0),
    ]
