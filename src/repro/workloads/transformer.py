"""Transformer encoder (BERT-style) workloads built on the matmul machinery.

Section III-B of the paper shows that a layer with ``R = 1`` is exactly a
matrix multiplication, so a Transformer encoder -- which is nothing but
matmuls -- maps onto :meth:`ConvLayer.from_fc` directly:

* the Q/K/V/output projections and the two FFN matmuls multiply activations
  by *learned weights* shared across the batch, so all tokens fold into the
  ``batch`` dimension (``batch * seq_len`` rows);
* the attention score (``Q @ K^T``) and context (``A @ V``) matmuls multiply
  two *activation* tensors, which are distinct per sequence and per head, so
  one ``ConvLayer`` is emitted per ``(sequence, head)`` pair -- all
  shape-identical, which the search engine deduplicates to a single
  exhaustive search each.

The resulting workload exercises the pure-matmul corner of the bound over a
wide spread of aspect ratios: square ``hidden x hidden`` projections, wide
``hidden x 4*hidden`` FFN panels, and small skinny ``seq x head_dim``
attention blocks.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer


def transformer_encoder_layers(
    batch: int = 1,
    seq_len: int = 128,
    hidden: int = 768,
    heads: int = 12,
    ffn_hidden: int = None,
    num_layers: int = 12,
    prefix: str = "enc",
) -> list:
    """Matmul layers of a Transformer encoder stack as :class:`ConvLayer` list."""
    if hidden % heads != 0:
        raise ValueError(f"hidden ({hidden}) must be divisible by heads ({heads})")
    if ffn_hidden is None:
        ffn_hidden = 4 * hidden
    head_dim = hidden // heads
    tokens = batch * seq_len

    layers = []
    for index in range(num_layers):
        name = f"{prefix}{index:02d}"
        for projection in ("q_proj", "k_proj", "v_proj"):
            layers.append(ConvLayer.from_fc(f"{name}/{projection}", tokens, hidden, hidden))
        for sequence in range(batch):
            for head in range(heads):
                # The stationary operand of both attention matmuls is an
                # activation tensor (K^T resp. V), not learned weights; the
                # tag lets traffic reports attribute the reads correctly.
                suffix = f"s{sequence}_h{head:02d}"
                layers.append(
                    ConvLayer.from_fc(
                        f"{name}/scores_{suffix}",
                        seq_len,
                        head_dim,
                        seq_len,
                        weight_kind="activation",
                    )
                )
                layers.append(
                    ConvLayer.from_fc(
                        f"{name}/context_{suffix}",
                        seq_len,
                        seq_len,
                        head_dim,
                        weight_kind="activation",
                    )
                )
        layers.append(ConvLayer.from_fc(f"{name}/out_proj", tokens, hidden, hidden))
        layers.append(ConvLayer.from_fc(f"{name}/ffn_in", tokens, hidden, ffn_hidden))
        layers.append(ConvLayer.from_fc(f"{name}/ffn_out", tokens, ffn_hidden, hidden))
    return layers


def bert_base_layers(batch: int = 1, seq_len: int = 128) -> list:
    """BERT-base: 12 encoder layers, hidden 768, 12 heads, FFN 3072."""
    return transformer_encoder_layers(
        batch=batch, seq_len=seq_len, hidden=768, heads=12, ffn_hidden=3072, num_layers=12
    )


def bert_large_layers(batch: int = 1, seq_len: int = 128) -> list:
    """BERT-large: 24 encoder layers, hidden 1024, 16 heads, FFN 4096."""
    return transformer_encoder_layers(
        batch=batch, seq_len=seq_len, hidden=1024, heads=16, ffn_hidden=4096, num_layers=24
    )
