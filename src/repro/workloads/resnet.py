"""ResNet-18 convolutional layer dimensions (He et al., 2016).

Included as a modern workload with strided convolutions and 1x1 projection
shortcuts (for which ``R = 1``, i.e. the pure matrix-multiplication corner of
the bound).
"""

from __future__ import annotations

from repro.core.layer import ConvLayer


def resnet18_conv_layers(batch: int = 1) -> list:
    """All convolutional layers of ResNet-18 (including projection shortcuts)."""
    layers = [ConvLayer("conv1", batch, 3, 224, 224, 64, 7, 7, stride=2, padding=3)]

    def stage(name: str, in_channels: int, out_channels: int, size: int, downsample: bool) -> list:
        stride = 2 if downsample else 1
        in_size = size * stride
        result = [
            ConvLayer(f"{name}_block1_conv1", batch, in_channels, in_size, in_size,
                      out_channels, 3, 3, stride=stride, padding=1),
            ConvLayer(f"{name}_block1_conv2", batch, out_channels, size, size,
                      out_channels, 3, 3, stride=1, padding=1),
            ConvLayer(f"{name}_block2_conv1", batch, out_channels, size, size,
                      out_channels, 3, 3, stride=1, padding=1),
            ConvLayer(f"{name}_block2_conv2", batch, out_channels, size, size,
                      out_channels, 3, 3, stride=1, padding=1),
        ]
        if downsample:
            result.append(
                ConvLayer(f"{name}_shortcut", batch, in_channels, in_size, in_size,
                          out_channels, 1, 1, stride=2, padding=0)
            )
        return result

    layers += stage("layer1", 64, 64, 56, downsample=False)
    layers += stage("layer2", 64, 128, 28, downsample=True)
    layers += stage("layer3", 128, 256, 14, downsample=True)
    layers += stage("layer4", 256, 512, 7, downsample=True)
    return layers
