"""VGGNet-16 layer dimensions.

The paper's evaluation workload is VGGNet-16 with batch size 3 (the same
workload Eyeriss reports).  The 13 convolutional layers all use 3x3 kernels
with unit stride and padding 1; the spatial size halves after every pooling
stage.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer

#: (in_channels, spatial size, out_channels) for the 13 conv layers.
_VGG16_CONV_SHAPES = (
    ("conv1_1", 3, 224, 64),
    ("conv1_2", 64, 224, 64),
    ("conv2_1", 64, 112, 128),
    ("conv2_2", 128, 112, 128),
    ("conv3_1", 128, 56, 256),
    ("conv3_2", 256, 56, 256),
    ("conv3_3", 256, 56, 256),
    ("conv4_1", 256, 28, 512),
    ("conv4_2", 512, 28, 512),
    ("conv4_3", 512, 28, 512),
    ("conv5_1", 512, 14, 512),
    ("conv5_2", 512, 14, 512),
    ("conv5_3", 512, 14, 512),
)

#: (in_features, out_features) of the three fully-connected layers.
_VGG16_FC_SHAPES = (
    ("fc6", 25088, 4096),
    ("fc7", 4096, 4096),
    ("fc8", 4096, 1000),
)

PAPER_BATCH_SIZE = 3
"""The batch size used throughout the paper's evaluation."""


def vgg16_conv_layers(batch: int = PAPER_BATCH_SIZE) -> list:
    """The 13 convolutional layers of VGGNet-16 as :class:`ConvLayer` objects."""
    layers = []
    for name, in_channels, size, out_channels in _VGG16_CONV_SHAPES:
        layers.append(
            ConvLayer(
                name=name,
                batch=batch,
                in_channels=in_channels,
                in_height=size,
                in_width=size,
                out_channels=out_channels,
                kernel_height=3,
                kernel_width=3,
                stride=1,
                padding=1,
            )
        )
    return layers


def vgg16_fc_layers(batch: int = PAPER_BATCH_SIZE) -> list:
    """The three fully-connected layers of VGGNet-16 (as 1x1 convolutions)."""
    return [
        ConvLayer.from_fc(name, batch, in_features, out_features)
        for name, in_features, out_features in _VGG16_FC_SHAPES
    ]


def is_vgg16_conv_workload(layers) -> bool:
    """Whether every layer is a VGG-16 conv layer (full stack or a subset).

    The Eyeriss / FlexFlow comparison constants (reported DRAM volumes,
    seconds per image, per-layer input compression ratios) are measurements
    of *this* workload; drivers use this check to suppress those rows for
    any other registered network instead of printing meaningless ratios.
    Layers match by name *and* shape (batch-agnostic, since the per-image
    constants scale with batch).
    """
    layers = list(layers)
    if not layers:
        return False
    reference = {layer.name: layer for layer in vgg16_conv_layers(batch=1)}
    return all(
        layer.name in reference and layer.with_batch(1) == reference[layer.name]
        for layer in layers
    )


def vgg16_layer(index: int, batch: int = PAPER_BATCH_SIZE) -> ConvLayer:
    """Convolutional layer by 1-based index (the paper numbers layers 1-13)."""
    layers = vgg16_conv_layers(batch)
    if not 1 <= index <= len(layers):
        raise IndexError(f"VGG-16 has {len(layers)} conv layers; got index {index}")
    return layers[index - 1]
