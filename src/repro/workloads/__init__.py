"""Workload definitions: the paper's VGGNet-16 plus a registry of modern networks."""

from repro.workloads.vgg import vgg16_conv_layers, vgg16_fc_layers
from repro.workloads.alexnet import alexnet_conv_layers
from repro.workloads.resnet import resnet18_conv_layers
from repro.workloads.mobilenet import mobilenet_v1_layers
from repro.workloads.googlenet import googlenet_conv_layers
from repro.workloads.transformer import bert_base_layers, transformer_encoder_layers
from repro.workloads.llm import (
    llama_decode_layers,
    llama_prefill_layers,
    mixtral_decode_layers,
)
from repro.workloads.generator import random_layer, random_network, small_test_layers
from repro.workloads.registry import (
    UnknownWorkloadError,
    Workload,
    get_workload,
    get_workload_spec,
    list_workloads,
    register_workload,
    resolve_layers,
    workload_names,
)

__all__ = [
    "vgg16_conv_layers",
    "vgg16_fc_layers",
    "alexnet_conv_layers",
    "resnet18_conv_layers",
    "mobilenet_v1_layers",
    "googlenet_conv_layers",
    "bert_base_layers",
    "transformer_encoder_layers",
    "llama_decode_layers",
    "llama_prefill_layers",
    "mixtral_decode_layers",
    "random_layer",
    "random_network",
    "small_test_layers",
    "UnknownWorkloadError",
    "Workload",
    "get_workload",
    "get_workload_spec",
    "list_workloads",
    "register_workload",
    "resolve_layers",
    "workload_names",
]
