"""Workload definitions: the paper's VGGNet-16 plus other common CNNs."""

from repro.workloads.vgg import vgg16_conv_layers, vgg16_fc_layers
from repro.workloads.alexnet import alexnet_conv_layers
from repro.workloads.resnet import resnet18_conv_layers
from repro.workloads.generator import random_layer, random_network, small_test_layers

__all__ = [
    "vgg16_conv_layers",
    "vgg16_fc_layers",
    "alexnet_conv_layers",
    "resnet18_conv_layers",
    "random_layer",
    "random_network",
    "small_test_layers",
]
