"""LLM serving workloads: decode steps, KV-cache traffic, GQA, and MoE.

The BERT entries in :mod:`repro.workloads.transformer` model encoder
*prefill* only.  Serving traffic in 2026 is dominated by the other phase:
autoregressive *decode*, where each step computes one token per concurrent
session and the attention matmuls read the session's growing KV cache.  All
of it is still matmuls, so the Section III-A ``R = 1`` mapping onto
:meth:`ConvLayer.from_fc` applies and every builder below is exact with
respect to MACs (the MobileNet/BERT precedent):

* the Q/K/V/output projections and FFN matmuls multiply the ``batch``
  current tokens (one per session) by *learned weights* -- skinny
  ``batch x hidden`` GEMMs, tagged ``weight_kind="weights"``;
* the attention score (``q @ K^T``) and context (``a @ V``) matmuls read
  the session's *KV cache*.  With grouped-query attention the ``group =
  heads // kv_heads`` query heads sharing one KV head fold into the row
  dimension, so one ``ConvLayer`` per ``(session, kv_head)`` pair has the
  cached ``head_dim x context`` K (resp. ``context x head_dim`` V) tensor
  as its weight operand -- tagged ``weight_kind="kv_cache"`` so traffic
  reports can split serving-state reads from parameter reads;
* MoE FFNs route the ``batch * top_k`` token-expert assignments over the
  experts with a deterministic balanced split and emit one gate/up/down
  matmul triple per active expert, plus the learned router matmul.

Closed-form MAC/KV accounting lives alongside the builders
(:func:`decode_step_macs`, :func:`kv_cache_words_per_step`) and is pinned
against the built layers by a hypothesis property in the test suite.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer


def resolve_head_dim(hidden: int, heads: int, head_dim: int = None) -> int:
    """Per-head dimension, defaulting to ``hidden // heads``."""
    if head_dim is None:
        if hidden % heads != 0:
            raise ValueError(f"hidden ({hidden}) must be divisible by heads ({heads})")
        head_dim = hidden // heads
    if head_dim < 1:
        raise ValueError(f"head_dim must be >= 1, got {head_dim}")
    return head_dim


def _check_gqa(heads: int, kv_heads: int) -> int:
    """Validate a GQA head layout and return the query-head group size."""
    if heads < 1 or kv_heads < 1:
        raise ValueError(f"heads and kv_heads must be >= 1, got {heads}, {kv_heads}")
    if heads % kv_heads != 0:
        raise ValueError(
            f"heads ({heads}) must be divisible by kv_heads ({kv_heads}) for GQA"
        )
    return heads // kv_heads


def balanced_expert_counts(assignments: int, experts: int) -> list:
    """Deterministic balanced routing: token-expert assignment counts.

    A real router's load depends on the input; for an analytic traffic model
    we want the *representative* (and reproducible) case, so the
    ``assignments = tokens * top_k`` pairs are spread round-robin: every
    expert gets ``assignments // experts`` and the first ``assignments %
    experts`` experts get one more.  The sum is exact, which keeps the MoE
    MAC count exact.
    """
    if experts < 1:
        raise ValueError(f"experts must be >= 1, got {experts}")
    if assignments < 0:
        raise ValueError(f"assignments must be >= 0, got {assignments}")
    base, extra = divmod(assignments, experts)
    return [base + (1 if index < extra else 0) for index in range(experts)]


def _ffn_layers(name: str, tokens: int, hidden: int, ffn_hidden: int) -> list:
    """Gated (SwiGLU-style) FFN: gate + up projections and the down projection."""
    return [
        ConvLayer.from_fc(f"{name}/ffn_gate", tokens, hidden, ffn_hidden),
        ConvLayer.from_fc(f"{name}/ffn_up", tokens, hidden, ffn_hidden),
        ConvLayer.from_fc(f"{name}/ffn_down", tokens, ffn_hidden, hidden),
    ]


def _moe_layers(
    name: str, tokens: int, hidden: int, ffn_hidden: int, experts: int, top_k: int
) -> list:
    """Router matmul plus per-active-expert gated FFN triples."""
    if not 1 <= top_k <= experts:
        raise ValueError(f"top_k must be in [1, experts={experts}], got {top_k}")
    layers = [ConvLayer.from_fc(f"{name}/router", tokens, hidden, experts)]
    counts = balanced_expert_counts(tokens * top_k, experts)
    for expert, rows in enumerate(counts):
        if rows:
            layers.extend(_ffn_layers(f"{name}/e{expert:02d}", rows, hidden, ffn_hidden))
    return layers


def _decoder_layer(
    name: str,
    batch: int,
    context: int,
    hidden: int,
    heads: int,
    kv_heads: int,
    head_dim: int,
    ffn_hidden: int,
    experts: int = None,
    top_k: int = 2,
) -> list:
    """One decode step through one decoder layer, as exact matmuls."""
    group = _check_gqa(heads, kv_heads)
    layers = [
        ConvLayer.from_fc(f"{name}/q_proj", batch, hidden, heads * head_dim),
        ConvLayer.from_fc(f"{name}/k_proj", batch, hidden, kv_heads * head_dim),
        ConvLayer.from_fc(f"{name}/v_proj", batch, hidden, kv_heads * head_dim),
    ]
    for session in range(batch):
        for kv_head in range(kv_heads):
            # The `group` query heads sharing this KV head stack into the row
            # dimension; the stationary operand is this session's cached K
            # (head_dim x context) resp. V (context x head_dim) slice.
            suffix = f"s{session}_kv{kv_head:02d}"
            layers.append(
                ConvLayer.from_fc(
                    f"{name}/scores_{suffix}",
                    group,
                    head_dim,
                    context,
                    weight_kind="kv_cache",
                )
            )
            layers.append(
                ConvLayer.from_fc(
                    f"{name}/context_{suffix}",
                    group,
                    context,
                    head_dim,
                    weight_kind="kv_cache",
                )
            )
    layers.append(ConvLayer.from_fc(f"{name}/o_proj", batch, heads * head_dim, hidden))
    if experts is None:
        layers.extend(_ffn_layers(name, batch, hidden, ffn_hidden))
    else:
        layers.extend(_moe_layers(name, batch, hidden, ffn_hidden, experts, top_k))
    return layers


def llama_decode_layers(
    batch: int = 32,
    context: int = 4096,
    hidden: int = 4096,
    heads: int = 32,
    kv_heads: int = 8,
    head_dim: int = None,
    ffn_hidden: int = 14336,
    num_layers: int = 32,
    prefix: str = "dec",
) -> list:
    """One autoregressive decode step of a dense Llama-style model.

    ``batch`` is the number of concurrent serving sessions (one new token
    each); ``context`` is the KV-cache length every session attends over.
    Defaults follow the Llama-3-8B shape (32 layers, hidden 4096, 32 query /
    8 KV heads, FFN 14336).
    """
    if context < 1:
        raise ValueError(f"context must be >= 1, got {context}")
    head_dim = resolve_head_dim(hidden, heads, head_dim)
    layers = []
    for index in range(num_layers):
        layers.extend(
            _decoder_layer(
                f"{prefix}{index:02d}",
                batch,
                context,
                hidden,
                heads,
                kv_heads,
                head_dim,
                ffn_hidden,
            )
        )
    return layers


def mixtral_decode_layers(
    batch: int = 32,
    context: int = 4096,
    hidden: int = 4096,
    heads: int = 32,
    kv_heads: int = 8,
    head_dim: int = None,
    ffn_hidden: int = 14336,
    num_layers: int = 32,
    experts: int = 8,
    top_k: int = 2,
    prefix: str = "moe",
) -> list:
    """One decode step of a Mixtral-style mixture-of-experts model.

    Identical attention path to :func:`llama_decode_layers`; the dense FFN is
    replaced by a learned router matmul plus ``top_k``-of-``experts`` routed
    gated FFNs under deterministic balanced routing
    (:func:`balanced_expert_counts`).
    """
    if context < 1:
        raise ValueError(f"context must be >= 1, got {context}")
    head_dim = resolve_head_dim(hidden, heads, head_dim)
    layers = []
    for index in range(num_layers):
        layers.extend(
            _decoder_layer(
                f"{prefix}{index:02d}",
                batch,
                context,
                hidden,
                heads,
                kv_heads,
                head_dim,
                ffn_hidden,
                experts=experts,
                top_k=top_k,
            )
        )
    return layers


def llama_prefill_layers(
    batch: int = 1,
    prompt: int = 512,
    hidden: int = 4096,
    heads: int = 32,
    kv_heads: int = 8,
    head_dim: int = None,
    ffn_hidden: int = 14336,
    num_layers: int = 32,
    experts: int = None,
    top_k: int = 2,
    prefix: str = "pre",
) -> list:
    """Prefill (prompt ingestion) of a Llama-style model with GQA.

    Like the BERT encoder but with grouped-query attention: per
    ``(sequence, kv_head)`` pair the ``group * prompt`` query rows multiply
    the shared ``head_dim x prompt`` K^T (then ``prompt x head_dim`` V),
    tagged ``weight_kind="activation"`` -- during prefill K/V are being
    produced, not served from cache.  Attention is modeled dense (the causal
    mask halves the useful MACs but not the shape), matching the BERT
    precedent.  Setting ``experts`` swaps the dense FFN for the MoE router +
    routed expert triples (the Mixtral prefill path), with the
    ``batch * prompt * top_k`` assignments balanced across experts.
    """
    if prompt < 1:
        raise ValueError(f"prompt must be >= 1, got {prompt}")
    head_dim = resolve_head_dim(hidden, heads, head_dim)
    group = _check_gqa(heads, kv_heads)
    tokens = batch * prompt
    layers = []
    for index in range(num_layers):
        name = f"{prefix}{index:02d}"
        layers.append(ConvLayer.from_fc(f"{name}/q_proj", tokens, hidden, heads * head_dim))
        layers.append(
            ConvLayer.from_fc(f"{name}/k_proj", tokens, hidden, kv_heads * head_dim)
        )
        layers.append(
            ConvLayer.from_fc(f"{name}/v_proj", tokens, hidden, kv_heads * head_dim)
        )
        for sequence in range(batch):
            for kv_head in range(kv_heads):
                suffix = f"s{sequence}_kv{kv_head:02d}"
                layers.append(
                    ConvLayer.from_fc(
                        f"{name}/scores_{suffix}",
                        group * prompt,
                        head_dim,
                        prompt,
                        weight_kind="activation",
                    )
                )
                layers.append(
                    ConvLayer.from_fc(
                        f"{name}/context_{suffix}",
                        group * prompt,
                        prompt,
                        head_dim,
                        weight_kind="activation",
                    )
                )
        layers.append(ConvLayer.from_fc(f"{name}/o_proj", tokens, heads * head_dim, hidden))
        if experts is None:
            layers.extend(_ffn_layers(name, tokens, hidden, ffn_hidden))
        else:
            layers.extend(_moe_layers(name, tokens, hidden, ffn_hidden, experts, top_k))
    return layers


# ---------------------------------------------------------- closed forms


def decode_attention_macs(
    batch: int, context: int, heads: int, head_dim: int
) -> int:
    """Attention MACs of one decode step through one decoder layer.

    The score and context matmuls each perform ``context * head_dim`` MACs
    per query head per session: ``2 * batch * heads * head_dim * context``.
    Independent of ``kv_heads`` -- GQA shares cache, not arithmetic.
    """
    return 2 * batch * heads * head_dim * context


def decode_step_macs(
    batch: int,
    context: int,
    hidden: int = 4096,
    heads: int = 32,
    kv_heads: int = 8,
    head_dim: int = None,
    ffn_hidden: int = 14336,
    num_layers: int = 32,
    experts: int = None,
    top_k: int = 2,
) -> int:
    """Closed-form MAC count of one decode step (all decoder layers).

    Per layer: Q/K/V/O projections ``batch * hidden * (2*heads +
    2*kv_heads) * head_dim``, attention
    :func:`decode_attention_macs`, and a gated FFN ``3 * batch * hidden *
    ffn_hidden`` -- or, with ``experts`` set, the router ``batch * hidden *
    experts`` plus ``3 * batch * top_k * hidden * ffn_hidden`` across the
    routed experts (balanced routing preserves the total exactly).  The
    builders are pinned against this by a hypothesis property.
    """
    head_dim = resolve_head_dim(hidden, heads, head_dim)
    projections = batch * hidden * (2 * heads + 2 * kv_heads) * head_dim
    attention = decode_attention_macs(batch, context, heads, head_dim)
    if experts is None:
        ffn = 3 * batch * hidden * ffn_hidden
    else:
        ffn = batch * hidden * experts + 3 * batch * top_k * hidden * ffn_hidden
    return num_layers * (projections + attention + ffn)


def kv_cache_words_per_step(
    batch: int,
    context: int,
    hidden: int = 4096,
    heads: int = 32,
    kv_heads: int = 8,
    head_dim: int = None,
    num_layers: int = 32,
) -> int:
    """KV-cache words a decode step must read: ``2 * B * kv_heads * d * L * ctx``.

    Equals the sum of :attr:`~repro.core.layer.ConvLayer.kv_cache_words`
    over the layers built by :func:`llama_decode_layers` -- each
    ``(session, kv_head)`` pair contributes one K and one V slice of
    ``head_dim * context`` words per decoder layer.
    """
    head_dim = resolve_head_dim(hidden, heads, head_dim)
    return 2 * batch * kv_heads * head_dim * context * num_layers
