"""Seeded request-trace generator and traffic-mix aggregation.

Connects the paper's per-layer traffic bounds to datacenter-scale serving
questions: instead of asking "what is the optimal dataflow for one layer?",
ask "what is the aggregate optimal-dataflow cost of *this request mix*?".

A :class:`TrafficMixSpec` describes a serving fleet: a catalog of
:class:`ServedModel` entries with Zipf(alpha) popularity (rank order =
catalog order), Poisson request arrivals, and log-uniform-ish prompt/decode
lengths.  :func:`generate_trace` expands it into a deterministic list of
:class:`Request` records -- everything is driven by ``random.Random(seed)``
with integer-only length sampling, so a (spec, seed) pair reproduces the
same trace on every platform and backend.

:func:`aggregate_trace` folds the trace into a small list of
:class:`PhaseLoad` units ("``count`` executions of model M's decode step at
context bucket C with batch B"): decode contexts grow by one token per step,
so steps are bucketed to powers of two and grouped into serving batches of
the model's configured batch size; prefills are bucketed by prompt length
and run per-request.  :func:`weighted_unique_layers` then dedupes the
materialised layers by shape, yielding the (exemplar layer, weight) pairs a
:class:`~repro.engine.SearchEngine` can answer with a handful of searches --
a few dozen unique shapes stand in for millions of per-step layer instances.

This module is deliberately engine-free: the searching lives in
:mod:`repro.analysis.traffic_report` (the ``traffic`` experiment) and the
mix-weighted DSE objective in :mod:`repro.dse`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.engine.cache import layer_signature
from repro.workloads.registry import UnknownWorkloadError, get_workload, workload_names

PREFILL_FOR = {
    "llama_decode": ("llama_prefill", {}),
    "mixtral_decode": ("llama_prefill", {"experts": 8, "top_k": 2}),
}
"""Prefill counterpart (workload name, extra builder params) per decode family.

Mixtral prefill reuses the GQA prefill builder with its MoE FFN parameters,
which keeps prompt-phase MACs exact for routed experts too.
"""


def _registry_entry(name: str):
    from repro.workloads.registry import _REGISTRY

    return _REGISTRY[name]


@dataclass(frozen=True)
class ServedModel:
    """One model in the serving catalog.

    ``spec`` is a ``NAME[:batch]`` workload spec whose workload must be a
    decode family (tagged ``"decode"``); the batch is the *serving batch* --
    how many concurrent sessions' decode steps are batched into one step of
    skinny GEMMs.  ``params`` are extra builder overrides as a sorted tuple
    of ``(key, value)`` pairs (hashable, deterministic).
    """

    spec: str
    params: tuple = ()

    def __post_init__(self) -> None:
        name, batch = self.split_spec()
        overrides = dict(self.params)
        if "batch" in overrides or "context" in overrides:
            raise ValueError("batch/context are set by the mix, not model params")
        entry = _registry_entry_or_raise(name)
        if "decode" not in entry.tags:
            raise ValueError(
                f"traffic mixes serve decode-family workloads; {name!r} has tags "
                f"{entry.tags}"
            )
        if name not in PREFILL_FOR:
            raise ValueError(f"no prefill counterpart registered for {name!r}")
        if batch < 1:
            raise ValueError(f"serving batch must be >= 1, got {batch}")

    def split_spec(self) -> tuple:
        """``(workload_name, serving_batch)`` of the ``NAME[:batch]`` spec."""
        name, _, batch_text = self.spec.partition(":")
        if not batch_text:
            return name, _registry_entry_or_raise(name).default_batch
        try:
            return name, int(batch_text)
        except ValueError:
            raise ValueError(
                f"invalid model spec {self.spec!r}: batch must be an integer"
            ) from None

    @property
    def name(self) -> str:
        return self.split_spec()[0]

    @property
    def batch(self) -> int:
        return self.split_spec()[1]

    def decode_layers(self, context: int, batch: int = None) -> list:
        """Decode-step layers at ``context`` for ``batch`` concurrent sessions."""
        if batch is None:
            batch = self.batch
        return get_workload(
            self.name, batch=batch, context=context, **dict(self.params)
        )

    def prefill_layers(self, prompt: int) -> list:
        """Prompt-ingestion layers for one request of ``prompt`` tokens."""
        prefill_name, extra = PREFILL_FOR[self.name]
        allowed = set(_registry_entry(prefill_name).parameters())
        params = dict(extra)
        params.update(
            {key: value for key, value in dict(self.params).items() if key in allowed}
        )
        return get_workload(prefill_name, batch=1, prompt=prompt, **params)


def _registry_entry_or_raise(name: str):
    try:
        return _registry_entry(name)
    except KeyError:
        known = ", ".join(workload_names())
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; registered workloads: {known}"
        ) from None


def served_model(spec: str, **params) -> ServedModel:
    """Build a :class:`ServedModel` from a spec string and builder overrides."""
    return ServedModel(spec=spec, params=tuple(sorted(params.items())))


@dataclass(frozen=True)
class Request:
    """One serving request of the trace."""

    index: int
    arrival_s: float
    model: int
    """Index into the mix's model catalog."""
    prompt_tokens: int
    decode_tokens: int


@dataclass(frozen=True)
class TrafficMixSpec:
    """A reproducible serving-traffic mix."""

    models: tuple
    """Catalog of :class:`ServedModel`, most popular first (Zipf rank order)."""
    requests: int = 32
    seed: int = 0
    arrival_rate_per_s: float = 8.0
    zipf_alpha: float = 1.0
    prompt_exponents: tuple = (7, 11)
    """Prompt lengths are drawn log-uniformly: bucket exponent ``b`` uniform in
    this inclusive range, then length uniform in ``(2^(b-1), 2^b]``."""
    decode_exponents: tuple = (5, 9)
    """Same scheme for the number of generated tokens per request."""

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError("a traffic mix needs at least one served model")
        if self.requests < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if not self.arrival_rate_per_s > 0:
            raise ValueError("arrival rate must be positive")
        for label, (low, high) in (
            ("prompt_exponents", self.prompt_exponents),
            ("decode_exponents", self.decode_exponents),
        ):
            if not 1 <= low <= high:
                raise ValueError(f"{label} must satisfy 1 <= low <= high")


def zipf_weights(count: int, alpha: float = 1.0) -> list:
    """Unnormalised Zipf popularity weights ``1 / rank^alpha`` for each rank."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    if alpha == 1.0:  # the default stays clear of pow() for exact determinism
        return [1.0 / rank for rank in range(1, count + 1)]
    return [rank ** -alpha for rank in range(1, count + 1)]


def _pick_weighted(rng: random.Random, cumulative: list) -> int:
    draw = rng.random() * cumulative[-1]
    for index, edge in enumerate(cumulative):
        if draw < edge:
            return index
    return len(cumulative) - 1


def _log_uniform_tokens(rng: random.Random, exponents: tuple) -> int:
    """Integer-only log-uniform length: pick a power-of-two bucket, then a
    uniform length inside it (``(2^(b-1), 2^b]``)."""
    bucket = rng.randint(exponents[0], exponents[1])
    return rng.randint(2 ** (bucket - 1) + 1, 2 ** bucket)


def generate_trace(spec: TrafficMixSpec) -> list:
    """Expand a mix spec into its deterministic request trace.

    Draw order per request is fixed (inter-arrival, model, prompt, decode), so
    the trace is a pure function of the spec.
    """
    rng = random.Random(spec.seed)
    weights = zipf_weights(len(spec.models), spec.zipf_alpha)
    cumulative = []
    edge = 0.0
    for weight in weights:
        edge += weight
        cumulative.append(edge)
    clock = 0.0
    trace = []
    for index in range(spec.requests):
        clock += rng.expovariate(spec.arrival_rate_per_s)
        model = _pick_weighted(rng, cumulative)
        prompt = _log_uniform_tokens(rng, spec.prompt_exponents)
        decode = _log_uniform_tokens(rng, spec.decode_exponents)
        trace.append(
            Request(
                index=index,
                arrival_s=clock,
                model=model,
                prompt_tokens=prompt,
                decode_tokens=decode,
            )
        )
    return trace


def bucket_tokens(tokens: int) -> int:
    """Power-of-two bucket a token count falls in (``2^ceil(log2(n))``)."""
    if tokens < 1:
        raise ValueError(f"tokens must be >= 1, got {tokens}")
    bucket = 1
    while bucket < tokens:
        bucket *= 2
    return bucket


def _decode_steps_by_bucket(request: Request) -> dict:
    """Decode steps of one request, split by the context bucket they run in.

    Step ``j`` (1-based) of a request attends over ``prompt + j`` cached
    tokens; counting the overlap of ``(prompt, prompt + decode]`` with each
    power-of-two interval ``(2^(e-1), 2^e]`` needs no per-step loop.
    """
    start, end = request.prompt_tokens, request.prompt_tokens + request.decode_tokens
    steps = {}
    bucket = bucket_tokens(start + 1)
    while bucket // 2 < end:
        low = bucket // 2
        count = min(end, bucket) - max(start, low)
        if count > 0:
            steps[bucket] = count
        bucket *= 2
    return steps


@dataclass(frozen=True)
class PhaseLoad:
    """``count`` executions of one (model, phase, bucket, batch) work unit."""

    model: str
    """The served model's spec string (presentation only)."""
    phase: str
    """``"decode"`` or ``"prefill"``."""
    tokens: int
    """Context bucket (decode) or prompt bucket (prefill)."""
    batch: int
    """Concurrent sessions batched into the unit (always 1 for prefill)."""
    count: int
    """How many times the unit executes over the trace."""


def aggregate_trace(spec: TrafficMixSpec, trace: list) -> list:
    """Fold a trace into deterministic :class:`PhaseLoad` units.

    Decode steps are bucketed by context and packed into serving batches of
    the model's batch size (``n // B`` full batches plus one remainder
    batch); prefills are bucketed by prompt length and run at batch 1.  The
    result is sorted, so downstream aggregation order is reproducible.
    """
    decode_steps = {}
    prefill_requests = {}
    for request in trace:
        for bucket, count in _decode_steps_by_bucket(request).items():
            key = (request.model, bucket)
            decode_steps[key] = decode_steps.get(key, 0) + count
        key = (request.model, bucket_tokens(request.prompt_tokens))
        prefill_requests[key] = prefill_requests.get(key, 0) + 1

    loads = []
    for (model_index, bucket), steps in sorted(decode_steps.items()):
        model = spec.models[model_index]
        full, remainder = divmod(steps, model.batch)
        if full:
            loads.append(
                PhaseLoad(model.spec, "decode", bucket, model.batch, full)
            )
        if remainder:
            loads.append(PhaseLoad(model.spec, "decode", bucket, remainder, 1))
    for (model_index, bucket), count in sorted(prefill_requests.items()):
        model = spec.models[model_index]
        loads.append(PhaseLoad(model.spec, "prefill", bucket, 1, count))
    return loads


def load_layers(spec: TrafficMixSpec, load: PhaseLoad) -> list:
    """Materialise the layer list of one :class:`PhaseLoad` unit."""
    for model in spec.models:
        if model.spec == load.model:
            if load.phase == "decode":
                return model.decode_layers(load.tokens, batch=load.batch)
            return model.prefill_layers(load.tokens)
    raise ValueError(f"load references unknown model {load.model!r}")


def weighted_unique_layers(spec: TrafficMixSpec, loads: list) -> tuple:
    """Dedupe all loads' layers by shape: ``(exemplar_layers, weights)``.

    ``weights[i]`` counts how many times shape ``i`` executes across the
    whole trace.  Shapes are ordered by signature, so weighted sums downstream
    are order-deterministic.  Exemplars keep the first-seen layer (names and
    ``weight_kind`` of shape-identical layers coincide by construction).
    """
    by_signature = {}
    for load in loads:
        for layer in load_layers(spec, load):
            signature = layer_signature(layer)
            exemplar, weight = by_signature.get(signature, (layer, 0))
            by_signature[signature] = (exemplar, weight + load.count)
    layers, weights = [], []
    for signature in sorted(by_signature):
        exemplar, weight = by_signature[signature]
        layers.append(exemplar)
        weights.append(weight)
    return layers, weights


def trace_summary(spec: TrafficMixSpec, trace: list) -> dict:
    """Human/JSON-friendly summary of a generated trace."""
    per_model = [0] * len(spec.models)
    prompt_tokens = decode_tokens = 0
    for request in trace:
        per_model[request.model] += 1
        prompt_tokens += request.prompt_tokens
        decode_tokens += request.decode_tokens
    return {
        "requests": len(trace),
        "span_s": trace[-1].arrival_s if trace else 0.0,
        "requests_per_model": {
            model.spec: count for model, count in zip(spec.models, per_model)
        },
        "prompt_tokens": prompt_tokens,
        "decode_tokens": decode_tokens,
    }
