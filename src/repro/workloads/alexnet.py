"""AlexNet convolutional layer dimensions (Krizhevsky et al., 2012).

Used as an additional workload with more diverse kernel sizes and strides
than VGG (11x11 stride 4, 5x5, 3x3), which exercises the sliding-window reuse
factor ``R`` over a wider range.
"""

from __future__ import annotations

from repro.core.layer import ConvLayer


def alexnet_conv_layers(batch: int = 1) -> list:
    """The five convolutional layers of AlexNet."""
    return [
        ConvLayer("conv1", batch, 3, 227, 227, 96, 11, 11, stride=4, padding=0),
        ConvLayer("conv2", batch, 96, 27, 27, 256, 5, 5, stride=1, padding=2),
        ConvLayer("conv3", batch, 256, 13, 13, 384, 3, 3, stride=1, padding=1),
        ConvLayer("conv4", batch, 384, 13, 13, 384, 3, 3, stride=1, padding=1),
        ConvLayer("conv5", batch, 384, 13, 13, 256, 3, 3, stride=1, padding=1),
    ]
