"""Memory and PE utilisation experiment (Fig. 20)."""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.workloads.registry import resolve_layers


def utilization_report(layers: list = None, implementations: list = None) -> list:
    """Fig. 20: average GBuf / GReg / LReg / overall-memory / PE utilisation."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    rows = []
    for config in implementations:
        model = AcceleratorModel(config)
        network = model.run_network(layers)
        rows.append(
            {
                "implementation": config.name,
                "gbuf": network.utilization("gbuf"),
                "greg": network.utilization("greg"),
                "lreg": network.utilization("lreg"),
                "memory_overall": network.utilization("memory"),
                "pe": network.utilization("pe"),
            }
        )
    return rows
