"""Memory and PE utilisation experiment (Fig. 20)."""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers


def utilization_report(layers: list = None, implementations: list = None) -> list:
    """Fig. 20: average GBuf / GReg / LReg / overall-memory / PE utilisation."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    rows = []
    for config in implementations:
        model = AcceleratorModel(config)
        network = model.run_network(layers)
        rows.append(
            {
                "implementation": config.name,
                "gbuf": network.utilization("gbuf"),
                "greg": network.utilization("greg"),
                "lreg": network.utilization("lreg"),
                "memory_overall": network.utilization("memory"),
                "pe": network.utilization("pe"),
            }
        )
    return rows


# ------------------------------------------------------- experiment registry


def _render_fig20(payload, params):
    from repro.analysis.report import format_dict_rows

    return "Fig. 20: memory and PE utilisation\n" + format_dict_rows(payload)


register_experiment(
    Experiment(
        name="fig20",
        title="Fig. 20: memory and PE utilisation",
        build=lambda ctx: utilization_report(layers=ctx.layers),
        render=_render_fig20,
    )
)
