"""Ablation studies of the dataflow's design choices (Section IV discussion).

The paper justifies three choices analytically; these drivers quantify them:

* ``k = 1`` (smallest channel step) -- larger ``k`` shrinks the output block
  under a fixed memory budget and therefore increases DRAM traffic.
* ``b*x*y ~= R*z`` (balanced input/weight loading) -- deliberately unbalanced
  tilings load more of one operand than the other and lose traffic.
* Psums in LRegs rather than in the GBuf -- Psums in the GBuf would be read
  and written on every MAC, exploding GBuf traffic.
"""

from __future__ import annotations

import math

from repro.core.layer import ConvLayer, kib_to_words
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.tiling import Tiling
from repro.workloads.registry import resolve_layers


def channel_step_ablation(layer: ConvLayer, capacity_kib: float = 66.5, steps=(1, 2, 4, 8, 16)) -> list:
    """DRAM traffic as the channel step ``k`` grows (the paper argues ``k = 1``)."""
    capacity_words = kib_to_words(capacity_kib)
    rows = []
    for step in steps:
        step = min(step, layer.in_channels)
        best = None
        base = choose_tiling(layer, capacity_words).tiling
        for scale in (0.25, 0.5, 0.75, 1.0):
            tiling = Tiling(
                b=base.b,
                z=max(1, int(base.z * scale)),
                y=max(1, int(base.y * math.sqrt(scale))),
                x=max(1, int(base.x * math.sqrt(scale))),
                k=step,
            ).clip(layer)
            if tiling.on_chip_footprint(layer) > capacity_words:
                continue
            traffic = dataflow_traffic(layer, tiling)
            if best is None or traffic.total < best:
                best = traffic.total
        rows.append({"k": step, "dram_words": best})
    return rows


def balance_ablation(layer: ConvLayer, capacity_kib: float = 66.5, ratios=(0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0)) -> list:
    """DRAM traffic as the ``u / (R*z)`` balance deviates from 1 (the optimum)."""
    capacity_words = kib_to_words(capacity_kib)
    reuse = layer.window_reuse
    rows = []
    for ratio in ratios:
        # u = ratio * R * z and u * z ~= capacity  =>  z = sqrt(capacity / (ratio*R)).
        z = max(1, min(layer.out_channels, int(round(math.sqrt(capacity_words / (ratio * reuse))))))
        u_target = max(1, capacity_words // max(z, 1))
        side = max(1, int(round(math.sqrt(u_target))))
        tiling = Tiling(b=1, z=z, y=side, x=max(1, u_target // side), k=1).clip(layer)
        while tiling.on_chip_footprint(layer) > capacity_words and (tiling.x > 1 or tiling.y > 1):
            tiling = Tiling(
                tiling.b,
                tiling.z,
                max(1, tiling.y - 1),
                max(1, tiling.x - 1),
                tiling.k,
            )
        traffic = dataflow_traffic(layer, tiling)
        rows.append(
            {
                "target_ratio": ratio,
                "achieved_ratio": tiling.balance_ratio(layer),
                "dram_words": traffic.total,
                "tiling": tiling.describe(),
            }
        )
    return rows


def psum_location_ablation(layers: list = None, capacity_kib: float = 66.5) -> dict:
    """GBuf traffic with Psums in LRegs (ours) vs. Psums stored in the GBuf.

    With Psums in the GBuf every MAC performs one GBuf read and one GBuf
    write of the partial sum (Section IV-B1's argument against it), on top of
    the operand traffic.  With Psums in LRegs the GBuf only carries inputs
    and weights (each written and read once).
    """
    layers = resolve_layers(layers, "vgg16")
    capacity_words = kib_to_words(capacity_kib)
    operand_words = 0.0
    macs = 0
    for layer in layers:
        traffic = choose_tiling(layer, capacity_words).traffic
        operand_words += traffic.input_reads + traffic.weight_reads
        macs += layer.macs
    gbuf_ours = 2.0 * operand_words
    gbuf_psums_in_gbuf = 2.0 * operand_words + 2.0 * macs
    return {
        "gbuf_accesses_psums_in_lregs": gbuf_ours,
        "gbuf_accesses_psums_in_gbuf": gbuf_psums_in_gbuf,
        "penalty_factor": gbuf_psums_in_gbuf / gbuf_ours,
    }


def memory_split_ablation(layers: list = None, capacity_kib: float = 66.5, psum_fractions=(0.5, 0.7, 0.9, 0.96, 0.99)) -> list:
    """DRAM traffic as a function of the Psum share of the on-chip memory.

    The paper's key architectural implication is that *most* of the effective
    on-chip memory should hold Psums; this sweep shows the traffic penalty of
    giving more of it to the GBufs instead.
    """
    layers = resolve_layers(layers, "vgg16")
    capacity_words = kib_to_words(capacity_kib)
    rows = []
    for fraction in psum_fractions:
        psum_words = max(1, int(capacity_words * fraction))
        buffer_words = max(1, capacity_words - psum_words)
        total = 0.0
        for layer in layers:
            choice = choose_tiling(
                layer,
                capacity_words,
                psum_words=psum_words,
                input_buffer_words=max(1, int(buffer_words * 0.8)),
                weight_buffer_words=max(1, int(buffer_words * 0.2)),
            )
            total += choice.traffic.total
        rows.append({"psum_fraction": fraction, "dram_words": total})
    return rows
