"""Bandwidth-utilization sweeps from the tile-level timing simulator.

The ``timing`` experiment answers the question the analytic Fig. 19 model
cannot: as DRAM bandwidth varies, when does each implementation become
bandwidth-bound, and in *which* buffer do the stall cycles land?  One sweep
runs every requested implementation at every requested bandwidth and
reports the per-buffer stall split (IGBuf/WGBuf fill, IGBuf/WGBuf steady
state, output drain), the PE-array utilization, the achieved DRAM
bandwidth, and power priced over the stall-lengthened runtime.

The sweep is deterministic, so a 3-point VGG-16 sweep is pinned as a
golden (``tests/goldens/timing_vgg16.json``, 1e-9 relative tolerance);
regenerate after an *intentional* model change with::

    repro-experiments timing --write

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import os

from repro.arch.config import PAPER_IMPLEMENTATIONS, paper_implementation
from repro.arch.performance import simulate_network, throughput_macs_per_second
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers

#: Default sweep points in GB/s: half, exactly, and twice the paper's
#: 6.4 GB/s DRAM interface (Section VI).
DEFAULT_BANDWIDTHS_GBPS = (3.2, 6.4, 12.8)

#: Artifact format marker of one sweep payload.
TIMING_FORMAT = "repro-timing-v1"


def _resolve_implementations(implementations):
    """None -> all five Table I implementations; ints -> 1-based lookups."""
    if implementations is None:
        return list(PAPER_IMPLEMENTATIONS)
    resolved = []
    for entry in implementations:
        if isinstance(entry, int):
            resolved.append(paper_implementation(entry))
        else:
            resolved.append(entry)
    return resolved


def bandwidth_utilization_sweep(
    layers=None,
    bandwidths_gbps=None,
    implementations=None,
    backend: str = "auto",
) -> dict:
    """One row per (implementation, bandwidth): stalls, utilization, power."""
    layers = resolve_layers(layers, "vgg16")
    if bandwidths_gbps is None:
        bandwidths_gbps = list(DEFAULT_BANDWIDTHS_GBPS)
    bandwidths_gbps = [float(value) for value in bandwidths_gbps]
    if any(value <= 0 for value in bandwidths_gbps):
        raise ValueError(f"bandwidths must be positive, got {bandwidths_gbps}")
    configs = _resolve_implementations(implementations)

    rows = []
    for config in configs:
        for bandwidth_gbps in bandwidths_gbps:
            network, report = simulate_network(
                layers,
                config,
                mode="timing",
                dram_bandwidth_bytes_per_s=bandwidth_gbps * 1e9,
                backend=backend,
            )
            # Bandwidth-independent per config: the steady-state roofline
            # break-even (max over layers), above which only fills and
            # drains can stall.  Exact as a Fraction internally.
            breakeven_bpc = max(
                (
                    layer.steady_breakeven_bytes_per_cycle
                    for layer in network.layers
                    if layer.steady_breakeven_bytes_per_cycle is not None
                ),
                default=0,
            )
            rows.append(
                {
                    "implementation": config.name,
                    "num_pes": config.num_pes,
                    "bandwidth_gbps": bandwidth_gbps,
                    "compute_cycles": network.compute_cycles,
                    "igbuf_stall_cycles": network.igbuf_stall_cycles,
                    "wgbuf_stall_cycles": network.wgbuf_stall_cycles,
                    "drain_stall_cycles": network.drain_stall_cycles,
                    "prologue_stall_cycles": network.prologue_stall_cycles,
                    "steady_stall_cycles": network.steady_stall_cycles,
                    "waiting_cycles": network.waiting_cycles,
                    "total_cycles": network.total_cycles,
                    "total_seconds": report.total_seconds,
                    "waiting_fraction": report.waiting_fraction,
                    "utilization": network.utilization,
                    "achieved_gbps": network.achieved_bytes_per_cycle
                    * config.clock_hz
                    / 1e9,
                    "steady_breakeven_gbps": float(breakeven_bpc)
                    * config.clock_hz
                    / 1e9,
                    "power_watts": report.power_watts,
                    "throughput_gmacs": throughput_macs_per_second(network, config) / 1e9,
                }
            )

    return {
        "format": TIMING_FORMAT,
        "bandwidths_gbps": bandwidths_gbps,
        "implementations": [config.name for config in configs],
        "rows": rows,
    }


# ------------------------------------------------------------------- goldens

#: Pinned parameters of the timing golden (``tests/goldens/timing_vgg16.json``):
#: the default 3-point bandwidth sweep over all five implementations.
TIMING_GOLDEN_PARAMS = {
    "bandwidths_gbps": list(DEFAULT_BANDWIDTHS_GBPS),
    "implementations": None,
}

TIMING_GOLDEN_WORKLOAD = "vgg16"


def compute_timing_golden() -> dict:
    """The golden sweep payload under the pinned parameters."""
    return bandwidth_utilization_sweep(
        layers=TIMING_GOLDEN_WORKLOAD,
        bandwidths_gbps=TIMING_GOLDEN_PARAMS["bandwidths_gbps"],
        implementations=TIMING_GOLDEN_PARAMS["implementations"],
    )


def timing_golden_path(directory: str = None) -> str:
    from repro.analysis.goldens import default_goldens_dir

    return os.path.join(
        directory or default_goldens_dir(), f"timing_{TIMING_GOLDEN_WORKLOAD}.json"
    )


def write_timing_golden(path: str = None) -> str:
    """Re-pin the timing golden file; returns the path written."""
    from repro.analysis.goldens import sanitize_payload

    path = path or timing_golden_path()
    payload = sanitize_payload(compute_timing_golden())
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


# ------------------------------------------------------- experiment registry


def _build_timing(ctx):
    params = ctx.params
    return bandwidth_utilization_sweep(
        layers=ctx.layers,
        bandwidths_gbps=params["bandwidths_gbps"],
        implementations=params.get("implementations"),
    )


def _render_timing(payload, params):
    from repro.analysis.report import format_dict_rows

    columns = [
        "implementation",
        "bandwidth_gbps",
        "total_seconds",
        "waiting_fraction",
        "utilization",
        "igbuf_stall_cycles",
        "wgbuf_stall_cycles",
        "drain_stall_cycles",
        "achieved_gbps",
        "steady_breakeven_gbps",
        "power_watts",
    ]
    header = (
        "Timing: bandwidth-limited utilization sweep "
        f"({', '.join(f'{value:g}' for value in payload['bandwidths_gbps'])} GB/s)"
    )
    return header + "\n" + format_dict_rows(payload["rows"], columns=columns)


register_experiment(
    Experiment(
        name="timing",
        title="Timing: stall-accurate bandwidth sweep",
        build=_build_timing,
        render=_render_timing,
        uses_search=False,
        default_params={
            "bandwidths_gbps": list(DEFAULT_BANDWIDTHS_GBPS),
            "implementations": None,
        },
    )
)
