"""Experiment drivers: one function per paper table/figure."""

from repro.analysis.sweep import (
    memory_sweep,
    per_layer_dram,
    gbuf_per_layer,
    gbuf_dram_ratio,
    reg_per_layer,
)
from repro.analysis.eyeriss_compare import eyeriss_comparison
from repro.analysis.energy_report import energy_report
from repro.analysis.performance_report import performance_comparison
from repro.analysis.utilization_report import utilization_report

__all__ = [
    "memory_sweep",
    "per_layer_dram",
    "gbuf_per_layer",
    "gbuf_dram_ratio",
    "reg_per_layer",
    "eyeriss_comparison",
    "energy_report",
    "performance_comparison",
    "utilization_report",
]
