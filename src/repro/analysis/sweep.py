"""DRAM / GBuf / Reg access experiments (Figs. 13, 14, 16, 17 and Table IV).

Every function returns plain dictionaries / lists of rows so the benchmarks
and the CLI can print them and the tests can assert on them without any
plotting dependency.  Volumes are reported in megabytes (16-bit words, 2
bytes each), matching the paper's axes.

``layers`` arguments accept a layer list, a registered workload name/spec
(``"resnet18"``, ``"mobilenet_v1:2"``) or ``None`` for the paper's VGG-16.
"""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.core.layer import kib_to_words
from repro.core.lower_bound import practical_lower_bound, reg_lower_bound
from repro.core.traffic import BYTES_PER_WORD
from repro.dataflows.registry import ALL_DATAFLOWS, get_dataflow
from repro.engine import get_default_engine
from repro.eyeriss.model import EyerissModel
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers

MB = 1024.0 * 1024.0


def words_to_mb(words: float) -> float:
    """Convert 16-bit words to megabytes (the unit of the paper's figures)."""
    return words * BYTES_PER_WORD / MB


# --------------------------------------------------------------------- Fig. 13


def memory_sweep(
    capacities_kib: list = None,
    layers: list = None,
    dataflow_names: list = None,
    include_found_minimum: bool = True,
    engine=None,
) -> dict:
    """DRAM access volume vs. effective on-chip memory size (Fig. 13).

    Returns ``{"capacities_kib": [...], "series": {name: [GB, ...]}}`` where
    every series is the whole-network DRAM volume in gigabytes, including the
    theoretical lower bound and (optionally) the per-layer found minimum.

    The whole ``(dataflow, layer, capacity)`` grid is submitted to the
    engine as one batch, so the exhaustive searches run at most once per
    unique triple (the found minimum reuses the per-dataflow results), a
    parallel engine fans the entire sweep out across its workers, and the
    vectorized (NumPy) backend collapses each (dataflow, layer) pair's
    capacity column into a single candidate-grid evaluation -- the whole
    sweep then costs one grid evaluation per pair instead of
    ``len(capacities)`` independent searches, with bit-identical results.
    """
    if capacities_kib is None:
        capacities_kib = [16 * i for i in range(1, 17)]
    layers = resolve_layers(layers, "vgg16")
    if engine is None:
        engine = get_default_engine()
    dataflows = (
        ALL_DATAFLOWS
        if dataflow_names is None
        else [get_dataflow(name) for name in dataflow_names]
    )

    capacities_words = [kib_to_words(capacity_kib) for capacity_kib in capacities_kib]
    grid = [
        (capacity_index, dataflow_index, layer_index)
        for capacity_index in range(len(capacities_words))
        for dataflow_index in range(len(dataflows))
        for layer_index in range(len(layers))
    ]
    tasks = [
        (dataflows[dataflow_index], layers[layer_index], capacities_words[capacity_index])
        for capacity_index, dataflow_index, layer_index in grid
    ]
    results = dict(zip(grid, engine.search_tasks(tasks)))

    series = {"Lower bound": []}
    for dataflow in dataflows:
        series[dataflow.name] = []
    if include_found_minimum:
        series["Found minimum"] = []

    for capacity_index, capacity_words in enumerate(capacities_words):
        bound = sum(practical_lower_bound(layer, capacity_words) for layer in layers)
        series["Lower bound"].append(words_to_mb(bound) / 1024.0)
        per_layer_best = [float("inf")] * len(layers)
        for dataflow_index, dataflow in enumerate(dataflows):
            totals = 0.0
            feasible = True
            for index, _layer in enumerate(layers):
                result = results[(capacity_index, dataflow_index, index)]
                if result is None:
                    feasible = False
                    continue
                totals += result.total
                per_layer_best[index] = min(per_layer_best[index], result.total)
            series[dataflow.name].append(
                words_to_mb(totals) / 1024.0 if feasible else float("nan")
            )
        if include_found_minimum:
            minimum = sum(value for value in per_layer_best if value != float("inf"))
            series["Found minimum"].append(words_to_mb(minimum) / 1024.0)
    return {"capacities_kib": list(capacities_kib), "series": series}


# --------------------------------------------------------------------- Fig. 14


def per_layer_dram(
    capacity_kib: float = 66.5,
    layers: list = None,
    implementations: list = None,
    baseline_names: tuple = ("InR-A", "WtR-A"),
    engine=None,
) -> list:
    """Per-layer DRAM access volumes at one memory size (Fig. 14).

    Returns one row per layer with the lower bound, the free-split dataflow,
    each accelerator implementation whose effective memory matches
    ``capacity_kib`` (implementations 1-3 at 66.5 KB), and the requested
    baselines, all in MB, plus the input/weight/output split of our dataflow.
    """
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = [
            config
            for config in PAPER_IMPLEMENTATIONS
            if abs(config.effective_on_chip_kib - capacity_kib) < 1.0
        ]
    if engine is None:
        engine = get_default_engine()
    capacity_words = kib_to_words(capacity_kib)
    dataflows = [get_dataflow("Ours")] + [get_dataflow(name) for name in baseline_names]
    models = [AcceleratorModel(config) for config in implementations]

    searched = engine.search_tasks(
        [(dataflow, layer, capacity_words) for layer in layers for dataflow in dataflows]
    )
    rows = []
    for index, layer in enumerate(layers, start=1):
        window = searched[(index - 1) * len(dataflows) : index * len(dataflows)]
        for dataflow, result in zip(dataflows, window):
            if result is None:
                raise ValueError(
                    f"{dataflow.name}: no tiling of layer {layer.name!r} fits in "
                    f"{capacity_words} on-chip words"
                )
        our_result = window[0]
        row = {
            "layer_index": index,
            "layer": layer.name,
            "lower_bound_mb": words_to_mb(practical_lower_bound(layer, capacity_words)),
            "ours_mb": words_to_mb(our_result.total),
            "ours_inputs_mb": words_to_mb(our_result.traffic.input_reads),
            "ours_weights_mb": words_to_mb(our_result.traffic.weight_reads),
            "ours_outputs_mb": words_to_mb(our_result.traffic.output_traffic),
        }
        for model in models:
            result = model.run_layer(layer)
            row[f"{model.config.name}_mb"] = words_to_mb(result.dram.total)
        for name, baseline_result in zip(baseline_names, window[1:]):
            row[f"{name}_mb"] = words_to_mb(baseline_result.total)
        rows.append(row)
    return rows


# --------------------------------------------------------------------- Fig. 16


def gbuf_per_layer(layers: list = None, implementations: list = None) -> list:
    """Per-layer GBuf access volume of every implementation vs. Eyeriss (Fig. 16)."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    eyeriss = EyerissModel()
    models = [AcceleratorModel(config) for config in implementations]

    rows = []
    for index, layer in enumerate(layers, start=1):
        row = {"layer_index": index, "layer": layer.name}
        eyeriss_result = eyeriss.run_layer(layer)
        row["eyeriss_mb"] = words_to_mb(eyeriss_result.gbuf_accesses)
        for model in models:
            result = model.run_layer(layer)
            row[f"{model.config.name}_mb"] = words_to_mb(result.gbuf_accesses)
        rows.append(row)
    return rows


# -------------------------------------------------------------------- Table IV


def gbuf_dram_ratio(layers: list = None, implementation_index: int = 1) -> dict:
    """GBuf-to-DRAM access ratios by tensor for one implementation (Table IV)."""
    layers = resolve_layers(layers, "vgg16")
    config = PAPER_IMPLEMENTATIONS[implementation_index - 1]
    model = AcceleratorModel(config)
    network = model.run_network(layers)

    dram_input = sum(result.dram.input_reads for result in network.layers)
    dram_weight = sum(result.dram.weight_reads for result in network.layers)
    dram_output = sum(result.dram.output_writes for result in network.layers)
    igbuf_reads = sum(result.igbuf_reads for result in network.layers)
    igbuf_writes = sum(result.igbuf_writes for result in network.layers)
    wgbuf_reads = sum(result.wgbuf_reads for result in network.layers)
    wgbuf_writes = sum(result.wgbuf_writes for result in network.layers)

    return {
        "implementation": config.name,
        "inputs": {
            "dram_read_mb": words_to_mb(dram_input),
            "gbuf_read_mb": words_to_mb(igbuf_reads),
            "gbuf_write_mb": words_to_mb(igbuf_writes),
            "read_ratio": igbuf_reads / dram_input if dram_input else 0.0,
            "write_ratio": igbuf_writes / dram_input if dram_input else 0.0,
        },
        "weights": {
            "dram_read_mb": words_to_mb(dram_weight),
            "gbuf_read_mb": words_to_mb(wgbuf_reads),
            "gbuf_write_mb": words_to_mb(wgbuf_writes),
            "read_ratio": wgbuf_reads / dram_weight if dram_weight else 0.0,
            "write_ratio": wgbuf_writes / dram_weight if dram_weight else 0.0,
        },
        "outputs": {
            "dram_write_mb": words_to_mb(dram_output),
            "gbuf_read_mb": 0.0,
            "gbuf_write_mb": 0.0,
        },
        "overall": {
            "gbuf_read_over_dram_read": (igbuf_reads + wgbuf_reads) / (dram_input + dram_weight),
            "gbuf_write_over_dram_read": (igbuf_writes + wgbuf_writes) / (dram_input + dram_weight),
        },
    }


# --------------------------------------------------------------------- Fig. 17


def reg_per_layer(layers: list = None, implementations: list = None) -> list:
    """Per-layer register access volume vs. the Eq. (16) lower bound (Fig. 17)."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    models = [AcceleratorModel(config) for config in implementations]

    rows = []
    for index, layer in enumerate(layers, start=1):
        row = {
            "layer_index": index,
            "layer": layer.name,
            "lower_bound_gb": words_to_mb(reg_lower_bound(layer)) / 1024.0,
        }
        for model in models:
            result = model.run_layer(layer)
            row[f"{model.config.name}_gb"] = words_to_mb(result.reg_accesses) / 1024.0
        rows.append(row)
    return rows


# ------------------------------------------------------- experiment registry


#: Fig. 13 x-axis used by the CLI default and ``reproduce-all``.
FIG13_DEFAULT_CAPACITIES_KIB = (16.0, 32.0, 64.0, 66.5, 128.0, 173.5, 256.0)

#: Fig. 14 operating point (implementations 1-3 share 66.5 KB).
FIG14_DEFAULT_CAPACITY_KIB = 66.5


def _render_fig13(payload, params):
    from repro.analysis.report import format_memory_sweep

    return (
        "Fig. 13: DRAM access volume (GB) vs effective on-chip memory\n"
        + format_memory_sweep(payload)
    )


def _render_fig14(payload, params):
    from repro.analysis.report import format_dict_rows

    capacity_kib = params["capacity_kib"]
    return (
        f"Fig. 14: per-layer DRAM access volume (MB) at {capacity_kib} KB "
        "on-chip memory\n" + format_dict_rows(payload)
    )


def _render_rows(title):
    def render(payload, params):
        from repro.analysis.report import format_dict_rows

        return title + "\n" + format_dict_rows(payload)

    return render


def _render_table4(payload, params):
    from repro.analysis.report import format_gbuf_dram_ratio

    return (
        "Table IV: GBuf vs DRAM access volume (implementation 1)\n"
        + format_gbuf_dram_ratio(payload)
    )


register_experiment(
    Experiment(
        name="fig13",
        title="Fig. 13: DRAM volume vs on-chip memory",
        build=lambda ctx: memory_sweep(
            capacities_kib=list(ctx.params["capacities_kib"]),
            layers=ctx.layers,
            engine=ctx.engine,
        ),
        render=_render_fig13,
        uses_search=True,
        default_params={"capacities_kib": list(FIG13_DEFAULT_CAPACITIES_KIB)},
    )
)
register_experiment(
    Experiment(
        name="fig14",
        title="Fig. 14: per-layer DRAM volume",
        build=lambda ctx: per_layer_dram(
            capacity_kib=ctx.params["capacity_kib"],
            layers=ctx.layers,
            engine=ctx.engine,
        ),
        render=_render_fig14,
        uses_search=True,
        default_params={"capacity_kib": FIG14_DEFAULT_CAPACITY_KIB},
    )
)
register_experiment(
    Experiment(
        name="fig16",
        title="Fig. 16: per-layer GBuf volume",
        build=lambda ctx: gbuf_per_layer(layers=ctx.layers),
        render=_render_rows("Fig. 16: per-layer GBuf access volume (MB)"),
    )
)
register_experiment(
    Experiment(
        name="table4",
        title="Table IV: GBuf vs DRAM ratios",
        build=lambda ctx: gbuf_dram_ratio(layers=ctx.layers),
        render=_render_table4,
    )
)
register_experiment(
    Experiment(
        name="fig17",
        title="Fig. 17: per-layer register volume",
        build=lambda ctx: reg_per_layer(layers=ctx.layers),
        render=_render_rows("Fig. 17: per-layer register access volume (GB)"),
    )
)
