"""Plain-text table rendering for the experiment drivers.

The benchmarks and the CLI print the paper's tables and figure series as
aligned text tables; nothing here depends on plotting libraries.
"""

from __future__ import annotations


def format_table(headers: list, rows: list, float_format: str = "{:.3f}") -> str:
    """Render a list of row-lists as an aligned text table."""
    rendered_rows = []
    for row in rows:
        rendered = []
        for value in row:
            if isinstance(value, float):
                rendered.append(float_format.format(value))
            else:
                rendered.append(str(value))
        rendered_rows.append(rendered)
    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(str(header).ljust(widths[index]) for index, header in enumerate(headers)),
        "  ".join("-" * widths[index] for index in range(len(headers))),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)


def format_markdown_table(headers: list, rows: list, float_format: str = "{:.3f}") -> str:
    """Render a GitHub-flavoured markdown table (used by CI job summaries)."""

    def cell(value):
        if isinstance(value, float):
            return float_format.format(value)
        return str(value).replace("|", "\\|")

    lines = [
        "| " + " | ".join(cell(header) for header in headers) + " |",
        "|" + "|".join(" --- " for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(value) for value in row) + " |")
    return "\n".join(lines)


def format_memory_sweep(sweep: dict) -> str:
    """Render the Fig. 13 sweep: one column per on-chip capacity."""
    capacities = sweep["capacities_kib"]
    headers = ["Dataflow"] + [f"{capacity:g}KB" for capacity in capacities]
    rows = []
    for name, values in sweep["series"].items():
        rows.append([name] + [value for value in values])
    return format_table(headers, rows, float_format="{:.3f}")


def format_dict_rows(rows: list, columns: list = None, float_format: str = "{:.3f}") -> str:
    """Render a list of dictionaries as a table (columns default to the keys)."""
    if not rows:
        return "(no data)"
    if columns is None:
        columns = list(rows[0].keys())
    table_rows = [[row.get(column, "") for column in columns] for row in rows]
    return format_table(columns, table_rows, float_format=float_format)


def format_energy_report(report: dict) -> str:
    """Render the Fig. 18 breakdown."""
    lines = ["Energy efficiency (pJ/MAC):"]
    for bound in report["lower_bounds"]:
        kib = bound["capacity_words"] * 2 / 1024.0
        lines.append(
            f"  Lower bound @ {kib:.1f} KB on-chip: {bound['pj_per_mac']:.2f} pJ/MAC"
        )
    for row in report["implementations"]:
        components = ", ".join(
            f"{name}={value:.2f}" for name, value in row["components_pj_per_mac"].items()
        )
        lines.append(
            f"  {row['implementation']}: {row['pj_per_mac']:.2f} pJ/MAC "
            f"(gap {row['gap'] * 100:.0f}% over bound) [{components}]"
        )
    return "\n".join(lines)


def format_gbuf_dram_ratio(ratio: dict) -> str:
    """Render Table IV."""
    lines = [f"GBuf vs DRAM access volumes ({ratio['implementation']}):"]
    inputs = ratio["inputs"]
    weights = ratio["weights"]
    outputs = ratio["outputs"]
    lines.append(
        f"  Inputs : DRAM read {inputs['dram_read_mb']:.1f} MB, "
        f"GBuf read {inputs['gbuf_read_mb']:.1f} MB ({inputs['read_ratio']:.2f}x), "
        f"GBuf write {inputs['gbuf_write_mb']:.1f} MB ({inputs['write_ratio']:.2f}x)"
    )
    lines.append(
        f"  Weights: DRAM read {weights['dram_read_mb']:.1f} MB, "
        f"GBuf read {weights['gbuf_read_mb']:.1f} MB ({weights['read_ratio']:.2f}x), "
        f"GBuf write {weights['gbuf_write_mb']:.1f} MB ({weights['write_ratio']:.2f}x)"
    )
    lines.append(f"  Outputs: DRAM write {outputs['dram_write_mb']:.1f} MB, GBuf 0 MB")
    overall = ratio["overall"]
    lines.append(
        f"  Overall: GBuf read / DRAM read = {overall['gbuf_read_over_dram_read']:.2f}x, "
        f"GBuf write / DRAM read = {overall['gbuf_write_over_dram_read']:.2f}x"
    )
    return "\n".join(lines)


def format_dse_frontier(payload: dict) -> str:
    """Render one DSE sweep payload (or a merged frontier) as a text report.

    ``payload`` needs the sweep header fields plus ``frontier`` rows; the
    full per-config list is deliberately not printed (it lives in the JSON
    artifact).
    """
    slice_index, slice_count = payload.get("slice", (1, 1))
    header = (
        f"DSE: {payload['config_count']} feasible configs under "
        f"{payload['budget_kib']:g} KiB effective on-chip memory "
        f"(of {payload['config_count_total']} candidates"
    )
    if payload.get("infeasible_count"):
        header += f", {payload['infeasible_count']} infeasible"
    header += ")"
    if slice_count > 1:
        header += f" [slice {slice_index}/{slice_count}]"
    objectives = ", ".join(payload["objectives"])
    lines = [header, f"Pareto frontier over ({objectives}): {len(payload['frontier'])} points"]
    if payload.get("explorer", "exhaustive") != "exhaustive":
        certificate = payload.get("certificate", {})
        verdict = "verified" if certificate.get("verified") else "NOT verified"
        lines.append(
            f"Explorer '{payload['explorer']}' (seed {payload.get('seed', 0)}): "
            f"evaluated {payload.get('evaluated_count', payload['config_count'])} of "
            f"{payload['config_count_total']} candidates; certificate {verdict} "
            f"(region {certificate.get('region', '?')}, "
            f"{certificate.get('exhaustive_points', 0)} points enumerated)"
        )
    rows = []
    for row in payload["frontier"]:
        dominant = max(row["dataflows"].items(), key=lambda item: (item[1], item[0]))[0]
        rows.append(
            [
                row["config"],
                f"{row['pe_rows']}x{row['pe_cols']}",
                row["lreg_words_per_pe"],
                row["igbuf_words"],
                row["wgbuf_words"],
                row["effective_kib"],
                row["objectives"]["dram"],
                row["objectives"]["energy"],
                row["objectives"]["time"],
                dominant,
            ]
        )
    lines.append(
        format_table(
            [
                "config",
                "PEs",
                "LReg/PE",
                "IGBuf",
                "WGBuf",
                "eff KiB",
                "DRAM GB",
                "pJ/MAC",
                "time ms",
                "dataflow",
            ],
            rows,
        )
    )
    return "\n".join(lines)
