"""Energy-efficiency experiment (Fig. 18).

For every implementation of Table I, run the analytic accelerator model over
the workload, translate the access counts into energy with the Table II
model, and compare against the energy lower bound (DRAM at the Eq. (15)
bound + one MAC and one minimal register write per MAC).
"""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.energy.model import EnergyModel, efficiency_gap
from repro.eyeriss.model import EYERISS_REPORTED_ON_CHIP_PJ_PER_MAC
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers


def energy_report(layers: list = None, implementations: list = None) -> dict:
    """Fig. 18: pJ/MAC breakdown per implementation plus the lower bounds."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    energy_model = EnergyModel()

    rows = []
    bounds = {}
    for config in implementations:
        model = AcceleratorModel(config)
        network = model.run_network(layers)
        breakdown = energy_model.network_energy(network, config)
        capacity = config.effective_on_chip_words
        if capacity not in bounds:
            bounds[capacity] = energy_model.lower_bound_energy(layers, capacity)
        bound = bounds[capacity]
        rows.append(
            {
                "implementation": config.name,
                "pj_per_mac": breakdown.pj_per_mac,
                "components_pj_per_mac": breakdown.component_pj_per_mac(),
                "lower_bound_pj_per_mac": bound.pj_per_mac,
                "gap": efficiency_gap(breakdown, bound),
                "on_chip_pj_per_mac": breakdown.on_chip_total / breakdown.macs,
                "eyeriss_on_chip_ratio": (
                    EYERISS_REPORTED_ON_CHIP_PJ_PER_MAC
                    / (breakdown.on_chip_total / breakdown.macs)
                ),
            }
        )

    bound_rows = [
        {
            "capacity_words": capacity,
            "pj_per_mac": bound.pj_per_mac,
            "components_pj_per_mac": bound.component_pj_per_mac(),
        }
        for capacity, bound in sorted(bounds.items())
    ]
    return {"implementations": rows, "lower_bounds": bound_rows}


# ------------------------------------------------------- experiment registry


def _render_fig18(payload, params):
    from repro.analysis.report import format_energy_report

    return "Fig. 18: energy efficiency\n" + format_energy_report(payload)


register_experiment(
    Experiment(
        name="fig18",
        title="Fig. 18: energy efficiency",
        build=lambda ctx: energy_report(layers=ctx.layers),
        render=_render_fig18,
    )
)
