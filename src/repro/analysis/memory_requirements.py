"""On-chip memory requirement analysis (the contrast drawn with ref. [36]).

The paper motivates its bound by contrasting with the "ideal" approach of
ref. [36]: if the on-chip memory is large enough to hold a whole operand
tensor, every tensor can be read from DRAM exactly once, but the required
capacity ranges from megabytes to hundreds of megabytes and cannot be
guaranteed for arbitrary layers.  This module quantifies that contrast:

* :func:`ideal_memory_requirement` -- the smallest on-chip capacity (in
  words) at which once-through traffic becomes achievable for a layer (hold
  the smaller of {all inputs + a block of outputs, all weights + a block of
  outputs}).
* :func:`bound_vs_ideal` -- for a list of capacities, how far the Eq. (15)
  bound (achievable with *any* capacity) sits above the once-through ideal,
  i.e. the price paid for having less memory than [36] requires.
* :func:`capacity_for_overhead` -- the capacity needed for the bound to come
  within a target factor of the ideal, useful for sizing the Psum store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.layer import ConvLayer
from repro.core.lower_bound import ideal_traffic, practical_lower_bound


@dataclass(frozen=True)
class MemoryRequirement:
    """Once-through memory requirement of one layer, in words."""

    layer_name: str
    hold_inputs_words: int
    hold_weights_words: int

    @property
    def minimum_words(self) -> int:
        """The cheaper of the two once-through strategies."""
        return min(self.hold_inputs_words, self.hold_weights_words)

    @property
    def minimum_kib(self) -> float:
        return self.minimum_words * 2 / 1024.0


def ideal_memory_requirement(layer: ConvLayer, output_buffer_words: int = None) -> MemoryRequirement:
    """On-chip capacity needed to read every tensor exactly once.

    Two classical strategies achieve once-through traffic:

    * hold **all inputs** on chip and stream weights, accumulating one output
      block at a time (needs ``#inputs + output_buffer`` words);
    * hold **all weights** on chip and stream inputs (needs
      ``#weights + output_buffer`` words).

    ``output_buffer_words`` defaults to one output row across all kernels,
    the smallest accumulation granule that keeps outputs written once.
    """
    if output_buffer_words is None:
        output_buffer_words = layer.out_width * layer.out_channels
    return MemoryRequirement(
        layer_name=layer.name,
        hold_inputs_words=layer.num_inputs + output_buffer_words,
        hold_weights_words=layer.num_weights + output_buffer_words,
    )


def network_memory_requirements(layers: list) -> list:
    """Per-layer once-through requirements for a whole network."""
    return [ideal_memory_requirement(layer) for layer in layers]


def bound_vs_ideal(layer: ConvLayer, capacities_words: list) -> list:
    """For each capacity, the Eq. (15) bound relative to the once-through ideal.

    Returns rows with the bound, the ideal, and their ratio -- the extra
    DRAM traffic a capacity-limited accelerator must pay compared to a
    hypothetical [36]-sized one.
    """
    ideal = ideal_traffic(layer)
    rows = []
    for capacity in capacities_words:
        bound = practical_lower_bound(layer, capacity)
        rows.append(
            {
                "capacity_words": capacity,
                "capacity_kib": capacity * 2 / 1024.0,
                "bound_words": bound,
                "ideal_words": float(ideal),
                "overhead": bound / ideal,
            }
        )
    return rows


def capacity_for_overhead(layer: ConvLayer, target_overhead: float = 1.5) -> int:
    """Smallest capacity (words) whose Eq. (15) bound is within ``target_overhead``
    of the once-through ideal.

    Solved in closed form from Eq. (15):
    ``2*#MAC / sqrt(R*S) <= (target - 1) * ideal  =>  S >= (2*#MAC / ((target-1)*ideal))^2 / R``
    then clamped from below at a handful of words and verified numerically
    (the max with the ideal-memory requirement is *not* taken -- the point of
    the bound is precisely that far less memory suffices).
    """
    if target_overhead <= 1.0:
        raise ValueError("target overhead must exceed 1.0")
    ideal = ideal_traffic(layer)
    slack = (target_overhead - 1.0) * ideal
    required = (2.0 * layer.macs / slack) ** 2 / layer.window_reuse
    capacity = max(8, int(math.ceil(required)))
    # Numerical verification (the write term can make the closed form slightly
    # optimistic for output-heavy layers); grow until the target is met or the
    # ideal-memory regime is reached.
    requirement = ideal_memory_requirement(layer).minimum_words
    while (
        practical_lower_bound(layer, capacity) > target_overhead * ideal
        and capacity < requirement
    ):
        capacity *= 2
    return capacity


def requirement_report(layers: list, capacities_kib=(66.5, 131.625, 173.5)) -> list:
    """One row per layer: once-through requirement vs. what the bound achieves
    at realistic accelerator capacities."""
    rows = []
    for layer in layers:
        requirement = ideal_memory_requirement(layer)
        row = {
            "layer": layer.name,
            "once_through_kib": requirement.minimum_kib,
        }
        for capacity_kib in capacities_kib:
            capacity_words = int(capacity_kib * 1024 / 2)
            row[f"overhead_at_{capacity_kib}kib"] = practical_lower_bound(
                layer, capacity_words
            ) / ideal_traffic(layer)
        rows.append(row)
    return rows
