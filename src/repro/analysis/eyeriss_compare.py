"""Comparison with Eyeriss on DRAM access (Fig. 15 and Table III).

The comparison is made at Eyeriss's effective on-chip memory capacity
(173.5 KB): our dataflow and the lower bound are evaluated at that capacity,
and the Eyeriss row-stationary model provides the baseline with and without
input compression.  The paper additionally quotes FlexFlow's DRAM-access-per-
MAC; the published constant is reproduced for that row.
"""

from __future__ import annotations

from repro.analysis.sweep import words_to_mb
from repro.core.layer import kib_to_words
from repro.core.lower_bound import practical_lower_bound
from repro.dataflows.registry import get_dataflow
from repro.engine import get_default_engine
from repro.orchestration.experiments import Experiment, register_experiment
from repro.eyeriss.model import (
    EyerissModel,
    EYERISS_REPORTED_VGG16_DRAM_MB,
    VGG16_INPUT_COMPRESSION,
)
from repro.workloads.registry import resolve_layers
from repro.workloads.vgg import is_vgg16_conv_workload, vgg16_conv_layers

#: Effective on-chip memory of Eyeriss used in the paper's Fig. 15 / Table III.
EYERISS_EFFECTIVE_KIB = 173.5

#: DRAM access per MAC reported for FlexFlow (192 KB on-chip memory) in Section VI-A.
FLEXFLOW_REPORTED_DRAM_PER_MAC = 0.0049


def eyeriss_comparison(
    layers: list = None, capacity_kib: float = EYERISS_EFFECTIVE_KIB, engine=None
) -> dict:
    """Build the Fig. 15 per-layer series and the Table III summary."""
    layers = resolve_layers(layers, "vgg16")
    if engine is None:
        engine = get_default_engine()
    capacity_words = kib_to_words(capacity_kib)
    ours = get_dataflow("Ours")
    eyeriss = EyerissModel()
    our_results = engine.per_layer_results(layers, capacity_words, ours)
    # The input-compression ratios and the reported silicon numbers are
    # VGG-16 measurements; for any other workload the model-based Eyeriss
    # rows remain valid but the VGG-specific rows are suppressed rather
    # than quoting meaningless ratios.  Ratios are looked up by layer name
    # so VGG subsets get the right per-layer value, not a positional one.
    is_vgg = is_vgg16_conv_workload(layers)
    compression_by_name = {
        reference.name: ratio
        for reference, ratio in zip(vgg16_conv_layers(batch=1), VGG16_INPUT_COMPRESSION)
    }

    per_layer = []
    totals = {"lower_bound": 0.0, "ours": 0.0, "eyeriss_uncompressed": 0.0, "eyeriss_compressed": 0.0}
    total_macs = 0
    for index, layer in enumerate(layers, start=1):
        bound = practical_lower_bound(layer, capacity_words)
        our_total = our_results[index - 1].total
        eyeriss_result = eyeriss.run_layer(layer)
        uncompressed = eyeriss_result.dram.total
        row = {
            "layer_index": index,
            "layer": layer.name,
            "lower_bound_mb": words_to_mb(bound),
            "ours_mb": words_to_mb(our_total),
            "eyeriss_uncompressed_mb": words_to_mb(uncompressed),
        }
        if is_vgg:
            ratio = compression_by_name[layer.name]
            compressed = (
                eyeriss_result.dram.input_reads * ratio
                + eyeriss_result.dram.weight_reads
                + eyeriss_result.dram.output_traffic * ratio
            )
            row["eyeriss_compressed_mb"] = words_to_mb(compressed)
            totals["eyeriss_compressed"] += compressed
        per_layer.append(row)
        totals["lower_bound"] += bound
        totals["ours"] += our_total
        totals["eyeriss_uncompressed"] += uncompressed
        total_macs += layer.macs

    summary_rows = {
        "Lower bound": _summary_row(totals["lower_bound"], total_macs),
        "Our dataflow": _summary_row(totals["ours"], total_macs),
        "Eyeriss (uncompr.)": _summary_row(totals["eyeriss_uncompressed"], total_macs),
    }
    summary = {
        "capacity_kib": capacity_kib,
        "total_macs": total_macs,
        "rows": summary_rows,
        "ours_vs_uncompressed_reduction": 1.0 - totals["ours"] / totals["eyeriss_uncompressed"],
    }
    if is_vgg:
        summary_rows["Eyeriss (compr.)"] = _summary_row(totals["eyeriss_compressed"], total_macs)
        for name, mb in (
            ("Eyeriss (compr., reported)", EYERISS_REPORTED_VGG16_DRAM_MB["compressed"]),
            ("Eyeriss (uncompr., reported)", EYERISS_REPORTED_VGG16_DRAM_MB["uncompressed"]),
        ):
            summary_rows[name] = {
                "dram_access_mb": mb,
                "dram_access_per_mac": mb * 1024 * 1024 / 2 / total_macs if total_macs else 0.0,
            }
        summary["ours_vs_compressed_reduction"] = (
            1.0 - totals["ours"] / totals["eyeriss_compressed"]
        )
        summary["flexflow_reported_dram_per_mac"] = FLEXFLOW_REPORTED_DRAM_PER_MAC
    return {"per_layer": per_layer, "summary": summary}


def _summary_row(words: float, macs: int) -> dict:
    return {
        "dram_access_mb": words_to_mb(words),
        "dram_access_per_mac": words / macs if macs else 0.0,
    }


# ------------------------------------------------------- experiment registry


def _render_fig15_table3(payload, params):
    from repro.analysis.report import format_dict_rows

    capacity_kib = params["capacity_kib"]
    lines = [
        f"Fig. 15: per-layer DRAM access (MB) at {capacity_kib} KB effective "
        "on-chip memory",
        format_dict_rows(payload["per_layer"]),
        "",
        "Table III: comparison with Eyeriss on DRAM access",
    ]
    for name, row in payload["summary"]["rows"].items():
        lines.append(
            f"  {name:>20}: {row['dram_access_mb']:.1f} MB, "
            f"{row['dram_access_per_mac']:.4f} access/MAC"
        )
    return "\n".join(lines)


register_experiment(
    Experiment(
        name="fig15_table3",
        title="Fig. 15 / Table III: Eyeriss comparison",
        build=lambda ctx: eyeriss_comparison(
            layers=ctx.layers,
            capacity_kib=ctx.params["capacity_kib"],
            engine=ctx.engine,
        ),
        render=_render_fig15_table3,
        uses_search=True,
        default_params={"capacity_kib": EYERISS_EFFECTIVE_KIB},
    )
)
