"""Golden-value regression suite for the paper's figures.

The figures in this repository are deterministic functions of the traffic
and search code, so their numbers can be pinned as JSON "goldens" and any
code change that moves a figure becomes a visible test failure instead of a
silent regression.  Per workload the golden file pins:

* ``fig13`` -- memory-sweep DRAM totals at a capacity subset that includes
  the two capacities used by later figures (66.5 and 173.5 KB);
* ``fig14`` -- per-layer DRAM traffic at 66.5 KB;
* ``table3`` -- the Eyeriss-comparison summary at 173.5 KB.

Regenerate after an *intentional* model change with::

    python -m repro.cli goldens --write

and review the JSON diff like any other code change.  The default directory
is ``tests/goldens`` relative to the repository root (override with
``--goldens-dir``); :mod:`tests.test_goldens` replays every pinned figure
against the current engine output.
"""

from __future__ import annotations

import json
import math
import os

from repro.analysis.eyeriss_compare import eyeriss_comparison
from repro.analysis.sweep import memory_sweep, per_layer_dram
from repro.engine import get_default_engine
from repro.orchestration.experiments import Experiment, register_experiment

#: Workloads whose figures are pinned (the paper's three evaluation CNNs).
GOLDEN_WORKLOADS = ("vgg16", "alexnet", "resnet18")

#: Fig. 13 capacity subset: the sweep extremes plus the capacities that
#: fig14 (66.5 KB) and table3 (173.5 KB) reuse from the engine cache.
FIG13_CAPACITIES_KIB = (16.0, 66.5, 173.5)

FIG14_CAPACITY_KIB = 66.5


def default_goldens_dir() -> str:
    """The repository's ``tests/goldens`` directory.

    Resolved relative to this source tree when running from a checkout
    (``src/repro/analysis`` -> repo root), so ``repro-experiments goldens``
    works from any working directory; for an installed package with no
    surrounding checkout it falls back to CWD-relative ``tests/goldens``.
    """
    repo_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    )
    candidate = os.path.join(repo_root, "tests", "goldens")
    if os.path.isdir(os.path.dirname(candidate)):
        return candidate
    return os.path.join("tests", "goldens")


def golden_path(directory: str, workload: str) -> str:
    return os.path.join(directory, f"{workload}.json")


def compute_goldens(workload: str, engine=None) -> dict:
    """Current engine output for every pinned figure of one workload."""
    if engine is None:
        engine = get_default_engine()
    return {
        "workload": workload,
        "fig13": memory_sweep(
            capacities_kib=list(FIG13_CAPACITIES_KIB), layers=workload, engine=engine
        ),
        "fig14": per_layer_dram(
            capacity_kib=FIG14_CAPACITY_KIB, layers=workload, engine=engine
        ),
        "table3": eyeriss_comparison(layers=workload, engine=engine),
    }


def _sanitize(value):
    """Map NaN (infeasible sweep points) to ``None`` for strict JSON.

    Bare ``NaN`` tokens are a Python extension: ``jq``, JavaScript and most
    CI tooling reject them, and the golden files are meant to be reviewed as
    ordinary JSON diffs.  ``None``/``NaN`` are treated as equal when diffing.
    """
    if isinstance(value, float) and math.isnan(value):
        return None
    if isinstance(value, dict):
        return {key: _sanitize(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    return value


def sanitize_payload(value):
    """Public alias of the NaN-to-null JSON sanitizer.

    The run orchestrator applies the same normalisation to every unit
    artifact it writes, so orchestrated artifacts and golden files stay
    byte-compatible (and strict-JSON parseable) everywhere.
    """
    return _sanitize(value)


def write_goldens(directory: str, workloads=None, engine=None) -> list:
    """Write one golden JSON per workload; returns the file paths."""
    if workloads is None:
        workloads = GOLDEN_WORKLOADS
    os.makedirs(directory, exist_ok=True)
    paths = []
    for workload in workloads:
        payload = _sanitize(compute_goldens(workload, engine=engine))
        path = golden_path(directory, workload)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, allow_nan=False)
            handle.write("\n")
        paths.append(path)
    return paths


def load_golden(directory: str, workload: str) -> dict:
    with open(golden_path(directory, workload)) as handle:
        return json.load(handle)


def diff_goldens(expected, actual, rel_tol: float = 1e-9, path: str = "$") -> list:
    """Recursive diff of two golden payloads; returns mismatch descriptions.

    Numbers compare with a relative tolerance (the figures are pure float
    arithmetic, so 1e-9 flags real model changes while tolerating platform
    libm wiggle); ``NaN`` in live output matches the ``null`` it is pinned
    as, because both mark the same infeasible sweep points.
    """
    # JSON-normalise so tuples/ints from live engine output compare cleanly
    # against the parsed golden file, with NaN mapped to null on both sides.
    expected = json.loads(json.dumps(_sanitize(expected)))
    actual = json.loads(json.dumps(_sanitize(actual)))
    return _diff(expected, actual, rel_tol, path)


def _diff(expected, actual, rel_tol: float, path: str) -> list:
    if isinstance(expected, dict) and isinstance(actual, dict):
        problems = []
        for key in sorted(set(expected) | set(actual)):
            if key not in expected:
                problems.append(f"{path}.{key}: unexpected new key")
            elif key not in actual:
                problems.append(f"{path}.{key}: missing from output")
            else:
                problems += _diff(expected[key], actual[key], rel_tol, f"{path}.{key}")
        return problems
    if isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            return [f"{path}: length {len(actual)} != pinned {len(expected)}"]
        problems = []
        for index, (left, right) in enumerate(zip(expected, actual)):
            problems += _diff(left, right, rel_tol, f"{path}[{index}]")
        return problems
    if isinstance(expected, (int, float)) and isinstance(actual, (int, float)) \
            and not isinstance(expected, bool) and not isinstance(actual, bool):
        if math.isnan(expected) and math.isnan(actual):
            return []
        if math.isclose(expected, actual, rel_tol=rel_tol, abs_tol=rel_tol):
            return []
        return [f"{path}: {actual!r} != pinned {expected!r}"]
    if expected != actual:
        return [f"{path}: {actual!r} != pinned {expected!r}"]
    return []


def check_goldens(directory: str, workloads=None, engine=None) -> dict:
    """Diff every pinned workload against current output.

    Returns ``{workload: [problems]}``; a missing golden file is reported as
    one problem pointing at the regeneration command.
    """
    if workloads is None:
        workloads = GOLDEN_WORKLOADS
    report = {}
    for workload in workloads:
        path = golden_path(directory, workload)
        if not os.path.exists(path):
            report[workload] = [
                f"{path} is missing; regenerate with `python -m repro.cli goldens --write`"
            ]
            continue
        expected = load_golden(directory, workload)
        actual = compute_goldens(workload, engine=engine)
        report[workload] = diff_goldens(expected, actual)
    return report


# ------------------------------------------------------- experiment registry


def _build_goldens(ctx):
    return compute_goldens(ctx.workload, engine=ctx.engine)


def _render_goldens(payload, params):
    figures = ", ".join(sorted(key for key in payload if key != "workload"))
    return f"Golden figures for {payload['workload']}: {figures}"


register_experiment(
    Experiment(
        name="goldens",
        title="Golden figures (fig13/fig14/table3)",
        build=_build_goldens,
        render=_render_goldens,
        uses_search=True,
    )
)
