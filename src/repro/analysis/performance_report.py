"""Performance and power experiment (Fig. 19).

Execution time is split into computing time and waiting time (DRAM transfers
double buffering cannot hide); power is total energy over total time.  The
paper also quotes a 9.8-42.3x speedup over Eyeriss with memory latency taken
into account; the comparison here uses Eyeriss's reported VGG-16 runtime.
"""

from __future__ import annotations

from repro.arch.accelerator import AcceleratorModel
from repro.arch.config import PAPER_IMPLEMENTATIONS
from repro.arch.performance import performance_report, throughput_macs_per_second
from repro.energy.model import EnergyModel
from repro.eyeriss.model import EYERISS_REPORTED_VGG16_SECONDS_PER_IMAGE
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import resolve_layers
from repro.workloads.vgg import PAPER_BATCH_SIZE, is_vgg16_conv_workload


def performance_comparison(layers: list = None, implementations: list = None) -> list:
    """Fig. 19: one row per implementation with time, waiting share and power."""
    layers = resolve_layers(layers, "vgg16")
    if implementations is None:
        implementations = list(PAPER_IMPLEMENTATIONS)
    energy_model = EnergyModel()
    batch = layers[0].batch if layers else PAPER_BATCH_SIZE
    # Eyeriss's reported runtime is a VGG-16-per-image measurement; the
    # speedup column is only meaningful (and only emitted) for that stack.
    is_vgg = is_vgg16_conv_workload(layers)
    eyeriss_seconds = EYERISS_REPORTED_VGG16_SECONDS_PER_IMAGE * batch

    rows = []
    for config in implementations:
        model = AcceleratorModel(config)
        network = model.run_network(layers)
        energy = energy_model.network_energy(network, config)
        report = performance_report(network, config, energy)
        rows.append(
            {
                "implementation": config.name,
                "num_pes": config.num_pes,
                "computing_seconds": report.compute_seconds,
                "waiting_seconds": report.waiting_seconds,
                "total_seconds": report.total_seconds,
                "waiting_fraction": report.waiting_fraction,
                "power_watts": report.power_watts,
                "throughput_gmacs": throughput_macs_per_second(network, config) / 1e9,
            }
        )
        if is_vgg:
            rows[-1]["speedup_over_eyeriss_reported"] = eyeriss_seconds / report.total_seconds
    return rows


# ------------------------------------------------------- experiment registry


def _render_fig19(payload, params):
    from repro.analysis.report import format_dict_rows

    return "Fig. 19: performance and power\n" + format_dict_rows(payload)


register_experiment(
    Experiment(
        name="fig19",
        title="Fig. 19: performance and power",
        build=lambda ctx: performance_comparison(layers=ctx.layers),
        render=_render_fig19,
    )
)
