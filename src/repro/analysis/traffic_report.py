"""Serving-traffic mixes: aggregate optimal-dataflow search (the ``traffic``
experiment).

Where Fig. 13 asks "how much DRAM traffic does one network cost under each
dataflow?", the ``traffic`` experiment asks the serving-fleet version: given
a seeded request mix over LLM decode families (Zipf model popularity,
Poisson arrivals, mixed prompt/decode lengths -- see
:mod:`repro.workloads.traffic`), what is the aggregate DRAM traffic of the
whole mix under each dataflow, which single dataflow serves the mix best at
each on-chip capacity, and how much of the traffic is KV-cache serving
state rather than model weights?

The mix is first folded into weighted unique layer shapes, so the engine
answers millions of per-step layer executions with a few hundred exhaustive
searches (one candidate-grid evaluation per (dataflow, shape) pair on the
NumPy backend).  Everything downstream of the trace is a weighted sum of
search results in a fixed order, so the payload is byte-identical across
scalar and NumPy backends and is pinned as a golden
(``tests/goldens/traffic_llama_decode_32.json``, 1e-9 tolerance);
regenerate after an *intentional* model change with::

    repro-experiments traffic --write

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import json
import os

from repro.core.layer import kib_to_words
from repro.core.lower_bound import practical_lower_bound
from repro.core.traffic import classified_traffic
from repro.dataflows.registry import ALL_DATAFLOWS, get_dataflow
from repro.engine import get_default_engine
from repro.engine.cache import layer_signature
from repro.orchestration.experiments import Experiment, register_experiment
from repro.workloads.registry import get_workload_spec
from repro.workloads.traffic import (
    TrafficMixSpec,
    aggregate_trace,
    generate_trace,
    served_model,
    trace_summary,
    weighted_unique_layers,
)

#: Artifact format marker of one traffic-mix payload.
TRAFFIC_FORMAT = "repro-traffic-v1"

#: Default on-chip capacities: Table I implementations 1, 3 and 5 (the same
#: three points the golden memory sweeps pin).
DEFAULT_TRAFFIC_CAPACITIES_KIB = (16.0, 66.5, 173.5)

#: Default companion catalog entries behind the primary ``--workload`` model:
#: a two-model fleet (dense Llama + MoE Mixtral) makes the Zipf popularity
#: ranking meaningful out of the box.
DEFAULT_EXTRA_MODELS = ("mixtral_decode:32",)


def unique_weighted_shapes(layers: list) -> tuple:
    """Dedupe a layer list by shape: ``(exemplars, multiplicities)``.

    Ordered by signature, like
    :func:`repro.workloads.traffic.weighted_unique_layers`, so downstream
    weighted sums are order-deterministic.
    """
    by_signature = {}
    for layer in layers:
        signature = layer_signature(layer)
        exemplar, weight = by_signature.get(signature, (layer, 0))
        by_signature[signature] = (exemplar, weight + 1)
    exemplars, weights = [], []
    for signature in sorted(by_signature):
        exemplar, weight = by_signature[signature]
        exemplars.append(exemplar)
        weights.append(weight)
    return exemplars, weights


def weighted_shape_search(layers, weights, capacities_kib, dataflows, engine) -> tuple:
    """Search every (dataflow, shape, capacity) triple and aggregate.

    ``weights[i]`` scales shape ``i``'s traffic in every sum.  Returns
    ``(rows, optimal)``: one row per (capacity, dataflow) with the aggregate
    DRAM words (``None`` when some shape has no feasible tiling), and one
    ``optimal`` entry per capacity with the best single dataflow plus the
    found-minimum total split into learned-weight / KV-cache / activation /
    input / output words.  The whole grid is submitted as one batch: at most
    one exhaustive search per unique triple, one candidate-grid evaluation
    per (dataflow, shape) pair on the vectorized backend.
    """
    capacities_words = [kib_to_words(value) for value in capacities_kib]
    grid = [
        (dataflow_index, layer_index, capacity_index)
        for dataflow_index in range(len(dataflows))
        for layer_index in range(len(layers))
        for capacity_index in range(len(capacities_words))
    ]
    tasks = [
        (dataflows[dataflow_index], layers[layer_index], capacities_words[capacity_index])
        for dataflow_index, layer_index, capacity_index in grid
    ]
    results = dict(zip(grid, engine.search_tasks(tasks)))
    total_macs = sum(weight * layer.macs for layer, weight in zip(layers, weights))

    rows = []
    optimal = []
    for capacity_index, capacity_kib in enumerate(capacities_kib):
        per_dataflow = []
        for dataflow_index, dataflow in enumerate(dataflows):
            total = 0.0
            for layer_index, weight in enumerate(weights):
                result = results[(dataflow_index, layer_index, capacity_index)]
                if result is None:
                    total = None
                    break
                total += weight * result.traffic.total
            per_dataflow.append(total)
            rows.append(
                {
                    "capacity_kib": capacity_kib,
                    "dataflow": dataflow.name,
                    "total_words": total,
                    "words_per_mac": None if total is None else total / total_macs,
                }
            )

        # Best single dataflow for the whole mix (deterministic tie-break:
        # first in registry order wins).
        best_index = None
        for dataflow_index, total in enumerate(per_dataflow):
            if total is None:
                continue
            if best_index is None or total < per_dataflow[best_index]:
                best_index = dataflow_index
        if best_index is None:
            raise ValueError(
                f"no dataflow can serve the mix at {capacity_kib} KiB on-chip"
            )

        # Found minimum: the best feasible dataflow per shape (same
        # tie-break), with the weight reads of the chosen results split into
        # learned weights / KV cache / activations.
        chosen = []
        for layer_index in range(len(layers)):
            best = None
            for dataflow_index in range(len(dataflows)):
                result = results[(dataflow_index, layer_index, capacity_index)]
                if result is None:
                    continue
                if best is None or result.traffic.total < best.traffic.total:
                    best = result
            if best is None:
                layer = layers[layer_index]
                raise ValueError(
                    f"no dataflow fits shape {layer.name!r} in {capacity_kib} KiB"
                )
            chosen.append(best)
        split = classified_traffic(
            layers, [result.traffic for result in chosen], weights
        )
        optimal.append(
            {
                "capacity_kib": capacity_kib,
                "best_dataflow": dataflows[best_index].name,
                "best_dataflow_words": per_dataflow[best_index],
                "found_min_words": split["total"],
                "words_per_mac": split["total"] / total_macs,
                "input_reads": split["input_reads"],
                "weight_reads": split["weight_reads"],
                "kv_cache_reads": split["kv_cache_reads"],
                "activation_reads": split["activation_reads"],
                "output_reads": split["output_reads"],
                "output_writes": split["output_writes"],
                "kv_fraction": (
                    split["kv_cache_reads"] / split["total"] if split["total"] else 0.0
                ),
            }
        )
    return rows, optimal


def traffic_mix_report(
    model: str = "llama_decode:32",
    extra_models=DEFAULT_EXTRA_MODELS,
    requests: int = 32,
    seed: int = 0,
    arrival_rate_per_s: float = 8.0,
    zipf_alpha: float = 1.0,
    prompt_exponents=(7, 11),
    decode_exponents=(5, 9),
    capacities_kib=None,
    dataflow_names=None,
    model_params: dict = None,
    engine=None,
) -> dict:
    """Aggregate optimal-dataflow report for one serving-traffic mix.

    ``model`` is the primary (most popular) served model as a
    ``NAME[:batch]`` spec over an LLM decode family; ``extra_models`` extend
    the catalog in decreasing Zipf popularity rank.  ``model_params`` are
    builder overrides applied to every catalog entry (tests shrink the
    models this way).
    """
    if capacities_kib is None:
        capacities_kib = list(DEFAULT_TRAFFIC_CAPACITIES_KIB)
    capacities_kib = [float(value) for value in capacities_kib]
    if not capacities_kib:
        raise ValueError("capacities_kib must not be empty")
    overrides = dict(model_params or {})
    models = tuple(
        served_model(spec, **overrides) for spec in [model] + list(extra_models or ())
    )
    spec = TrafficMixSpec(
        models=models,
        requests=requests,
        seed=seed,
        arrival_rate_per_s=arrival_rate_per_s,
        zipf_alpha=zipf_alpha,
        prompt_exponents=tuple(prompt_exponents),
        decode_exponents=tuple(decode_exponents),
    )
    trace = generate_trace(spec)
    loads = aggregate_trace(spec, trace)
    layers, weights = weighted_unique_layers(spec, loads)

    if engine is None:
        engine = get_default_engine()
    dataflows = (
        ALL_DATAFLOWS
        if dataflow_names is None
        else [get_dataflow(name) for name in dataflow_names]
    )
    rows, optimal = weighted_shape_search(
        layers, weights, capacities_kib, dataflows, engine
    )

    total_instances = sum(weights)
    total_macs = sum(
        weight * layer.macs for layer, weight in zip(layers, weights)
    )
    kv_floor_words = sum(
        weight * layer.kv_cache_words for layer, weight in zip(layers, weights)
    )

    return {
        "format": TRAFFIC_FORMAT,
        "model": model,
        "models": [entry.spec for entry in models],
        "model_params": overrides,
        "trace": {
            "seed": seed,
            "requests": requests,
            "arrival_rate_per_s": arrival_rate_per_s,
            "zipf_alpha": zipf_alpha,
            "prompt_exponents": list(spec.prompt_exponents),
            "decode_exponents": list(spec.decode_exponents),
            **trace_summary(spec, trace),
        },
        "loads": [
            {
                "model": load.model,
                "phase": load.phase,
                "tokens": load.tokens,
                "batch": load.batch,
                "count": load.count,
            }
            for load in loads
        ],
        "unique_shapes": len(layers),
        "layer_instances": total_instances,
        "macs": total_macs,
        "kv_cache_floor_words": kv_floor_words,
        "capacities_kib": capacities_kib,
        "dataflows": [dataflow.name for dataflow in dataflows],
        "rows": rows,
        "optimal": optimal,
    }


# ------------------------------------------------------ single-workload view


def llm_decode_report(
    workload: str = "llama_decode:32",
    capacities_kib=None,
    dataflow_names=None,
    engine=None,
) -> dict:
    """Per-capacity traffic of one LLM workload with KV/weight attribution.

    The single-workload sibling of :func:`traffic_mix_report`: no trace, just
    the workload's own layer list deduped by shape, searched under every
    dataflow, with the found minimum's weight reads split into learned
    weights / KV cache / activations and compared against the practical
    lower bound (Eq. (15)) and the KV-cache read floor.
    """
    if capacities_kib is None:
        capacities_kib = list(DEFAULT_TRAFFIC_CAPACITIES_KIB)
    capacities_kib = [float(value) for value in capacities_kib]
    all_layers = get_workload_spec(workload)
    layers, weights = unique_weighted_shapes(all_layers)
    if engine is None:
        engine = get_default_engine()
    dataflows = (
        ALL_DATAFLOWS
        if dataflow_names is None
        else [get_dataflow(name) for name in dataflow_names]
    )
    rows, optimal = weighted_shape_search(
        layers, weights, capacities_kib, dataflows, engine
    )
    for entry in optimal:
        on_chip_words = kib_to_words(entry["capacity_kib"])
        entry["practical_bound_words"] = sum(
            weight * practical_lower_bound(layer, on_chip_words)
            for layer, weight in zip(layers, weights)
        )
    return {
        "format": "repro-llm-decode-v1",
        "workload": workload,
        "layers": len(all_layers),
        "unique_shapes": len(layers),
        "macs": sum(weight * layer.macs for layer, weight in zip(layers, weights)),
        "kv_cache_floor_words": sum(
            weight * layer.kv_cache_words for layer, weight in zip(layers, weights)
        ),
        "capacities_kib": capacities_kib,
        "dataflows": [dataflow.name for dataflow in dataflows],
        "rows": rows,
        "optimal": optimal,
    }


# ------------------------------------------------------------------- goldens

#: Pinned parameters of the traffic golden
#: (``tests/goldens/traffic_llama_decode_32.json``): the default two-model
#: mix, 32 requests, seed 0, at the Table I capacity points.
TRAFFIC_GOLDEN_PARAMS = {
    "extra_models": list(DEFAULT_EXTRA_MODELS),
    "requests": 32,
    "seed": 0,
    "arrival_rate_per_s": 8.0,
    "zipf_alpha": 1.0,
    "prompt_exponents": [7, 11],
    "decode_exponents": [5, 9],
    "capacities_kib": list(DEFAULT_TRAFFIC_CAPACITIES_KIB),
    "dataflow_names": None,
    "model_params": None,
}

TRAFFIC_GOLDEN_WORKLOAD = "llama_decode:32"


#: The llama_decode golden pins the single-workload view of the same model
#: (``tests/goldens/llm_llama_decode_32.json``).
LLM_GOLDEN_WORKLOAD = "llama_decode:32"


def compute_traffic_golden(engine=None) -> dict:
    """The golden traffic-mix payload under the pinned parameters."""
    return traffic_mix_report(
        model=TRAFFIC_GOLDEN_WORKLOAD, engine=engine, **TRAFFIC_GOLDEN_PARAMS
    )


def compute_llm_golden(engine=None) -> dict:
    """The golden ``llama_decode`` single-workload payload."""
    return llm_decode_report(workload=LLM_GOLDEN_WORKLOAD, engine=engine)


def traffic_golden_path(directory: str = None) -> str:
    from repro.analysis.goldens import default_goldens_dir

    slug = TRAFFIC_GOLDEN_WORKLOAD.replace(":", "_")
    return os.path.join(directory or default_goldens_dir(), f"traffic_{slug}.json")


def llm_golden_path(directory: str = None) -> str:
    from repro.analysis.goldens import default_goldens_dir

    slug = LLM_GOLDEN_WORKLOAD.replace(":", "_")
    return os.path.join(directory or default_goldens_dir(), f"llm_{slug}.json")


def _write_golden_file(path: str, payload: dict) -> str:
    from repro.analysis.goldens import sanitize_payload

    payload = sanitize_payload(payload)
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, allow_nan=False)
        handle.write("\n")
    return path


def write_traffic_golden(path: str = None, engine=None) -> str:
    """Re-pin the traffic-mix golden file; returns the path written."""
    return _write_golden_file(
        path or traffic_golden_path(), compute_traffic_golden(engine=engine)
    )


def write_llm_golden(path: str = None, engine=None) -> str:
    """Re-pin the llama_decode golden file; returns the path written."""
    return _write_golden_file(
        path or llm_golden_path(), compute_llm_golden(engine=engine)
    )


# ------------------------------------------------------- experiment registry


def _build_traffic(ctx):
    params = ctx.params
    return traffic_mix_report(
        model=ctx.workload,
        extra_models=params.get("extra_models", DEFAULT_EXTRA_MODELS),
        requests=params["requests"],
        seed=params["seed"],
        arrival_rate_per_s=params["arrival_rate_per_s"],
        zipf_alpha=params["zipf_alpha"],
        prompt_exponents=params["prompt_exponents"],
        decode_exponents=params["decode_exponents"],
        capacities_kib=params.get("capacities_kib"),
        dataflow_names=params.get("dataflow_names"),
        model_params=params.get("model_params"),
        engine=ctx.engine,
    )


def _render_traffic(payload, params):
    from repro.analysis.report import format_dict_rows

    trace = payload["trace"]
    lines = [
        "Traffic: LLM serving-mix optimal-dataflow search",
        (
            f"  mix: {', '.join(payload['models'])} | {trace['requests']} requests, "
            f"seed {trace['seed']}, {trace['span_s']:.2f}s span"
        ),
        (
            f"  {payload['layer_instances']} layer executions -> "
            f"{payload['unique_shapes']} unique shapes, "
            f"{payload['macs'] / 1e12:.3f} TMACs, KV floor "
            f"{payload['kv_cache_floor_words'] / 1e9:.3f} Gwords"
        ),
        "",
        format_dict_rows(
            payload["rows"],
            columns=["capacity_kib", "dataflow", "total_words", "words_per_mac"],
        ),
        "",
        "Per-capacity optimum (found minimum across dataflows):",
        format_dict_rows(
            payload["optimal"],
            columns=[
                "capacity_kib",
                "best_dataflow",
                "best_dataflow_words",
                "found_min_words",
                "kv_cache_reads",
                "kv_fraction",
            ],
        ),
    ]
    return "\n".join(lines)


register_experiment(
    Experiment(
        name="traffic",
        title="Traffic: LLM serving-mix optimal-dataflow search",
        build=_build_traffic,
        render=_render_traffic,
        uses_search=True,
        # The defaults ARE the golden parameters, so the default nightly
        # reproduce-all unit is exactly the pinned payload.
        default_params=dict(TRAFFIC_GOLDEN_PARAMS),
        workloads=(TRAFFIC_GOLDEN_WORKLOAD,),
    )
)
