"""Eyeriss baseline model (the paper's comparison point)."""

from repro.eyeriss.model import (
    EyerissConfig,
    EyerissModel,
    EYERISS_CONFIG,
    VGG16_INPUT_COMPRESSION,
    EYERISS_REPORTED_ON_CHIP_PJ_PER_MAC,
    EYERISS_REPORTED_VGG16_SECONDS_PER_IMAGE,
    EYERISS_REPORTED_VGG16_DRAM_MB,
)

__all__ = [
    "EyerissConfig",
    "EyerissModel",
    "EYERISS_CONFIG",
    "VGG16_INPUT_COMPRESSION",
    "EYERISS_REPORTED_ON_CHIP_PJ_PER_MAC",
    "EYERISS_REPORTED_VGG16_SECONDS_PER_IMAGE",
    "EYERISS_REPORTED_VGG16_DRAM_MB",
]
