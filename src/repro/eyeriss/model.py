"""Analytic row-stationary Eyeriss model.

The paper compares against Eyeriss [7], [10] using the access volumes
published in the Eyeriss journal paper.  Those per-layer measurements are not
available offline, so this module substitutes an analytic model of the
row-stationary (RS) dataflow with Eyeriss's published architecture
parameters:

* 12 x 14 PE array at 200 MHz;
* 108 KB GBuf, of which 100 KB holds input feature maps and partial sums and
  8 KB prefetches weights;
* 448 B of local scratchpads per PE (weights dominate: ~224 words);
* effective on-chip memory 173.5 KB (the accounting used in the paper's
  Fig. 15 comparison).

The RS schedule is modelled as an exhaustive search over four tile
parameters: ``n`` images, ``m`` output channels and ``e`` output rows whose
partial sums are held in the GBuf, and ``c`` input channels whose feature
maps are held in the GBuf.  Within one (filter-group, strip) the channel
groups iterate with partial sums resident, so Psums never spill to DRAM --
but input feature maps are re-read once per filter group and weights are
re-streamed once per image group and strip, which is exactly the behaviour
that makes Eyeriss's DRAM and GBuf traffic larger than the proposed
dataflow's.  The model reproduces the *relationships* of Figs. 15/16 (who is
larger and by roughly what factor), not Eyeriss's exact published megabytes;
see DESIGN.md section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layer import ConvLayer, ceil_div
from repro.core.traffic import TrafficBreakdown, sum_traffic
from repro.dataflows.base import candidate_extents

#: On-chip (post-compression, with zero gating) energy efficiency reported for
#: Eyeriss on VGGNet-16, used for the direct numeric comparison in Section VI-D.
EYERISS_REPORTED_ON_CHIP_PJ_PER_MAC = 22.1

#: Reported VGG-16 convolutional-layer processing time of the Eyeriss chip
#: (sub-1 fps; ~0.7 frames/s including DRAM stalls), used for the performance
#: comparison of Section VI-D.  Approximate -- the exact per-layer latencies
#: are not available offline.
EYERISS_REPORTED_VGG16_SECONDS_PER_IMAGE = 1.45

#: DRAM access volumes for VGG-16 (batch 3) reported for Eyeriss in the
#: paper's Table III, kept alongside our analytic RS model so the comparison
#: can be made against both the published measurement and the model.
EYERISS_REPORTED_VGG16_DRAM_MB = {"compressed": 321.3, "uncompressed": 528.8}

#: Assumed per-layer input compression ratios for VGG-16 (compressed ifmap
#: size / raw size).  The journal paper reports per-layer ratios that this
#: table approximates: early layers are dense, deeper layers increasingly
#: sparse after ReLU.
VGG16_INPUT_COMPRESSION = (
    1.00, 0.85, 0.75, 0.70, 0.65, 0.60, 0.60, 0.55, 0.50, 0.50, 0.45, 0.45, 0.40,
)


@dataclass(frozen=True)
class EyerissConfig:
    """Architecture parameters of the Eyeriss baseline."""

    name: str = "Eyeriss"
    pe_rows: int = 12
    pe_cols: int = 14
    gbuf_data_words: int = 51200  # 100 KB of the 108 KB GBuf (ifmaps + psums)
    weight_prefetch_words: int = 4096  # 8 KB weight staging region
    spad_weight_words_per_pe: int = 224  # dominant part of the 448 B/PE spads
    clock_hz: float = 200e6
    effective_on_chip_kib: float = 173.5

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def spad_weight_words_total(self) -> int:
        return self.num_pes * self.spad_weight_words_per_pe


EYERISS_CONFIG = EyerissConfig()


@dataclass(frozen=True)
class EyerissLayerResult:
    """DRAM and GBuf access volumes of one layer under the RS model."""

    layer_name: str
    tile: dict
    dram: TrafficBreakdown
    gbuf_accesses: float

    @property
    def dram_total(self) -> float:
        return self.dram.total


class EyerissModel:
    """Row-stationary traffic model with exhaustive tile search."""

    def __init__(self, config: EyerissConfig = EYERISS_CONFIG):
        self.config = config

    # ------------------------------------------------------------------ tiles

    def _tile_space(self, layer: ConvLayer):
        kernel_area = layer.kernel_height * layer.kernel_width
        for n in candidate_extents(layer.batch):
            for m in candidate_extents(layer.out_channels, max_candidates=24):
                for c in candidate_extents(layer.in_channels, max_candidates=24):
                    if m * c * kernel_area > self.config.spad_weight_words_total:
                        continue
                    for e in candidate_extents(layer.out_height, max_candidates=24):
                        strip_rows = (e - 1) * layer.stride + layer.kernel_height
                        ifmap_words = n * c * strip_rows * layer.in_width
                        psum_words = n * m * e * layer.out_width
                        if ifmap_words + psum_words <= self.config.gbuf_data_words:
                            yield {"n": n, "m": m, "c": c, "e": e}

    def _traffic(self, layer: ConvLayer, tile: dict) -> TrafficBreakdown:
        n, m, e = tile["n"], tile["m"], tile["e"]
        filter_groups = ceil_div(layer.out_channels, m)
        image_groups = ceil_div(layer.batch, n)
        strips = ceil_div(layer.out_height, e)
        input_reads = filter_groups * layer.num_inputs
        weight_reads = layer.num_weights * image_groups * strips
        return TrafficBreakdown(
            input_reads=float(input_reads),
            weight_reads=float(weight_reads),
            output_reads=0.0,
            output_writes=float(layer.num_outputs),
        )

    def _gbuf_accesses(self, layer: ConvLayer, tile: dict, dram: TrafficBreakdown) -> float:
        """GBuf traffic of the RS schedule.

        Input feature maps are written into the GBuf once per DRAM read and
        read out towards the PE array once per kernel row they participate in
        (the RS row reuse happens in the spads, but each ifmap row is
        delivered to ``Hk`` PE rows); partial sums shuttle between the array
        and the GBuf once per channel group (read + write) because the array
        holds only one channel group's accumulation at a time.
        """
        c = tile["c"]
        channel_groups = ceil_div(layer.in_channels, c)
        ifmap_gbuf = dram.input_reads * (1.0 + layer.kernel_height)
        psum_gbuf = 2.0 * layer.num_outputs * channel_groups
        return ifmap_gbuf + psum_gbuf

    # ------------------------------------------------------------------ public

    def run_layer(self, layer: ConvLayer) -> EyerissLayerResult:
        """Best-tile RS traffic for one layer (uncompressed)."""
        best = None
        for tile in self._tile_space(layer):
            dram = self._traffic(layer, tile)
            if best is None or dram.total < best[0]:
                best = (dram.total, tile, dram)
        if best is None:
            raise ValueError(f"no RS tile of layer {layer.name!r} fits the Eyeriss GBuf")
        _, tile, dram = best
        return EyerissLayerResult(
            layer_name=layer.name,
            tile=tile,
            dram=dram,
            gbuf_accesses=self._gbuf_accesses(layer, tile, dram),
        )

    def run_network(self, layers: list) -> list:
        """Per-layer results for a whole network."""
        return [self.run_layer(layer) for layer in layers]

    def network_dram(self, layers: list, compression: tuple = None) -> TrafficBreakdown:
        """Network DRAM traffic, optionally with per-layer input compression."""
        parts = []
        for index, layer in enumerate(layers):
            result = self.run_layer(layer)
            dram = result.dram
            if compression is not None:
                ratio = compression[index] if index < len(compression) else 1.0
                dram = TrafficBreakdown(
                    input_reads=dram.input_reads * ratio,
                    weight_reads=dram.weight_reads,
                    output_reads=dram.output_reads * ratio,
                    output_writes=dram.output_writes * ratio,
                )
            parts.append(dram)
        return sum_traffic(parts)
