"""Functional simulator of the proposed dataflow (Fig. 7) on small layers.

This simulator executes the dataflow's loop nest *literally*: it walks the
output blocks defined by a tiling, streams inputs and weights block by block
and channel by channel through counting memories, accumulates real partial
sums, and writes finished output blocks back to "DRAM".  It serves two
purposes in the test suite:

1. **Numerical correctness** -- the produced outputs must equal a direct
   NumPy convolution, demonstrating the dataflow computes the right thing for
   any tiling.
2. **Counter validation** -- the counted DRAM traffic must equal the analytic
   model of :func:`repro.core.optimal_dataflow.dataflow_traffic`, so the
   numbers behind every figure come from a schedule that demonstrably
   executes.

It is intended for small layers (the tests use layers with up to a few
hundred thousand MACs); the analytic model covers the full-size workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # NumPy is optional for the analytic core; only the array helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

from repro.arch.memory import CountingMemory
from repro.core.layer import ConvLayer
from repro.core.mm_conversion import pad_input
from repro.core.tiling import Tiling
from repro.core.traffic import TrafficBreakdown


@dataclass
class FunctionalResult:
    """Outputs and access counters of one functional run."""

    outputs: np.ndarray
    dram: CountingMemory
    igbuf: CountingMemory
    wgbuf: CountingMemory
    dram_input_reads: int
    dram_weight_reads: int
    dram_output_writes: int

    @property
    def traffic(self) -> TrafficBreakdown:
        """DRAM traffic in the same form the analytic models use."""
        return TrafficBreakdown(
            input_reads=float(self.dram_input_reads),
            weight_reads=float(self.dram_weight_reads),
            output_reads=0.0,
            output_writes=float(self.dram_output_writes),
        )


class FunctionalSimulator:
    """Executes the Fig. 7 loop nest with real data and counting memories."""

    def __init__(self, igbuf_words: int = None, wgbuf_words: int = None):
        """Optional GBuf capacities; when given, every iteration's working set
        is checked against them (a :class:`~repro.arch.memory.CapacityError`
        means the tiling does not fit the buffers)."""
        self.igbuf_words = igbuf_words
        self.wgbuf_words = wgbuf_words

    def run(
        self,
        layer: ConvLayer,
        tiling: Tiling,
        inputs: np.ndarray,
        weights: np.ndarray,
    ) -> FunctionalResult:
        """Execute ``layer`` on ``inputs``/``weights`` with the given tiling."""
        if np is None:
            raise ImportError("FunctionalSimulator.run requires numpy")
        expected_input_shape = (layer.batch, layer.in_channels, layer.in_height, layer.in_width)
        expected_weight_shape = (
            layer.out_channels,
            layer.in_channels,
            layer.kernel_height,
            layer.kernel_width,
        )
        if inputs.shape != expected_input_shape:
            raise ValueError(f"inputs must have shape {expected_input_shape}, got {inputs.shape}")
        if weights.shape != expected_weight_shape:
            raise ValueError(f"weights must have shape {expected_weight_shape}, got {weights.shape}")

        tiling = tiling.clip(layer)
        dram = CountingMemory("DRAM")
        igbuf = CountingMemory("IGBuf", capacity_words=self.igbuf_words)
        wgbuf = CountingMemory("WGBuf", capacity_words=self.wgbuf_words)

        padded = pad_input(inputs, layer.padding)
        dtype = np.result_type(inputs, weights)
        outputs = np.zeros(
            (layer.batch, layer.out_channels, layer.out_height, layer.out_width), dtype=dtype
        )

        dram_input_reads = 0
        dram_weight_reads = 0
        dram_output_writes = 0
        stride = layer.stride
        kernel_h, kernel_w = layer.kernel_height, layer.kernel_width

        for b0 in range(0, layer.batch, tiling.b):
            b1 = min(b0 + tiling.b, layer.batch)
            for z0 in range(0, layer.out_channels, tiling.z):
                z1 = min(z0 + tiling.z, layer.out_channels)
                for y0 in range(0, layer.out_height, tiling.y):
                    y1 = min(y0 + tiling.y, layer.out_height)
                    for x0 in range(0, layer.out_width, tiling.x):
                        x1 = min(x0 + tiling.x, layer.out_width)
                        # Psums for this output block stay "on chip".
                        psums = np.zeros((b1 - b0, z1 - z0, y1 - y0, x1 - x0), dtype=dtype)
                        in_rows = (y1 - y0 - 1) * stride + kernel_h
                        in_cols = (x1 - x0 - 1) * stride + kernel_w
                        for k0 in range(0, layer.in_channels, tiling.k):
                            k1 = min(k0 + tiling.k, layer.in_channels)
                            # Load one iteration's inputs and weights from DRAM.
                            in_block = padded[
                                b0:b1,
                                k0:k1,
                                y0 * stride : y0 * stride + in_rows,
                                x0 * stride : x0 * stride + in_cols,
                            ]
                            w_block = weights[z0:z1, k0:k1, :, :]
                            # The analytic model counts the full (possibly
                            # padded) rectangle, so count the same here.
                            in_words = (b1 - b0) * (k1 - k0) * in_rows * in_cols
                            w_words = w_block.size
                            dram.read(in_words + w_words)
                            dram_input_reads += in_words
                            dram_weight_reads += w_words
                            if self.igbuf_words is not None:
                                igbuf.allocate(in_words)
                            if self.wgbuf_words is not None:
                                wgbuf.allocate(w_words)
                            igbuf.write(in_words)
                            wgbuf.write(w_words)

                            psums += self._partial_update(
                                in_block, w_block, stride, kernel_h, kernel_w, psums.shape
                            )
                            igbuf.read(in_words)
                            wgbuf.read(w_words)
                            if self.igbuf_words is not None:
                                igbuf.release(in_words)
                            if self.wgbuf_words is not None:
                                wgbuf.release(w_words)

                        outputs[b0:b1, z0:z1, y0:y1, x0:x1] = psums
                        dram.write(psums.size)
                        dram_output_writes += psums.size

        return FunctionalResult(
            outputs=outputs,
            dram=dram,
            igbuf=igbuf,
            wgbuf=wgbuf,
            dram_input_reads=dram_input_reads,
            dram_weight_reads=dram_weight_reads,
            dram_output_writes=dram_output_writes,
        )

    @staticmethod
    def _partial_update(in_block, w_block, stride, kernel_h, kernel_w, out_shape):
        """One iteration's contribution to the block's Psums."""
        batch, channels, _, _ = in_block.shape
        z = w_block.shape[0]
        _, _, out_h, out_w = out_shape
        update = np.zeros(out_shape, dtype=np.result_type(in_block, w_block))
        for oz in range(z):
            for kz in range(channels):
                for ky in range(kernel_h):
                    for kx in range(kernel_w):
                        patch = in_block[
                            :,
                            kz,
                            ky : ky + out_h * stride : stride,
                            kx : kx + out_w * stride : stride,
                        ]
                        update[:, oz] += patch * w_block[oz, kz, ky, kx]
        return update
