"""Counting memory models for the accelerator's storage hierarchy.

The analytic and functional simulators both account for every access to the
DRAM, GBufs, GRegs and LRegs through :class:`CountingMemory` instances, so
the access volumes reported in the figures come from a single bookkeeping
path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.traffic import BYTES_PER_WORD


class CapacityError(RuntimeError):
    """Raised when a memory is asked to hold more words than it can."""


@dataclass
class CountingMemory:
    """A memory level that counts word-granular reads and writes.

    ``capacity_words`` of ``None`` means unbounded (the DRAM).  ``occupancy``
    tracks the currently resident words when the user calls
    :meth:`allocate` / :meth:`release`; the simulators use it for the
    utilisation statistics of Fig. 20.
    """

    name: str
    capacity_words: int = None
    reads: int = 0
    writes: int = 0
    occupancy: int = 0
    peak_occupancy: int = 0
    _occupancy_samples: list = field(default_factory=list, repr=False)

    def read(self, words: int = 1) -> None:
        """Count ``words`` read from this memory."""
        if words < 0:
            raise ValueError("cannot read a negative number of words")
        self.reads += words

    def write(self, words: int = 1) -> None:
        """Count ``words`` written to this memory."""
        if words < 0:
            raise ValueError("cannot write a negative number of words")
        self.writes += words

    def allocate(self, words: int) -> None:
        """Mark ``words`` as resident; raises :class:`CapacityError` on overflow."""
        if words < 0:
            raise ValueError("cannot allocate a negative number of words")
        new_occupancy = self.occupancy + words
        if self.capacity_words is not None and new_occupancy > self.capacity_words:
            raise CapacityError(
                f"{self.name}: requested {new_occupancy} words but capacity is "
                f"{self.capacity_words}"
            )
        self.occupancy = new_occupancy
        self.peak_occupancy = max(self.peak_occupancy, new_occupancy)

    def release(self, words: int) -> None:
        """Release ``words`` previously allocated."""
        if words < 0 or words > self.occupancy:
            raise ValueError("release does not match current occupancy")
        self.occupancy -= words

    def sample_occupancy(self) -> None:
        """Record the current occupancy for average-utilisation statistics."""
        self._occupancy_samples.append(self.occupancy)

    # -------------------------------------------------------------- statistics

    @property
    def accesses(self) -> int:
        """Total reads + writes."""
        return self.reads + self.writes

    @property
    def access_bytes(self) -> int:
        """Total traffic through this memory in bytes."""
        return self.accesses * BYTES_PER_WORD

    def utilization(self) -> float:
        """Average occupancy / capacity over the recorded samples (0 if unbounded)."""
        if self.capacity_words is None or self.capacity_words == 0:
            return 0.0
        if self._occupancy_samples:
            average = sum(self._occupancy_samples) / len(self._occupancy_samples)
        else:
            average = self.peak_occupancy
        return min(1.0, average / self.capacity_words)

    def reset(self) -> None:
        """Zero all counters (capacity is retained)."""
        self.reads = 0
        self.writes = 0
        self.occupancy = 0
        self.peak_occupancy = 0
        self._occupancy_samples.clear()


@dataclass
class MemoryHierarchy:
    """The accelerator's full storage hierarchy as counting memories."""

    dram: CountingMemory
    igbuf: CountingMemory
    wgbuf: CountingMemory
    greg: CountingMemory
    lreg: CountingMemory

    @classmethod
    def for_config(cls, config) -> "MemoryHierarchy":
        """Build the hierarchy for an :class:`~repro.arch.config.AcceleratorConfig`."""
        return cls(
            dram=CountingMemory("DRAM", capacity_words=None),
            igbuf=CountingMemory("IGBuf", capacity_words=config.igbuf_words),
            wgbuf=CountingMemory("WGBuf", capacity_words=config.wgbuf_words),
            greg=CountingMemory("GRegs", capacity_words=config.greg_bytes // BYTES_PER_WORD),
            lreg=CountingMemory("LRegs", capacity_words=config.psum_words),
        )

    def all_levels(self) -> list:
        """Every level, DRAM first."""
        return [self.dram, self.igbuf, self.wgbuf, self.greg, self.lreg]

    def reset(self) -> None:
        for level in self.all_levels():
            level.reset()
