"""Accelerator architecture model (Section V of the paper).

* :mod:`repro.arch.config` -- architecture parameters and the five paper
  implementations of Table I.
* :mod:`repro.arch.memory` -- counting models of the DRAM, GBufs, GRegs and
  LRegs.
* :mod:`repro.arch.mapping` -- the workload & storage mapping of Fig. 8/9
  (per-PE tile shapes, passes, halo accounting).
* :mod:`repro.arch.accelerator` -- the tile-exact analytic simulator that
  produces DRAM/GBuf/Reg access counts, cycle counts and utilisations.
* :mod:`repro.arch.functional` -- a functional simulator that executes small
  layers numerically through instrumented memories (used for validation).
* :mod:`repro.arch.performance` -- execution-time / waiting-time / power
  model (Fig. 19).
"""

from repro.arch.config import AcceleratorConfig, PAPER_IMPLEMENTATIONS, paper_implementation
from repro.arch.accelerator import AcceleratorModel, LayerRunResult, NetworkRunResult

__all__ = [
    "AcceleratorConfig",
    "PAPER_IMPLEMENTATIONS",
    "paper_implementation",
    "AcceleratorModel",
    "LayerRunResult",
    "NetworkRunResult",
]
