"""Structural model of the PE array, PE groups and MUX wiring (Fig. 10/11).

The analytic simulator only needs the *counts* produced by
:mod:`repro.arch.mapping`; this module models the structure itself -- which
PE sits in which group, which GReg segment and weight MUX serve it, and which
output channels a PE computes -- so that tests (and the functional simulator)
can check the architectural claims directly: every PE in a row shares the
same input GReg segment set, every PE in a column shares the same weight MUX,
and the round-robin channel assignment of Fig. 11 covers all of ``z`` without
collisions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig


@dataclass(frozen=True)
class ProcessingElement:
    """One PE: its array position, group and LReg capacity."""

    row: int
    col: int
    group_row: int
    group_col: int
    lreg_words: int

    def assigned_channels(self, z: int, pe_cols: int) -> list:
        """Output channels this PE computes for a block with ``z`` channels.

        Channels are dealt round-robin across PE columns with stride ``q``
        (Fig. 11): PE column ``c`` handles channels ``c, c+q, c+2q, ...``.
        """
        return list(range(self.col, z, pe_cols))


class PEArray:
    """The full ``p x q`` PE array with its group structure."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config
        self.pes = [
            ProcessingElement(
                row=row,
                col=col,
                group_row=row // config.group_rows,
                group_col=col // config.group_cols,
                lreg_words=config.lreg_words_per_pe,
            )
            for row in range(config.pe_rows)
            for col in range(config.pe_cols)
        ]

    def __len__(self) -> int:
        return len(self.pes)

    def pe(self, row: int, col: int) -> ProcessingElement:
        """PE at array position ``(row, col)``."""
        if not (0 <= row < self.config.pe_rows and 0 <= col < self.config.pe_cols):
            raise IndexError(f"no PE at ({row}, {col})")
        return self.pes[row * self.config.pe_cols + col]

    def row(self, row: int) -> list:
        """All PEs in one array row (they share input GReg segments)."""
        return [self.pe(row, col) for col in range(self.config.pe_cols)]

    def column(self, col: int) -> list:
        """All PEs in one array column (they share a weight MUX)."""
        return [self.pe(row, col) for row in range(self.config.pe_rows)]

    def group(self, group_row: int, group_col: int) -> list:
        """All PEs in one PE group (they share one GReg set)."""
        return [
            pe
            for pe in self.pes
            if pe.group_row == group_row and pe.group_col == group_col
        ]

    def num_groups(self) -> int:
        return self.config.num_group_rows * self.config.num_group_cols

    def channel_coverage(self, z: int) -> dict:
        """Map output channel -> list of PE columns computing it.

        With the round-robin assignment every channel in ``range(z)`` is
        covered by exactly one PE column.
        """
        coverage = {channel: [] for channel in range(z)}
        for col in range(self.config.pe_cols):
            for channel in range(col, z, self.config.pe_cols):
                coverage[channel].append(col)
        return coverage
