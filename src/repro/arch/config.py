"""Accelerator configuration and the five implementations of Table I.

The architecture (Fig. 10/11) consists of a ``p x q`` PE array partitioned
into ``pg x qg`` PE groups, a weight GBuf (WGBuf), an input GBuf (IGBuf),
global registers (GRegs) shared inside each group, and per-PE local registers
(LRegs) that hold partial sums.  All datapaths are 16-bit, so one word is two
bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import BYTES_PER_WORD


@dataclass(frozen=True)
class AcceleratorConfig:
    """Parameters of one accelerator implementation.

    Capacities are in 16-bit words unless the name says otherwise.
    """

    name: str
    pe_rows: int
    pe_cols: int
    lreg_words_per_pe: int
    igbuf_words: int
    wgbuf_words: int
    greg_bytes: int
    group_rows: int = 4
    group_cols: int = 4
    clock_hz: float = 500e6

    def __post_init__(self) -> None:
        for field_name in (
            "pe_rows",
            "pe_cols",
            "lreg_words_per_pe",
            "igbuf_words",
            "wgbuf_words",
            "greg_bytes",
            "group_rows",
            "group_cols",
        ):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.pe_rows % self.group_rows or self.pe_cols % self.group_cols:
            raise ValueError("PE array dimensions must be multiples of the group dimensions")

    # ------------------------------------------------------------------ sizes

    @property
    def num_pes(self) -> int:
        """Total number of processing elements (``p * q``)."""
        return self.pe_rows * self.pe_cols

    @property
    def psum_words(self) -> int:
        """Total Psum capacity: every PE's LRegs (the ``S`` of Eq. (15))."""
        return self.num_pes * self.lreg_words_per_pe

    @property
    def gbuf_words(self) -> int:
        """Total GBuf capacity (IGBuf + WGBuf) in words."""
        return self.igbuf_words + self.wgbuf_words

    @property
    def effective_on_chip_words(self) -> int:
        """Effective on-chip memory: Psums + GBufs (no duplicated data)."""
        return self.psum_words + self.gbuf_words

    @property
    def effective_on_chip_kib(self) -> float:
        """Effective on-chip memory in KiB (the x-axis of Fig. 13)."""
        return self.effective_on_chip_words * BYTES_PER_WORD / 1024.0

    @property
    def lreg_bytes_per_pe(self) -> int:
        """LReg size per PE in bytes (the Table I / Table II granularity)."""
        return self.lreg_words_per_pe * BYTES_PER_WORD

    @property
    def gbuf_kib(self) -> float:
        """GBuf (IGBuf + WGBuf) capacity in KiB."""
        return self.gbuf_words * BYTES_PER_WORD / 1024.0

    @property
    def greg_kib(self) -> float:
        """GReg capacity in KiB."""
        return self.greg_bytes / 1024.0

    # ---------------------------------------------------------------- groups

    @property
    def num_group_rows(self) -> int:
        """Number of PE-group rows (= number of weight GReg copies)."""
        return self.pe_rows // self.group_rows

    @property
    def num_group_cols(self) -> int:
        """Number of PE-group columns (= number of input GReg copies)."""
        return self.pe_cols // self.group_cols

    @property
    def memory_split(self) -> tuple:
        """Budget-relevant identity: ``(p, q, LReg/PE, IGBuf, WGBuf)`` words.

        Two configurations with equal splits occupy the same effective
        on-chip memory and are interchangeable for the DSE objective model
        (GReg sizing and the clock are outside the SRAM budget), so the
        design-space exploration and its Table I cross-check compare
        configurations by this tuple rather than by name.
        """
        return (
            self.pe_rows,
            self.pe_cols,
            self.lreg_words_per_pe,
            self.igbuf_words,
            self.wgbuf_words,
        )

    def describe(self) -> str:
        """Human-readable summary matching the Table I columns."""
        return (
            f"{self.name}: {self.pe_rows}x{self.pe_cols} PEs, "
            f"GBuf {self.gbuf_kib:.3f} KB, LReg {self.lreg_bytes_per_pe} B/PE, "
            f"GReg {self.greg_kib:.0f} KB, effective on-chip "
            f"{self.effective_on_chip_kib:.3f} KB"
        )


#: The five implementations evaluated in the paper (Table I).
PAPER_IMPLEMENTATIONS = (
    AcceleratorConfig(
        name="implementation-1",
        pe_rows=16,
        pe_cols=16,
        lreg_words_per_pe=128,  # 256 B per PE
        igbuf_words=1024,  # 2 KB
        wgbuf_words=256,  # 0.5 KB
        greg_bytes=10 * 1024,
    ),
    AcceleratorConfig(
        name="implementation-2",
        pe_rows=32,
        pe_cols=16,
        lreg_words_per_pe=64,  # 128 B per PE
        igbuf_words=1024,
        wgbuf_words=256,
        greg_bytes=15 * 1024,
    ),
    AcceleratorConfig(
        name="implementation-3",
        pe_rows=32,
        pe_cols=32,
        lreg_words_per_pe=32,  # 64 B per PE
        igbuf_words=1024,
        wgbuf_words=256,
        greg_bytes=18 * 1024,
    ),
    AcceleratorConfig(
        name="implementation-4",
        pe_rows=32,
        pe_cols=32,
        lreg_words_per_pe=64,  # 128 B per PE
        igbuf_words=1536,  # 3 KB
        wgbuf_words=320,  # 0.625 KB
        greg_bytes=27 * 1024,
    ),
    AcceleratorConfig(
        name="implementation-5",
        pe_rows=64,
        pe_cols=32,
        lreg_words_per_pe=32,  # 64 B per PE
        igbuf_words=1536,
        wgbuf_words=320,
        greg_bytes=36 * 1024,
    ),
)


def paper_implementation(index: int) -> AcceleratorConfig:
    """Implementation by its 1-based Table I index."""
    if not 1 <= index <= len(PAPER_IMPLEMENTATIONS):
        raise IndexError(f"Table I defines implementations 1-{len(PAPER_IMPLEMENTATIONS)}")
    return PAPER_IMPLEMENTATIONS[index - 1]
