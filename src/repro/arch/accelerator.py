"""Tile-exact analytic simulator of the proposed accelerator (Section V).

:class:`AcceleratorModel` executes a layer's schedule at tile granularity:
it walks every distinct output-block shape produced by the chosen tiling
(interior blocks plus boundary-clipped edge blocks), maps each onto the PE
array (:mod:`repro.arch.mapping`) and accumulates exact access counts for the
DRAM, the two GBufs, the GRegs and the LRegs, together with cycle counts and
utilisation statistics.  Per-MAC simulation is unnecessary because every
quantity the paper reports is a sum over tiles; the functional simulator
(:mod:`repro.arch.functional`) cross-checks these counters on small layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import AcceleratorConfig
from repro.arch.mapping import BlockShape, IterationCost, PEMapping, iteration_cost, map_block
from repro.core.layer import ConvLayer, ceil_div
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.tiling import Tiling
from repro.core.traffic import BYTES_PER_WORD, TrafficBreakdown


@dataclass(frozen=True)
class LayerRunResult:
    """All access counts and statistics for one layer on one configuration."""

    layer_name: str
    config_name: str
    tiling: Tiling
    macs: int
    useful_macs: int
    dram: TrafficBreakdown
    igbuf_reads: int
    igbuf_writes: int
    wgbuf_reads: int
    wgbuf_writes: int
    greg_writes: int
    lreg_writes: int
    lreg_reads: int
    compute_cycles: int
    waiting_cycles: int
    utilization: dict = field(default_factory=dict)

    # ------------------------------------------------------------ aggregates

    @property
    def gbuf_reads(self) -> int:
        return self.igbuf_reads + self.wgbuf_reads

    @property
    def gbuf_writes(self) -> int:
        return self.igbuf_writes + self.wgbuf_writes

    @property
    def gbuf_accesses(self) -> int:
        return self.gbuf_reads + self.gbuf_writes

    @property
    def reg_accesses(self) -> int:
        """Register access volume as reported in Fig. 17 (LReg + GReg writes)."""
        return self.lreg_writes + self.lreg_reads + self.greg_writes

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.waiting_cycles

    @property
    def dram_accesses(self) -> float:
        return self.dram.total


@dataclass(frozen=True)
class NetworkRunResult:
    """Aggregated result over a list of layers."""

    config_name: str
    layers: tuple

    @property
    def macs(self) -> int:
        return sum(result.macs for result in self.layers)

    @property
    def dram(self) -> TrafficBreakdown:
        total = TrafficBreakdown()
        for result in self.layers:
            total = total + result.dram
        return total

    @property
    def gbuf_accesses(self) -> int:
        return sum(result.gbuf_accesses for result in self.layers)

    @property
    def reg_accesses(self) -> int:
        return sum(result.reg_accesses for result in self.layers)

    @property
    def compute_cycles(self) -> int:
        return sum(result.compute_cycles for result in self.layers)

    @property
    def waiting_cycles(self) -> int:
        return sum(result.waiting_cycles for result in self.layers)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.waiting_cycles

    def utilization(self, key: str) -> float:
        """Cycle-weighted average utilisation across layers."""
        total_cycles = sum(result.compute_cycles for result in self.layers)
        if not total_cycles:
            return 0.0
        weighted = sum(
            result.utilization.get(key, 0.0) * result.compute_cycles for result in self.layers
        )
        return weighted / total_cycles


class AcceleratorModel:
    """Analytic model of the proposed accelerator for one configuration."""

    def __init__(self, config: AcceleratorConfig, dram_bandwidth_bytes_per_s: float = 6.4e9):
        self.config = config
        self.dram_bandwidth_bytes_per_s = dram_bandwidth_bytes_per_s

    # ------------------------------------------------------------------ tiling

    def choose_layer_tiling(self, layer: ConvLayer) -> Tiling:
        """Tiling for ``layer`` under this implementation's fixed memory split.

        Constraints: the block's Psums must fit the LRegs (both in total and
        per PE), one iteration's inputs the IGBuf, and one pass's weights
        (``z`` words) the WGBuf.  Candidate tilings are aligned to the PE
        array where possible (``z`` a multiple of the column count, the
        spatial tile divisible by the row grid) so edge waste stays small,
        exactly as the paper's implementations do; among the candidates the
        one with the least DRAM traffic wins, ties broken by PE waste.
        """
        cache_key = (self.config, layer)
        cached = _TILING_CACHE.get(cache_key)
        if cached is not None:
            return cached

        candidates = []
        for tiling in self._candidate_tilings(layer):
            tiling = tiling.clip(layer)
            if not self._fits(layer, tiling):
                continue
            traffic = dataflow_traffic(layer, tiling).total
            candidates.append((traffic, tiling))
        if not candidates:
            raise ValueError(
                f"{self.config.name}: no tiling of layer {layer.name!r} fits the "
                "on-chip memories"
            )
        # Two-pass selection: among the tilings within 2% of the minimum DRAM
        # traffic, keep the one that wastes the least PE work and LReg space
        # (the implementations trade a hair of traffic for full PE rows).
        min_traffic = min(traffic for traffic, _ in candidates)
        near_optimal = [
            (traffic, tiling)
            for traffic, tiling in candidates
            if traffic <= 1.02 * min_traffic
        ]
        best = min(
            near_optimal,
            key=lambda item: (self._waste(layer, item[1]), item[0]),
        )[1]
        _TILING_CACHE[cache_key] = best
        return best

    def _candidate_tilings(self, layer: ConvLayer):
        """Candidate tilings: the free-split optimum plus PE-aligned variants.

        The PE-aligned candidates are built bottom-up from per-PE tile shapes
        ``(zs, ys, xs)`` and an array partition grid, so interior blocks incur
        no padding waste and each PE's Psums provably fit its LRegs.
        """
        config = self.config
        free_choice = choose_tiling(
            layer,
            config.effective_on_chip_words,
            psum_words=config.psum_words,
            input_buffer_words=config.igbuf_words,
            weight_buffer_words=config.wgbuf_words,
        )
        seen = set()

        def emit(tiling: Tiling):
            tiling = tiling.clip(layer)
            key = (tiling.b, tiling.z, tiling.y, tiling.x, tiling.k)
            if key not in seen:
                seen.add(key)
                yield tiling

        yield from emit(free_choice.tiling)

        lreg = config.lreg_words_per_pe
        plane = layer.out_height * layer.out_width
        max_zs = min(ceil_div(layer.out_channels, config.pe_cols), lreg)
        for zs in range(1, max_zs + 1):
            z = min(layer.out_channels, zs * config.pe_cols, config.wgbuf_words)
            positions_cap = lreg // zs
            if positions_cap < 1:
                continue
            # Whole-plane blocks with batch tiling (small feature maps).
            max_batch = min(layer.batch, max(1, (config.pe_rows * positions_cap) // plane))
            for b in range(1, max_batch + 1):
                yield from emit(Tiling(b=b, z=z, y=layer.out_height, x=layer.out_width, k=1))
            # Spatially tiled blocks aligned to an array partition grid.
            for grid_rows in _divisors(config.pe_rows):
                grid_cols = config.pe_rows // grid_rows
                max_ys = min(ceil_div(layer.out_height, grid_rows), positions_cap)
                for ys in range(1, max_ys + 1):
                    xs = min(ceil_div(layer.out_width, grid_cols), positions_cap // ys)
                    if xs < 1:
                        continue
                    yield from emit(
                        Tiling(b=1, z=z, y=ys * grid_rows, x=xs * grid_cols, k=1)
                    )

    def _fits(self, layer: ConvLayer, tiling: Tiling) -> bool:
        config = self.config
        if tiling.output_block_size() > config.psum_words:
            return False
        if tiling.staged_input_words(layer) > config.igbuf_words:
            return False
        if tiling.staged_weight_words() > config.wgbuf_words:
            return False
        block = BlockShape(b=tiling.b, z=tiling.z, y=tiling.y, x=tiling.x)
        mapping = map_block(layer, block, config)
        return mapping.psums_per_pe <= config.lreg_words_per_pe

    def _waste(self, layer: ConvLayer, tiling: Tiling) -> float:
        """Fraction of PE work wasted on padding within an interior block."""
        block = BlockShape(b=tiling.b, z=tiling.z, y=tiling.y, x=tiling.x)
        mapping = map_block(layer, block, self.config)
        allocated = mapping.used_pes * mapping.psums_per_pe
        return allocated / block.outputs - 1.0 if block.outputs else 0.0

    # --------------------------------------------------------------------- run

    def run_layer(self, layer: ConvLayer, tiling: Tiling = None) -> LayerRunResult:
        """Execute one layer's schedule analytically and return all counters."""
        if tiling is None:
            tiling = self.choose_layer_tiling(layer)
        tiling = tiling.clip(layer)

        totals = {
            "dram_input_reads": 0,
            "dram_weight_reads": 0,
            "dram_output_writes": 0,
            "igbuf_reads": 0,
            "igbuf_writes": 0,
            "wgbuf_reads": 0,
            "wgbuf_writes": 0,
            "greg_writes": 0,
            "lreg_writes": 0,
            "lreg_reads": 0,
            "compute_cycles": 0,
            "waiting_cycles": 0,
            "useful_macs": 0,
        }
        lreg_occupancy_cycles = 0.0
        greg_occupancy_cycles = 0.0
        igbuf_occupancy_cycles = 0.0
        wgbuf_occupancy_cycles = 0.0

        iterations = ceil_div(layer.in_channels, tiling.k)
        bytes_per_cycle = self.dram_bandwidth_bytes_per_s / self.config.clock_hz

        for block, count in self._block_shapes(layer, tiling):
            mapping = map_block(layer, block, self.config)
            cost = iteration_cost(layer, block, mapping, self.config, channels=tiling.k)

            totals["dram_input_reads"] += count * iterations * cost.dram_input_reads
            totals["dram_weight_reads"] += count * iterations * cost.dram_weight_reads
            totals["dram_output_writes"] += count * block.outputs
            totals["igbuf_reads"] += count * iterations * cost.igbuf_reads
            totals["igbuf_writes"] += count * iterations * cost.igbuf_writes
            totals["wgbuf_reads"] += count * iterations * cost.wgbuf_reads
            totals["wgbuf_writes"] += count * iterations * cost.wgbuf_writes
            totals["greg_writes"] += count * iterations * cost.greg_writes
            totals["lreg_writes"] += count * iterations * cost.lreg_writes
            # Draining a finished block reads every Psum once.
            totals["lreg_reads"] += count * block.outputs
            totals["compute_cycles"] += count * iterations * cost.cycles
            totals["useful_macs"] += count * iterations * cost.useful_macs

            # Waiting time: with double-buffered GBufs the next iteration's
            # operands stream while the current one computes; each iteration
            # stalls only when its DRAM transfer outlasts the computation.
            load_words = cost.dram_input_reads + cost.dram_weight_reads
            load_cycles = load_words * BYTES_PER_WORD / bytes_per_cycle
            per_iter_wait = max(0.0, load_cycles - cost.cycles)
            # The first iteration of each block cannot be hidden at all.
            first_fill = load_cycles
            drain_cycles = block.outputs * BYTES_PER_WORD / bytes_per_cycle
            totals["waiting_cycles"] += int(
                count * (per_iter_wait * max(0, iterations - 1) + first_fill + max(0.0, drain_cycles - cost.cycles))
            )

            block_cycles = count * iterations * cost.cycles
            lreg_occupancy_cycles += block.outputs / self.config.psum_words * block_cycles
            greg_words = self.config.greg_bytes // BYTES_PER_WORD
            greg_used = (
                self.config.num_group_rows * block.z
                + self.config.num_group_cols
                * mapping.used_pe_rows
                * mapping.input_rows_per_pe
                * mapping.input_cols_per_pe
            )
            greg_occupancy_cycles += min(1.0, greg_used / greg_words) * block_cycles
            igbuf_occupancy_cycles += (
                min(1.0, cost.dram_input_reads / self.config.igbuf_words) * block_cycles
            )
            wgbuf_occupancy_cycles += (
                min(1.0, cost.dram_weight_reads / self.config.wgbuf_words) * block_cycles
            )

        compute_cycles = totals["compute_cycles"]
        utilization = self._utilization(
            layer,
            compute_cycles,
            totals["useful_macs"],
            lreg_occupancy_cycles,
            greg_occupancy_cycles,
            igbuf_occupancy_cycles,
            wgbuf_occupancy_cycles,
        )

        dram = TrafficBreakdown(
            input_reads=float(totals["dram_input_reads"]),
            weight_reads=float(totals["dram_weight_reads"]),
            output_reads=0.0,
            output_writes=float(totals["dram_output_writes"]),
        )
        return LayerRunResult(
            layer_name=layer.name,
            config_name=self.config.name,
            tiling=tiling,
            macs=layer.macs,
            useful_macs=layer.macs,
            dram=dram,
            igbuf_reads=totals["igbuf_reads"],
            igbuf_writes=totals["igbuf_writes"],
            wgbuf_reads=totals["wgbuf_reads"],
            wgbuf_writes=totals["wgbuf_writes"],
            greg_writes=totals["greg_writes"],
            lreg_writes=totals["lreg_writes"],
            lreg_reads=totals["lreg_reads"],
            compute_cycles=compute_cycles,
            waiting_cycles=totals["waiting_cycles"],
            utilization=utilization,
        )

    def run_network(self, layers: list) -> NetworkRunResult:
        """Run every layer and return the aggregated result."""
        return NetworkRunResult(
            config_name=self.config.name,
            layers=tuple(self.run_layer(layer) for layer in layers),
        )

    # ----------------------------------------------------------------- helpers

    def _block_shapes(self, layer: ConvLayer, tiling: Tiling):
        """Distinct block shapes and how many blocks have each shape."""
        return block_shapes(layer, tiling)

    def _utilization(
        self,
        layer: ConvLayer,
        compute_cycles: int,
        lreg_write_macs: int,
        lreg_occupancy_cycles: float,
        greg_occupancy_cycles: float,
        igbuf_occupancy_cycles: float,
        wgbuf_occupancy_cycles: float,
    ) -> dict:
        if compute_cycles == 0:
            return {key: 0.0 for key in ("pe", "lreg", "greg", "gbuf", "memory")}
        pe = layer.macs / (self.config.num_pes * compute_cycles)
        lreg = lreg_occupancy_cycles / compute_cycles
        greg = greg_occupancy_cycles / compute_cycles
        igbuf = igbuf_occupancy_cycles / compute_cycles
        wgbuf = wgbuf_occupancy_cycles / compute_cycles
        gbuf = (
            igbuf * self.config.igbuf_words + wgbuf * self.config.wgbuf_words
        ) / self.config.gbuf_words
        greg_words = self.config.greg_bytes // BYTES_PER_WORD
        memory_words = self.config.psum_words + self.config.gbuf_words + greg_words
        memory = (
            lreg * self.config.psum_words + gbuf * self.config.gbuf_words + greg * greg_words
        ) / memory_words
        return {
            "pe": min(1.0, pe),
            "lreg": min(1.0, lreg),
            "greg": min(1.0, greg),
            "gbuf": min(1.0, gbuf),
            "memory": min(1.0, memory),
        }


#: Cache of chosen tilings keyed by (configuration, layer); both are frozen
#: dataclasses, so the cache is shared across AcceleratorModel instances.
_TILING_CACHE: dict = {}


def block_shapes(layer: ConvLayer, tiling: Tiling):
    """Distinct output-block shapes of ``tiling`` on ``layer`` with counts.

    Yields ``(BlockShape, count)`` pairs covering the whole layer (interior
    blocks plus boundary-clipped edge blocks).  Shared by the analytic model
    and the tile-level timing simulator (:mod:`repro.timing`), which must
    walk the exact same block decomposition for their cycle totals to agree.
    """
    for b_size, b_count in _tile_shapes(layer.batch, tiling.b):
        for z_size, z_count in _tile_shapes(layer.out_channels, tiling.z):
            for y_size, y_count in _tile_shapes(layer.out_height, tiling.y):
                for x_size, x_count in _tile_shapes(layer.out_width, tiling.x):
                    count = b_count * z_count * y_count * x_count
                    yield BlockShape(b=b_size, z=z_size, y=y_size, x=x_size), count


def _divisors(value: int) -> list:
    """All positive divisors of ``value`` in ascending order."""
    return [d for d in range(1, value + 1) if value % d == 0]


def _tile_shapes(extent: int, tile: int) -> list:
    """Distinct (size, count) pairs when ``extent`` is tiled by ``tile``."""
    tile = min(tile, extent)
    full = extent // tile
    remainder = extent - full * tile
    shapes = []
    if full:
        shapes.append((tile, full))
    if remainder:
        shapes.append((remainder, 1))
    return shapes
