"""Execution time and power model (Fig. 19).

The accelerator model already splits cycles into *compute* and *waiting*
(DRAM transfers that double buffering cannot hide).  This module converts
cycles to seconds at the core clock and combines them with the energy model
to obtain average power dissipation, matching the quantities of Fig. 19.

:func:`simulate_network` is the one-call front door over both cycle models:
``mode="analytic"`` runs the first-order
:class:`~repro.arch.accelerator.AcceleratorModel`, ``mode="timing"`` the
tile-level double-buffered simulator (:mod:`repro.timing`), whose
infinite-bandwidth limit reproduces the analytic cycles bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.energy.model import EnergyBreakdown


@dataclass(frozen=True)
class PerformanceReport:
    """Execution time, power and throughput of one network on one configuration."""

    config_name: str
    compute_seconds: float
    waiting_seconds: float
    energy_joules: float

    @property
    def total_seconds(self) -> float:
        return self.compute_seconds + self.waiting_seconds

    @property
    def power_watts(self) -> float:
        """Average power over the run (energy / time)."""
        return self.energy_joules / self.total_seconds if self.total_seconds else 0.0

    @property
    def waiting_fraction(self) -> float:
        """Share of the run spent waiting on DRAM."""
        return self.waiting_seconds / self.total_seconds if self.total_seconds else 0.0

    def speedup_over(self, other: "PerformanceReport") -> float:
        """How much faster this configuration is than ``other``."""
        if self.total_seconds == 0:
            raise ValueError("cannot compute a speedup for a zero-time run")
        return other.total_seconds / self.total_seconds


def performance_report(
    network_result,
    config: AcceleratorConfig,
    energy: EnergyBreakdown,
) -> PerformanceReport:
    """Build the Fig. 19 quantities for one network run."""
    compute_seconds = network_result.compute_cycles / config.clock_hz
    waiting_seconds = network_result.waiting_cycles / config.clock_hz
    return PerformanceReport(
        config_name=config.name,
        compute_seconds=compute_seconds,
        waiting_seconds=waiting_seconds,
        energy_joules=energy.total * 1e-12,
    )


def simulate_network(
    layers,
    config: AcceleratorConfig,
    mode: str = "analytic",
    dram_bandwidth_bytes_per_s: float = 6.4e9,
    backend: str = "auto",
    energy_model=None,
) -> tuple:
    """Run ``layers`` on ``config`` and report Fig. 19 quantities.

    Returns ``(network_result, PerformanceReport)``.  ``mode="analytic"``
    is the aggregate model behind Fig. 19; ``mode="timing"`` walks the tile
    stream with per-buffer stall accounting (``backend`` selects the scalar
    or the bit-identical NumPy recurrence).  Both modes price energy with
    the same Table II model; in timing mode the access counts come from the
    analytic walk (a stall moves no extra data) while the leakage term is
    charged over the stall-lengthened timed cycles.
    """
    from repro.energy.model import EnergyModel

    if energy_model is None:
        energy_model = EnergyModel()
    if mode == "analytic":
        from repro.arch.accelerator import AcceleratorModel

        network = AcceleratorModel(config, dram_bandwidth_bytes_per_s).run_network(layers)
        energy = energy_model.network_energy(network, config)
    elif mode == "timing":
        from repro.timing import TimingSimulator, timing_network_energy

        simulator = TimingSimulator(config, dram_bandwidth_bytes_per_s, backend=backend)
        network = simulator.run_network(layers)
        energy = timing_network_energy(layers, network, config, energy_model=energy_model)
    else:
        raise ValueError(f"unknown simulation mode {mode!r}; choose analytic or timing")
    return network, performance_report(network, config, energy)


def throughput_macs_per_second(network_result, config: AcceleratorConfig) -> float:
    """Achieved MAC throughput including waiting time."""
    total_cycles = network_result.total_cycles
    if total_cycles == 0:
        return 0.0
    return network_result.macs / (total_cycles / config.clock_hz)
