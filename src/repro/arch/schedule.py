"""Controller schedule generation (Section V, "Controller").

The accelerator's global controller is a finite-state machine that walks the
dataflow: for every output block it issues ``ceil(Ci/k)`` channel iterations,
each made of ``k*Wk*Hk`` passes; each pass loads one row of the reshaped
weight sub-matrix (``z`` weights) into the GRegs, reuses the iteration's
inputs already resident in the GRegs, and updates every resident Psum once.
DRAM transfers for the *next* iteration are prefetched into the GBufs while
the current iteration computes.

This module generates that schedule explicitly as a list of records.  It
serves two purposes:

* it is the executable specification of the controller FSM (tests check that
  the schedule's aggregate loads/cycles equal the analytic simulator's
  counters for the same tiling);
* it provides the per-iteration timeline (compute vs. transfer) that the
  performance model's overlap assumption rests on, so the double-buffering
  claim is inspectable rather than implicit.

The schedule is tile-granular (one record per pass), so it is only meant for
single blocks or small layers; the analytic simulator covers full networks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.arch.mapping import BlockShape, map_block
from repro.core.layer import ConvLayer, ceil_div
from repro.core.tiling import Tiling
from repro.core.traffic import BYTES_PER_WORD, bytes_per_cycle_fraction, cycles_for_bytes


@dataclass(frozen=True)
class PassRecord:
    """One pass: every resident Psum is updated once."""

    block_index: int
    iteration: int
    pass_index: int
    kernel_row: int
    kernel_col: int
    channel_offset: int
    weights_loaded: int
    cycles: int


@dataclass(frozen=True)
class IterationRecord:
    """One channel iteration of one block, with its DRAM prefetch volume."""

    block_index: int
    iteration: int
    input_words_loaded: int
    weight_words_loaded: int
    compute_cycles: int
    transfer_cycles: int
    passes: tuple

    @property
    def stall_cycles(self) -> int:
        """Cycles the PE array idles waiting for this iteration's operands,
        assuming the previous iteration's compute overlapped the transfer.

        Exact integer arithmetic end-to-end: ``transfer_cycles`` is already
        a ceiling division by the rational bytes-per-cycle, so the stall
        stays an ``int`` and sums of stalls never accumulate float error.
        """
        return max(0, self.transfer_cycles - self.compute_cycles)


@dataclass(frozen=True)
class BlockSchedule:
    """The complete schedule of one output block."""

    block_index: int
    block: BlockShape
    iterations: tuple

    @property
    def compute_cycles(self) -> int:
        return sum(iteration.compute_cycles for iteration in self.iterations)

    @property
    def total_passes(self) -> int:
        return sum(len(iteration.passes) for iteration in self.iterations)

    @property
    def dram_words_loaded(self) -> int:
        return sum(
            iteration.input_words_loaded + iteration.weight_words_loaded
            for iteration in self.iterations
        )


class ScheduleGenerator:
    """Generates controller schedules for one accelerator configuration."""

    def __init__(self, config: AcceleratorConfig, dram_bandwidth_bytes_per_s: float = 6.4e9):
        self.config = config
        self.dram_bandwidth_bytes_per_s = dram_bandwidth_bytes_per_s

    def block_schedule(
        self, layer: ConvLayer, tiling: Tiling, block: BlockShape, block_index: int = 0
    ) -> BlockSchedule:
        """Schedule of one output block under ``tiling``."""
        tiling = tiling.clip(layer)
        mapping = map_block(layer, block, self.config)
        cycles_per_pass = mapping.cycles_per_pass()
        bytes_per_cycle = bytes_per_cycle_fraction(
            self.dram_bandwidth_bytes_per_s, self.config.clock_hz
        )

        input_rows = (block.y - 1) * layer.stride + layer.kernel_height
        input_cols = (block.x - 1) * layer.stride + layer.kernel_width

        iterations = []
        iteration_count = ceil_div(layer.in_channels, tiling.k)
        for iteration in range(iteration_count):
            channel_base = iteration * tiling.k
            channels = min(tiling.k, layer.in_channels - channel_base)
            input_words = block.b * input_rows * input_cols * channels
            weight_words = block.z * channels * layer.kernel_height * layer.kernel_width

            passes = []
            pass_index = 0
            for channel in range(channels):
                for kernel_row in range(layer.kernel_height):
                    for kernel_col in range(layer.kernel_width):
                        passes.append(
                            PassRecord(
                                block_index=block_index,
                                iteration=iteration,
                                pass_index=pass_index,
                                kernel_row=kernel_row,
                                kernel_col=kernel_col,
                                channel_offset=channel_base + channel,
                                weights_loaded=block.z,
                                cycles=cycles_per_pass,
                            )
                        )
                        pass_index += 1

            compute_cycles = len(passes) * cycles_per_pass
            transfer_cycles = cycles_for_bytes(
                (input_words + weight_words) * BYTES_PER_WORD, bytes_per_cycle
            )
            iterations.append(
                IterationRecord(
                    block_index=block_index,
                    iteration=iteration,
                    input_words_loaded=input_words,
                    weight_words_loaded=weight_words,
                    compute_cycles=compute_cycles,
                    transfer_cycles=transfer_cycles,
                    passes=tuple(passes),
                )
            )
        return BlockSchedule(block_index=block_index, block=block, iterations=tuple(iterations))

    def layer_schedule(self, layer: ConvLayer, tiling: Tiling = None, max_blocks: int = None):
        """Yield :class:`BlockSchedule` objects for a whole (small) layer.

        Blocks are visited in the Fig. 7 loop order (batch, output channel,
        row, column).  ``max_blocks`` truncates the walk for demonstration
        purposes on large layers.
        """
        if tiling is None:
            tiling = Tiling(
                b=1,
                z=min(layer.out_channels, self.config.pe_cols),
                y=min(layer.out_height, self.config.pe_rows),
                x=layer.out_width,
                k=1,
            )
        tiling = tiling.clip(layer)
        block_index = 0
        for batch_start in range(0, layer.batch, tiling.b):
            for channel_start in range(0, layer.out_channels, tiling.z):
                for row_start in range(0, layer.out_height, tiling.y):
                    for col_start in range(0, layer.out_width, tiling.x):
                        if max_blocks is not None and block_index >= max_blocks:
                            return
                        block = BlockShape(
                            b=min(tiling.b, layer.batch - batch_start),
                            z=min(tiling.z, layer.out_channels - channel_start),
                            y=min(tiling.y, layer.out_height - row_start),
                            x=min(tiling.x, layer.out_width - col_start),
                        )
                        yield self.block_schedule(layer, tiling, block, block_index)
                        block_index += 1


def schedule_summary(schedules: list) -> dict:
    """Aggregate a list of :class:`BlockSchedule` into totals.

    Used by tests to check the explicit schedule agrees with the analytic
    simulator, and by users who want a quick picture of a layer's timeline.
    """
    compute = sum(schedule.compute_cycles for schedule in schedules)
    stall = sum(
        iteration.stall_cycles
        for schedule in schedules
        for iteration in schedule.iterations[1:]
    )
    first_fills = sum(
        schedule.iterations[0].transfer_cycles for schedule in schedules if schedule.iterations
    )
    dram_words = sum(schedule.dram_words_loaded for schedule in schedules)
    passes = sum(schedule.total_passes for schedule in schedules)
    return {
        "blocks": len(schedules),
        "passes": passes,
        "compute_cycles": compute,
        "stall_cycles": stall + first_fills,
        "dram_words_loaded": dram_words,
    }
