"""Workload and storage mapping onto the PE array (Section IV-B, Fig. 8/9).

For one output block of shape ``(b, z, y, x)`` the reshaped output sub-matrix
(``b*x*y`` rows by ``z`` columns) is distributed over the ``p x q`` PE array:

* PE **columns** partition the ``z`` output channels -- each PE computes
  ``zs = ceil(z / q)`` channels (with a stride of ``q``, per the weight MUX
  structure of Fig. 11);
* PE **rows** partition the ``b*x*y`` output positions -- the block's spatial
  extent (and, if needed, its batch extent) is cut into a ``pb x py x px``
  grid so each PE handles a ``bs x ys x xs`` output patch.

Each PE therefore owns ``bs*ys*xs*zs`` partial sums in its LRegs.  PEs in the
same row share inputs through a GReg segment; PEs in the same column share
weights through a GReg row.  A *pass* updates every resident Psum once and
takes ``bs*ys*xs*zs`` cycles; one channel iteration needs ``k*Wk*Hk`` passes.

The mapping also accounts for the input *halos*: a PE row's patch needs
``bs * xs' * ys'`` inputs (``xs' = (xs-1)*D + Wk``), which is where the
paper's 1.67x GBuf input re-read factor comes from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layer import ConvLayer, ceil_div
from repro.arch.config import AcceleratorConfig


@dataclass(frozen=True)
class BlockShape:
    """The (possibly boundary-clipped) shape of one output block."""

    b: int
    z: int
    y: int
    x: int

    @property
    def outputs(self) -> int:
        return self.b * self.z * self.y * self.x


@dataclass(frozen=True)
class PEMapping:
    """How one output block maps onto the PE array."""

    block: BlockShape
    grid_batch: int
    grid_rows: int
    grid_cols: int
    batch_per_pe: int
    rows_per_pe: int
    cols_per_pe: int
    channels_per_pe: int
    used_pe_rows: int
    used_pe_cols: int
    input_rows_per_pe: int
    input_cols_per_pe: int

    @property
    def psums_per_pe(self) -> int:
        """Partial sums resident in one PE's LRegs for this block."""
        return self.batch_per_pe * self.rows_per_pe * self.cols_per_pe * self.channels_per_pe

    @property
    def input_patch_per_row(self) -> int:
        """Inputs (per channel) a PE row needs for one pass group (with halo)."""
        return self.batch_per_pe * self.input_rows_per_pe * self.input_cols_per_pe

    @property
    def used_pes(self) -> int:
        return self.used_pe_rows * self.used_pe_cols

    def cycles_per_pass(self) -> int:
        """One pass updates every resident Psum once."""
        return self.psums_per_pe


def _factor_triples(value: int):
    """All ordered triples ``(a, b, c)`` with ``a*b*c == value``."""
    for a in range(1, value + 1):
        if value % a:
            continue
        rest = value // a
        for b in range(1, rest + 1):
            if rest % b:
                continue
            yield a, b, rest // b


def map_block(layer: ConvLayer, block: BlockShape, config: AcceleratorConfig) -> PEMapping:
    """Map one output block onto the PE array.

    The PE-row partition grid is chosen to (1) fit each PE's Psums in its
    LRegs, (2) minimise the per-iteration input volume read from the IGBuf
    (i.e. minimise halo waste), and (3) keep as many PE rows busy as
    possible.  The PE-column partition is fixed by the architecture: output
    channels are dealt round-robin over the ``q`` columns.
    """
    channels_per_pe = ceil_div(block.z, config.pe_cols)
    used_pe_cols = min(config.pe_cols, block.z)

    best = None
    for grid_batch, grid_rows, grid_cols in _factor_triples(config.pe_rows):
        grid_batch_eff = min(grid_batch, block.b)
        grid_rows_eff = min(grid_rows, block.y)
        grid_cols_eff = min(grid_cols, block.x)
        batch_per_pe = ceil_div(block.b, grid_batch_eff)
        rows_per_pe = ceil_div(block.y, grid_rows_eff)
        cols_per_pe = ceil_div(block.x, grid_cols_eff)
        input_rows = (rows_per_pe - 1) * layer.stride + layer.kernel_height
        input_cols = (cols_per_pe - 1) * layer.stride + layer.kernel_width
        used_rows = (
            ceil_div(block.b, batch_per_pe)
            * ceil_div(block.y, rows_per_pe)
            * ceil_div(block.x, cols_per_pe)
        )
        psums = batch_per_pe * rows_per_pe * cols_per_pe * channels_per_pe
        fits = psums <= config.lreg_words_per_pe
        halo_volume = used_rows * batch_per_pe * input_rows * input_cols
        key = (not fits, halo_volume, -used_rows, psums)
        candidate = PEMapping(
            block=block,
            grid_batch=grid_batch_eff,
            grid_rows=grid_rows_eff,
            grid_cols=grid_cols_eff,
            batch_per_pe=batch_per_pe,
            rows_per_pe=rows_per_pe,
            cols_per_pe=cols_per_pe,
            channels_per_pe=channels_per_pe,
            used_pe_rows=min(used_rows, config.pe_rows),
            used_pe_cols=used_pe_cols,
            input_rows_per_pe=input_rows,
            input_cols_per_pe=input_cols,
        )
        if best is None or key < best[0]:
            best = (key, candidate)
    return best[1]


@dataclass(frozen=True)
class IterationCost:
    """Access counts and cycles of one channel iteration of one block."""

    cycles: int
    dram_input_reads: int
    dram_weight_reads: int
    igbuf_writes: int
    igbuf_reads: int
    wgbuf_writes: int
    wgbuf_reads: int
    greg_writes: int
    lreg_writes: int
    useful_macs: int


def iteration_cost(
    layer: ConvLayer,
    block: BlockShape,
    mapping: PEMapping,
    config: AcceleratorConfig,
    channels: int = 1,
) -> IterationCost:
    """Cost of loading ``channels`` input channels and updating the block once.

    The loaded weights are read from the WGBuf exactly once; the loaded
    inputs are read from the IGBuf once per PE row that needs them (with the
    halo overhead).  GReg writes account for the duplication of inputs and
    weights across PE groups (all group rows hold the same weights, all group
    columns hold the same inputs).
    """
    kernel_area = layer.kernel_height * layer.kernel_width
    input_rows = (block.y - 1) * layer.stride + layer.kernel_height
    input_cols = (block.x - 1) * layer.stride + layer.kernel_width

    dram_input_reads = block.b * input_rows * input_cols * channels
    dram_weight_reads = block.z * channels * kernel_area

    igbuf_writes = dram_input_reads
    wgbuf_writes = dram_weight_reads
    igbuf_reads = mapping.used_pe_rows * mapping.input_patch_per_row * channels
    wgbuf_reads = dram_weight_reads

    greg_writes = (
        config.num_group_rows * wgbuf_reads + config.num_group_cols * igbuf_reads
    )

    passes = channels * kernel_area
    cycles = passes * mapping.cycles_per_pass()
    lreg_writes = mapping.used_pes * mapping.cycles_per_pass() * passes
    useful_macs = block.outputs * channels * kernel_area
    return IterationCost(
        cycles=cycles,
        dram_input_reads=dram_input_reads,
        dram_weight_reads=dram_weight_reads,
        igbuf_writes=igbuf_writes,
        igbuf_reads=igbuf_reads,
        wgbuf_writes=wgbuf_writes,
        wgbuf_reads=wgbuf_reads,
        greg_writes=greg_writes,
        lreg_writes=lreg_writes,
        useful_macs=useful_macs,
    )
