"""Double-buffered per-tile timing simulator (ROADMAP direction 2).

The analytic :class:`~repro.arch.accelerator.AcceleratorModel` folds DRAM
transfers into aggregate ``waiting_cycles`` with float arithmetic; it can
reproduce Fig. 19 but cannot say *which* buffer stalls, *when* in a layer's
lifetime, or how the picture changes as DRAM bandwidth varies.  This module
walks the actual tile stream instead:

* a **tile** is one channel iteration of one output block -- the unit the
  controller FSM issues (:mod:`repro.arch.schedule`);
* the accelerator is double buffered, so while tile ``i`` computes, tile
  ``i+1``'s inputs (IGBuf) and weights (WGBuf) stream from DRAM; the clock
  advances by ``max(compute_cycles, load_cycles)`` per steady-state tile;
* the first tile of every block cannot be overlapped at all (the prologue
  *fill*), and after a block's last tile its Psums drain to DRAM, exposed
  only where the drain outlasts one tile's compute (the epilogue);
* blocks are independent: no prefetch crosses a block boundary, matching
  the analytic model's structure (and its infinite-bandwidth limit exactly).

All cycle quantities are **exact integers**: bandwidth enters as a rational
bytes-per-cycle (:func:`repro.core.traffic.bytes_per_cycle_fraction`) and
every transfer duration is a ceiling division.  Stalls are attributed per
buffer by the stream order (inputs first, weights last): of an exposed
window ``s``, the final ``min(s, weight_load_cycles)`` cycles are WGBuf
time and the rest IGBuf time.

Two backends produce bit-identical reports: a scalar reference loop that
advances a clock tile by tile, and a NumPy backend that evaluates the same
recurrence as a prefix sum over the whole tile stream
(``tests/test_timing_parity.py`` proves the equivalence, and
``benchmarks/bench_timing.py`` gates the speedup at >= 10x).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.arch.config import AcceleratorConfig
from repro.arch.mapping import BlockShape, iteration_cost, map_block
from repro.core.layer import ConvLayer, ceil_div
from repro.core.tiling import Tiling
from repro.core.traffic import BYTES_PER_WORD, bytes_per_cycle_fraction, cycles_for_bytes

try:  # The vectorized backend is optional, exactly like the search engine's.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

#: The paper's DRAM bandwidth: 6.4 GB/s (Section VI), i.e. 12.8 B/cycle.
DEFAULT_DRAM_BANDWIDTH_BYTES_PER_S = 6.4e9

#: Guard for the NumPy backend: if the worst-case total cycle count cannot
#: be represented comfortably in int64 (absurdly low bandwidths), the
#: simulator transparently uses the (equally exact) scalar reference.
_INT64_SAFE_LIMIT = 2 ** 62


@dataclass(frozen=True)
class TileGroup:
    """All tiles sharing one block shape: the simulator's unit of work.

    ``count`` blocks of shape ``block`` each run ``iterations`` channel
    iterations; per iteration the PE array computes for ``compute_cycles``
    while ``input_words``/``weight_words`` stream into the GBufs, and per
    block ``drain_words`` Psums leave the array at the end.
    """

    block: BlockShape
    count: int
    iterations: int
    compute_cycles: int
    input_words: int
    weight_words: int
    drain_words: int

    @property
    def tiles(self) -> int:
        return self.count * self.iterations

    @property
    def load_bytes(self) -> int:
        """DRAM bytes streamed per channel iteration (inputs + weights)."""
        return (self.input_words + self.weight_words) * BYTES_PER_WORD


def tile_groups(layer: ConvLayer, tiling: Tiling, config: AcceleratorConfig) -> tuple:
    """The layer's tile stream under ``tiling``, grouped by block shape.

    Mirrors :meth:`repro.arch.accelerator.AcceleratorModel.run_layer`
    exactly -- same block decomposition, same per-iteration cost, same
    ``ceil(Ci/k)`` iteration count -- so the simulated compute cycles are
    bit-identical to the analytic model's by construction.
    """
    from repro.arch.accelerator import block_shapes

    tiling = tiling.clip(layer)
    iterations = ceil_div(layer.in_channels, tiling.k)
    groups = []
    for block, count in block_shapes(layer, tiling):
        mapping = map_block(layer, block, config)
        cost = iteration_cost(layer, block, mapping, config, channels=tiling.k)
        groups.append(
            TileGroup(
                block=block,
                count=count,
                iterations=iterations,
                compute_cycles=cost.cycles,
                input_words=cost.dram_input_reads,
                weight_words=cost.dram_weight_reads,
                drain_words=block.outputs,
            )
        )
    return tuple(groups)


def steady_breakeven_bytes_per_cycle(groups):
    """Exact roofline break-even of the steady state, in bytes per cycle.

    The smallest bandwidth at which **no** steady-state tile stalls: the
    max over tile groups (with a steady state, ``iterations >= 2``) of
    ``load_bytes / compute_cycles``.  Because compute cycles are integers,
    ``ceil(load_bytes / bpc) <= compute`` holds *iff* ``bpc`` is at or
    above this :class:`~fractions.Fraction` -- the property suite asserts
    both directions.  ``None`` means no group has a steady state; ``inf``
    means some steady tile computes for zero cycles and can never hide its
    load.  Prologue fills and epilogue drains are excluded: a fill is never
    hidden at any bandwidth.
    """
    candidates = []
    for group in groups:
        if group.iterations < 2 or group.load_bytes == 0:
            continue
        if group.compute_cycles <= 0:
            return math.inf
        candidates.append(Fraction(group.load_bytes, group.compute_cycles))
    return max(candidates) if candidates else None


@dataclass(frozen=True)
class LayerTimingReport:
    """Stall-accurate cycle accounting of one layer at one bandwidth.

    Every ``*_cycles`` field is an exact integer.  Fill stalls are the
    prologue (the first tile of each block, never hidden), steady stalls
    the hideable-but-exposed remainder, and the drain stall the epilogue.
    """

    layer_name: str
    config_name: str
    tiling: Tiling
    bandwidth_bytes_per_s: object
    clock_hz: float
    blocks: int
    tiles: int
    macs: int
    compute_cycles: int
    igbuf_fill_stall_cycles: int
    wgbuf_fill_stall_cycles: int
    igbuf_steady_stall_cycles: int
    wgbuf_steady_stall_cycles: int
    drain_stall_cycles: int
    dram_bytes_loaded: int
    dram_bytes_drained: int
    steady_breakeven_bytes_per_cycle: object

    # ---------------------------------------------------------- aggregates

    @property
    def igbuf_stall_cycles(self) -> int:
        return self.igbuf_fill_stall_cycles + self.igbuf_steady_stall_cycles

    @property
    def wgbuf_stall_cycles(self) -> int:
        return self.wgbuf_fill_stall_cycles + self.wgbuf_steady_stall_cycles

    @property
    def prologue_stall_cycles(self) -> int:
        """First-tile fills: exposed in full at every finite bandwidth."""
        return self.igbuf_fill_stall_cycles + self.wgbuf_fill_stall_cycles

    @property
    def steady_stall_cycles(self) -> int:
        """Steady-state exposure: zero at or above the roofline break-even."""
        return self.igbuf_steady_stall_cycles + self.wgbuf_steady_stall_cycles

    @property
    def epilogue_stall_cycles(self) -> int:
        return self.drain_stall_cycles

    @property
    def stall_cycles(self) -> int:
        return self.prologue_stall_cycles + self.steady_stall_cycles + self.drain_stall_cycles

    @property
    def waiting_cycles(self) -> int:
        """Alias matching the analytic model's vocabulary (Fig. 19)."""
        return self.stall_cycles

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def total_seconds(self) -> float:
        return self.total_cycles / self.clock_hz

    @property
    def utilization(self) -> float:
        """Share of the run the PE array computes (1.0 = never stalled)."""
        return self.compute_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def dram_bytes_moved(self) -> int:
        return self.dram_bytes_loaded + self.dram_bytes_drained

    @property
    def achieved_bytes_per_cycle(self) -> float:
        return self.dram_bytes_moved / self.total_cycles if self.total_cycles else 0.0

    @property
    def achieved_bandwidth_bytes_per_s(self) -> float:
        return self.achieved_bytes_per_cycle * self.clock_hz


@dataclass(frozen=True)
class NetworkTimingResult:
    """Per-layer timing reports plus network aggregates.

    Exposes ``compute_cycles``/``waiting_cycles``/``total_cycles``/``macs``
    so :func:`repro.arch.performance.performance_report` and
    :func:`~repro.arch.performance.throughput_macs_per_second` accept it
    exactly like an analytic :class:`~repro.arch.accelerator.NetworkRunResult`.
    """

    config_name: str
    bandwidth_bytes_per_s: object
    layers: tuple

    def _sum(self, attribute: str) -> int:
        return sum(getattr(layer, attribute) for layer in self.layers)

    @property
    def macs(self) -> int:
        return self._sum("macs")

    @property
    def compute_cycles(self) -> int:
        return self._sum("compute_cycles")

    @property
    def igbuf_stall_cycles(self) -> int:
        return self._sum("igbuf_stall_cycles")

    @property
    def wgbuf_stall_cycles(self) -> int:
        return self._sum("wgbuf_stall_cycles")

    @property
    def drain_stall_cycles(self) -> int:
        return self._sum("drain_stall_cycles")

    @property
    def prologue_stall_cycles(self) -> int:
        return self._sum("prologue_stall_cycles")

    @property
    def steady_stall_cycles(self) -> int:
        return self._sum("steady_stall_cycles")

    @property
    def waiting_cycles(self) -> int:
        return self._sum("stall_cycles")

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.waiting_cycles

    @property
    def dram_bytes_moved(self) -> int:
        return self._sum("dram_bytes_moved")

    @property
    def utilization(self) -> float:
        return self.compute_cycles / self.total_cycles if self.total_cycles else 0.0

    @property
    def achieved_bytes_per_cycle(self) -> float:
        return self.dram_bytes_moved / self.total_cycles if self.total_cycles else 0.0


def resolve_timing_backend(backend: str) -> str:
    """Normalise ``auto``/``numpy``/``python`` against numpy availability."""
    if backend == "auto":
        return "numpy" if _np is not None else "python"
    if backend == "numpy":
        if _np is None:
            raise ValueError("backend 'numpy' requested but numpy is not installed")
        return backend
    if backend == "python":
        return backend
    raise ValueError(f"unknown timing backend {backend!r}; choose auto, numpy or python")


class TimingSimulator:
    """Tile-level timing of one accelerator configuration at one bandwidth."""

    def __init__(
        self,
        config: AcceleratorConfig,
        dram_bandwidth_bytes_per_s=DEFAULT_DRAM_BANDWIDTH_BYTES_PER_S,
        backend: str = "auto",
    ):
        self.config = config
        self.dram_bandwidth_bytes_per_s = dram_bandwidth_bytes_per_s
        self.bytes_per_cycle = bytes_per_cycle_fraction(
            dram_bandwidth_bytes_per_s, config.clock_hz
        )
        self.backend = resolve_timing_backend(backend)

    # ------------------------------------------------------------------ api

    def run_layer(self, layer: ConvLayer, tiling: Tiling = None) -> LayerTimingReport:
        """Simulate one layer; the tiling defaults to the analytic model's
        choice so both models walk the identical schedule."""
        if tiling is None:
            from repro.arch.accelerator import AcceleratorModel

            tiling = AcceleratorModel(self.config).choose_layer_tiling(layer)
        tiling = tiling.clip(layer)
        groups = tile_groups(layer, tiling, self.config)
        if self.backend == "numpy":
            stats = _simulate_numpy(groups, self.bytes_per_cycle)
        else:
            stats = _simulate_python(groups, self.bytes_per_cycle)
        return LayerTimingReport(
            layer_name=layer.name,
            config_name=self.config.name,
            tiling=tiling,
            bandwidth_bytes_per_s=self.dram_bandwidth_bytes_per_s,
            clock_hz=self.config.clock_hz,
            blocks=sum(group.count for group in groups),
            tiles=sum(group.tiles for group in groups),
            macs=layer.macs,
            compute_cycles=stats["compute_cycles"],
            igbuf_fill_stall_cycles=stats["igbuf_fill"],
            wgbuf_fill_stall_cycles=stats["wgbuf_fill"],
            igbuf_steady_stall_cycles=stats["igbuf_steady"],
            wgbuf_steady_stall_cycles=stats["wgbuf_steady"],
            drain_stall_cycles=stats["drain"],
            dram_bytes_loaded=sum(group.tiles * group.load_bytes for group in groups),
            dram_bytes_drained=sum(
                group.count * group.drain_words * BYTES_PER_WORD for group in groups
            ),
            steady_breakeven_bytes_per_cycle=steady_breakeven_bytes_per_cycle(groups),
        )

    def run_network(self, layers) -> NetworkTimingResult:
        return NetworkTimingResult(
            config_name=self.config.name,
            bandwidth_bytes_per_s=self.dram_bandwidth_bytes_per_s,
            layers=tuple(self.run_layer(layer) for layer in layers),
        )


# ------------------------------------------------------------------ backends


def _group_cycles(group: TileGroup, bytes_per_cycle) -> tuple:
    """Exact per-group durations: (compute, load, weight load, drain)."""
    compute = group.compute_cycles
    load = cycles_for_bytes(group.load_bytes, bytes_per_cycle)
    weight_load = cycles_for_bytes(group.weight_words * BYTES_PER_WORD, bytes_per_cycle)
    drain = cycles_for_bytes(group.drain_words * BYTES_PER_WORD, bytes_per_cycle)
    return compute, load, weight_load, drain


def _attribute(stall: int, weight_load: int) -> tuple:
    """Split an exposed window by stream order: weights last, inputs first."""
    wgbuf = min(stall, weight_load)
    return stall - wgbuf, wgbuf


def _simulate_python(groups, bytes_per_cycle) -> dict:
    """Scalar reference: advance a clock through every tile of the stream."""
    stats = {
        "compute_cycles": 0,
        "igbuf_fill": 0,
        "wgbuf_fill": 0,
        "igbuf_steady": 0,
        "wgbuf_steady": 0,
        "drain": 0,
    }
    clock = 0
    for group in groups:
        compute, load, weight_load, drain = _group_cycles(group, bytes_per_cycle)
        drain_stall = max(0, drain - compute)
        for _ in range(group.count):
            for index in range(group.iterations):
                # The fill is fully exposed; a steady-state tile stalls only
                # where the prefetched load outlasts the previous compute.
                stall = load if index == 0 else max(0, load - compute)
                igbuf, wgbuf = _attribute(stall, weight_load)
                if index == 0:
                    stats["igbuf_fill"] += igbuf
                    stats["wgbuf_fill"] += wgbuf
                else:
                    stats["igbuf_steady"] += igbuf
                    stats["wgbuf_steady"] += wgbuf
                clock += stall + compute
            clock += drain_stall
        stats["drain"] += group.count * drain_stall
    stats["compute_cycles"] = clock - (
        stats["igbuf_fill"]
        + stats["wgbuf_fill"]
        + stats["igbuf_steady"]
        + stats["wgbuf_steady"]
        + stats["drain"]
    )
    return stats


def _simulate_numpy(groups, bytes_per_cycle) -> dict:
    """Vectorized backend: the same recurrence as a tile-stream prefix sum.

    Per-group durations are computed with exact Python integers (huge
    denominators from pathological bandwidths never touch int64), then
    broadcast across the tile stream; the clock is the prefix sum of the
    per-tile advances and the total is its last element.
    """
    per_group = [_group_cycles(group, bytes_per_cycle) for group in groups]
    worst_case = sum(
        group.count * (group.iterations * (compute + load) + max(0, drain - compute))
        for group, (compute, load, _, drain) in zip(groups, per_group)
    )
    if worst_case >= _INT64_SAFE_LIMIT:
        # Exactness beats speed: int64 could overflow, so use the scalar
        # reference (bit-identical by the parity suite's definition).
        return _simulate_python(groups, bytes_per_cycle)

    active = [
        (group, cycles) for group, cycles in zip(groups, per_group) if group.tiles
    ]
    if not active:
        return _simulate_python(groups, bytes_per_cycle)

    tiles = _np.array([group.tiles for group, _ in active], dtype=_np.int64)
    compute = _np.repeat(
        _np.array([cycles[0] for _, cycles in active], dtype=_np.int64), tiles
    )
    load = _np.repeat(
        _np.array([cycles[1] for _, cycles in active], dtype=_np.int64), tiles
    )
    weight_load = _np.repeat(
        _np.array([cycles[2] for _, cycles in active], dtype=_np.int64), tiles
    )
    periods = {group.iterations for group, _ in active}
    if len(periods) == 1:
        # Every group of a layer shares ceil(Ci/k) iterations and contributes
        # a multiple of that many tiles, so one arange over the whole stream
        # marks each block's first tile.
        first = _np.arange(int(tiles.sum()), dtype=_np.int64) % periods.pop() == 0
    else:
        first = _np.concatenate(
            [
                _np.arange(group.tiles, dtype=_np.int64) % group.iterations == 0
                for group, _ in active
            ]
        )

    stall = _np.where(first, load, _np.maximum(load - compute, 0))
    wgbuf = _np.minimum(stall, weight_load)
    igbuf = stall - wgbuf
    # The double-buffer recurrence: each tile finishes one advance after the
    # previous, so the stream clock is a prefix sum of the advances.
    finish = _np.cumsum(stall + compute)
    stream_cycles = int(finish[-1])

    drain_total = sum(
        group.count * max(0, drain - group_compute)
        for group, (group_compute, _, _, drain) in zip(groups, per_group)
    )
    stall_total = int(stall.sum())
    igbuf_total = int(igbuf.sum())
    wgbuf_total = int(wgbuf.sum())
    igbuf_fill = int(igbuf[first].sum())
    wgbuf_fill = int(wgbuf[first].sum())
    return {
        "compute_cycles": stream_cycles - stall_total,
        "igbuf_fill": igbuf_fill,
        "wgbuf_fill": wgbuf_fill,
        "igbuf_steady": igbuf_total - igbuf_fill,
        "wgbuf_steady": wgbuf_total - wgbuf_fill,
        "drain": drain_total,
    }


# ------------------------------------------------------------------- energy


def timing_network_energy(layers, timing_result: NetworkTimingResult, config, energy_model=None):
    """Price a timed run with the Table II energy model.

    Access counts are bandwidth-independent (a stall moves no extra data),
    so they come from the analytic model; only the LReg *static* (leakage)
    term depends on runtime and is charged over the timed
    ``total_cycles``, so stalls lengthen the leakage window exactly as the
    paper argues.
    """
    from repro.arch.accelerator import AcceleratorModel
    from repro.energy.model import EnergyBreakdown, EnergyModel

    if energy_model is None:
        energy_model = EnergyModel()
    analytic = AcceleratorModel(config).run_network(layers)
    total = EnergyBreakdown()
    for counts, timed in zip(analytic.layers, timing_result.layers):
        total = total + energy_model.energy_from_counts(
            config,
            dram_words=counts.dram.total,
            igbuf_reads=counts.igbuf_reads,
            igbuf_writes=counts.igbuf_writes,
            wgbuf_reads=counts.wgbuf_reads,
            wgbuf_writes=counts.wgbuf_writes,
            macs=counts.macs,
            lreg_reads=counts.lreg_reads,
            lreg_writes=counts.lreg_writes,
            greg_writes=counts.greg_writes,
            total_cycles=timed.total_cycles,
        )
    return total
