"""Tile-level timing simulation (stall-accurate cycles vs. DRAM bandwidth).

See :mod:`repro.timing.simulator` for the model; the ``timing`` experiment
(:mod:`repro.analysis.timing_report`) exposes bandwidth-utilization sweeps
through the CLI and the run orchestrator.
"""

from repro.timing.simulator import (
    DEFAULT_DRAM_BANDWIDTH_BYTES_PER_S,
    LayerTimingReport,
    NetworkTimingResult,
    TileGroup,
    TimingSimulator,
    resolve_timing_backend,
    steady_breakeven_bytes_per_cycle,
    tile_groups,
    timing_network_energy,
)

__all__ = [
    "DEFAULT_DRAM_BANDWIDTH_BYTES_PER_S",
    "LayerTimingReport",
    "NetworkTimingResult",
    "TileGroup",
    "TimingSimulator",
    "resolve_timing_backend",
    "steady_breakeven_bytes_per_cycle",
    "tile_groups",
    "timing_network_energy",
]
