"""Fleet execution: N worker processes draining one shared work queue.

Where ``--shard K/N`` decides up front which worker computes which unit,
a fleet binds late: :func:`run_fleet` populates one
:class:`~repro.orchestration.scheduler.WorkQueue` from the manifest and
spawns N :class:`FleetWorker` processes that each loop *claim -> execute ->
complete* until the queue drains.  A worker that dies mid-unit simply stops
heartbeating; after ``lease_seconds`` any live peer steals the unit, so one
straggler or crash no longer holds the whole run hostage.

Workers execute units through the same
:class:`~repro.orchestration.runner.UnitExecutor` as the static runner and
checkpoint the same ``units/`` + ``status/`` files, which is why a fleet
out-dir is interchangeable with a sharded one: it resumes with the same
command, merges with the same tool, and its merged tree is byte-identical
to a static run's.  The queue file itself is rebuilt from the artifact
tree on every invocation -- all durable state lives in the artifacts.

Fault injection for tests and CI lives here too: ``chaos_kills`` makes a
chosen worker SIGKILL itself after completing a chosen number of units,
*after claiming* its next unit -- the worst moment, leaving a live lease
that only expiry-based stealing can recover.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field

from repro import __version__
from repro.engine import fleet_cache_filename
from repro.orchestration.manifest import RunManifest
from repro.orchestration.runner import (
    MANIFEST_FILENAME,
    RunReport,
    UnitExecutor,
    unit_is_completed,
    write_attempt_report,
    write_manifest,
    write_run_metadata,
    write_unit_status,
)
from repro.orchestration.scheduler import (
    WorkQueue,
    queue_path,
    validate_policy,
)

DEFAULT_LEASE_SECONDS = 30.0
DEFAULT_POLL_SECONDS = 0.2


@dataclass
class FleetConfig:
    """Fleet invocation parameters, recorded in ``run.json`` for ``resume``.

    ``priorities`` and ``deadlines`` are keyed by *experiment name* (the
    operator-facing granularity); deadlines are seconds from fleet start,
    converted to absolute due timestamps at populate time so a resume
    restarts the clock rather than inheriting long-expired deadlines.
    """

    workers: int = 2
    lease_seconds: float = DEFAULT_LEASE_SECONDS
    poll_seconds: float = DEFAULT_POLL_SECONDS
    policy: str = "fifo"
    unit_budget: int = None
    priorities: dict = field(default_factory=dict)
    deadlines: dict = field(default_factory=dict)
    cache_store: str = "sqlite"
    search_workers: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.lease_seconds <= 0:
            raise ValueError(
                f"lease_seconds must be > 0, got {self.lease_seconds}"
            )
        validate_policy(self.policy)
        if self.cache_store not in ("pickle", "sqlite"):
            raise ValueError(
                f"cache_store must be 'pickle' or 'sqlite', got {self.cache_store!r}"
            )

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "lease_seconds": self.lease_seconds,
            "poll_seconds": self.poll_seconds,
            "policy": self.policy,
            "unit_budget": self.unit_budget,
            "priorities": dict(self.priorities),
            "deadlines": dict(self.deadlines),
            "cache_store": self.cache_store,
            "search_workers": self.search_workers,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetConfig":
        if not isinstance(data, dict):
            raise ValueError("fleet configuration must be an object")
        known = {
            key: data[key]
            for key in (
                "workers", "lease_seconds", "poll_seconds", "policy",
                "unit_budget", "priorities", "deadlines", "cache_store",
                "search_workers",
            )
            if key in data
        }
        return cls(**known)


class _Heartbeat:
    """Background lease extender for one claim (daemon thread).

    Runs while the claimed unit computes; a worker that is *stalled* (not
    dead) keeps its lease this way, and a worker that is SIGKILLed takes
    the thread down with it -- which is exactly what lets peers steal.
    """

    def __init__(self, queue: WorkQueue, claim, lease_seconds: float, interval: float):
        self._queue = queue
        self._claim = claim
        self._lease_seconds = lease_seconds
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._loop, daemon=True)
        self._thread.start()

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            if not self._queue.heartbeat(self._claim, self._lease_seconds):
                return  # lease lost; stop renewing, the executor's
                # complete() call will observe the steal and return False

    def stop(self) -> None:
        self._stop.set()
        self._thread.join()


class FleetWorker:
    """One worker of a fleet: claim units under lease until the queue drains.

    ``queue=None`` (the normal path) opens the worker's own connection to
    the out-dir's queue file; tests inject a shared in-process queue with a
    virtual clock instead.  ``heartbeat_interval=None`` derives the default
    (a third of the lease); ``0`` disables heartbeating entirely, which is
    how tests force a lease to expire mid-execution.
    """

    def __init__(
        self,
        manifest: RunManifest,
        out_dir: str,
        worker_index: int,
        queue: WorkQueue = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        poll_seconds: float = DEFAULT_POLL_SECONDS,
        cache_store: str = "sqlite",
        search_workers: int = 1,
        heartbeat_interval: float = None,
        chaos_kill_after: int = None,
        clock=time.time,
    ):
        self.out_dir = out_dir
        self.worker_index = worker_index
        self.name = f"worker-{worker_index:03d}"
        self.lease_seconds = lease_seconds
        self.poll_seconds = poll_seconds
        self.chaos_kill_after = chaos_kill_after
        self._owns_queue = queue is None
        self.queue = queue or WorkQueue(queue_path(out_dir), clock=clock)
        self._heartbeat_interval = (
            lease_seconds / 3.0 if heartbeat_interval is None else heartbeat_interval
        )
        self.units = {unit.unit_id: unit for unit in manifest.units}
        self.executor = UnitExecutor(
            out_dir,
            workers=search_workers,
            cache_store=cache_store,
            cache_filename=lambda backend: fleet_cache_filename(
                backend, worker_index=worker_index, store=cache_store
            ),
        )
        self.report = RunReport(shard=(1, 1), units_total=len(self.units))

    # ------------------------------------------------------------- unit loop

    def step(self) -> dict:
        """Claim and execute one unit; ``None`` when nothing is claimable."""
        claim = self.queue.claim(self.name, self.lease_seconds)
        if claim is None:
            return None
        if (
            self.chaos_kill_after is not None
            and self.report.units_completed >= self.chaos_kill_after
        ):
            # Fault injection: die *holding* the claim, before any work --
            # recovery must come from lease expiry, not graceful handoff.
            os.kill(os.getpid(), signal.SIGKILL)
        return self.execute(claim)

    def execute(self, claim) -> dict:
        unit = self.units.get(claim.unit_id)
        if unit is None:
            # Queue and manifest disagree -- a corrupt queue file; fail the
            # claim so the unit lands terminal instead of looping forever.
            self.queue.fail(claim, f"unit {claim.unit_id} is not in the manifest")
            return {"unit_id": claim.unit_id, "state": "failed"}
        started = time.monotonic()
        if not self.queue.mark_executing(claim):
            return {"unit_id": claim.unit_id, "state": "superseded"}
        heartbeat = (
            _Heartbeat(self.queue, claim, self.lease_seconds, self._heartbeat_interval)
            if self._heartbeat_interval and self._heartbeat_interval > 0
            else None
        )
        try:
            self.executor.execute(unit)
        except Exception as error:  # noqa: BLE001 - one bad unit must not
            # take the worker down; the failure is audited and surfaced.
            if heartbeat is not None:
                heartbeat.stop()
            if self.queue.fail(claim, str(error)):
                write_unit_status(
                    self.out_dir, unit.unit_id, "failed", started, error=str(error)
                )
                self.report.units_failed += 1
                self.report.failures.append(
                    {"unit_id": unit.unit_id, "error": str(error)}
                )
                return {"unit_id": unit.unit_id, "state": "failed"}
            return {"unit_id": unit.unit_id, "state": "superseded"}
        if heartbeat is not None:
            heartbeat.stop()
        if self.queue.complete(claim):
            # Status is written only by the claim that *won*: a stale worker
            # finishing after a steal wrote a byte-identical artifact (the
            # executor is deterministic) but must not double-record the unit.
            write_unit_status(self.out_dir, unit.unit_id, "completed", started)
            self.report.units_completed += 1
            return {"unit_id": unit.unit_id, "state": "completed"}
        return {"unit_id": unit.unit_id, "state": "superseded"}

    def run(self) -> RunReport:
        """Drain the queue: claim until empty, then wait out in-flight leases.

        An empty claim does not mean the run is over -- a peer may still
        die and return its unit to the pool -- so the worker only exits
        when no unit is ``pending`` or ``claimed`` anymore.
        """
        try:
            while True:
                if self.step() is not None:
                    continue
                if self.queue.unfinished() == 0:
                    break
                time.sleep(self.poll_seconds)
            self.report.engine_stats = self.executor.engine_stats()
        finally:
            self.executor.close()
        write_attempt_report(
            self.out_dir,
            f"fleet-{self.name}-attempt",
            dict(self.report.as_dict(), worker=self.name),
        )
        if self._owns_queue:
            self.queue.close()
        return self.report


@dataclass
class FleetReport:
    """Outcome of one :func:`run_fleet` invocation (whole-fleet view)."""

    workers: int = 0
    units_total: int = 0
    units_completed: int = 0
    units_skipped: int = 0
    units_failed: int = 0
    units_deferred: int = 0
    units_pending: int = 0
    failures: list = field(default_factory=list)
    stolen_claims: int = 0
    audit_problems: list = field(default_factory=list)
    worker_exit_codes: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.units_failed == 0 and not self.audit_problems

    @property
    def complete(self) -> bool:
        # Deferred units are an *intentional* budget outcome, not a gap;
        # pending/claimed leftovers mean every worker died before draining.
        return self.ok and self.units_pending == 0

    def as_dict(self) -> dict:
        return {
            "mode": "fleet",
            "workers": self.workers,
            "units_total": self.units_total,
            "units_completed": self.units_completed,
            "units_skipped": self.units_skipped,
            "units_failed": self.units_failed,
            "units_deferred": self.units_deferred,
            "units_pending": self.units_pending,
            "failures": list(self.failures),
            "stolen_claims": self.stolen_claims,
            "audit_problems": list(self.audit_problems),
            "worker_exit_codes": list(self.worker_exit_codes),
            "version": __version__,
        }

    def describe(self) -> str:
        state = "ok" if self.complete else ("failed" if not self.ok else "partial")
        line = (
            f"fleet ({self.workers} workers): {state} -- "
            f"{self.units_completed} computed, {self.units_skipped} skipped, "
            f"{self.units_failed} failed, {self.units_deferred} deferred, "
            f"{self.units_pending} pending of {self.units_total} units"
        )
        if self.stolen_claims:
            steals = "steal" if self.stolen_claims == 1 else "steals"
            line += f"; {self.stolen_claims} lease {steals}"
        return line


def _worker_entry(out_dir: str, worker_index: int, config_dict: dict, chaos_kill_after):
    """Worker process main (top-level so the spawn context can pickle it)."""
    config = FleetConfig.from_dict(config_dict)
    with open(os.path.join(out_dir, MANIFEST_FILENAME)) as handle:
        manifest = RunManifest.from_json(handle.read())
    worker = FleetWorker(
        manifest,
        out_dir,
        worker_index,
        lease_seconds=config.lease_seconds,
        poll_seconds=config.poll_seconds,
        cache_store=config.cache_store,
        search_workers=config.search_workers,
        chaos_kill_after=chaos_kill_after,
    )
    report = worker.run()
    raise SystemExit(0 if report.ok else 1)


def build_schedule(manifest: RunManifest, config: FleetConfig, start: float) -> dict:
    """Expand experiment-keyed priorities/deadlines to unit-keyed maps."""
    priorities, deadlines = {}, {}
    for unit in manifest.units:
        if unit.experiment in config.priorities:
            priorities[unit.unit_id] = int(config.priorities[unit.experiment])
        if unit.experiment in config.deadlines:
            deadlines[unit.unit_id] = start + float(
                config.deadlines[unit.experiment]
            )
    return {"priorities": priorities, "deadlines": deadlines}


def run_fleet(
    manifest: RunManifest,
    out_dir: str,
    config: FleetConfig,
    chaos_kills: dict = None,
    resume: bool = True,
    progress=None,
) -> FleetReport:
    """Run the whole manifest with ``config.workers`` local worker processes.

    Populates a fresh queue (completed units enter pre-completed, exactly
    like the static runner's resume skip; ``resume=False`` recomputes
    everything), spawns the workers, waits for all of them, and reports
    the queue's final state plus the exactly-once audit.  ``chaos_kills``
    maps worker index -> unit count for fault injection (see
    :class:`FleetWorker`).  ``progress``, when given, is called with one
    ``{"event": "fleet", ...}`` dict after population and after the
    workers exit.
    """
    chaos_kills = chaos_kills or {}
    os.makedirs(out_dir, exist_ok=True)
    write_manifest(manifest, out_dir)
    write_run_metadata(
        out_dir,
        manifest.spec.as_dict(),
        (1, 1),
        config.search_workers,
        extra={"mode": "fleet", "fleet": config.as_dict()},
    )
    ordered = [unit.unit_id for unit in manifest.hash_ordered()]
    completed = (
        [unit_id for unit_id in ordered if unit_is_completed(out_dir, unit_id)]
        if resume
        else []
    )
    start = time.time()
    schedule = build_schedule(manifest, config, start)
    queue = WorkQueue.fresh(queue_path(out_dir))
    report = FleetReport(workers=config.workers, units_total=len(ordered))
    try:
        counts = queue.populate(
            ordered,
            completed=completed,
            priorities=schedule["priorities"],
            deadlines=schedule["deadlines"],
            policy=config.policy,
            unit_budget=config.unit_budget,
        )
        if progress is not None:
            progress(
                {
                    "event": "fleet",
                    "phase": "populated",
                    "counts": counts,
                    "workers": config.workers,
                }
            )
        if counts.get("pending", 0):
            context = multiprocessing.get_context("spawn")
            processes = [
                context.Process(
                    target=_worker_entry,
                    args=(out_dir, index, config.as_dict(), chaos_kills.get(index)),
                )
                for index in range(config.workers)
            ]
            for process in processes:
                process.start()
            for process in processes:
                process.join()
            report.worker_exit_codes = [process.exitcode for process in processes]
        final = queue.counts()
        report.units_skipped = len(completed)
        report.units_completed = final.get("completed", 0) - len(completed)
        report.units_failed = final.get("failed", 0)
        report.units_deferred = final.get("deferred", 0)
        report.units_pending = final.get("pending", 0) + final.get("claimed", 0)
        report.failures = queue.failures()
        report.stolen_claims = queue.stolen_claims()
        report.audit_problems = queue.audit_problems()
    finally:
        queue.close()
    if progress is not None:
        progress(
            {"event": "fleet", "phase": "finished", "report": report.as_dict()}
        )
    return report


def load_fleet_config(metadata: dict) -> FleetConfig:
    """Rebuild the :class:`FleetConfig` recorded in a fleet run's ``run.json``."""
    document = metadata.get("fleet")
    if document is None:
        raise ValueError(
            "run.json says mode=fleet but records no fleet configuration; "
            "re-run 'repro-experiments fleet' to rewrite it"
        )
    try:
        return FleetConfig.from_dict(document)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"run.json holds an invalid fleet configuration: {error}"
        ) from None


def read_fleet_mode(metadata: dict) -> bool:
    """Was this out-dir produced by ``repro-experiments fleet``?"""
    return metadata.get("mode") == "fleet"


__all__ = [
    "DEFAULT_LEASE_SECONDS",
    "DEFAULT_POLL_SECONDS",
    "FleetConfig",
    "FleetReport",
    "FleetWorker",
    "build_schedule",
    "load_fleet_config",
    "read_fleet_mode",
    "run_fleet",
]
