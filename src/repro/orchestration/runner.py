"""Shard runner: execute manifest units with per-unit checkpoints and resume.

Every completed unit leaves two files under ``out_dir``:

* ``units/<unit_id>.json`` -- the machine-readable artifact (unit identity +
  NaN-sanitized payload, sorted keys, 2-space indent, trailing newline), the
  only files the merge step compares for bit-identity;
* ``status/<unit_id>.json`` -- run metadata (state, elapsed seconds, error),
  which may differ between runs and is deliberately *not* part of the
  artifact identity.

On restart the runner skips any unit whose artifact and ``completed`` status
already exist, so resuming after a kill recomputes nothing that finished.
Search results of *completed* units also persist: each backend's engine
writes its :class:`~repro.engine.SearchCache` to a shard-scoped pickle
(:func:`repro.engine.shard_cache_filename`) after every unit -- or, with
``cache_store="sqlite"``, through a write-through SQLite store -- so even
the units that were still pending at the kill restart against a warm cache.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro import __version__
from repro.analysis.goldens import sanitize_payload
from repro.engine import SearchEngine, shard_cache_filename
from repro.orchestration.experiments import ExperimentContext, get_experiment
from repro.orchestration.manifest import NO_BACKEND, RunManifest
from repro.workloads.registry import get_workload_spec

#: LRU bound of each per-backend shard cache.  Shard caches persist across
#: resumes (and are reloaded on every restart), so without a bound they
#: accrete entries from every attempt forever; the limit comfortably covers
#: any single unit's working set while capping the pickle's growth.
SHARD_CACHE_MAX_ENTRIES = 100_000

MANIFEST_FILENAME = "manifest.json"
RUN_FILENAME = "run.json"
UNITS_DIRNAME = "units"
STATUS_DIRNAME = "status"
CACHE_DIRNAME = "cache"
SHARDS_DIRNAME = "shards"


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + rename)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        # Explicit UTF-8: artifact bytes are part of the bit-identity
        # contract and must not vary with the locale encoding.
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def dump_document(document) -> str:
    """The one JSON serialisation used for every artifact (deterministic)."""
    return json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"


def unit_artifact_path(out_dir: str, unit_id: str) -> str:
    return os.path.join(out_dir, UNITS_DIRNAME, f"{unit_id}.json")


def unit_status_path(out_dir: str, unit_id: str) -> str:
    return os.path.join(out_dir, STATUS_DIRNAME, f"{unit_id}.json")


@dataclass
class RunReport:
    """Outcome of one :meth:`Runner.run` call (one shard attempt)."""

    shard: tuple = (1, 1)
    units_total: int = 0
    units_completed: int = 0
    units_skipped: int = 0
    units_failed: int = 0
    units_pending: int = 0
    failures: list = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.units_failed == 0

    @property
    def complete(self) -> bool:
        return self.ok and self.units_pending == 0

    def as_dict(self) -> dict:
        return {
            "shard": list(self.shard),
            "units_total": self.units_total,
            "units_completed": self.units_completed,
            "units_skipped": self.units_skipped,
            "units_failed": self.units_failed,
            "units_pending": self.units_pending,
            "failures": list(self.failures),
            "engine_stats": dict(self.engine_stats),
            "version": __version__,
        }

    def describe(self) -> str:
        index, count = self.shard
        state = "ok" if self.complete else ("failed" if not self.ok else "partial")
        return (
            f"shard {index}/{count}: {state} -- {self.units_completed} computed, "
            f"{self.units_skipped} skipped, {self.units_failed} failed, "
            f"{self.units_pending} pending of {self.units_total} units"
        )


class Runner:
    """Execute one shard of a manifest into an artifact tree under ``out_dir``.

    ``cache_store`` selects the persistence backend of the per-backend shard
    caches: ``"pickle"`` (the default, one atomic payload written after
    every unit) or ``"sqlite"`` (write-through, multi-process safe -- the
    store the :mod:`repro.server` daemon shares with orchestrated runs).
    """

    def __init__(
        self,
        manifest: RunManifest,
        out_dir: str,
        workers: int = 1,
        cache_store: str = "pickle",
    ):
        if cache_store not in ("pickle", "sqlite"):
            raise ValueError(
                f"cache_store must be 'pickle' or 'sqlite', got {cache_store!r}"
            )
        self.manifest = manifest
        self.out_dir = out_dir
        self.workers = workers
        self.cache_store = cache_store

    # ------------------------------------------------------------- execution

    def run(
        self,
        shard=(1, 1),
        resume: bool = True,
        max_units: int = None,
        progress=None,
    ) -> RunReport:
        """Run the shard; checkpoint every unit; skip completed ones on resume.

        ``resume=False`` recomputes every unit of the shard from scratch
        (artifacts are overwritten in place, still atomically).  ``max_units``
        stops after that many fresh completions, leaving the rest pending --
        the mechanism tests use to simulate a mid-shard kill, and a way to
        timebox a run; the next ``resume`` picks up exactly where it stopped.

        ``progress``, when given, is called once per unit *as it resolves*
        with a JSON-serializable event dict (``unit_id``, ``state`` of
        ``completed``/``skipped``/``failed``, ``elapsed_seconds``, running
        completion counts) -- the hook the serving daemon streams to
        clients.  Progress callbacks must not raise; an exception from one
        propagates and aborts the shard like any internal error.
        """
        index, count = shard
        units = self.manifest.shard(index, count)
        self._write_manifest()
        self._write_run_metadata(shard)
        report = RunReport(shard=(index, count), units_total=len(units))
        engines = {}

        def _emit(unit, state, started, error=None):
            if progress is None:
                return
            event = {
                "event": "unit",
                "unit_id": unit.unit_id,
                "experiment": unit.experiment,
                "workload": unit.workload,
                "state": state,
                "elapsed_seconds": (
                    0.0 if started is None else round(time.monotonic() - started, 6)
                ),
                "units_done": report.units_completed + report.units_skipped,
                "units_failed": report.units_failed,
                "units_total": report.units_total,
            }
            if error is not None:
                event["error"] = error
            progress(event)

        for unit in units:
            if resume and self.is_completed(unit.unit_id):
                report.units_skipped += 1
                _emit(unit, "skipped", None)
                continue
            if max_units is not None and report.units_completed >= max_units:
                report.units_pending += 1
                continue
            started = time.monotonic()
            try:
                self._execute_unit(unit, engines, shard)
            except Exception as error:  # noqa: BLE001 - one bad unit must not
                # take the shard down; the failure is recorded and merge/CI
                # surface it.
                report.units_failed += 1
                report.failures.append({"unit_id": unit.unit_id, "error": str(error)})
                self._write_status(unit.unit_id, "failed", started, error=str(error))
                _emit(unit, "failed", started, error=str(error))
                continue
            report.units_completed += 1
            self._write_status(unit.unit_id, "completed", started)
            _emit(unit, "completed", started)
        report.engine_stats = {
            backend: dict(
                engine.stats.as_dict(),
                cache_entries=len(engine.cache),
                cache_evictions=engine.cache.evictions,
            )
            for backend, engine in engines.items()
        }
        self._write_shard_report(report)
        return report

    def is_completed(self, unit_id: str) -> bool:
        """A unit is complete when both its artifact and status say so."""
        artifact = unit_artifact_path(self.out_dir, unit_id)
        status = unit_status_path(self.out_dir, unit_id)
        if not (os.path.exists(artifact) and os.path.exists(status)):
            return False
        try:
            with open(status) as handle:
                return json.load(handle).get("state") == "completed"
        except (OSError, ValueError):
            return False

    def _execute_unit(self, unit, engines: dict, shard) -> None:
        experiment = get_experiment(unit.experiment)
        engine = self._engine_for(unit.backend, engines, shard)
        context = ExperimentContext(
            workload=unit.workload,
            layers=get_workload_spec(unit.workload),
            engine=engine,
            params=unit.params,
        )
        payload = sanitize_payload(experiment.build(context))
        document = dict(unit.as_dict(), payload=payload)
        write_text_atomic(
            unit_artifact_path(self.out_dir, unit.unit_id), dump_document(document)
        )
        if engine is not None:
            # Checkpoint after every unit so a kill loses at most one unit's
            # worth of search results.
            engine.save()

    def _engine_for(self, backend: str, engines: dict, shard):
        if backend == NO_BACKEND:
            return None
        if backend not in engines:
            index, count = shard
            cache_path = os.path.join(
                self.out_dir,
                CACHE_DIRNAME,
                shard_cache_filename(backend, index, count, store=self.cache_store),
            )
            engines[backend] = SearchEngine(
                workers=self.workers,
                cache_path=cache_path,
                backend=backend,
                cache_max_entries=SHARD_CACHE_MAX_ENTRIES,
                cache_store=self.cache_store,
            )
        return engines[backend]

    # ----------------------------------------------------------- bookkeeping

    def _write_manifest(self) -> None:
        path = os.path.join(self.out_dir, MANIFEST_FILENAME)
        text = self.manifest.to_json()
        if os.path.exists(path):
            with open(path) as handle:
                if handle.read() != text:
                    raise ValueError(
                        f"{path} was written for a different spec; use a fresh "
                        "--out-dir (or delete the old one) instead of mixing runs"
                    )
            return
        write_text_atomic(path, text)

    def _write_run_metadata(self, shard) -> None:
        # First write wins: run.json describes the run that created this
        # out-dir, so a one-off `resume --shard K/N` override applies to
        # that invocation only and never re-records the directory as a
        # different shard (a later plain `resume` still finishes the
        # original shard).  A *different spec* never reaches this point --
        # _write_manifest has already rejected it.
        path = os.path.join(self.out_dir, RUN_FILENAME)
        if os.path.exists(path):
            return
        document = {
            "format": "repro-run-v1",
            "spec": self.manifest.spec.as_dict(),
            "shard": list(shard),
            "workers": self.workers,
            "version": __version__,
        }
        write_text_atomic(path, dump_document(document))

    def _write_status(self, unit_id: str, state: str, started: float, error: str = None) -> None:
        document = {
            "unit_id": unit_id,
            "state": state,
            "elapsed_seconds": round(time.monotonic() - started, 6),
        }
        if error is not None:
            document["error"] = error
        write_text_atomic(
            unit_status_path(self.out_dir, unit_id), dump_document(document)
        )

    def _write_shard_report(self, report: RunReport) -> None:
        # One report file per *attempt*, never overwritten: a kill-then-resume
        # (or the CI resume-is-a-no-op check) must not wipe the engine
        # statistics of the attempt that did the work -- the merge step sums
        # every report file it finds, so the aggregate always reflects all
        # search work performed across attempts.
        index, count = report.shard
        directory = os.path.join(self.out_dir, SHARDS_DIRNAME)
        base = f"shard-{index}of{count}-attempt"
        attempt = len(glob.glob(os.path.join(directory, f"{base}*.json"))) + 1
        document = dict(report.as_dict(), attempt=attempt)
        path = os.path.join(directory, f"{base}{attempt:03d}.json")
        write_text_atomic(path, dump_document(document))


def load_run_metadata(out_dir: str) -> dict:
    """Read ``run.json`` (spec + shard) for ``resume``; raises when absent."""
    path = os.path.join(out_dir, RUN_FILENAME)
    if not os.path.exists(path):
        raise ValueError(
            f"{path} not found: nothing to resume (run "
            "'repro-experiments run' or 'reproduce-all' into this directory first)"
        )
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != "repro-run-v1" or not (
        isinstance(document.get("spec"), dict)
        and isinstance(document.get("shard"), list)
        and len(document["shard"]) == 2
    ):
        raise ValueError(
            f"{path} is not a complete repro run description; re-run "
            "'repro-experiments run' to rewrite it"
        )
    return document
