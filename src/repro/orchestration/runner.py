"""Shard runner: execute manifest units with per-unit checkpoints and resume.

Every completed unit leaves two files under ``out_dir``:

* ``units/<unit_id>.json`` -- the machine-readable artifact (unit identity +
  NaN-sanitized payload, sorted keys, 2-space indent, trailing newline), the
  only files the merge step compares for bit-identity;
* ``status/<unit_id>.json`` -- run metadata (state, elapsed seconds, error),
  which may differ between runs and is deliberately *not* part of the
  artifact identity.

On restart the runner skips any unit whose artifact and ``completed`` status
already exist, so resuming after a kill recomputes nothing that finished.
Search results of *completed* units also persist: each backend's engine
writes its :class:`~repro.engine.SearchCache` to a shard-scoped pickle
(:func:`repro.engine.shard_cache_filename`) after every unit -- or, with
``cache_store="sqlite"``, through a write-through SQLite store -- so even
the units that were still pending at the kill restart against a warm cache.

The actual unit computation lives in :class:`UnitExecutor`, which the
static-shard :class:`Runner` and the work-queue fleet workers
(:mod:`repro.orchestration.fleet`) share: both paths produce byte-identical
``units/`` trees because they run literally the same executor code.
"""

from __future__ import annotations

import glob
import json
import os
import tempfile
import time
from dataclasses import dataclass, field

from repro import __version__
from repro.analysis.goldens import sanitize_payload
from repro.engine import SearchEngine, shard_cache_filename, validate_shard
from repro.orchestration.experiments import ExperimentContext, get_experiment
from repro.orchestration.manifest import NO_BACKEND, RunManifest
from repro.workloads.registry import get_workload_spec

#: LRU bound of each per-backend shard cache.  Shard caches persist across
#: resumes (and are reloaded on every restart), so without a bound they
#: accrete entries from every attempt forever; the limit comfortably covers
#: any single unit's working set while capping the pickle's growth.
SHARD_CACHE_MAX_ENTRIES = 100_000

MANIFEST_FILENAME = "manifest.json"
RUN_FILENAME = "run.json"
UNITS_DIRNAME = "units"
STATUS_DIRNAME = "status"
CACHE_DIRNAME = "cache"
SHARDS_DIRNAME = "shards"


def fsync_directory(path: str) -> None:
    """Flush a directory's entry table (the rename itself) to disk.

    Best effort: some filesystems refuse ``fsync`` on directory handles;
    losing the *name* durability there is no worse than before, while the
    data durability of the file itself is already guaranteed by the caller.
    """
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_text_atomic(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically *and durably*.

    Atomicity comes from the tmp-file + rename; durability needs two
    explicit fsyncs -- the file's bytes before the rename (or a crash can
    surface the new name over an empty inode) and the directory after it
    (or the rename itself can vanish).  Without the first, a checkpointed
    artifact can read back truncated after a power loss even though its
    ``completed`` status survived, and the merge step would archive it.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        # Explicit UTF-8: artifact bytes are part of the bit-identity
        # contract and must not vary with the locale encoding.
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
        fsync_directory(directory)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def dump_document(document) -> str:
    """The one JSON serialisation used for every artifact (deterministic)."""
    return json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"


def unit_artifact_path(out_dir: str, unit_id: str) -> str:
    return os.path.join(out_dir, UNITS_DIRNAME, f"{unit_id}.json")


def unit_status_path(out_dir: str, unit_id: str) -> str:
    return os.path.join(out_dir, STATUS_DIRNAME, f"{unit_id}.json")


def unit_is_completed(out_dir: str, unit_id: str) -> bool:
    """A unit is complete when its status says so *and* its artifact parses.

    The JSON check matters after a crash: even with fsync-before-rename a
    hand-copied or tampered tree can pair a ``completed`` status with a
    truncated artifact, and accepting it would archive garbage forever
    (resume would skip the unit, merge would union the broken file).
    """
    artifact = unit_artifact_path(out_dir, unit_id)
    status = unit_status_path(out_dir, unit_id)
    if not (os.path.exists(artifact) and os.path.exists(status)):
        return False
    try:
        with open(status) as handle:
            if json.load(handle).get("state") != "completed":
                return False
        with open(artifact) as handle:
            json.load(handle)
    except (OSError, ValueError):
        return False
    return True


def write_attempt_report(out_dir: str, base: str, document: dict) -> str:
    """Write the next ``<base>NNN.json`` attempt file; never overwrite one.

    The attempt number starts from a directory listing, but the listing is
    only a hint: two concurrent attempts (a resume racing a stalled original
    run, or two fleet workers flushing reports together) can count the same
    files and pick the same number.  The file is therefore *allocated* with
    a hard-link -- ``os.link`` fails with ``FileExistsError`` when the name
    is taken, atomically and with the full content already durable -- and
    the loser retries with the next number.  Returns the path written; the
    written document carries its final ``attempt`` number.
    """
    directory = os.path.join(out_dir, SHARDS_DIRNAME)
    os.makedirs(directory, exist_ok=True)
    attempt = len(glob.glob(os.path.join(directory, f"{base}*.json"))) + 1
    while True:
        path = os.path.join(directory, f"{base}{attempt:03d}.json")
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(dump_document(dict(document, attempt=attempt)))
                handle.flush()
                os.fsync(handle.fileno())
            try:
                os.link(tmp_path, path)
            except FileExistsError:
                attempt += 1
                continue
            fsync_directory(directory)
            return path
        finally:
            if os.path.exists(tmp_path):
                os.unlink(tmp_path)


def write_unit_status(
    out_dir: str, unit_id: str, state: str, started: float, error: str = None
) -> None:
    """Checkpoint one unit's run state (not part of the artifact identity)."""
    document = {
        "unit_id": unit_id,
        "state": state,
        "elapsed_seconds": round(time.monotonic() - started, 6),
    }
    if error is not None:
        document["error"] = error
    write_text_atomic(unit_status_path(out_dir, unit_id), dump_document(document))


def write_manifest(manifest: RunManifest, out_dir: str) -> None:
    """Record the manifest in ``out_dir``; reject a mismatched existing one."""
    path = os.path.join(out_dir, MANIFEST_FILENAME)
    text = manifest.to_json()
    if os.path.exists(path):
        with open(path) as handle:
            if handle.read() != text:
                raise ValueError(
                    f"{path} was written for a different spec; use a fresh "
                    "--out-dir (or delete the old one) instead of mixing runs"
                )
        return
    write_text_atomic(path, text)


def write_run_metadata(
    out_dir: str, spec_dict: dict, shard, workers: int, extra: dict = None
) -> None:
    """First write wins: ``run.json`` describes the run that created the dir.

    A one-off ``resume --shard K/N`` override applies to that invocation
    only and never re-records the directory as a different shard (a later
    plain ``resume`` still finishes the original shard).  A *different
    spec* never reaches this point -- :func:`write_manifest` has already
    rejected it.
    """
    path = os.path.join(out_dir, RUN_FILENAME)
    if os.path.exists(path):
        return
    document = {
        "format": "repro-run-v1",
        "spec": spec_dict,
        "shard": list(shard),
        "workers": workers,
        "version": __version__,
    }
    if extra:
        document.update(extra)
    write_text_atomic(path, dump_document(document))


class UnitExecutor:
    """Compute manifest units into an artifact tree (one unit at a time).

    The executor owns the lazily-built per-backend engines and their
    persistent caches; ``cache_filename`` maps a backend name to the cache
    file under ``out_dir/cache`` (shard-scoped for the static runner,
    fleet-scoped for queue workers).  Both the static and the fleet path
    execute units through this one class, which is what makes their
    ``units/`` trees byte-identical by construction.
    """

    def __init__(
        self,
        out_dir: str,
        workers: int = 1,
        cache_store: str = "pickle",
        cache_filename=None,
    ):
        if cache_store not in ("pickle", "sqlite"):
            raise ValueError(
                f"cache_store must be 'pickle' or 'sqlite', got {cache_store!r}"
            )
        self.out_dir = out_dir
        self.workers = workers
        self.cache_store = cache_store
        self._cache_filename = cache_filename or (
            lambda backend: shard_cache_filename(backend, 1, 1, store=cache_store)
        )
        self._engines = {}

    def execute(self, unit) -> None:
        """Compute one unit's payload and checkpoint its artifact (raises on
        failure; the caller records the status file either way)."""
        experiment = get_experiment(unit.experiment)
        engine = self._engine_for(unit.backend)
        context = ExperimentContext(
            workload=unit.workload,
            layers=get_workload_spec(unit.workload),
            engine=engine,
            params=unit.params,
        )
        payload = sanitize_payload(experiment.build(context))
        document = dict(unit.as_dict(), payload=payload)
        write_text_atomic(
            unit_artifact_path(self.out_dir, unit.unit_id), dump_document(document)
        )
        if engine is not None:
            # Checkpoint after every unit so a kill loses at most one unit's
            # worth of search results.
            engine.save()

    def _engine_for(self, backend: str):
        if backend == NO_BACKEND:
            return None
        if backend not in self._engines:
            cache_path = os.path.join(
                self.out_dir, CACHE_DIRNAME, self._cache_filename(backend)
            )
            self._engines[backend] = SearchEngine(
                workers=self.workers,
                cache_path=cache_path,
                backend=backend,
                cache_max_entries=SHARD_CACHE_MAX_ENTRIES,
                cache_store=self.cache_store,
            )
        return self._engines[backend]

    def engine_stats(self) -> dict:
        """Per-backend engine statistics of the units executed so far."""
        return {
            backend: dict(
                engine.stats.as_dict(),
                cache_entries=len(engine.cache),
                cache_evictions=engine.cache.evictions,
            )
            for backend, engine in self._engines.items()
        }

    def close(self) -> None:
        """Release persistent cache handles (SQLite connections)."""
        for engine in self._engines.values():
            if engine.cache is not None:
                engine.cache.close()


@dataclass
class RunReport:
    """Outcome of one :meth:`Runner.run` call (one shard attempt)."""

    shard: tuple = (1, 1)
    units_total: int = 0
    units_completed: int = 0
    units_skipped: int = 0
    units_failed: int = 0
    units_pending: int = 0
    failures: list = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.units_failed == 0

    @property
    def complete(self) -> bool:
        return self.ok and self.units_pending == 0

    def as_dict(self) -> dict:
        return {
            "shard": list(self.shard),
            "units_total": self.units_total,
            "units_completed": self.units_completed,
            "units_skipped": self.units_skipped,
            "units_failed": self.units_failed,
            "units_pending": self.units_pending,
            "failures": list(self.failures),
            "engine_stats": dict(self.engine_stats),
            "version": __version__,
        }

    def describe(self) -> str:
        index, count = self.shard
        state = "ok" if self.complete else ("failed" if not self.ok else "partial")
        return (
            f"shard {index}/{count}: {state} -- {self.units_completed} computed, "
            f"{self.units_skipped} skipped, {self.units_failed} failed, "
            f"{self.units_pending} pending of {self.units_total} units"
        )


class Runner:
    """Execute one shard of a manifest into an artifact tree under ``out_dir``.

    ``cache_store`` selects the persistence backend of the per-backend shard
    caches: ``"pickle"`` (the default, one atomic payload written after
    every unit) or ``"sqlite"`` (write-through, multi-process safe -- the
    store the :mod:`repro.server` daemon shares with orchestrated runs).
    """

    def __init__(
        self,
        manifest: RunManifest,
        out_dir: str,
        workers: int = 1,
        cache_store: str = "pickle",
    ):
        if cache_store not in ("pickle", "sqlite"):
            raise ValueError(
                f"cache_store must be 'pickle' or 'sqlite', got {cache_store!r}"
            )
        self.manifest = manifest
        self.out_dir = out_dir
        self.workers = workers
        self.cache_store = cache_store

    # ------------------------------------------------------------- execution

    def run(
        self,
        shard=(1, 1),
        resume: bool = True,
        max_units: int = None,
        progress=None,
    ) -> RunReport:
        """Run the shard; checkpoint every unit; skip completed ones on resume.

        ``resume=False`` recomputes every unit of the shard from scratch
        (artifacts are overwritten in place, still atomically).  ``max_units``
        stops after that many fresh completions, leaving the rest pending --
        the mechanism tests use to simulate a mid-shard kill, and a way to
        timebox a run; the next ``resume`` picks up exactly where it stopped.

        ``progress``, when given, is called once per unit *as it resolves*
        with a JSON-serializable event dict (``unit_id``, ``state`` of
        ``completed``/``skipped``/``failed``, ``elapsed_seconds``, running
        completion counts) -- the hook the serving daemon streams to
        clients.  Progress callbacks must not raise; an exception from one
        propagates and aborts the shard like any internal error.
        """
        index, count = shard
        units = self.manifest.shard(index, count)
        write_manifest(self.manifest, self.out_dir)
        write_run_metadata(
            self.out_dir, self.manifest.spec.as_dict(), shard, self.workers
        )
        report = RunReport(shard=(index, count), units_total=len(units))
        executor = UnitExecutor(
            self.out_dir,
            workers=self.workers,
            cache_store=self.cache_store,
            cache_filename=lambda backend: shard_cache_filename(
                backend, index, count, store=self.cache_store
            ),
        )

        def _emit(unit, state, started, error=None):
            if progress is None:
                return
            event = {
                "event": "unit",
                "unit_id": unit.unit_id,
                "experiment": unit.experiment,
                "workload": unit.workload,
                "state": state,
                "elapsed_seconds": (
                    0.0 if started is None else round(time.monotonic() - started, 6)
                ),
                "units_done": report.units_completed + report.units_skipped,
                "units_failed": report.units_failed,
                "units_total": report.units_total,
            }
            if error is not None:
                event["error"] = error
            progress(event)

        try:
            for unit in units:
                if resume and self.is_completed(unit.unit_id):
                    report.units_skipped += 1
                    _emit(unit, "skipped", None)
                    continue
                if max_units is not None and report.units_completed >= max_units:
                    report.units_pending += 1
                    continue
                started = time.monotonic()
                try:
                    executor.execute(unit)
                except Exception as error:  # noqa: BLE001 - one bad unit must
                    # not take the shard down; the failure is recorded and
                    # merge/CI surface it.
                    report.units_failed += 1
                    report.failures.append(
                        {"unit_id": unit.unit_id, "error": str(error)}
                    )
                    write_unit_status(
                        self.out_dir, unit.unit_id, "failed", started,
                        error=str(error),
                    )
                    _emit(unit, "failed", started, error=str(error))
                    continue
                report.units_completed += 1
                write_unit_status(self.out_dir, unit.unit_id, "completed", started)
                _emit(unit, "completed", started)
            report.engine_stats = executor.engine_stats()
        finally:
            executor.close()
        self._write_shard_report(report)
        return report

    def is_completed(self, unit_id: str) -> bool:
        """A unit is complete when both its artifact and status say so."""
        return unit_is_completed(self.out_dir, unit_id)

    # ----------------------------------------------------------- bookkeeping

    def _write_shard_report(self, report: RunReport) -> None:
        # One report file per *attempt*, never overwritten: a kill-then-resume
        # (or the CI resume-is-a-no-op check) must not wipe the engine
        # statistics of the attempt that did the work -- the merge step sums
        # every report file it finds, so the aggregate always reflects all
        # search work performed across attempts.
        index, count = report.shard
        write_attempt_report(
            self.out_dir, f"shard-{index}of{count}-attempt", report.as_dict()
        )


def load_run_metadata(out_dir: str) -> dict:
    """Read ``run.json`` (spec + shard) for ``resume``; raises when absent."""
    path = os.path.join(out_dir, RUN_FILENAME)
    if not os.path.exists(path):
        raise ValueError(
            f"{path} not found: nothing to resume (run "
            "'repro-experiments run' or 'reproduce-all' into this directory first)"
        )
    with open(path) as handle:
        document = json.load(handle)
    if document.get("format") != "repro-run-v1" or not (
        isinstance(document.get("spec"), dict)
        and isinstance(document.get("shard"), list)
        and len(document["shard"]) == 2
    ):
        raise ValueError(
            f"{path} is not a complete repro run description; re-run "
            "'repro-experiments run' to rewrite it"
        )
    # Both entries must be genuine positive ints: a hand-edited
    # '"shard": ["1", "4"]' passes the length check above but would later
    # explode as a TypeError inside manifest.shard -- a traceback where an
    # operator mistake deserves one clean exit-2 line.
    shard = document["shard"]
    if not all(
        isinstance(part, int) and not isinstance(part, bool) for part in shard
    ):
        raise ValueError(
            f"{path} records shard {shard!r}; both entries must be positive "
            "integers -- fix the file or re-run 'repro-experiments run'"
        )
    try:
        validate_shard(*shard)
    except ValueError as error:
        raise ValueError(f"{path} records an invalid shard: {error}") from None
    return document
