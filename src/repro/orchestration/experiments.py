"""Experiment registry: every figure/table as a named, artifact-emitting unit.

This is the common API between the flat CLI (``repro-experiments fig13``),
the run orchestrator (:mod:`repro.orchestration.runner`) and the analysis
drivers: each driver registers an :class:`Experiment` whose ``build``
callable returns the plain JSON-serializable payload the driver already
produces, and whose ``render`` callable turns that payload back into the
text the CLI prints.  Orchestrated runs persist ``build`` output as JSON
artifacts; the CLI prints ``render(build(...))`` -- both paths share one
computation per experiment, so a figure can never diverge between its
printed and its archived form.

The registry is populated by the analysis modules themselves (each
registers its own figures at import time); :func:`load_experiments` imports
them all, so orchestration code can enumerate the full experiment set
without hard-coding driver names here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentContext:
    """Everything a driver needs to compute one experiment payload.

    ``workload`` is the registry spec string (``"vgg16"``, ``"tiny:2"``) and
    ``layers`` its materialised layer list; ``engine`` is ``None`` for
    experiments that never run tiling searches (``uses_search=False``).
    """

    workload: str
    layers: list
    engine: object
    params: dict


@dataclass
class Experiment:
    """One registered figure/table driver.

    ``build(ctx)`` returns a JSON-serializable payload (NaN allowed; the
    runner sanitizes it), ``render(payload, params)`` the printable text.
    ``uses_search`` marks experiments whose payload depends on the tiling
    search engine -- only those are expanded across backends by the run
    manifest, because backend choice cannot change any other payload.

    ``workloads`` optionally pins the experiment to a fixed workload tuple:
    the run manifest then expands it over these instead of the spec's
    workload list.  The ``traffic`` experiment uses this -- a serving-traffic
    mix is only meaningful on an LLM decode family, so a ``reproduce-all``
    over the CNN workloads still gets exactly one traffic unit on its pinned
    LLM workload rather than three meaningless (failing) ones.

    ``validate_params`` optionally checks one expanded params dict and
    raises ``ValueError`` on params no unit could run.  The run manifest
    calls it per variant at expansion time, so a hand-edited spec fails
    fast with one exit-2 message instead of N failed units mid-run.
    """

    name: str
    title: str
    build: object = field(repr=False)
    render: object = field(repr=False)
    uses_search: bool = False
    default_params: dict = field(default_factory=dict)
    workloads: tuple = None
    validate_params: object = field(default=None, repr=False)


_REGISTRY = {}
_LOADED = False


def register_experiment(experiment: Experiment, replace: bool = False) -> Experiment:
    """Add an experiment to the registry (drivers call this at import time)."""
    if experiment.name in _REGISTRY and not replace:
        raise ValueError(f"experiment {experiment.name!r} is already registered")
    _REGISTRY[experiment.name] = experiment
    return experiment


def load_experiments() -> None:
    """Import every driver module so the registry is fully populated."""
    global _LOADED
    if _LOADED:
        return
    if "table1" not in _REGISTRY:
        _register_static_tables()
    # Each import registers that module's experiments as a side effect; the
    # modules import *this* module for register_experiment, which is safe
    # because nothing here imports repro.analysis at module level.  A failed
    # import leaves _LOADED unset so the next call retries instead of
    # silently serving a partial registry (modules that did import stay in
    # sys.modules and are simply not re-imported).
    import repro.analysis.energy_report  # noqa: F401
    import repro.analysis.eyeriss_compare  # noqa: F401
    import repro.analysis.goldens  # noqa: F401
    import repro.analysis.performance_report  # noqa: F401
    import repro.analysis.sweep  # noqa: F401
    import repro.analysis.timing_report  # noqa: F401  (tile-level timing sweeps)
    import repro.analysis.traffic_report  # noqa: F401  (LLM serving-traffic mixes)
    import repro.analysis.utilization_report  # noqa: F401
    import repro.dse.explore  # noqa: F401  (the hardware design-space sweep)

    _LOADED = True


#: Flat-CLI names accepted for registered experiments (the paper prints
#: Fig. 15 and Table III from the one ``fig15_table3`` computation).
EXPERIMENT_ALIASES = {"fig15": "fig15_table3", "table3": "fig15_table3"}


def resolve_experiment_name(name: str) -> str:
    """Map CLI aliases (``fig15``, ``table3``) to the registered name."""
    return EXPERIMENT_ALIASES.get(name, name)


def get_experiment(name: str) -> Experiment:
    load_experiments()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        # ValueError, not KeyError: an unknown name is an operator mistake
        # and the CLIs map ValueError to a clean exit-2 message.
        raise ValueError(f"unknown experiment {name!r}; registered: {known}") from None


def experiment_names() -> list:
    """Sorted names of every registered experiment."""
    load_experiments()
    return sorted(_REGISTRY)


#: Canonical full-paper order used by ``reproduce-all`` (and ``repro all``).
PAPER_EXPERIMENTS = (
    "table1",
    "table2",
    "fig13",
    "fig14",
    "fig15_table3",
    "fig16",
    "table4",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "timing",
    "traffic",
    "goldens",
)


def _register_static_tables() -> None:
    """Tables I and II: static configuration payloads, registered here."""

    def build_table1(ctx):
        from repro.arch.config import PAPER_IMPLEMENTATIONS

        return {
            "implementations": [
                {
                    "name": config.name,
                    "pe_rows": config.pe_rows,
                    "pe_cols": config.pe_cols,
                    "lreg_words_per_pe": config.lreg_words_per_pe,
                    "gbuf_kib": config.gbuf_kib,
                    "greg_kib": config.greg_kib,
                    "effective_on_chip_kib": config.effective_on_chip_kib,
                    "described": config.describe(),
                }
                for config in PAPER_IMPLEMENTATIONS
            ]
        }

    def render_table1(payload, params):
        lines = ["Table I: implementations of our architecture"]
        for row in payload["implementations"]:
            lines.append("  " + row["described"])
        return "\n".join(lines)

    def build_table2(ctx):
        from repro.energy.model import OPERATION_ENERGY

        return {"operations_pj": dict(OPERATION_ENERGY)}

    def render_table2(payload, params):
        lines = ["Table II: energy consumption of operations (pJ)"]
        for name, value in payload["operations_pj"].items():
            lines.append(f"  {name:>14}: {value}")
        return "\n".join(lines)

    register_experiment(
        Experiment(
            name="table1",
            title="Table I: accelerator implementations",
            build=build_table1,
            render=render_table1,
        )
    )
    register_experiment(
        Experiment(
            name="table2",
            title="Table II: operation energy model",
            build=build_table2,
            render=render_table2,
        )
    )
