"""Merge shard artifact trees into one result set and verify it.

``merge_runs`` unions the ``units/`` trees of any number of shard
directories into a merged tree that is **bit-identical** to what a single
unsharded run would have produced: all shards must carry byte-identical
``manifest.json`` files (same spec, same expansion), duplicate unit
artifacts must agree byte-for-byte, and completeness is checked against the
manifest's unit list.  Engine statistics from every shard report are
aggregated with :meth:`repro.engine.CacheStats.merge` so the merged report
shows the whole run's hit/miss/grid accounting.

``diff_merged_goldens`` replays the merged ``goldens`` units against the
pinned ``tests/goldens`` files -- the CI merge job's pass/fail signal.
"""

from __future__ import annotations

import glob
import json
import os
from dataclasses import dataclass, field

from repro.analysis.goldens import diff_goldens, golden_path
from repro.analysis.report import format_markdown_table
from repro.engine import CacheStats
from repro.orchestration.runner import (
    MANIFEST_FILENAME,
    SHARDS_DIRNAME,
    UNITS_DIRNAME,
    dump_document,
    unit_status_path,
    write_text_atomic,
)


@dataclass
class MergeReport:
    """Outcome of one merge: unit accounting plus aggregated engine stats."""

    shard_dirs: list = field(default_factory=list)
    units_merged: int = 0
    units_duplicate: int = 0
    missing: list = field(default_factory=list)
    conflicts: list = field(default_factory=list)
    unexpected: list = field(default_factory=list)
    stale: list = field(default_factory=list)
    shard_reports: list = field(default_factory=list)
    engine_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not (self.missing or self.conflicts or self.unexpected or self.stale)

    def as_dict(self) -> dict:
        return {
            "shard_dirs": list(self.shard_dirs),
            "units_merged": self.units_merged,
            "units_duplicate": self.units_duplicate,
            "missing": sorted(self.missing),
            "conflicts": sorted(self.conflicts),
            "unexpected": sorted(self.unexpected),
            "stale": sorted(self.stale),
            "shard_reports": list(self.shard_reports),
            "engine_stats": dict(self.engine_stats),
            "ok": self.ok,
        }

    def describe(self) -> str:
        state = "ok" if self.ok else "FAILED"
        return (
            f"merge: {state} -- {self.units_merged} units from "
            f"{len(self.shard_dirs)} shard trees ({self.units_duplicate} "
            f"duplicates verified, {len(self.missing)} missing, "
            f"{len(self.conflicts)} conflicts, {len(self.unexpected)} "
            f"unexpected, {len(self.stale)} stale)"
        )


def _read_bytes(path: str) -> bytes:
    with open(path, "rb") as handle:
        return handle.read()


def _completed_in(shard_dir: str, unit_id: str) -> bool:
    """Does ``shard_dir``'s status say this unit's latest attempt completed?

    An artifact file alone is not evidence of a current result: a
    ``--force`` re-run whose latest attempt *failed* leaves the previous
    success's artifact on disk next to a ``failed`` status, and archiving
    it would silently resurrect the stale payload.  Only a parseable
    ``completed`` status makes the copy mergeable.
    """
    try:
        with open(unit_status_path(shard_dir, unit_id)) as handle:
            return json.load(handle).get("state") == "completed"
    except (OSError, ValueError):
        return False


def merge_runs(shard_dirs: list, out_dir: str) -> MergeReport:
    """Union shard trees into ``out_dir``; verify identity and completeness."""
    shard_dirs = list(shard_dirs)
    if not shard_dirs:
        raise ValueError("merge needs at least one shard directory")
    report = MergeReport(shard_dirs=shard_dirs)

    manifest_bytes = None
    for shard_dir in shard_dirs:
        path = os.path.join(shard_dir, MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise ValueError(f"{path} is missing; {shard_dir!r} is not a run tree")
        data = _read_bytes(path)
        if manifest_bytes is None:
            manifest_bytes = data
        elif data != manifest_bytes:
            raise ValueError(
                f"{path} differs from the first shard's manifest; the shards "
                "were produced from different specs and cannot be merged"
            )
    try:
        manifest_document = json.loads(manifest_bytes.decode())
    except ValueError as error:
        raise ValueError(f"the shard manifests are not valid JSON ({error})") from None
    if not isinstance(manifest_document, dict) or not isinstance(
        manifest_document.get("units"), list
    ):
        raise ValueError("the shard manifests hold no unit list; corrupt run trees")
    expected_ids = {unit["unit_id"] for unit in manifest_document["units"]}

    # A merged tree must be exactly the union of *these* shards: refuse an
    # out-dir that already holds a merge of a different spec, and clear any
    # stale unit files so a re-merge can never leave leftovers behind.
    merged_manifest_path = os.path.join(out_dir, MANIFEST_FILENAME)
    if os.path.exists(merged_manifest_path):
        if _read_bytes(merged_manifest_path) != manifest_bytes:
            raise ValueError(
                f"{merged_manifest_path} holds a merge of a different spec; "
                "use a fresh --out-dir (or delete the old one)"
            )

    merged_units_dir = os.path.join(out_dir, UNITS_DIRNAME)
    os.makedirs(merged_units_dir, exist_ok=True)
    merged = {}
    for shard_dir in shard_dirs:
        for path in sorted(glob.glob(os.path.join(shard_dir, UNITS_DIRNAME, "*.json"))):
            unit_id = os.path.splitext(os.path.basename(path))[0]
            if not _completed_in(shard_dir, unit_id):
                # A stale copy is reported by name and never merged (nor
                # byte-compared -- it documents a *previous* attempt, so a
                # mismatch with a current copy would be expected, not a
                # conflict).  If no other shard holds a completed copy the
                # unit also shows up in ``missing``.
                report.stale.append(f"{unit_id} ({shard_dir})")
                continue
            data = _read_bytes(path)
            if unit_id in merged:
                report.units_duplicate += 1
                if merged[unit_id] != data:
                    report.conflicts.append(unit_id)
                continue
            merged[unit_id] = data
            if unit_id not in expected_ids:
                report.unexpected.append(unit_id)

    for name in os.listdir(merged_units_dir):
        unit_id = os.path.splitext(name)[0]
        if unit_id not in merged:
            os.unlink(os.path.join(merged_units_dir, name))
    for unit_id, data in sorted(merged.items()):
        write_text_atomic(
            os.path.join(merged_units_dir, f"{unit_id}.json"), data.decode("utf-8")
        )
    report.units_merged = len(merged)
    report.missing = sorted(expected_ids - set(merged))

    write_text_atomic(
        os.path.join(out_dir, MANIFEST_FILENAME), manifest_bytes.decode()
    )
    report.shard_reports, report.engine_stats = _aggregate_shard_reports(shard_dirs)
    write_text_atomic(
        os.path.join(out_dir, "merge.json"), dump_document(report.as_dict())
    )
    return report


def _aggregate_shard_reports(shard_dirs: list) -> tuple:
    """Collect every shard report and sum the per-backend engine stats.

    Shard reports are run metadata, not artifacts, so a corrupt one fails
    the merge with a clean message naming the file rather than a traceback;
    ``CacheStats.from_dict`` tolerates missing counter keys (older attempts
    may predate a counter), so partial stats dicts still aggregate.
    """
    shard_reports = []
    totals = {}
    for shard_dir in shard_dirs:
        for path in sorted(glob.glob(os.path.join(shard_dir, SHARDS_DIRNAME, "*.json"))):
            try:
                with open(path) as handle:
                    document = json.load(handle)
            except ValueError as error:
                raise ValueError(f"shard report {path} is not valid JSON ({error})") from None
            if not isinstance(document, dict):
                raise ValueError(f"shard report {path} is not a report object")
            shard_reports.append(
                {"path": path, "shard": document.get("shard"), "report": document}
            )
            engine_stats = document.get("engine_stats", {})
            if not isinstance(engine_stats, dict):
                raise ValueError(f"shard report {path} holds malformed engine stats")
            for backend, stats in engine_stats.items():
                if not isinstance(stats, dict):
                    raise ValueError(
                        f"shard report {path} holds malformed stats for backend {backend!r}"
                    )
                totals.setdefault(backend, CacheStats()).merge(
                    CacheStats.from_dict(stats)
                )
    return shard_reports, {backend: stats.as_dict() for backend, stats in totals.items()}


# ---------------------------------------------------------------- goldens diff


def diff_merged_goldens(merged_dir: str, goldens_dir: str) -> dict:
    """Diff every merged ``goldens`` unit against its pinned JSON file.

    Returns ``{workload: [problems]}`` (empty list means the workload
    matches); a manifest ``goldens`` unit with no artifact or no pinned file
    is itself a problem.  Merged ``timing`` units whose workload and
    parameters match the pinned timing golden are diffed too (reported
    under ``"timing:<workload>"``), so the nightly full reproduction also
    gates the tile-level timing simulator's numbers.
    """
    manifest_path = os.path.join(merged_dir, MANIFEST_FILENAME)
    with open(manifest_path) as handle:
        manifest_document = json.load(handle)
    golden_units = [
        unit for unit in manifest_document["units"] if unit["experiment"] == "goldens"
    ]
    if not golden_units:
        # A vacuous pass would read as "goldens verified" when nothing was
        # checked -- a trimmed --experiments list must not silently disable
        # the nightly pass/fail signal.
        raise ValueError(
            "the merged manifest contains no 'goldens' units to diff; "
            "include the 'goldens' experiment in the run spec"
        )
    # A workload can carry several goldens units (one per backend): every
    # unit is diffed and the problem lists *accumulate*, so one matching
    # backend can never mask a mismatch in another.
    unit_count = {}
    for unit in golden_units:
        unit_count[unit["workload"]] = unit_count.get(unit["workload"], 0) + 1
    report = {}
    for unit in golden_units:
        workload = unit["workload"]
        prefix = f"[{unit['backend']}] " if unit_count[workload] > 1 else ""
        problems = report.setdefault(workload, [])
        artifact_path = os.path.join(merged_dir, UNITS_DIRNAME, unit["unit_id"] + ".json")
        if not os.path.exists(artifact_path):
            problems.append(f"{prefix}goldens unit {unit['unit_id']} was never computed")
            continue
        pinned_path = golden_path(goldens_dir, workload)
        if not os.path.exists(pinned_path):
            problems.append(f"{prefix}no pinned golden file at {pinned_path}")
            continue
        # A corrupt artifact (or pinned file) is a diff problem for this
        # workload, not a crash: the other workloads' verdicts still matter.
        try:
            with open(artifact_path) as handle:
                actual = json.load(handle)["payload"]
        except (ValueError, KeyError) as error:
            problems.append(
                f"{prefix}artifact {unit['unit_id']}.json is unreadable: {error!r}"
            )
            continue
        try:
            with open(pinned_path) as handle:
                expected = json.load(handle)
        except ValueError as error:
            problems.append(f"{prefix}pinned file {pinned_path} is not valid JSON: {error}")
            continue
        problems.extend(prefix + problem for problem in diff_goldens(expected, actual))
    _diff_timing_units(manifest_document, merged_dir, goldens_dir, report)
    _diff_traffic_units(manifest_document, merged_dir, goldens_dir, report)
    return report


def _diff_timing_units(manifest_document, merged_dir, goldens_dir, report) -> None:
    """Diff merged ``timing`` units against the pinned timing golden.

    Only units whose workload *and* parameters match the pinned sweep are
    comparable; other timing units (custom bandwidth grids, other
    workloads) are not pinned and pass through undiffed.  Unlike the
    ``goldens`` experiment, absence is not an error: the timing experiment
    is optional in trimmed run specs.
    """
    from repro.analysis.timing_report import (
        TIMING_GOLDEN_PARAMS,
        TIMING_GOLDEN_WORKLOAD,
        timing_golden_path,
    )

    _diff_pinned_units(
        manifest_document,
        merged_dir,
        report,
        experiment="timing",
        workload=TIMING_GOLDEN_WORKLOAD,
        pinned_params=TIMING_GOLDEN_PARAMS,
        pinned_path=timing_golden_path(goldens_dir),
    )


def _diff_traffic_units(manifest_document, merged_dir, goldens_dir, report) -> None:
    """Diff merged ``traffic`` units against the pinned traffic-mix golden.

    Same contract as :func:`_diff_timing_units`: only the unit matching the
    pinned workload and parameters is comparable, and absence is not an
    error (the traffic experiment is optional in trimmed run specs).
    """
    from repro.analysis.traffic_report import (
        TRAFFIC_GOLDEN_PARAMS,
        TRAFFIC_GOLDEN_WORKLOAD,
        traffic_golden_path,
    )

    _diff_pinned_units(
        manifest_document,
        merged_dir,
        report,
        experiment="traffic",
        workload=TRAFFIC_GOLDEN_WORKLOAD,
        pinned_params=TRAFFIC_GOLDEN_PARAMS,
        pinned_path=traffic_golden_path(goldens_dir),
    )


def _diff_pinned_units(
    manifest_document,
    merged_dir,
    report,
    experiment: str,
    workload: str,
    pinned_params: dict,
    pinned_path: str,
) -> None:
    """Diff every merged unit matching one pinned (experiment, workload,
    params) triple against its golden file, accumulating under the report
    key ``"<experiment>:<workload>"``."""
    pinned_params = json.loads(json.dumps(pinned_params))
    units = [
        unit
        for unit in manifest_document["units"]
        if unit["experiment"] == experiment
        and unit["workload"] == workload
        and unit["params"] == pinned_params
    ]
    if not units:
        return
    key = f"{experiment}:{workload}"
    problems = report.setdefault(key, [])
    for unit in units:
        artifact_path = os.path.join(merged_dir, UNITS_DIRNAME, unit["unit_id"] + ".json")
        if not os.path.exists(artifact_path):
            problems.append(f"{experiment} unit {unit['unit_id']} was never computed")
            continue
        if not os.path.exists(pinned_path):
            problems.append(f"no pinned {experiment} golden at {pinned_path}")
            continue
        try:
            with open(artifact_path) as handle:
                actual = json.load(handle)["payload"]
        except (ValueError, KeyError) as error:
            problems.append(f"artifact {unit['unit_id']}.json is unreadable: {error!r}")
            continue
        try:
            with open(pinned_path) as handle:
                expected = json.load(handle)
        except ValueError as error:
            problems.append(f"pinned file {pinned_path} is not valid JSON: {error}")
            continue
        problems.extend(diff_goldens(expected, actual))


# ------------------------------------------------------------------- summary


def summary_markdown(report: MergeReport, goldens_report: dict = None) -> str:
    """GitHub-flavoured markdown summary for the Actions job summary page."""
    lines = ["## Full-paper reproduction merge", ""]
    lines.append(
        format_markdown_table(
            ["metric", "value"],
            [
                ["shard trees", len(report.shard_dirs)],
                ["units merged", report.units_merged],
                ["duplicates verified identical", report.units_duplicate],
                ["missing units", len(report.missing)],
                ["conflicting units", len(report.conflicts)],
                ["unexpected units", len(report.unexpected)],
                ["stale artifacts", len(report.stale)],
                ["merge status", "✅ pass" if report.ok else "❌ fail"],
            ],
        )
    )
    if report.engine_stats:
        lines += ["", "### Engine statistics (all shards)", ""]
        lines.append(
            format_markdown_table(
                ["backend", "hits", "misses", "hit rate", "grid evaluations"],
                [
                    [
                        backend,
                        stats["hits"],
                        stats["misses"],
                        f"{stats['hit_rate']:.1%}",
                        stats["grid_evaluations"],
                    ]
                    for backend, stats in sorted(report.engine_stats.items())
                ],
            )
        )
    if goldens_report is not None:
        lines += ["", "### Golden figures vs `tests/goldens/`", ""]
        rows = []
        for workload, problems in sorted(goldens_report.items()):
            status = "✅ pass" if not problems else "❌ fail"
            detail = "" if not problems else "; ".join(problems[:3])
            rows.append([workload, status, len(problems), detail])
        lines.append(
            format_markdown_table(["workload", "status", "mismatches", "detail"], rows)
        )
    if report.missing:
        lines += ["", "Missing units: " + ", ".join(f"`{uid}`" for uid in report.missing[:10])]
    if report.conflicts:
        lines += ["", "Conflicting units: " + ", ".join(f"`{uid}`" for uid in report.conflicts[:10])]
    if report.stale:
        lines += ["", "Stale artifacts: " + ", ".join(f"`{uid}`" for uid in report.stale[:10])]
    return "\n".join(lines) + "\n"
