"""Fleet work queue: atomic lease claims, work stealing, policies, audit.

The static ``--shard K/N`` partition fixes each worker's unit set up front,
so one slow or killed shard straggles the whole run.  :class:`WorkQueue`
replaces the partition with *late binding*: every manifest unit sits in one
shared SQLite table and workers claim the next eligible unit atomically
under a **lease** -- a worker that stops heartbeating (killed, stalled,
wedged) loses its lease after ``lease_seconds`` and any live peer steals
the unit.  The queue borrows the WAL + ``BEGIN IMMEDIATE`` + busy-timeout
conventions of :class:`repro.engine.cache.SqliteStore`, so any number of
worker processes can share one ``queue.sqlite`` file safely.

Scheduling **policies** order the eligible units: ``fifo`` keeps the
manifest's deterministic hash order, ``priority`` serves higher-priority
units first, and ``edd`` (earliest due date) serves the unit whose deadline
expires soonest.  A **unit budget** defers the lowest-ranked units
entirely -- the throttle mode for runs that must not spend more than N
units' worth of compute; a later unbudgeted resume picks the deferred
units up.

Every claim is recorded in an append-only **audit table** with its outcome
(``completed``, ``failed``, ``expired``, ``superseded``) and whether the
claimant actually started computing the payload (``executed``).  The audit
is what turns "the merged tree looks right" into a checkable exactly-once
statement: a correct fleet run shows exactly one *completed* claim per
unit, each backed by exactly one execution.

The queue is **coordination state, not run state**: it is rebuilt from the
artifact tree (``unit_is_completed``) on every fleet invocation, so a
crashed fleet -- even one killed inside a queue transaction -- resumes
from the artifacts exactly like a static shard does, and the queue file
itself needs no crash-recovery story beyond SQLite's own journal.
"""

from __future__ import annotations

import os
import sqlite3
import threading
import time
from dataclasses import dataclass

from repro.engine.cache import SQLITE_BUSY_TIMEOUT_S, _SqliteTransaction

#: On-disk marker of the queue schema; bump when the table layout changes.
QUEUE_FORMAT = "repro-fleet-queue-v1"

#: The queue database's file name inside a fleet out-dir.
QUEUE_FILENAME = "queue.sqlite"

#: Accepted scheduling policies (the ORDER BY of :meth:`WorkQueue.claim`).
POLICIES = ("fifo", "priority", "edd")

#: ORDER BY clause per policy.  ``seq`` (the manifest hash order) is always
#: the final tie-break, so every policy stays deterministic.
_POLICY_ORDER = {
    "fifo": "seq",
    "priority": "priority DESC, seq",
    "edd": "(due IS NULL), due, seq",
}


def queue_path(out_dir: str) -> str:
    return os.path.join(out_dir, QUEUE_FILENAME)


def validate_policy(policy: str) -> str:
    if policy not in POLICIES:
        choices = ", ".join(repr(choice) for choice in POLICIES)
        raise ValueError(f"policy must be one of {choices}, got {policy!r}")
    return policy


@dataclass(frozen=True)
class Claim:
    """One granted lease: the unit, its claim row, and the lease expiry."""

    unit_id: str
    claim_id: int
    worker: str
    lease_expires: float


class WorkQueue:
    """Shared SQLite-backed unit queue with lease claims and an audit trail.

    ``clock`` is the time source for leases (``time.time`` by default);
    tests inject a virtual clock to expire leases deterministically.  One
    connection per process, serialized behind a lock within the process and
    behind SQLite's WAL/busy-timeout across processes.
    """

    def __init__(self, path: str, clock=time.time):
        self.path = path
        self._clock = clock
        self._lock = threading.RLock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._connection = sqlite3.connect(
            path,
            timeout=SQLITE_BUSY_TIMEOUT_S,
            check_same_thread=False,
            isolation_level=None,  # autocommit; transactions are explicit
        )
        self._initialise()

    @classmethod
    def fresh(cls, path: str, clock=time.time) -> "WorkQueue":
        """Create a queue at ``path``, discarding any previous queue file.

        The queue is per-invocation coordination state: a stale file from a
        crashed fleet holds dangling claims whose workers are gone, and the
        artifact tree (not the queue) is the durable record of progress.
        """
        for suffix in ("", "-wal", "-shm"):
            stale = path + suffix
            if os.path.exists(stale):
                os.unlink(stale)
        return cls(path, clock=clock)

    def _initialise(self) -> None:
        connection = self._connection
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute("PRAGMA synchronous=NORMAL")
        connection.execute(f"PRAGMA busy_timeout={int(SQLITE_BUSY_TIMEOUT_S * 1000)}")
        with self._transaction():
            connection.execute(
                "CREATE TABLE IF NOT EXISTS meta (name TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS units ("
                "  unit_id TEXT PRIMARY KEY,"
                "  seq INTEGER NOT NULL,"        # manifest hash order
                "  priority INTEGER NOT NULL,"   # higher = sooner ('priority')
                "  due REAL,"                    # deadline seconds ('edd')
                "  state TEXT NOT NULL,"         # pending|claimed|completed|
                "                              "  # failed|deferred
                "  precompleted INTEGER NOT NULL,"  # done before this fleet run
                "  owner TEXT,"                  # current claim's worker
                "  claim_id INTEGER,"            # current claim row
                "  lease_expires REAL"
                ")"
            )
            connection.execute(
                "CREATE TABLE IF NOT EXISTS claims ("
                "  claim_id INTEGER PRIMARY KEY AUTOINCREMENT,"
                "  unit_id TEXT NOT NULL,"
                "  worker TEXT NOT NULL,"
                "  claimed_at REAL NOT NULL,"
                "  lease_expires REAL NOT NULL,"
                "  executed INTEGER NOT NULL DEFAULT 0,"
                "  state TEXT NOT NULL,"         # claimed|completed|failed|
                "                              "  # expired
                "  error TEXT"
                ")"
            )
            connection.execute(
                "CREATE INDEX IF NOT EXISTS units_state ON units(state)"
            )
            connection.execute(
                "INSERT OR IGNORE INTO meta (name, value) VALUES ('format', ?)",
                (QUEUE_FORMAT,),
            )
            stored = connection.execute(
                "SELECT value FROM meta WHERE name = 'format'"
            ).fetchone()
        if stored[0] != QUEUE_FORMAT:
            raise ValueError(
                f"work queue at {self.path!r} has format {stored[0]!r}, "
                f"not {QUEUE_FORMAT!r}"
            )

    def _transaction(self):
        return _SqliteTransaction(self._connection, self._lock)

    # ------------------------------------------------------------ population

    def populate(
        self,
        unit_ids,
        completed=(),
        priorities: dict = None,
        deadlines: dict = None,
        policy: str = "fifo",
        unit_budget: int = None,
    ) -> dict:
        """Fill the queue from a manifest's hash-ordered unit list.

        ``unit_ids`` must be the manifest's :meth:`hash_ordered` IDs (their
        position becomes ``seq``, the deterministic tie-break).  IDs in
        ``completed`` enter as already-``completed`` (resume: claimed by no
        one, audited as ``precompleted``).  ``priorities`` / ``deadlines``
        map unit IDs to an int priority (default 0) / a due timestamp.

        ``unit_budget`` caps how many units this fleet invocation may
        execute: units ranked beyond the budget *in policy order* enter as
        ``deferred`` and are never claimed -- the budget throttle that
        defers low-priority work.  Returns the state counts after
        population.
        """
        validate_policy(policy)
        if unit_budget is not None and unit_budget < 0:
            raise ValueError(f"unit_budget must be >= 0, got {unit_budget}")
        priorities = priorities or {}
        deadlines = deadlines or {}
        completed = set(completed)
        rows = []
        for seq, unit_id in enumerate(unit_ids):
            rows.append(
                (
                    unit_id,
                    seq,
                    int(priorities.get(unit_id, 0)),
                    deadlines.get(unit_id),
                    "completed" if unit_id in completed else "pending",
                    1 if unit_id in completed else 0,
                )
            )
        # Budget ranking happens here, deterministically, not claim-time:
        # the deferred set must not depend on worker interleaving.
        if unit_budget is not None:
            runnable = [row for row in rows if row[4] == "pending"]
            key = {
                "fifo": lambda row: row[1],
                "priority": lambda row: (-row[2], row[1]),
                "edd": lambda row: (row[3] is None, row[3] or 0.0, row[1]),
            }[policy]
            deferred = {row[0] for row in sorted(runnable, key=key)[unit_budget:]}
            rows = [
                (
                    unit_id,
                    seq,
                    priority,
                    due,
                    "deferred" if unit_id in deferred else state,
                    pre,
                )
                for unit_id, seq, priority, due, state, pre in rows
            ]
        with self._transaction():
            self._connection.execute("DELETE FROM units")
            self._connection.executemany(
                "INSERT INTO units (unit_id, seq, priority, due, state, "
                "precompleted, owner, claim_id, lease_expires) "
                "VALUES (?, ?, ?, ?, ?, ?, NULL, NULL, NULL)",
                rows,
            )
            self._connection.execute(
                "INSERT OR REPLACE INTO meta (name, value) VALUES ('policy', ?)",
                (policy,),
            )
        return self.counts()

    def policy(self) -> str:
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM meta WHERE name = 'policy'"
            ).fetchone()
        return row[0] if row else "fifo"

    # -------------------------------------------------------------- claiming

    def claim(self, worker: str, lease_seconds: float) -> Claim:
        """Atomically claim the next eligible unit; ``None`` when there is none.

        Eligible: any ``pending`` unit, or any ``claimed`` unit whose lease
        has expired (work stealing -- the previous claim is audited as
        ``expired`` in the same transaction, so there is never a moment
        with two live claims on one unit).
        """
        now = self._clock()
        order = _POLICY_ORDER[validate_policy(self.policy())]
        expires = now + lease_seconds
        with self._transaction():
            row = self._connection.execute(
                "SELECT unit_id, state, claim_id FROM units "
                "WHERE state = 'pending' "
                "   OR (state = 'claimed' AND lease_expires < ?) "
                f"ORDER BY {order} LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            unit_id, state, old_claim_id = row
            if state == "claimed":
                self._connection.execute(
                    "UPDATE claims SET state = 'expired' "
                    "WHERE claim_id = ? AND state = 'claimed'",
                    (old_claim_id,),
                )
            cursor = self._connection.execute(
                "INSERT INTO claims (unit_id, worker, claimed_at, "
                "lease_expires, executed, state) VALUES (?, ?, ?, ?, 0, 'claimed')",
                (unit_id, worker, now, expires),
            )
            claim_id = cursor.lastrowid
            self._connection.execute(
                "UPDATE units SET state = 'claimed', owner = ?, claim_id = ?, "
                "lease_expires = ? WHERE unit_id = ?",
                (worker, claim_id, expires, unit_id),
            )
        return Claim(unit_id, claim_id, worker, expires)

    def heartbeat(self, claim: Claim, lease_seconds: float) -> bool:
        """Extend a live claim's lease; ``False`` when it was already lost."""
        expires = self._clock() + lease_seconds
        with self._transaction():
            cursor = self._connection.execute(
                "UPDATE claims SET lease_expires = ? "
                "WHERE claim_id = ? AND state = 'claimed'",
                (expires, claim.claim_id),
            )
            if cursor.rowcount == 0:
                return False
            self._connection.execute(
                "UPDATE units SET lease_expires = ? WHERE claim_id = ?",
                (expires, claim.claim_id),
            )
        return True

    def mark_executing(self, claim: Claim) -> bool:
        """Record that this claim's payload computation is starting.

        The flag is what lets the audit distinguish "claimed but died before
        doing any work" (steal recomputes, no duplicate execution) from an
        actual execution.  Returns ``False`` when the lease was already
        stolen -- the caller should drop the unit without computing.
        """
        with self._transaction():
            cursor = self._connection.execute(
                "UPDATE claims SET executed = 1 "
                "WHERE claim_id = ? AND state = 'claimed'",
                (claim.claim_id,),
            )
            return cursor.rowcount > 0

    def complete(self, claim: Claim) -> bool:
        """Resolve a claim as completed; ``False`` when it was stolen.

        A stale worker that finishes *after* losing its lease gets
        ``False`` -- its artifact write was harmless (artifacts are
        deterministic and written atomically) but it must not record a
        second completion: the audit invariant is exactly one completed
        claim per unit.
        """
        return self._resolve(claim, "completed", None)

    def fail(self, claim: Claim, error: str) -> bool:
        """Resolve a claim as failed (the unit becomes terminal ``failed``)."""
        return self._resolve(claim, "failed", str(error))

    def _resolve(self, claim: Claim, state: str, error) -> bool:
        with self._transaction():
            cursor = self._connection.execute(
                "UPDATE claims SET state = ?, error = ? "
                "WHERE claim_id = ? AND state = 'claimed'",
                (state, error, claim.claim_id),
            )
            if cursor.rowcount == 0:
                return False
            self._connection.execute(
                "UPDATE units SET state = ?, owner = NULL, claim_id = NULL, "
                "lease_expires = NULL WHERE claim_id = ?",
                (state, claim.claim_id),
            )
        return True

    # ------------------------------------------------------------ inspection

    def counts(self) -> dict:
        """``{state: unit count}`` snapshot (absent states omitted)."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT state, COUNT(*) FROM units GROUP BY state"
            ).fetchall()
        return dict(rows)

    def unfinished(self) -> int:
        """Units still in flight: pending or claimed.

        ``deferred`` (budget) and ``failed`` are terminal for this
        invocation -- a worker loop exits when this reaches zero.
        """
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM units WHERE state IN ('pending', 'claimed')"
            ).fetchone()[0]

    def deferred_ids(self) -> list:
        with self._lock:
            rows = self._connection.execute(
                "SELECT unit_id FROM units WHERE state = 'deferred' ORDER BY seq"
            ).fetchall()
        return [unit_id for (unit_id,) in rows]

    def failures(self) -> list:
        """``[{unit_id, error}]`` of failed claims, in claim order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT unit_id, error FROM claims WHERE state = 'failed' "
                "ORDER BY claim_id"
            ).fetchall()
        return [{"unit_id": unit_id, "error": error} for unit_id, error in rows]

    def audit(self) -> list:
        """Every claim ever granted, as dicts, in grant order."""
        with self._lock:
            rows = self._connection.execute(
                "SELECT claim_id, unit_id, worker, claimed_at, lease_expires, "
                "executed, state, error FROM claims ORDER BY claim_id"
            ).fetchall()
        keys = (
            "claim_id", "unit_id", "worker", "claimed_at", "lease_expires",
            "executed", "state", "error",
        )
        return [dict(zip(keys, row)) for row in rows]

    def audit_problems(self) -> list:
        """Exactly-once violations, as human-readable strings (empty = clean).

        Checked invariants: a completed unit has exactly one completed
        claim (zero is fine only for units completed *before* this fleet
        run); no unit ever has two completed claims (duplicate execution);
        every completed claim actually executed its payload.
        """
        problems = []
        with self._lock:
            units = self._connection.execute(
                "SELECT unit_id, state, precompleted FROM units ORDER BY seq"
            ).fetchall()
            claims = self._connection.execute(
                "SELECT unit_id, state, executed FROM claims"
            ).fetchall()
        completed_claims = {}
        for unit_id, state, executed in claims:
            if state == "completed":
                completed_claims[unit_id] = completed_claims.get(unit_id, 0) + 1
                if not executed:
                    problems.append(
                        f"{unit_id}: completed claim never marked executing"
                    )
        for unit_id, count in completed_claims.items():
            if count > 1:
                problems.append(
                    f"{unit_id}: {count} completed claims (duplicate execution)"
                )
        for unit_id, state, precompleted in units:
            done = completed_claims.get(unit_id, 0)
            if state == "completed" and not precompleted and done != 1:
                problems.append(
                    f"{unit_id}: completed with {done} completed claims"
                )
            if state != "completed" and done:
                problems.append(
                    f"{unit_id}: {done} completed claims but unit state is {state!r}"
                )
        return problems

    def stolen_claims(self) -> int:
        """Claims that lost their lease to a peer (the steal counter)."""
        with self._lock:
            return self._connection.execute(
                "SELECT COUNT(*) FROM claims WHERE state = 'expired'"
            ).fetchone()[0]

    def close(self) -> None:
        if getattr(self, "_connection", None) is not None:
            self._connection.close()
            self._connection = None
