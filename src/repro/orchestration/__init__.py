"""Manifest-driven run orchestration: sharded, resumable reproductions.

The subsystem turns the entire paper reproduction into an enumerable unit
graph (:mod:`~repro.orchestration.manifest`), executes shards of it with
per-unit JSON artifacts and checkpointed resume
(:mod:`~repro.orchestration.runner`), and merges shard trees back into one
verified, bit-identical result set (:mod:`~repro.orchestration.merge`).
Figure/table drivers participate through the experiment registry
(:mod:`~repro.orchestration.experiments`).

Only the registry and the manifest are imported eagerly: the analysis
drivers import :mod:`~repro.orchestration.experiments` at *their* import
time to register themselves, so the runner/merge layers (which import the
drivers back) are exposed lazily to keep the package import acyclic.
"""

from __future__ import annotations

from repro.orchestration.experiments import (
    PAPER_EXPERIMENTS,
    Experiment,
    ExperimentContext,
    experiment_names,
    get_experiment,
    load_experiments,
    register_experiment,
)
from repro.orchestration.manifest import (
    DEFAULT_WORKLOADS,
    NO_BACKEND,
    ManifestSpec,
    RunManifest,
    RunUnit,
    parse_shard,
)

_LAZY = {
    "Runner": "repro.orchestration.runner",
    "RunReport": "repro.orchestration.runner",
    "load_run_metadata": "repro.orchestration.runner",
    "MergeReport": "repro.orchestration.merge",
    "diff_merged_goldens": "repro.orchestration.merge",
    "merge_runs": "repro.orchestration.merge",
    "summary_markdown": "repro.orchestration.merge",
}


def __getattr__(name: str):
    if name in _LAZY:
        import importlib

        return getattr(importlib.import_module(_LAZY[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DEFAULT_WORKLOADS",
    "Experiment",
    "ExperimentContext",
    "ManifestSpec",
    "MergeReport",
    "NO_BACKEND",
    "PAPER_EXPERIMENTS",
    "RunManifest",
    "RunReport",
    "RunUnit",
    "Runner",
    "diff_merged_goldens",
    "experiment_names",
    "get_experiment",
    "load_experiments",
    "load_run_metadata",
    "merge_runs",
    "parse_shard",
    "register_experiment",
    "summary_markdown",
]
