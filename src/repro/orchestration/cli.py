"""CLI for orchestrated reproductions: run / resume / merge / frontier.

These subcommands are dispatched from the main ``repro-experiments`` entry
point (:mod:`repro.cli`)::

    repro-experiments reproduce-all --out-dir out/full --shard 1/4
    repro-experiments run --out-dir out/tiny --workloads tiny \\
        --experiments fig13 fig16 --capacities 16 66.5
    repro-experiments fleet --out-dir out/fleet --fleet-workers 4
    repro-experiments resume --out-dir out/full          # zero recomputation
    repro-experiments merge out/shard-* --out-dir out/merged \\
        --diff-goldens tests/goldens --summary-file "$GITHUB_STEP_SUMMARY"
    repro-experiments frontier out/merged                # merged DSE frontier

``run``/``reproduce-all`` execute one shard of the manifest expanded from
the given spec; ``fleet`` runs the *whole* manifest with N local worker
processes draining one shared work queue (a dead or straggling worker's
units are stolen after its lease expires); ``resume`` re-executes the run
recorded in the out-dir's ``run.json`` -- static shard or fleet alike --
skipping every completed unit; ``merge`` unions shard trees,
verifies bit-identity and completeness, optionally diffs the golden units
against the pinned regression files, and can append a markdown summary for
CI job pages; ``frontier`` merges the ``dse`` units' Pareto frontiers into
whole-sweep frontiers (``--dse-slices N`` on ``run`` splits a sweep's
config space into N independently schedulable units).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.orchestration.experiments import (
    PAPER_EXPERIMENTS,
    experiment_names,
    get_experiment,
    resolve_experiment_name,
)
from repro.orchestration.manifest import (
    DEFAULT_WORKLOADS,
    ManifestSpec,
    RunManifest,
    parse_shard,
)
from repro.orchestration.merge import (
    diff_merged_goldens,
    merge_runs,
    summary_markdown,
)
from repro.orchestration.fleet import (
    DEFAULT_LEASE_SECONDS,
    DEFAULT_POLL_SECONDS,
    FleetConfig,
    load_fleet_config,
    read_fleet_mode,
    run_fleet,
)
from repro.orchestration.runner import Runner, load_run_metadata
from repro.orchestration.scheduler import POLICIES
from repro.workloads.registry import UnknownWorkloadError


def build_orchestration_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Sharded, resumable full-paper reproductions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    spec_parent = argparse.ArgumentParser(add_help=False)
    spec_parent.add_argument(
        "--out-dir",
        default=None,
        help="artifact tree for this shard (manifest.json, units/, status/, "
        "cache/); required unless --list-experiments",
    )
    spec_parent.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_WORKLOADS),
        metavar="NAME[:batch]",
        help=f"workload specs to reproduce (default: {' '.join(DEFAULT_WORKLOADS)})",
    )
    spec_parent.add_argument(
        "--experiments",
        nargs="+",
        default=list(PAPER_EXPERIMENTS),
        metavar="NAME",
        help="experiments to include (default: the whole paper; see "
        "'repro-experiments run --list-experiments')",
    )
    spec_parent.add_argument(
        "--backends",
        nargs="+",
        choices=["auto", "numpy", "python"],
        default=["auto"],
        help="search backends to cross search-based experiments over "
        "(default: auto; pass 'numpy python' to archive both, bit-identical)",
    )
    spec_parent.add_argument(
        "--capacities",
        type=float,
        nargs="+",
        default=None,
        help="fig13 capacity grid override (KB)",
    )
    spec_parent.add_argument(
        "--capacity",
        type=float,
        default=None,
        help="fig14 on-chip capacity override (KB)",
    )
    spec_parent.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="KIB",
        help="dse on-chip memory budget override (KiB)",
    )
    spec_parent.add_argument(
        "--objectives",
        nargs="+",
        choices=["dram", "energy", "time", "stall_time"],
        default=None,
        help="dse Pareto objectives override (default: dram/energy/time; "
        "'stall_time' adds the tile-level simulator's stall-aware latency)",
    )
    spec_parent.add_argument(
        "--bandwidths",
        type=float,
        nargs="+",
        default=None,
        metavar="GBPS",
        help="timing experiment bandwidth sweep override (GB/s)",
    )
    spec_parent.add_argument(
        "--seed",
        type=int,
        default=None,
        help="traffic experiment trace seed override",
    )
    spec_parent.add_argument(
        "--requests",
        type=int,
        default=None,
        metavar="N",
        help="traffic experiment request-count override",
    )
    spec_parent.add_argument(
        "--explorer",
        choices=["exhaustive", "halving", "local", "evolution"],
        default=None,
        help="dse frontier explorer override (smart explorers attach a "
        "trust-region exactness certificate and take --seed; with "
        "--dse-slices, each slice becomes a seed island)",
    )
    spec_parent.add_argument(
        "--dse-slices",
        type=int,
        default=None,
        metavar="N",
        help="split the dse config space into N units (one slice each); "
        "their frontiers merge associatively via 'frontier'",
    )
    spec_parent.add_argument(
        "--shard",
        default="1/1",
        metavar="K/N",
        help="execute the K-th of N contiguous-hash shards (default 1/1)",
    )
    spec_parent.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the tiling searches (0 = all cores)",
    )
    spec_parent.add_argument(
        "--max-units",
        type=int,
        default=None,
        help="stop after computing this many fresh units (timeboxing; "
        "'resume' continues from there)",
    )
    spec_parent.add_argument(
        "--cache-store",
        choices=["pickle", "sqlite"],
        default="pickle",
        help="persistence backend for the per-shard search caches "
        "(sqlite is concurrency-safe and shareable with a running "
        "'serve' daemon; default pickle)",
    )
    spec_parent.add_argument(
        "--force",
        action="store_true",
        help="recompute units even when a completed artifact already exists",
    )
    spec_parent.add_argument(
        "--list-experiments",
        action="store_true",
        help="list registered experiment names and exit",
    )
    spec_parent.add_argument(
        "--json",
        action="store_true",
        help="print the run report as JSON on stdout",
    )

    commands.add_parser(
        "run",
        parents=[spec_parent],
        help="execute one shard of the manifest expanded from the spec flags",
    )
    commands.add_parser(
        "reproduce-all",
        parents=[spec_parent],
        help="run with the full-paper defaults (all figures/tables x the "
        "golden workloads)",
    )

    fleet = commands.add_parser(
        "fleet",
        parents=[spec_parent],
        help="run the whole manifest with N worker processes sharing one "
        "work queue (lease-based work stealing beats static shards on "
        "stragglers and crashes)",
    )
    # Fleet workers share one SQLite search cache; the pickle store would
    # silently drop peers' entries on every checkpoint.
    fleet.set_defaults(cache_store="sqlite")
    fleet.add_argument(
        "--fleet-workers",
        type=int,
        default=2,
        metavar="N",
        help="worker processes draining the queue (default 2); distinct "
        "from --workers, the search parallelism *inside* each worker",
    )
    fleet.add_argument(
        "--lease-seconds",
        type=float,
        default=DEFAULT_LEASE_SECONDS,
        help="claim lease duration; a worker silent this long loses its "
        f"unit to a live peer (default {DEFAULT_LEASE_SECONDS:g})",
    )
    fleet.add_argument(
        "--poll-seconds",
        type=float,
        default=DEFAULT_POLL_SECONDS,
        help="idle worker's queue re-poll interval "
        f"(default {DEFAULT_POLL_SECONDS:g})",
    )
    fleet.add_argument(
        "--policy",
        choices=list(POLICIES),
        default="fifo",
        help="claim order: manifest hash order (fifo), --priority ranks "
        "(priority), or earliest --due deadline first (edd)",
    )
    fleet.add_argument(
        "--priority",
        action="append",
        default=None,
        metavar="EXPERIMENT=P",
        help="priority rank for one experiment's units (higher runs "
        "sooner under --policy priority; repeatable; default 0)",
    )
    fleet.add_argument(
        "--due",
        action="append",
        default=None,
        metavar="EXPERIMENT=SECONDS",
        help="deadline for one experiment's units, seconds from fleet "
        "start (orders claims under --policy edd; repeatable)",
    )
    fleet.add_argument(
        "--unit-budget",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N units this invocation, deferring the "
        "lowest-ranked rest (a later resume picks them up)",
    )
    fleet.add_argument(
        "--chaos-kill",
        action="append",
        default=None,
        metavar="W:K",
        help="fault injection for tests/CI: worker W SIGKILLs itself "
        "when claiming its next unit after K completions (repeatable)",
    )

    resume = commands.add_parser(
        "resume",
        help="re-execute the run recorded in --out-dir (static shard or "
        "fleet), skipping every completed unit (zero recomputation)",
    )
    resume.add_argument("--out-dir", required=True)
    resume.add_argument(
        "--shard",
        default=None,
        metavar="K/N",
        help="override the recorded shard (static runs only; default: the "
        "one in run.json)",
    )
    resume.add_argument("--workers", type=int, default=None)
    resume.add_argument("--max-units", type=int, default=None)
    resume.add_argument(
        "--cache-store",
        choices=["pickle", "sqlite"],
        default=None,
        help="persistence backend for the search caches (default: what "
        "the original run recorded -- fleet runs record sqlite; static "
        "runs default to pickle)",
    )
    resume.add_argument(
        "--fleet-workers",
        type=int,
        default=None,
        metavar="N",
        help="fleet runs only: override the recorded worker-process count",
    )
    resume.add_argument(
        "--unit-budget",
        type=int,
        default=None,
        metavar="N",
        help="fleet runs only: override the recorded per-invocation unit "
        "budget",
    )
    resume.add_argument(
        "--no-unit-budget",
        action="store_true",
        help="fleet runs only: drop the recorded budget and run every "
        "deferred unit",
    )
    resume.add_argument("--json", action="store_true")

    merge = commands.add_parser(
        "merge",
        help="union shard artifact trees, verify bit-identity and "
        "completeness, optionally diff the golden units",
    )
    merge.add_argument("shard_dirs", nargs="+", help="shard out-dirs to merge")
    merge.add_argument("--out-dir", required=True, help="merged artifact tree")
    merge.add_argument(
        "--diff-goldens",
        default=None,
        metavar="DIR",
        help="diff merged 'goldens' units against the pinned files in DIR",
    )
    merge.add_argument(
        "--summary-file",
        default=None,
        help="append a markdown summary (e.g. \"$GITHUB_STEP_SUMMARY\")",
    )
    merge.add_argument("--json", action="store_true")

    frontier = commands.add_parser(
        "frontier",
        help="merge the 'dse' unit artifacts of run/merged trees into "
        "whole-sweep Pareto frontiers (associative across slices)",
    )
    frontier.add_argument("run_dirs", nargs="+", help="run or merged artifact trees")
    frontier.add_argument(
        "--workload",
        default=None,
        metavar="NAME[:batch]",
        help="restrict to one workload spec (default: every workload found)",
    )
    frontier.add_argument("--json", action="store_true")
    return parser


def _build_spec(args) -> ManifestSpec:
    # Resolve every workload spec, the worker count and each backend up
    # front so a typo fails fast with one clear exit-2 message instead of
    # surfacing as N per-unit failures mid-run (the engine re-validates at
    # construction, but by then every unit would record the same error).
    from repro.engine import resolve_backend, resolve_workers
    from repro.workloads.registry import get_workload_spec

    for workload in args.workloads:
        get_workload_spec(workload)
    resolve_workers(args.workers)
    for backend in args.backends:
        resolve_backend(backend)
    # Accept the flat CLI's fig15/table3 aliases here too (dedup keeps the
    # pair a single unit when both are named).
    experiments = []
    for name in args.experiments:
        resolved = resolve_experiment_name(name)
        if resolved not in experiments:
            experiments.append(resolved)
    params = {}
    if args.capacities is not None:
        params["fig13"] = {"capacities_kib": list(args.capacities)}
    if args.capacity is not None:
        params["fig14"] = {"capacity_kib": args.capacity}
    if args.bandwidths is not None:
        if "timing" not in experiments:
            raise ValueError(
                "--bandwidths configures the 'timing' experiment, which is "
                "not in this run's --experiments list; add 'timing' to "
                "--experiments"
            )
        params["timing"] = {"bandwidths_gbps": list(args.bandwidths)}
    dse_overrides = {}
    if args.budget is not None:
        dse_overrides["budget_kib"] = args.budget
    if args.objectives:
        dse_overrides["objectives"] = list(args.objectives)
    if args.explorer is not None:
        dse_overrides["explorer"] = args.explorer
        if args.seed is not None and args.explorer != "exhaustive":
            dse_overrides["seed"] = args.seed
    if (dse_overrides or args.dse_slices is not None) and "dse" not in experiments:
        # Silently dropping the options would run a "sweep" with no dse
        # units in it; fail fast instead.
        raise ValueError(
            "--budget/--objectives/--explorer/--dse-slices configure the "
            "'dse' experiment, which is not in this run's --experiments "
            "list; add 'dse' to --experiments"
        )
    traffic_overrides = {}
    if args.seed is not None:
        traffic_overrides["seed"] = args.seed
    if args.requests is not None:
        traffic_overrides["requests"] = args.requests
    if traffic_overrides:
        if "traffic" in experiments:
            params["traffic"] = traffic_overrides
        elif args.requests is not None or "seed" not in dse_overrides:
            # --seed alone is also meaningful as a smart dse explorer seed;
            # anything else still needs the traffic experiment in the run.
            raise ValueError(
                "--seed/--requests configure the 'traffic' experiment, which "
                "is not in this run's --experiments list; add 'traffic' to "
                "--experiments (or pass a smart --explorer for --seed to "
                "configure the 'dse' explorer instead)"
            )
    if args.dse_slices is not None:
        if args.dse_slices < 1:
            raise ValueError(f"--dse-slices must be >= 1, got {args.dse_slices}")
        # One unit per slice of the config space; every slice carries the
        # same overrides so the manifest stays a pure spec expansion.
        params["dse"] = [
            dict(dse_overrides, slice=[index, args.dse_slices])
            for index in range(1, args.dse_slices + 1)
        ]
    elif dse_overrides:
        params["dse"] = dse_overrides
    return ManifestSpec(
        workloads=tuple(args.workloads),
        experiments=tuple(experiments),
        backends=tuple(args.backends),
        params=params,
    )


def _emit_report(report, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.as_dict(), sort_keys=True, indent=2))
    else:
        print(report.describe())


def _cmd_run(args) -> int:
    if args.list_experiments:
        for name in experiment_names():
            print(name)
        return 0
    if not args.out_dir:
        raise ValueError("--out-dir is required (or pass --list-experiments)")
    manifest = RunManifest.from_spec(_build_spec(args))
    runner = Runner(
        manifest, args.out_dir, workers=args.workers, cache_store=args.cache_store
    )
    report = runner.run(
        shard=parse_shard(args.shard),
        resume=not args.force,
        max_units=args.max_units,
    )
    _emit_report(report, args.json)
    return 0 if report.ok else 1


def _parse_experiment_values(pairs, flag: str, value_type) -> dict:
    """``EXPERIMENT=VALUE`` pairs -> {resolved experiment name: value}."""
    values = {}
    for pair in pairs or []:
        name, separator, raw = pair.partition("=")
        if not separator or not name or not raw:
            raise ValueError(f"{flag} takes EXPERIMENT=VALUE, got {pair!r}")
        try:
            value = value_type(raw)
        except ValueError:
            raise ValueError(
                f"{flag} value for {name!r} must be a number, got {raw!r}"
            ) from None
        resolved = resolve_experiment_name(name)
        get_experiment(resolved)  # unknown names are an operator mistake
        values[resolved] = value
    return values


def _parse_chaos_kills(pairs) -> dict:
    """``W:K`` pairs -> {worker index: completions before the self-kill}."""
    kills = {}
    for pair in pairs or []:
        worker, separator, count = pair.partition(":")
        try:
            if not separator:
                raise ValueError(pair)
            kills[int(worker)] = int(count)
        except ValueError:
            raise ValueError(
                f"--chaos-kill takes WORKER:COMPLETIONS (two integers), "
                f"got {pair!r}"
            ) from None
    return kills


def _cmd_fleet(args) -> int:
    if args.list_experiments:
        for name in experiment_names():
            print(name)
        return 0
    if not args.out_dir:
        raise ValueError("--out-dir is required (or pass --list-experiments)")
    if args.shard != "1/1":
        raise ValueError(
            "'fleet' always runs the whole manifest -- the workers "
            "partition it dynamically; drop --shard"
        )
    if args.max_units is not None:
        raise ValueError(
            "'fleet' timeboxes with --unit-budget (deterministic deferral), "
            "not --max-units"
        )
    manifest = RunManifest.from_spec(_build_spec(args))
    config = FleetConfig(
        workers=args.fleet_workers,
        lease_seconds=args.lease_seconds,
        poll_seconds=args.poll_seconds,
        policy=args.policy,
        unit_budget=args.unit_budget,
        priorities=_parse_experiment_values(args.priority, "--priority", int),
        deadlines=_parse_experiment_values(args.due, "--due", float),
        cache_store=args.cache_store,
        search_workers=args.workers,
    )
    report = run_fleet(
        manifest,
        args.out_dir,
        config,
        chaos_kills=_parse_chaos_kills(args.chaos_kill),
        resume=not args.force,
    )
    _emit_report(report, args.json)
    return 0 if report.complete else 1


def _resume_fleet(args, metadata, manifest) -> int:
    if args.shard:
        raise ValueError(
            f"{args.out_dir} was produced by 'fleet'; it has no static "
            "shard to override (drop --shard)"
        )
    if args.max_units is not None:
        raise ValueError(
            "fleet runs timebox with --unit-budget, not --max-units"
        )
    config = load_fleet_config(metadata)
    overrides = {}
    if args.fleet_workers is not None:
        overrides["workers"] = args.fleet_workers
    if args.workers is not None:
        overrides["search_workers"] = args.workers
    if args.cache_store is not None:
        overrides["cache_store"] = args.cache_store
    if args.no_unit_budget:
        overrides["unit_budget"] = None
    elif args.unit_budget is not None:
        overrides["unit_budget"] = args.unit_budget
    config = FleetConfig.from_dict(dict(config.as_dict(), **overrides))
    from repro.engine import resolve_workers

    resolve_workers(config.search_workers)
    report = run_fleet(manifest, args.out_dir, config)
    _emit_report(report, args.json)
    return 0 if report.complete else 1


def _cmd_resume(args) -> int:
    metadata = load_run_metadata(args.out_dir)
    manifest = RunManifest.from_spec(ManifestSpec.from_dict(metadata["spec"]))
    if read_fleet_mode(metadata):
        # A fleet out-dir resumes as a fleet: same artifact tree, the
        # recorded fleet configuration, completed units pre-completed.
        return _resume_fleet(args, metadata, manifest)
    for flag, value in (
        ("--fleet-workers", args.fleet_workers),
        ("--unit-budget", args.unit_budget),
        ("--no-unit-budget", args.no_unit_budget or None),
    ):
        if value is not None:
            raise ValueError(
                f"{flag} applies to fleet runs; {args.out_dir} records a "
                "static shard run"
            )
    shard = parse_shard(args.shard) if args.shard else tuple(metadata["shard"])
    workers = args.workers if args.workers is not None else metadata.get("workers", 1)
    from repro.engine import resolve_workers

    resolve_workers(workers)
    runner = Runner(
        manifest,
        args.out_dir,
        workers=workers,
        cache_store=args.cache_store or "pickle",
    )
    report = runner.run(shard=shard, resume=True, max_units=args.max_units)
    _emit_report(report, args.json)
    return 0 if report.ok else 1


def _cmd_merge(args) -> int:
    report = merge_runs(args.shard_dirs, args.out_dir)
    goldens_report = None
    failures = 0 if report.ok else 1
    if args.diff_goldens:
        goldens_report = diff_merged_goldens(args.out_dir, args.diff_goldens)
        mismatches = sum(len(problems) for problems in goldens_report.values())
        failures += mismatches
        if not args.json:
            # With --json stdout must stay one parseable document; the
            # per-workload diff is embedded there instead.
            for workload, problems in sorted(goldens_report.items()):
                status = "ok" if not problems else f"{len(problems)} mismatches"
                print(f"goldens[{workload}]: {status}")
                for problem in problems[:10]:
                    print(f"  {problem}")
    if args.summary_file:
        # Explicit UTF-8: the summary embeds pass/fail glyphs and must not
        # depend on the locale encoding.
        with open(args.summary_file, "a", encoding="utf-8") as handle:
            handle.write(summary_markdown(report, goldens_report))
    if args.json:
        document = report.as_dict()
        if goldens_report is not None:
            document["goldens"] = goldens_report
        print(json.dumps(document, sort_keys=True, indent=2))
    else:
        print(report.describe())
    return 0 if failures == 0 else 1


def _cmd_frontier(args) -> int:
    from repro.analysis.report import format_dse_frontier
    from repro.dse.artifacts import merge_dse_artifacts

    report = merge_dse_artifacts(args.run_dirs, workload=args.workload)
    complete = all(group["complete"] for group in report["groups"])
    if args.json:
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        for group in report["groups"]:
            slices = ", ".join(f"{index}/{count}" for index, count in group["slices"])
            state = "complete" if group["complete"] else "INCOMPLETE"
            print(
                f"dse[{group['workload']}, backend {group['backend']}]: "
                f"slices {slices} ({state})"
            )
            print(format_dse_frontier(dict(group, slice=(1, 1))))
            print()
    # Incomplete sweeps still print (a partial frontier is informative) but
    # fail the command so CI never mistakes them for the real frontier.
    return 0 if complete else 1


_COMMANDS = {
    "run": _cmd_run,
    "reproduce-all": _cmd_run,
    "fleet": _cmd_fleet,
    "resume": _cmd_resume,
    "merge": _cmd_merge,
    "frontier": _cmd_frontier,
}


def main(argv: list = None) -> int:
    args = build_orchestration_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    # Same convention as the flat CLI: operator mistakes (bad spec, bad
    # shard, unmergeable trees) exit 2 with one message, no traceback;
    # genuine internal bugs surface as other exception types and keep
    # their tracebacks.
    except (UnknownWorkloadError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
