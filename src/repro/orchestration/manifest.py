"""Run manifests: the full reproduction as an enumerable, shardable unit graph.

A :class:`ManifestSpec` names *what* to reproduce (experiments x workloads x
backends plus per-experiment parameter overrides); :class:`RunManifest`
expands it into a deterministic, duplicate-free list of :class:`RunUnit`\\ s.
Every unit carries a stable content-derived ID (experiment, workload,
backend and canonical-JSON parameters hashed together), so two machines
expanding the same spec agree on the exact unit set and on every artifact
file name without any coordination.

Sharding is a contiguous partition of the *hash-ordered* unit list:
units are sorted by the SHA-256 of their IDs (a deterministic shuffle that
spreads expensive workloads evenly across shards) and shard ``k/N`` takes
the ``k``-th contiguous slice.  By construction the shards are disjoint and
their union is exactly the full unit set for every ``N``.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field

from repro.engine import validate_shard
from repro.orchestration.experiments import (
    PAPER_EXPERIMENTS,
    get_experiment,
)

#: Workloads of the default full-paper reproduction: the paper's evaluation
#: network plus the other two golden-pinned CNNs.
DEFAULT_WORKLOADS = ("vgg16", "alexnet", "resnet18")

#: Backend pseudo-name for units whose payload never touches the search
#: engine (pure accelerator-model figures); they are not expanded across
#: backends because the backend cannot change their payload.
NO_BACKEND = "none"


def canonical_json(value) -> str:
    """Canonical JSON text: sorted keys, minimal separators, no NaN."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), allow_nan=False)


def _slug(text: str) -> str:
    """Filesystem-safe fragment of a workload spec (``"tiny:2"`` -> ``"tiny-2"``)."""
    return re.sub(r"[^A-Za-z0-9_.-]", "-", text)


def parse_shard(text: str) -> tuple:
    """Parse a ``K/N`` shard spec into ``(k, n)`` with validation."""
    match = re.fullmatch(r"(\d+)/(\d+)", text.strip())
    if not match:
        raise ValueError(f"shard must look like K/N (e.g. 2/4), got {text!r}")
    return validate_shard(int(match.group(1)), int(match.group(2)))


@dataclass(frozen=True)
class RunUnit:
    """One executable unit: an experiment on a workload under one backend."""

    experiment: str
    workload: str
    backend: str
    params_json: str

    @property
    def params(self) -> dict:
        return json.loads(self.params_json)

    @property
    def unit_id(self) -> str:
        digest = hashlib.sha256(
            canonical_json(
                {
                    "experiment": self.experiment,
                    "workload": self.workload,
                    "backend": self.backend,
                    "params": json.loads(self.params_json),
                }
            ).encode()
        ).hexdigest()[:10]
        return (
            f"{self.experiment}--{_slug(self.workload)}--{_slug(self.backend)}"
            f"--{digest}"
        )

    def as_dict(self) -> dict:
        return {
            "unit_id": self.unit_id,
            "experiment": self.experiment,
            "workload": self.workload,
            "backend": self.backend,
            "params": self.params,
        }


@dataclass
class ManifestSpec:
    """What to reproduce: the cross product the manifest expands.

    ``params`` maps experiment names to parameter overrides merged over each
    experiment's registered defaults (e.g. ``{"fig13": {"capacities_kib":
    [16, 66.5]}}``).  A value may also be a *list* of override dicts, which
    expands that experiment into one unit per variant -- how a design-space
    sweep shards its config space across units (``{"dse": [{"slice": [1, 2]},
    {"slice": [2, 2]}]}``).
    """

    workloads: tuple = DEFAULT_WORKLOADS
    experiments: tuple = PAPER_EXPERIMENTS
    backends: tuple = ("auto",)
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.workloads = tuple(self.workloads)
        self.experiments = tuple(self.experiments)
        self.backends = tuple(self.backends)
        if not self.workloads:
            raise ValueError("spec needs at least one workload")
        if not self.experiments:
            raise ValueError("spec needs at least one experiment")
        if not self.backends:
            raise ValueError("spec needs at least one backend")

    def as_dict(self) -> dict:
        return {
            "workloads": list(self.workloads),
            "experiments": list(self.experiments),
            "backends": list(self.backends),
            "params": json.loads(canonical_json(self.params)),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ManifestSpec":
        return cls(
            workloads=tuple(data["workloads"]),
            experiments=tuple(data["experiments"]),
            backends=tuple(data["backends"]),
            params=dict(data.get("params", {})),
        )


class RunManifest:
    """Deterministic expansion of a :class:`ManifestSpec` into run units."""

    def __init__(self, spec: ManifestSpec, units: list):
        self.spec = spec
        self.units = units

    @classmethod
    def from_spec(cls, spec: ManifestSpec) -> "RunManifest":
        units = []
        seen = set()
        for experiment_name in spec.experiments:
            experiment = get_experiment(experiment_name)
            overrides = spec.params.get(experiment_name, {})
            variants = overrides if isinstance(overrides, list) else [overrides]
            if not variants:
                raise ValueError(
                    f"params for experiment {experiment_name!r} is an empty "
                    "variant list; omit the key or provide at least one dict"
                )
            for variant in variants:
                params = dict(experiment.default_params)
                params.update(variant)
                # Round-trip through JSON so tuples/ints normalise exactly
                # like a manifest reloaded from disk would.
                params_json = canonical_json(json.loads(canonical_json(params)))
                if experiment.validate_params is not None:
                    # Validate the normalised form -- the dict a unit will
                    # actually be built from, whether the spec came from the
                    # CLI or a hand-edited run.json.
                    experiment.validate_params(json.loads(params_json))
                backends = spec.backends if experiment.uses_search else (NO_BACKEND,)
                # An experiment may pin its own workloads (e.g. ``traffic``
                # only runs on its LLM serving mix); otherwise the spec's
                # workload list applies.
                workloads = (
                    experiment.workloads
                    if experiment.workloads is not None
                    else spec.workloads
                )
                for workload in workloads:
                    for backend in backends:
                        unit = RunUnit(
                            experiment=experiment_name,
                            workload=workload,
                            backend=backend,
                            params_json=params_json,
                        )
                        if unit.unit_id in seen:
                            continue
                        seen.add(unit.unit_id)
                        units.append(unit)
        return cls(spec, units)

    def __len__(self) -> int:
        return len(self.units)

    def unit_ids(self) -> set:
        return {unit.unit_id for unit in self.units}

    def hash_ordered(self) -> list:
        """Units sorted by the SHA-256 of their IDs (the shard order)."""
        return sorted(
            self.units,
            key=lambda unit: (
                hashlib.sha256(unit.unit_id.encode()).hexdigest(),
                unit.unit_id,
            ),
        )

    def shard(self, index: int, count: int) -> list:
        """Contiguous-hash partition: the ``index``-th of ``count`` slices."""
        validate_shard(index, count)
        ordered = self.hash_ordered()
        start = (index - 1) * len(ordered) // count
        end = index * len(ordered) // count
        return ordered[start:end]

    # ------------------------------------------------------------ persistence

    def to_json(self) -> str:
        """Deterministic manifest document (the merged-tree identity anchor)."""
        document = {
            "format": "repro-run-manifest-v1",
            "spec": self.spec.as_dict(),
            "units": [unit.as_dict() for unit in self.units],
        }
        return json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        document = json.loads(text)
        if document.get("format") != "repro-run-manifest-v1":
            raise ValueError("not a repro run manifest")
        spec = ManifestSpec.from_dict(document["spec"])
        manifest = cls.from_spec(spec)
        stored = [unit["unit_id"] for unit in document["units"]]
        expanded = [unit.unit_id for unit in manifest.units]
        if stored != expanded:
            raise ValueError(
                "manifest units do not match their spec expansion; the file "
                "was hand-edited or written by an incompatible version"
            )
        return manifest
