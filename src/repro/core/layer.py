"""Convolutional layer description.

The paper (Fig. 1 / Fig. 2) characterises a convolutional layer by the batch
size ``B``, the input channel count ``Ci``, the input spatial size
``Hi x Wi``, the output channel count ``Co``, the kernel spatial size
``Hk x Wk``, the stride ``D`` and (implicitly) zero padding.  Everything in
this repository consumes :class:`ConvLayer` objects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

WEIGHT_KINDS = ("weights", "kv_cache", "activation")
"""What the layer's weight tensor physically is.

``weights``
    Learned parameters (the default; every CNN/FC layer).
``kv_cache``
    A per-session KV-cache slice: in decode-step attention matmuls the
    "weight" operand is the cached K or V tensor of one session, so its
    DRAM reads are serving-state traffic, not model-parameter traffic.
``activation``
    A transient activation acting as the stationary operand (e.g. the
    score matrix of prefill attention).

The kind never changes the traffic a tiling incurs -- the tiling model is
shape-only -- it only classifies *whose* words the ``weight_reads`` column
of a :class:`~repro.core.traffic.TrafficBreakdown` counts, so analysis can
split learned-weight reads from KV-cache reads (see
:func:`repro.core.traffic.classify_weight_reads`).
"""


@dataclass(frozen=True)
class ConvLayer:
    """Shape description of one convolutional layer.

    Parameters mirror the paper's notation.  ``stride`` is the paper's ``D``
    and ``padding`` is the symmetric zero padding applied to both spatial
    input dimensions (VGG uses padding 1 with 3x3 kernels).

    A fully-connected layer is a convolution with ``Hk = Hi``, ``Wk = Wi``
    and unit output spatial size; use :meth:`from_fc`.

    ``weight_kind`` tags what the weight tensor is (learned weights by
    default, or a KV-cache slice / activation for LLM attention matmuls).
    It is metadata for traffic attribution only: it is excluded from the
    engine's layer signature, so it never affects cache keys, search
    results, or goldens.
    """

    name: str
    batch: int
    in_channels: int
    in_height: int
    in_width: int
    out_channels: int
    kernel_height: int
    kernel_width: int
    stride: int = 1
    padding: int = 0
    weight_kind: str = "weights"

    def __post_init__(self) -> None:
        positive_fields = {
            "batch": self.batch,
            "in_channels": self.in_channels,
            "in_height": self.in_height,
            "in_width": self.in_width,
            "out_channels": self.out_channels,
            "kernel_height": self.kernel_height,
            "kernel_width": self.kernel_width,
            "stride": self.stride,
        }
        for field_name, value in positive_fields.items():
            if value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be >= 0, got {self.padding}")
        if self.kernel_height > self.in_height + 2 * self.padding:
            raise ValueError("kernel taller than padded input")
        if self.kernel_width > self.in_width + 2 * self.padding:
            raise ValueError("kernel wider than padded input")
        if self.weight_kind not in WEIGHT_KINDS:
            raise ValueError(
                f"weight_kind must be one of {WEIGHT_KINDS}, got {self.weight_kind!r}"
            )

    # ------------------------------------------------------------------ shapes

    @property
    def out_height(self) -> int:
        """``Ho`` -- number of output rows."""
        return (self.in_height + 2 * self.padding - self.kernel_height) // self.stride + 1

    @property
    def out_width(self) -> int:
        """``Wo`` -- number of output columns."""
        return (self.in_width + 2 * self.padding - self.kernel_width) // self.stride + 1

    @property
    def output_positions(self) -> int:
        """Spatial output positions per channel per image (``Ho * Wo``)."""
        return self.out_height * self.out_width

    # ----------------------------------------------------------------- volumes

    @property
    def num_inputs(self) -> int:
        """Total number of input activations (words) in the layer."""
        return self.batch * self.in_channels * self.in_height * self.in_width

    @property
    def num_weights(self) -> int:
        """Total number of weights (words) in the layer."""
        return self.out_channels * self.in_channels * self.kernel_height * self.kernel_width

    @property
    def num_outputs(self) -> int:
        """Total number of output activations (words) in the layer."""
        return self.batch * self.out_channels * self.output_positions

    @property
    def kv_cache_words(self) -> int:
        """Words of KV-cache state this layer's weight tensor holds.

        Zero unless ``weight_kind == "kv_cache"``; a decode-attention matmul
        built by :func:`~repro.workloads.llm.llama_decode_layers` stores one
        session's cached K (or V) tensor as its weight operand, so the whole
        weight volume is serving state.
        """
        return self.num_weights if self.weight_kind == "kv_cache" else 0

    @property
    def macs(self) -> int:
        """Number of multiply-accumulate operations (Lemma 1 divided by two)."""
        return (
            self.num_outputs
            * self.in_channels
            * self.kernel_height
            * self.kernel_width
        )

    @property
    def dag_internal_nodes(self) -> int:
        """Number of internal + output nodes of the layer DAG (Lemma 1)."""
        return 2 * self.macs

    # ------------------------------------------------------------------- reuse

    @property
    def window_reuse(self) -> float:
        """Sliding-window reuse factor ``R = Wk*Hk / D^2`` (Eq. (2)).

        The reuse cannot exceed the number of sliding windows an input can
        actually fall into, which for a layer with very small output maps is
        bounded by ``Ho * Wo``; Eq. (2) already captures the common case and
        matches the paper, so no extra clamping is applied beyond ``>= 1``.
        """
        return max(1.0, (self.kernel_height * self.kernel_width) / float(self.stride ** 2))

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_fc(
        cls,
        name: str,
        batch: int,
        in_features: int,
        out_features: int,
        weight_kind: str = "weights",
    ) -> "ConvLayer":
        """Describe a fully-connected layer as a 1x1-output convolution.

        The unfolded-matrix view of Section III-A makes an FC layer a plain
        matrix multiplication (``R = 1``).  ``weight_kind`` tags what the
        ``in_features x out_features`` weight operand is -- LLM decode
        attention passes ``"kv_cache"`` because that operand is the cached
        K/V tensor of a serving session rather than learned parameters.
        """
        return cls(
            name=name,
            batch=batch,
            in_channels=in_features,
            in_height=1,
            in_width=1,
            out_channels=out_features,
            kernel_height=1,
            kernel_width=1,
            stride=1,
            padding=0,
            weight_kind=weight_kind,
        )

    def with_batch(self, batch: int) -> "ConvLayer":
        """Return a copy of this layer with a different batch size."""
        return replace(self, batch=batch)

    # ------------------------------------------------------------------- misc

    def input_patch_size(self, out_rows: int, out_cols: int) -> int:
        """Input words needed (per image, per input channel) to produce an
        ``out_rows x out_cols`` output patch (the ``x' * y'`` of Fig. 6)."""
        rows = (out_rows - 1) * self.stride + self.kernel_height
        cols = (out_cols - 1) * self.stride + self.kernel_width
        return rows * cols

    def arithmetic_intensity(self) -> float:
        """MACs per word touched when every tensor is read/written exactly once."""
        total_words = self.num_inputs + self.num_weights + self.num_outputs
        return self.macs / total_words

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return (
            f"{self.name}: B={self.batch} Ci={self.in_channels} "
            f"{self.in_height}x{self.in_width} -> Co={self.out_channels} "
            f"{self.out_height}x{self.out_width}, kernel "
            f"{self.kernel_height}x{self.kernel_width}, stride {self.stride}, "
            f"pad {self.padding}, {self.macs / 1e6:.1f} MMACs"
        )


def total_macs(layers: list) -> int:
    """Sum of MACs over a list of :class:`ConvLayer`."""
    return sum(layer.macs for layer in layers)


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division used throughout the tiled traffic models."""
    if b <= 0:
        raise ValueError("divisor must be positive")
    return -(-a // b)


def words_to_kib(words: int, bytes_per_word: int = 2) -> float:
    """Convert a word count to KiB (the paper uses 16-bit words)."""
    return words * bytes_per_word / 1024.0


def kib_to_words(kib: float, bytes_per_word: int = 2) -> int:
    """Convert a KiB capacity to a word count (16-bit words by default)."""
    return int(math.floor(kib * 1024.0 / bytes_per_word))
