"""Communication lower bounds (Sections III and IV of the paper).

* :func:`theorem2_lower_bound` -- the asymptotic off-chip bound of Theorem 2,
  ``Q_DRAM = Omega(B*Wo*Ho*Co*Wk*Hk*Ci / sqrt(R*S))``.
* :func:`practical_lower_bound` -- the achievable form of Eq. (15):
  ``2*B*Wo*Ho*Co*Wk*Hk*Ci / sqrt(R*S) + B*Wo*Ho*Co``.
* :func:`gbuf_lower_bound` -- the GBuf bound of Section IV-B1 (loaded inputs
  and weights are read exactly once).
* :func:`reg_lower_bound` -- the register bound of Eq. (16) (one register
  write per MAC).
* :func:`naive_traffic` -- off-chip traffic of a reuse-free implementation
  (``2 * #MACs``), the reference the bound divides by ``sqrt(R*S)``.

All quantities are in words (16-bit entries in the paper's accelerator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.layer import ConvLayer


@dataclass(frozen=True)
class BoundReport:
    """All bounds for one layer under a given effective on-chip capacity."""

    layer_name: str
    on_chip_words: int
    theorem2: float
    practical: float
    ideal: float
    naive: float
    gbuf: float
    reg: int

    def reduction_factor(self) -> float:
        """Traffic reduction of the bound relative to the naive implementation."""
        return self.naive / self.practical if self.practical else float("inf")


def naive_traffic(layer: ConvLayer) -> int:
    """Off-chip traffic of a convolution with no data reuse at all.

    Every MAC reads one input and one weight from DRAM: ``2 * #MACs`` words
    (output writes are a lower-order term the paper omits here).
    """
    return 2 * layer.macs


def ideal_traffic(layer: ConvLayer) -> int:
    """Off-chip traffic when every tensor is touched exactly once.

    This is the unconditional minimum (requires the on-chip memory to hold an
    entire operand tensor); the paper cites [36] for the memory needed to
    reach it.
    """
    return layer.num_inputs + layer.num_weights + layer.num_outputs


def theorem2_lower_bound(layer: ConvLayer, on_chip_words: int) -> float:
    """Asymptotic lower bound of Theorem 2 (Eq. (13)), in words.

    ``on_chip_words`` is the effective on-chip memory ``S`` in words.
    """
    if on_chip_words < 1:
        raise ValueError("on-chip capacity must be at least one word")
    numerator = layer.macs  # B*Wo*Ho*Co*Wk*Hk*Ci
    return numerator / math.sqrt(layer.window_reuse * on_chip_words)


def practical_lower_bound(layer: ConvLayer, on_chip_words: int) -> float:
    """Achievable lower bound of Eq. (15), in words.

    ``2*B*Wo*Ho*Co*Wk*Hk*Ci / sqrt(R*S) + B*Wo*Ho*Co`` with ``u*z = S``.  The
    result is additionally clamped from below by the ideal once-through
    traffic: no schedule can read a tensor less than once.
    """
    if on_chip_words < 1:
        raise ValueError("on-chip capacity must be at least one word")
    read_bound = 2.0 * layer.macs / math.sqrt(layer.window_reuse * on_chip_words)
    write_bound = float(layer.num_outputs)
    bound = read_bound + write_bound
    return max(bound, float(ideal_traffic(layer)))


def gbuf_lower_bound(dram_input_reads: float, dram_weight_reads: float) -> float:
    """GBuf communication lower bound (Section IV-B1).

    Everything loaded from DRAM into the GBuf must be written once and read
    once by the PEs; Psums never touch the GBuf.  The bound therefore equals
    twice the DRAM read volume of inputs and weights.
    """
    return 2.0 * (dram_input_reads + dram_weight_reads)


def reg_lower_bound(layer: ConvLayer) -> int:
    """Register communication lower bound of Eq. (16): one write per MAC."""
    return layer.macs


def bound_report(layer: ConvLayer, on_chip_words: int) -> BoundReport:
    """Bundle every bound for ``layer`` under ``on_chip_words`` of memory."""
    practical = practical_lower_bound(layer, on_chip_words)
    # The practical bound's read portion splits evenly between inputs and
    # weights when b*x*y = R*z holds; use it to seed the GBuf bound.
    read_portion = max(practical - layer.num_outputs, 0.0)
    return BoundReport(
        layer_name=layer.name,
        on_chip_words=on_chip_words,
        theorem2=theorem2_lower_bound(layer, on_chip_words),
        practical=practical,
        ideal=float(ideal_traffic(layer)),
        naive=float(naive_traffic(layer)),
        gbuf=gbuf_lower_bound(read_portion / 2.0, read_portion / 2.0),
        reg=reg_lower_bound(layer),
    )


def network_lower_bound(layers: list, on_chip_words: int) -> float:
    """Sum of per-layer practical lower bounds over a network, in words."""
    return sum(practical_lower_bound(layer, on_chip_words) for layer in layers)


def kv_cache_read_floor(layers: list) -> int:
    """Unconditional DRAM read floor contributed by KV-cache operands, in words.

    A decode step must consult every cached K/V word of its session at least
    once, and -- unlike learned weights, which are shared by every image of a
    batch -- a session's cache is private, so batching concurrent sessions
    buys no reuse across them.  The floor is therefore simply the sum of
    ``kv_cache_words`` over the layers (each KV-tagged matmul already models
    exactly one session group's cache slice).  This term survives unchanged
    inside :func:`practical_lower_bound`'s ideal clamp: for a KV-tagged
    ``from_fc`` layer ``num_weights`` *is* the cache slice, so the per-layer
    ideal traffic already counts each cached word once.
    """
    return sum(layer.kv_cache_words for layer in layers)


def network_kv_fraction(layers: list, on_chip_words: int) -> float:
    """Fraction of the network's practical lower bound that is KV-cache reads.

    A quick "how KV-bound is this workload?" diagnostic: the KV read floor of
    :func:`kv_cache_read_floor` divided by the summed practical bound.  Zero
    for any network without KV-tagged layers.
    """
    total = network_lower_bound(layers, on_chip_words)
    if not total:
        return 0.0
    return kv_cache_read_floor(layers) / total
