"""Core analytical models: layers, tiling, lower bounds, and the optimal dataflow.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.layer` -- convolutional/FC layer descriptions.
* :mod:`repro.core.mm_conversion` -- the convolution-to-matrix-multiplication
  relation (Section III-A) and the sliding-window reuse factor ``R``.
* :mod:`repro.core.matmul` -- a communication-optimal blocked matrix
  multiplication with traffic counting (the ``R = 1`` special case).
* :mod:`repro.core.pebble` -- a small executable red-blue pebble game /
  S-partition substrate (Section II-C).
* :mod:`repro.core.lower_bound` -- Theorem 2, the practical bound of Eq. (15),
  and the GBuf / register bounds of Section IV.
* :mod:`repro.core.tiling` -- the ``{b, z, y, x, k}`` tiling abstraction.
* :mod:`repro.core.optimal_dataflow` -- tiling selection and the exact DRAM
  traffic of the proposed dataflow (Eq. (14)).
"""

from repro.core.layer import ConvLayer
from repro.core.tiling import Tiling
from repro.core.lower_bound import (
    theorem2_lower_bound,
    practical_lower_bound,
    naive_traffic,
    reg_lower_bound,
    gbuf_lower_bound,
    kv_cache_read_floor,
    network_kv_fraction,
)
from repro.core.optimal_dataflow import choose_tiling, dataflow_traffic
from repro.core.traffic import classified_traffic, classify_weight_reads

__all__ = [
    "ConvLayer",
    "Tiling",
    "theorem2_lower_bound",
    "practical_lower_bound",
    "naive_traffic",
    "reg_lower_bound",
    "gbuf_lower_bound",
    "kv_cache_read_floor",
    "network_kv_fraction",
    "choose_tiling",
    "dataflow_traffic",
    "classified_traffic",
    "classify_weight_reads",
]
