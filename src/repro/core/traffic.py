"""Traffic bookkeeping shared by every dataflow model.

All dataflow models in this repository report DRAM traffic as a
:class:`TrafficBreakdown`: how many words of inputs / weights are read, and
how many words of outputs (or partial sums) are read and written.  Words are
16-bit entries, matching the paper's accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_WORD = 2
"""The paper uses 16-bit fixed-point arithmetic throughout."""


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM traffic of one layer under one dataflow, in words."""

    input_reads: float = 0.0
    weight_reads: float = 0.0
    output_reads: float = 0.0
    output_writes: float = 0.0

    @property
    def reads(self) -> float:
        """Total words read from DRAM."""
        return self.input_reads + self.weight_reads + self.output_reads

    @property
    def writes(self) -> float:
        """Total words written to DRAM."""
        return self.output_writes

    @property
    def total(self) -> float:
        """Total DRAM traffic in words."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> float:
        """Total DRAM traffic in bytes (16-bit words)."""
        return self.total * BYTES_PER_WORD

    @property
    def output_traffic(self) -> float:
        """Outputs / partial sums moved in either direction."""
        return self.output_reads + self.output_writes

    def __add__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        if not isinstance(other, TrafficBreakdown):
            return NotImplemented
        return TrafficBreakdown(
            input_reads=self.input_reads + other.input_reads,
            weight_reads=self.weight_reads + other.weight_reads,
            output_reads=self.output_reads + other.output_reads,
            output_writes=self.output_writes + other.output_writes,
        )

    def scaled(self, factor: float) -> "TrafficBreakdown":
        """Return the breakdown scaled by ``factor`` (used for compression models)."""
        return TrafficBreakdown(
            input_reads=self.input_reads * factor,
            weight_reads=self.weight_reads * factor,
            output_reads=self.output_reads * factor,
            output_writes=self.output_writes * factor,
        )


def sum_traffic(parts: list) -> TrafficBreakdown:
    """Sum a list of :class:`TrafficBreakdown` (e.g. over a network's layers)."""
    total = TrafficBreakdown()
    for part in parts:
        total = total + part
    return total
