"""Traffic bookkeeping shared by every dataflow model.

All dataflow models in this repository report DRAM traffic as a
:class:`TrafficBreakdown`: how many words of inputs / weights are read, and
how many words of outputs (or partial sums) are read and written.  Words are
16-bit entries, matching the paper's accelerator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

BYTES_PER_WORD = 2
"""The paper uses 16-bit fixed-point arithmetic throughout."""


def bytes_per_cycle_fraction(bandwidth_bytes_per_s, clock_hz) -> Fraction:
    """Exact DRAM bytes-per-cycle as a :class:`~fractions.Fraction`.

    Cycle counts must stay exact integers end-to-end (the timing simulator's
    bit-identity proofs depend on it), so the bandwidth/clock ratio is kept
    rational instead of a float: ``6.4e9 / 500e6`` becomes ``Fraction(64, 5)``
    and every transfer duration is an exact ceiling division.  ``math.inf``
    passes through unchanged and means "transfers are free".
    """
    if bandwidth_bytes_per_s == math.inf:
        return math.inf
    if not bandwidth_bytes_per_s > 0:
        raise ValueError(
            f"DRAM bandwidth must be positive, got {bandwidth_bytes_per_s!r}"
        )
    return Fraction(bandwidth_bytes_per_s) / Fraction(clock_hz)


def cycles_for_bytes(nbytes: int, bytes_per_cycle) -> int:
    """Exact ``ceil(nbytes / bytes_per_cycle)`` as an ``int``.

    ``bytes_per_cycle`` is a :func:`bytes_per_cycle_fraction` result; zero
    bytes or infinite bandwidth take zero cycles.
    """
    if nbytes <= 0 or bytes_per_cycle == math.inf:
        return 0
    ratio = Fraction(nbytes) / bytes_per_cycle
    return -(-ratio.numerator // ratio.denominator)


@dataclass(frozen=True)
class TrafficBreakdown:
    """DRAM traffic of one layer under one dataflow, in words."""

    input_reads: float = 0.0
    weight_reads: float = 0.0
    output_reads: float = 0.0
    output_writes: float = 0.0

    @property
    def reads(self) -> float:
        """Total words read from DRAM."""
        return self.input_reads + self.weight_reads + self.output_reads

    @property
    def writes(self) -> float:
        """Total words written to DRAM."""
        return self.output_writes

    @property
    def total(self) -> float:
        """Total DRAM traffic in words."""
        return self.reads + self.writes

    @property
    def total_bytes(self) -> float:
        """Total DRAM traffic in bytes (16-bit words)."""
        return self.total * BYTES_PER_WORD

    @property
    def output_traffic(self) -> float:
        """Outputs / partial sums moved in either direction."""
        return self.output_reads + self.output_writes

    def __add__(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        if not isinstance(other, TrafficBreakdown):
            return NotImplemented
        return TrafficBreakdown(
            input_reads=self.input_reads + other.input_reads,
            weight_reads=self.weight_reads + other.weight_reads,
            output_reads=self.output_reads + other.output_reads,
            output_writes=self.output_writes + other.output_writes,
        )

    def scaled(self, factor: float) -> "TrafficBreakdown":
        """Return the breakdown scaled by ``factor`` (used for compression models)."""
        return TrafficBreakdown(
            input_reads=self.input_reads * factor,
            weight_reads=self.weight_reads * factor,
            output_reads=self.output_reads * factor,
            output_writes=self.output_writes * factor,
        )


def sum_traffic(parts: list) -> TrafficBreakdown:
    """Sum a list of :class:`TrafficBreakdown` (e.g. over a network's layers)."""
    total = TrafficBreakdown()
    for part in parts:
        total = total + part
    return total


def classify_weight_reads(layer, traffic: TrafficBreakdown) -> dict:
    """Attribute a layer's ``weight_reads`` to what the weight tensor is.

    The tiling model is shape-only, so a decode-step attention matmul whose
    "weights" are really one session's KV cache produces the same
    :class:`TrafficBreakdown` as a learned-weight FC of the same shape.  This
    helper splits the reads by the layer's ``weight_kind`` tag so reports can
    answer "how much of this traffic is model parameters vs. serving state?".
    """
    split = {"weights": 0.0, "kv_cache": 0.0, "activation": 0.0}
    split[getattr(layer, "weight_kind", "weights")] = traffic.weight_reads
    return split


def classified_traffic(layers: list, breakdowns: list, weights: list = None) -> dict:
    """Aggregate per-layer traffic with weight reads attributed by kind.

    ``layers`` and ``breakdowns`` are parallel lists; ``weights`` optionally
    scales each pair (a traffic mix passes occurrence counts).  Returns a flat
    dict of word totals: ``input_reads``, ``weight_reads`` (learned
    parameters only), ``kv_cache_reads``, ``activation_reads`` (stationary
    activations counted as weights by the tiling model), ``output_reads``,
    ``output_writes`` and ``total``.
    """
    if len(layers) != len(breakdowns):
        raise ValueError(
            f"layers and breakdowns must be parallel, got {len(layers)} vs {len(breakdowns)}"
        )
    if weights is None:
        weights = [1] * len(layers)
    elif len(weights) != len(layers):
        raise ValueError(
            f"weights must be parallel to layers, got {len(weights)} vs {len(layers)}"
        )
    totals = {
        "input_reads": 0.0,
        "weight_reads": 0.0,
        "kv_cache_reads": 0.0,
        "activation_reads": 0.0,
        "output_reads": 0.0,
        "output_writes": 0.0,
    }
    kind_column = {
        "weights": "weight_reads",
        "kv_cache": "kv_cache_reads",
        "activation": "activation_reads",
    }
    for layer, part, weight in zip(layers, breakdowns, weights):
        totals["input_reads"] += weight * part.input_reads
        totals[kind_column[getattr(layer, "weight_kind", "weights")]] += (
            weight * part.weight_reads
        )
        totals["output_reads"] += weight * part.output_reads
        totals["output_writes"] += weight * part.output_writes
    totals["total"] = sum(totals.values())
    return totals
