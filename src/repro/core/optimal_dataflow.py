"""The paper's communication-optimal dataflow (Section IV-A).

The dataflow keeps an output block of ``u x z`` Psums (``u = b*x*y``)
resident on chip and streams matching slices of inputs and weights, one input
channel (``k = 1``) at a time.  Its DRAM traffic for a tiling ``{b,z,y,x,k}``
is Eq. (14):

    Q_read = ceil(B/b)*ceil(Co/z)*ceil(Ho/y)*ceil(Wo/x)
             * (Wk*Hk*Ci*z + b*x'*y'*Ci)
    Q_write = B*Ho*Wo*Co

and the traffic is minimised when ``b*x*y ~= R*z`` and ``b*x*y*z ~= S``
(Psums get nearly all of the on-chip memory).

:func:`choose_tiling` implements the paper's selection rule plus a local
refinement search; :func:`dataflow_traffic` evaluates Eq. (14) exactly,
including boundary (partial-tile) effects.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.layer import ConvLayer, ceil_div
from repro.core.tiling import Tiling
from repro.core.traffic import TrafficBreakdown


def dataflow_traffic(layer: ConvLayer, tiling: Tiling, exact: bool = True) -> TrafficBreakdown:
    """DRAM traffic of the proposed dataflow for ``tiling`` (Eq. (14)).

    When ``exact`` is true the block counts use ceiling division and partial
    edge blocks are clipped to the tensor boundary, which is what the
    accelerator actually does; otherwise the closed-form approximation of the
    paper is returned.
    """
    tiling = tiling.clip(layer)
    if exact:
        return _exact_traffic(layer, tiling)
    blocks = (
        (layer.batch / tiling.b)
        * (layer.out_channels / tiling.z)
        * (layer.out_height / tiling.y)
        * (layer.out_width / tiling.x)
    )
    weight_reads = blocks * layer.kernel_height * layer.kernel_width * layer.in_channels * tiling.z
    input_reads = blocks * tiling.b * tiling.input_patch(layer) * layer.in_channels
    return TrafficBreakdown(
        input_reads=input_reads,
        weight_reads=weight_reads,
        output_reads=0.0,
        output_writes=float(layer.num_outputs),
    )


def _exact_traffic(layer: ConvLayer, tiling: Tiling) -> TrafficBreakdown:
    """Eq. (14) with integer block counts and boundary-clipped edge tiles."""
    input_reads = 0
    weight_reads = 0
    kernel_area = layer.kernel_height * layer.kernel_width

    # Iterate over the distinct tile shapes along each dimension instead of
    # every block: edge tiles may be smaller, interior tiles all match.
    for b_size, b_count in _tile_shapes(layer.batch, tiling.b):
        for z_size, z_count in _tile_shapes(layer.out_channels, tiling.z):
            for y_size, y_count in _tile_shapes(layer.out_height, tiling.y):
                for x_size, x_count in _tile_shapes(layer.out_width, tiling.x):
                    blocks = b_count * z_count * y_count * x_count
                    rows = (y_size - 1) * layer.stride + layer.kernel_height
                    cols = (x_size - 1) * layer.stride + layer.kernel_width
                    input_reads += blocks * b_size * rows * cols * layer.in_channels
                    weight_reads += blocks * kernel_area * layer.in_channels * z_size
    return TrafficBreakdown(
        input_reads=float(input_reads),
        weight_reads=float(weight_reads),
        output_reads=0.0,
        output_writes=float(layer.num_outputs),
    )


def _tile_shapes(extent: int, tile: int) -> list:
    """Distinct (tile size, count) pairs when tiling ``extent`` by ``tile``."""
    tile = min(tile, extent)
    full = extent // tile
    remainder = extent - full * tile
    shapes = []
    if full:
        shapes.append((tile, full))
    if remainder:
        shapes.append((remainder, 1))
    return shapes


@dataclass(frozen=True)
class TilingChoice:
    """A tiling together with the traffic it produces."""

    tiling: Tiling
    traffic: TrafficBreakdown

    @property
    def total(self) -> float:
        return self.traffic.total


def analytic_tiling(layer: ConvLayer, on_chip_words: int) -> Tiling:
    """The paper's closed-form tiling: ``b*x*y ~= R*z`` and ``b*x*y*z ~= S``.

    Solving the two conditions gives ``z ~= sqrt(S / R)`` and
    ``u = b*x*y ~= sqrt(S * R)``.  The spatial tile is made as square as
    possible; the batch dimension is only used when one image's output plane
    is smaller than ``u`` (the paper's ``u = b*x*y`` fallback).
    """
    reuse = layer.window_reuse
    z = max(1, min(layer.out_channels, int(round(math.sqrt(on_chip_words / reuse)))))
    u_target = max(1, int(round(math.sqrt(on_chip_words * reuse))))

    plane = layer.out_height * layer.out_width
    if u_target <= plane:
        b = 1
        side = max(1, int(round(math.sqrt(u_target))))
        y = min(layer.out_height, side)
        x = min(layer.out_width, max(1, u_target // y))
    else:
        b = min(layer.batch, max(1, u_target // plane))
        y = layer.out_height
        x = layer.out_width
    return Tiling(b=b, z=z, y=y, x=x, k=1)


def choose_tiling(
    layer: ConvLayer,
    on_chip_words: int,
    refine: bool = True,
    psum_words: int = None,
    input_buffer_words: int = None,
    weight_buffer_words: int = None,
) -> TilingChoice:
    """Pick tiling sizes for the proposed dataflow.

    Without the optional capacity arguments, the only constraint is the
    *effective on-chip memory*: Psums + one iteration's inputs and weights
    must fit in ``on_chip_words`` (this is the paper's "our dataflow" curve).
    When ``psum_words`` / ``input_buffer_words`` / ``weight_buffer_words`` are
    given, the tiling additionally respects a fixed memory split (this is the
    "our accelerator implementation" variant, which the paper reports costs an
    extra 3-4 % of DRAM traffic).

    The analytic tiling of Section IV-A seeds a local refinement search over
    neighbouring integer tilings; ``refine=False`` returns the seed directly.
    """
    seed, fits = _seed_and_fits(
        layer, on_chip_words, psum_words, input_buffer_words, weight_buffer_words
    )

    best = TilingChoice(seed, dataflow_traffic(layer, seed))
    if not refine:
        return best

    candidates = _neighbourhood(layer, seed)
    for tiling in candidates:
        tiling = tiling.clip(layer)
        if not fits(tiling):
            continue
        traffic = dataflow_traffic(layer, tiling)
        if traffic.total < best.traffic.total:
            best = TilingChoice(tiling, traffic)
    return best


def _seed_and_fits(
    layer: ConvLayer,
    on_chip_words: int,
    psum_words,
    input_buffer_words,
    weight_buffer_words,
):
    """Shared prelude of both ``choose_tiling`` backends.

    Returns the shrunken analytic seed and the scalar capacity predicate;
    keeping this in one place is what keeps the scalar and vectorized
    searches agreeing on which tilings are admissible.
    """
    if on_chip_words < 8:
        raise ValueError("on-chip capacity too small for any tiling")

    def fits(tiling: Tiling) -> bool:
        tiling = tiling.clip(layer)
        if tiling.on_chip_footprint(layer) > on_chip_words:
            return False
        if psum_words is not None and tiling.output_block_size() > psum_words:
            return False
        if input_buffer_words is not None and tiling.staged_input_words(layer) > input_buffer_words:
            return False
        if weight_buffer_words is not None and tiling.staged_weight_words() > weight_buffer_words:
            return False
        return True

    seed = analytic_tiling(layer, on_chip_words).clip(layer)
    return _shrink_to_fit(layer, seed, fits), fits


def _shrink_to_fit(layer: ConvLayer, tiling: Tiling, fits) -> Tiling:
    """Shrink a seed tiling until it satisfies the capacity predicate."""
    current = tiling
    for _ in range(64):
        if fits(current):
            return current
        # Shrink the largest contributor first: halve the spatial tile, then z.
        if current.x * current.y * current.b > current.z and (current.x > 1 or current.y > 1 or current.b > 1):
            if current.b > 1:
                current = Tiling(max(1, current.b // 2), current.z, current.y, current.x, current.k)
            elif current.y >= current.x:
                current = Tiling(current.b, current.z, max(1, current.y // 2), current.x, current.k)
            else:
                current = Tiling(current.b, current.z, current.y, max(1, current.x // 2), current.k)
        elif current.z > 1:
            current = Tiling(current.b, max(1, current.z // 2), current.y, current.x, current.k)
        else:
            return current
    return current


def _neighbourhood(layer: ConvLayer, seed: Tiling) -> list:
    """Integer tilings near the analytic seed (plus a few global candidates)."""
    z_values = _around(seed.z, layer.out_channels)
    y_values = _around(seed.y, layer.out_height)
    x_values = _around(seed.x, layer.out_width)
    b_values = _around(seed.b, layer.batch)
    candidates = []
    for b in b_values:
        for z in z_values:
            for y in y_values:
                for x in x_values:
                    candidates.append(Tiling(b=b, z=z, y=y, x=x, k=1))
    return candidates


def _around(value: int, limit: int) -> list:
    """Candidate values near ``value``: scaled, incremented and the extremes."""
    raw = {1, limit, value}
    for scale in (0.5, 0.75, 1.25, 1.5, 2.0):
        raw.add(int(round(value * scale)))
    for delta in (-2, -1, 1, 2):
        raw.add(value + delta)
    divisor_candidates = [d for d in range(max(1, value - 4), value + 5) if d >= 1]
    raw.update(divisor_candidates)
    return sorted({min(limit, max(1, v)) for v in raw})


def traffic_at_capacity(layer: ConvLayer, on_chip_words: int) -> TrafficBreakdown:
    """Convenience wrapper: best-found traffic of the dataflow at capacity ``S``."""
    return choose_tiling(layer, on_chip_words).traffic


# --------------------------------------------------------- vectorized backend


def choose_tiling_grid(
    layer: ConvLayer,
    on_chip_words: int,
    psum_words: int = None,
    input_buffer_words: int = None,
    weight_buffer_words: int = None,
) -> TilingChoice:
    """NumPy-vectorized :func:`choose_tiling`, bit-identical to the scalar one.

    The analytic seed and its :func:`_shrink_to_fit` repair stay scalar (they
    are O(1)); the expensive part -- evaluating the exact Eq. (14) traffic of
    every tiling in the refinement neighbourhood -- is done as array
    arithmetic.  The nested-loop accumulation of :func:`_exact_traffic` is
    separable over the four tiled dimensions, which gives the closed form

    ``input_reads  = Ci * B * Nz * (D*Ho + (Hk-D)*Ny) * (D*Wo + (Wk-D)*Nx)``
    ``weight_reads = Hk*Wk * Ci * Co * Nb * Ny * Nx``

    with ``N* = ceil(extent / tile)`` -- exact integers, identical to summing
    the boundary-clipped tiles one by one.  Ties follow the scalar rule: the
    seed wins, then the earliest neighbourhood candidate (``numpy.argmin``
    returns the first minimum, the scalar loop replaces only on strictly
    smaller totals).
    """
    from repro.dataflows.grid import meshgrid_ravel, require_numpy

    np = require_numpy()
    seed, _ = _seed_and_fits(
        layer, on_chip_words, psum_words, input_buffer_words, weight_buffer_words
    )

    # Candidate arrays in scalar enumeration order, the seed prepended at
    # index 0 (the scalar search starts from the seed unconditionally, even
    # when the shrunken seed still violates the capacity predicate).
    b, z, y, x = meshgrid_ravel(
        _around(seed.b, layer.batch),
        _around(seed.z, layer.out_channels),
        _around(seed.y, layer.out_height),
        _around(seed.x, layer.out_width),
    )
    b = np.concatenate(([seed.b], b))
    z = np.concatenate(([seed.z], z))
    y = np.concatenate(([seed.y], y))
    x = np.concatenate(([seed.x], x))
    # clip(layer): _around already clamps to [1, extent], the seed is clipped;
    # applied anyway so the arrays cannot drift from the scalar semantics.
    b = np.minimum(b, layer.batch)
    z = np.minimum(z, layer.out_channels)
    y = np.minimum(y, layer.out_height)
    x = np.minimum(x, layer.out_width)

    # Array form of the `fits` predicate from _seed_and_fits, term for term
    # (all candidates have k = 1): Tiling.on_chip_footprint = Psum block
    # (output_block_size) + staged inputs (b * x' * y' * k) + staged weights
    # (z * k), then the optional per-buffer caps on the same three terms.
    rows = (y - 1) * layer.stride + layer.kernel_height
    cols = (x - 1) * layer.stride + layer.kernel_width
    staged_inputs = b * rows * cols
    psum_block = b * x * y * z
    mask = (psum_block + staged_inputs + z) <= on_chip_words
    if psum_words is not None:
        mask &= psum_block <= psum_words
    if input_buffer_words is not None:
        mask &= staged_inputs <= input_buffer_words
    if weight_buffer_words is not None:
        mask &= z <= weight_buffer_words
    mask[0] = True  # the seed is the incumbent regardless of feasibility

    ceil = lambda extent, tile: -(-extent // tile)  # noqa: E731 - array ceil-div
    num_b = ceil(layer.batch, b)
    num_z = ceil(layer.out_channels, z)
    num_y = ceil(layer.out_height, y)
    num_x = ceil(layer.out_width, x)
    stride, kh, kw = layer.stride, layer.kernel_height, layer.kernel_width
    input_reads = (
        layer.in_channels
        * layer.batch
        * num_z
        * (stride * layer.out_height + (kh - stride) * num_y)
        * (stride * layer.out_width + (kw - stride) * num_x)
    )
    weight_reads = kh * kw * layer.in_channels * layer.out_channels * num_b * num_y * num_x
    output_writes = float(layer.num_outputs)

    input_f = input_reads.astype(np.float64)
    weight_f = weight_reads.astype(np.float64)
    # Same association order as TrafficBreakdown.total.
    totals = ((input_f + weight_f) + 0.0) + output_writes

    best = int(np.argmin(np.where(mask, totals, np.inf)))
    tiling = Tiling(b=int(b[best]), z=int(z[best]), y=int(y[best]), x=int(x[best]), k=1)
    traffic = TrafficBreakdown(
        input_reads=float(input_f[best]),
        weight_reads=float(weight_f[best]),
        output_reads=0.0,
        output_writes=output_writes,
    )
    return TilingChoice(tiling, traffic)
