"""Convolution-to-matrix-multiplication conversion (Section III-A, Fig. 3).

The paper's derivation rests on viewing a convolutional layer as the matrix
product ``A @ B = C`` where

* ``A`` is the *unfolded* input matrix: one row per sliding window (i.e. per
  output position per image), ``Wk*Hk*Ci`` columns;
* ``B`` is the reshaped weight matrix: ``Wk*Hk*Ci`` rows, ``Co`` columns;
* ``C`` is the reshaped output matrix: ``B*Wo*Ho`` rows, ``Co`` columns.

The conversion is *logically* equivalent but not *algorithmically*
equivalent: the unfolding replicates each input up to ``R = Wk*Hk/D^2`` times
(sliding-window reuse), which is exactly the extra reuse level convolutions
have over matrix multiplications.

This module provides both the dimension bookkeeping used by the analytical
models and a NumPy im2col implementation used by the functional simulator and
the tests to verify numerical equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # NumPy is optional for the analytic core; only the array helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

from repro.core.layer import ConvLayer


def _require_numpy() -> None:
    if np is None:
        raise ImportError(
            "this function operates on real arrays and requires numpy; "
            "the analytic shape helpers in this module work without it"
        )


@dataclass(frozen=True)
class MatMulShape:
    """Dimensions of the converted matrix multiplication ``(m x kk) @ (kk x n)``."""

    m: int
    kk: int
    n: int

    @property
    def flops(self) -> int:
        """Multiply-accumulate count of the product."""
        return self.m * self.kk * self.n

    @property
    def input_matrix_words(self) -> int:
        """Words in the (unfolded) input matrix ``A``."""
        return self.m * self.kk

    @property
    def weight_matrix_words(self) -> int:
        """Words in the weight matrix ``B``."""
        return self.kk * self.n

    @property
    def output_matrix_words(self) -> int:
        """Words in the output matrix ``C``."""
        return self.m * self.n


def conv_to_mm_shape(layer: ConvLayer) -> MatMulShape:
    """Dimensions of the matrix multiplication a layer converts to (Fig. 3)."""
    return MatMulShape(
        m=layer.batch * layer.out_height * layer.out_width,
        kk=layer.kernel_height * layer.kernel_width * layer.in_channels,
        n=layer.out_channels,
    )


def unfolding_expansion(layer: ConvLayer) -> float:
    """Ratio of unfolded-input-matrix words to original input words.

    Equals the *average realised* sliding-window reuse; bounded above by
    ``R = Wk*Hk/D^2`` and approaches it for large feature maps.
    """
    shape = conv_to_mm_shape(layer)
    return shape.input_matrix_words / float(layer.num_inputs)


# --------------------------------------------------------------------------- numpy


def pad_input(inputs: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad an input tensor of shape ``(B, Ci, Hi, Wi)`` spatially."""
    _require_numpy()
    if padding == 0:
        return inputs
    return np.pad(
        inputs,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )


def im2col(inputs: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Unfold an input tensor into the matrix ``A`` of Fig. 3.

    ``inputs`` has shape ``(B, Ci, Hi, Wi)``; the result has shape
    ``(B*Ho*Wo, Ci*Hk*Wk)`` with the column order matching
    :func:`weights_to_matrix` (channel-major, then kernel row, then kernel
    column).
    """
    padded = pad_input(inputs, layer.padding)
    batch, channels, _, _ = padded.shape
    out_h, out_w = layer.out_height, layer.out_width
    stride = layer.stride
    kh, kw = layer.kernel_height, layer.kernel_width

    rows = np.empty((batch * out_h * out_w, channels * kh * kw), dtype=padded.dtype)
    row = 0
    for image in range(batch):
        for oy in range(out_h):
            for ox in range(out_w):
                window = padded[
                    image,
                    :,
                    oy * stride : oy * stride + kh,
                    ox * stride : ox * stride + kw,
                ]
                rows[row] = window.reshape(-1)
                row += 1
    return rows


def weights_to_matrix(weights: np.ndarray) -> np.ndarray:
    """Reshape a weight tensor ``(Co, Ci, Hk, Wk)`` into the matrix ``B``."""
    out_channels = weights.shape[0]
    return weights.reshape(out_channels, -1).T


def outputs_to_matrix(outputs: np.ndarray) -> np.ndarray:
    """Reshape an output tensor ``(B, Co, Ho, Wo)`` into the matrix ``C``."""
    batch, out_channels, out_h, out_w = outputs.shape
    return outputs.transpose(0, 2, 3, 1).reshape(batch * out_h * out_w, out_channels)


def matrix_to_outputs(matrix: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Inverse of :func:`outputs_to_matrix`."""
    return matrix.reshape(
        layer.batch, layer.out_height, layer.out_width, layer.out_channels
    ).transpose(0, 3, 1, 2)


def reference_convolution(inputs: np.ndarray, weights: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Direct 7-loop convolution (Fig. 2), vectorised over the batch.

    Used as the ground truth in tests; shape ``(B, Co, Ho, Wo)``.
    """
    padded = pad_input(inputs, layer.padding)
    out = np.zeros(
        (layer.batch, layer.out_channels, layer.out_height, layer.out_width),
        dtype=np.result_type(inputs, weights),
    )
    for oz in range(layer.out_channels):
        for ky in range(layer.kernel_height):
            for kx in range(layer.kernel_width):
                for kz in range(layer.in_channels):
                    patch = padded[
                        :,
                        kz,
                        ky : ky + layer.out_height * layer.stride : layer.stride,
                        kx : kx + layer.out_width * layer.stride : layer.stride,
                    ]
                    out[:, oz] += patch * weights[oz, kz, ky, kx]
    return out


def convolution_via_mm(inputs: np.ndarray, weights: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Compute the layer by explicit unfold + matrix multiplication."""
    unfolded = im2col(inputs, layer)
    weight_matrix = weights_to_matrix(weights)
    output_matrix = unfolded @ weight_matrix
    return matrix_to_outputs(output_matrix, layer)
