"""Communication-optimal blocked matrix multiplication.

Section III-B shows that with ``R = 1`` a convolutional layer is exactly a
matrix multiplication, and the paper's dataflow degenerates into the
communication-optimal blocked MM of Hong & Kung / Goto: keep an output block
of ~``S`` words resident, stream matching panels of ``A`` and ``B``.

This module provides

* :func:`blocked_mm_traffic` -- the analytic slow-memory traffic of the
  blocked schedule for given block sizes;
* :func:`optimal_block_sizes` -- block sizes that minimise that traffic for a
  fast memory of ``S`` words (square-ish output blocks);
* :func:`mm_lower_bound` -- the classic ``2*m*k*n/sqrt(S)`` bound;
* :class:`CountingBlockedMatMul` -- an executable blocked MM over NumPy
  arrays that counts slow-memory reads/writes so tests can confirm the
  analytic model matches an actual schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

try:  # NumPy is optional for the analytic core; only the array helpers need it.
    import numpy as np
except ImportError:  # pragma: no cover - exercised by the no-NumPy CI job
    np = None

from repro.core.layer import ceil_div


@dataclass(frozen=True)
class MatMulTraffic:
    """Slow-memory traffic of a blocked matrix multiplication, in words."""

    a_reads: int
    b_reads: int
    c_writes: int

    @property
    def total(self) -> int:
        return self.a_reads + self.b_reads + self.c_writes


def mm_lower_bound(m: int, kk: int, n: int, fast_words: int) -> float:
    """Hong-Kung style lower bound ``2*m*kk*n / sqrt(S) + m*n`` words."""
    if fast_words < 1:
        raise ValueError("fast memory must hold at least one word")
    return 2.0 * m * kk * n / math.sqrt(fast_words) + m * n


def blocked_mm_traffic(m: int, kk: int, n: int, block_m: int, block_n: int) -> MatMulTraffic:
    """Traffic of the output-stationary blocked schedule.

    The ``block_m x block_n`` output block stays resident; the corresponding
    ``block_m x kk`` panel of ``A`` and ``kk x block_n`` panel of ``B`` are
    streamed once per block.
    """
    if block_m < 1 or block_n < 1:
        raise ValueError("block sizes must be >= 1")
    block_m = min(block_m, m)
    block_n = min(block_n, n)
    blocks_m = ceil_div(m, block_m)
    blocks_n = ceil_div(n, block_n)
    a_reads = blocks_n * m * kk
    b_reads = blocks_m * kk * n
    c_writes = m * n
    return MatMulTraffic(a_reads=a_reads, b_reads=b_reads, c_writes=c_writes)


def optimal_block_sizes(m: int, kk: int, n: int, fast_words: int) -> tuple:
    """Choose ``(block_m, block_n)`` minimising traffic under ``S`` words.

    The analysis (and the paper's Lemma 2 with ``R = 1``) gives a square
    output block of side ``~sqrt(S)``; the streamed panels need only a
    column/row at a time, so nearly all of ``S`` goes to the output block.
    We search a small neighbourhood of the analytic optimum to account for
    integer effects and the panel buffers (one column of ``A`` and one row of
    ``B`` per accumulation step).
    """
    if fast_words < 4:
        return 1, 1
    side = max(1, int(math.sqrt(fast_words)))
    best = None
    for block_m in _candidate_sizes(side, m):
        for block_n in _candidate_sizes(side, n):
            # one column of the A panel + one row of the B panel are resident
            footprint = block_m * block_n + block_m + block_n
            if footprint > fast_words:
                continue
            traffic = blocked_mm_traffic(m, kk, n, block_m, block_n).total
            key = (traffic, -(block_m * block_n))
            if best is None or key < best[0]:
                best = (key, (block_m, block_n))
    if best is None:
        return 1, 1
    return best[1]


def _candidate_sizes(side: int, limit: int) -> list:
    """Candidate block sizes around the analytic optimum, clipped to ``limit``."""
    raw = {1, limit}
    for scale in (0.25, 0.5, 0.75, 1.0):
        raw.add(max(1, int(side * scale)))
    for delta in range(-3, 4):
        raw.add(max(1, side + delta))
    return sorted(value for value in raw if 1 <= value <= limit)


class CountingBlockedMatMul:
    """Executable output-stationary blocked MM with slow-memory counters.

    The matrices live in "slow memory" (plain NumPy arrays); each element read
    from ``a``/``b`` or written to the result increments a counter.  Reads of
    the resident output block do not count -- the block lives in fast memory
    until complete, exactly as in the paper's dataflow.
    """

    def __init__(self, block_m: int, block_n: int):
        if block_m < 1 or block_n < 1:
            raise ValueError("block sizes must be >= 1")
        self.block_m = block_m
        self.block_n = block_n
        self.a_reads = 0
        self.b_reads = 0
        self.c_writes = 0

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Compute ``a @ b`` block by block, counting slow-memory traffic."""
        if np is None:
            raise ImportError("CountingBlockedMatMul.multiply requires numpy")
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError("incompatible matrix shapes")
        m, kk = a.shape
        _, n = b.shape
        result = np.zeros((m, n), dtype=np.result_type(a, b))
        for row_start in range(0, m, self.block_m):
            row_end = min(row_start + self.block_m, m)
            for col_start in range(0, n, self.block_n):
                col_end = min(col_start + self.block_n, n)
                a_panel = a[row_start:row_end, :]
                b_panel = b[:, col_start:col_end]
                self.a_reads += a_panel.size
                self.b_reads += b_panel.size
                block = a_panel @ b_panel
                result[row_start:row_end, col_start:col_end] = block
                self.c_writes += block.size
        return result

    @property
    def traffic(self) -> MatMulTraffic:
        """Counted traffic so far."""
        return MatMulTraffic(self.a_reads, self.b_reads, self.c_writes)
