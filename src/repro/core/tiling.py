"""Tiling abstraction for the proposed dataflow.

A tiling is the quadruple ``{b, z, y, x}`` of Fig. 7 plus the channel step
``k``.  A tiling partitions the output tensor into blocks of ``b`` images,
``z`` output channels and ``y x x`` output positions; each block is computed
by ``ceil(Ci / k)`` iterations that each load ``k`` input channels' worth of
inputs and weights.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.layer import ConvLayer, ceil_div


@dataclass(frozen=True)
class Tiling:
    """Tiling sizes ``{b, z, y, x, k}`` for the output-block dataflow.

    ``b``: images per block, ``z``: output channels per block, ``y``/``x``:
    output rows/columns per block, ``k``: input channels loaded per iteration.
    """

    b: int
    z: int
    y: int
    x: int
    k: int = 1

    def __post_init__(self) -> None:
        for field_name in ("b", "z", "y", "x", "k"):
            value = getattr(self, field_name)
            if value < 1:
                raise ValueError(f"tiling dimension {field_name} must be >= 1, got {value}")

    # --------------------------------------------------------------- geometry

    def clip(self, layer: ConvLayer) -> "Tiling":
        """Clip the tiling to the layer's dimensions (a tile never exceeds the
        tensor it tiles)."""
        return Tiling(
            b=min(self.b, layer.batch),
            z=min(self.z, layer.out_channels),
            y=min(self.y, layer.out_height),
            x=min(self.x, layer.out_width),
            k=min(self.k, layer.in_channels),
        )

    def output_block_size(self) -> int:
        """Output words (Psums) per block: ``u * z`` with ``u = b*x*y``."""
        return self.b * self.x * self.y * self.z

    def u(self) -> int:
        """The ``u = b*x*y`` side of the output block in the MM view."""
        return self.b * self.x * self.y

    def input_rows(self, layer: ConvLayer) -> int:
        """``y' = (y-1)*D + Hk`` -- input rows needed for ``y`` output rows."""
        return (self.y - 1) * layer.stride + layer.kernel_height

    def input_cols(self, layer: ConvLayer) -> int:
        """``x' = (x-1)*D + Wk`` -- input columns needed for ``x`` output columns."""
        return (self.x - 1) * layer.stride + layer.kernel_width

    def input_patch(self, layer: ConvLayer) -> int:
        """Input words per image per input channel needed for one block."""
        return self.input_rows(layer) * self.input_cols(layer)

    # ---------------------------------------------------------------- footprints

    def iteration_input_words(self, layer: ConvLayer) -> int:
        """Input words loaded per iteration (``b * x' * y' * k``)."""
        return self.b * self.input_patch(layer) * self.k

    def iteration_weight_words(self, layer: ConvLayer) -> int:
        """Weight words loaded per iteration (``z * k * Wk * Hk``)."""
        return self.z * self.k * layer.kernel_height * layer.kernel_width

    def staged_input_words(self, layer: ConvLayer) -> int:
        """Input words that must be staged on chip at once (``b * x' * y' * k``).

        The IGBuf holds one iteration's inputs: one column of the reshaped
        input sub-matrix of Fig. 9.
        """
        return self.iteration_input_words(layer)

    def staged_weight_words(self) -> int:
        """Weight words that must be staged on chip at once (``z * k``).

        Weights are consumed row by row from the reshaped weight sub-matrix
        (Fig. 9): one pass needs only the ``z`` weights of a single kernel
        position, so the WGBuf stages ``z * k`` words, not a whole iteration.
        """
        return self.z * self.k

    def on_chip_footprint(self, layer: ConvLayer) -> int:
        """Effective on-chip words required by this tiling.

        The block's Psums stay resident for the whole block; on top of that
        only the currently staged inputs (one iteration) and weights (one
        pass) occupy on-chip memory -- this matches the effective-memory
        accounting of Eq. (4)/(15), where Psums take nearly all of ``S``.
        """
        return (
            self.output_block_size()
            + self.staged_input_words(layer)
            + self.staged_weight_words()
        )

    # ---------------------------------------------------------------- block counts

    def block_counts(self, layer: ConvLayer) -> tuple:
        """Number of blocks along (batch, out-channel, row, column)."""
        return (
            ceil_div(layer.batch, self.b),
            ceil_div(layer.out_channels, self.z),
            ceil_div(layer.out_height, self.y),
            ceil_div(layer.out_width, self.x),
        )

    def num_blocks(self, layer: ConvLayer) -> int:
        """Total number of output blocks."""
        nb, nz, ny, nx = self.block_counts(layer)
        return nb * nz * ny * nx

    def iterations_per_block(self, layer: ConvLayer) -> int:
        """Channel iterations per block (``ceil(Ci / k)``)."""
        return ceil_div(layer.in_channels, self.k)

    def balance_ratio(self, layer: ConvLayer) -> float:
        """How close the tiling is to the paper's ``b*x*y = R*z`` condition.

        Returns ``u / (R * z)``; 1.0 means perfectly balanced input and weight
        loading volumes.
        """
        return self.u() / (layer.window_reuse * self.z)

    def describe(self) -> str:
        """Human-readable one-line summary."""
        return f"Tiling(b={self.b}, z={self.z}, y={self.y}, x={self.x}, k={self.k})"
