"""Red-blue pebble game / S-partition substrate (Section II-C).

The paper's lower-bound derivation uses Hong & Kung's red-blue pebble game in
its S-partition form.  This module provides a small, executable version of
that machinery:

* :class:`Dag` -- a computation DAG with input nodes and operation nodes.
* :func:`build_conv_dag` -- the DAG of Fig. 4 for a (tiny) convolutional
  layer: inputs, weights, multiplication nodes and add-tree nodes.
* :class:`PebbleGame` -- executes a schedule of ``load`` / ``compute`` /
  ``store`` / ``evict`` moves with a bounded number of red pebbles (fast
  memory slots) and counts the I/O (red<->blue transitions).
* :func:`greedy_pebble_schedule` -- a simple scheduler that plays the game in
  topological order with least-recently-used eviction, giving an upper bound
  on the optimal I/O.
* :func:`validate_s_partition` -- checks Properties 1-4 of the S-partition
  definition for an explicit partition.
* :func:`theorem1_bound` -- ``Q >= S * (P(2S) - 1)`` given a subset count.

These pieces are deliberately small-scale (the DAG of a real layer is huge);
they exist so the theory the bound rests on is testable code, and so
property-based tests can confirm that *any* legal execution of a small
convolution respects Theorem 2.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.layer import ConvLayer


@dataclass
class Dag:
    """A directed acyclic graph describing a computation.

    ``predecessors[node]`` lists the nodes whose values the node consumes.
    Input nodes have no predecessors.
    """

    predecessors: dict = field(default_factory=dict)

    def add_input(self, node: str) -> None:
        """Add an input (source) node."""
        if node in self.predecessors:
            raise ValueError(f"node {node!r} already exists")
        self.predecessors[node] = []

    def add_operation(self, node: str, operands: list) -> None:
        """Add an operation node depending on ``operands``."""
        if node in self.predecessors:
            raise ValueError(f"node {node!r} already exists")
        for operand in operands:
            if operand not in self.predecessors:
                raise ValueError(f"operand {operand!r} not in DAG")
        self.predecessors[node] = list(operands)

    @property
    def nodes(self) -> list:
        return list(self.predecessors)

    @property
    def input_nodes(self) -> list:
        return [node for node, preds in self.predecessors.items() if not preds]

    @property
    def operation_nodes(self) -> list:
        return [node for node, preds in self.predecessors.items() if preds]

    def successors(self) -> dict:
        """Map from node to the list of nodes that consume it."""
        result = {node: [] for node in self.predecessors}
        for node, preds in self.predecessors.items():
            for pred in preds:
                result[pred].append(node)
        return result

    def output_nodes(self) -> list:
        """Nodes with no successors (the results of the computation)."""
        succ = self.successors()
        return [node for node, following in succ.items() if not following]

    def topological_order(self) -> list:
        """Nodes in a valid execution order (inputs first)."""
        order = []
        visited = set()

        def visit(node: str) -> None:
            if node in visited:
                return
            visited.add(node)
            for pred in self.predecessors[node]:
                visit(pred)
            order.append(node)

        for node in self.predecessors:
            visit(node)
        return order


def build_conv_dag(layer: ConvLayer) -> Dag:
    """Build the three-level DAG of Fig. 4 for a small convolutional layer.

    Node names: ``in/<i>/<c>/<y>/<x>``, ``w/<o>/<c>/<ky>/<kx>``,
    ``mul/...`` and ``add/...``.  Only practical for tiny layers -- the node
    count is ``#inputs + #weights + 2 * #MACs``.
    """
    if layer.macs > 200_000:
        raise ValueError("layer too large to expand into an explicit DAG")
    if layer.padding != 0:
        raise ValueError("explicit DAG construction assumes zero padding")
    dag = Dag()
    for image in range(layer.batch):
        for channel in range(layer.in_channels):
            for row in range(layer.in_height):
                for col in range(layer.in_width):
                    dag.add_input(f"in/{image}/{channel}/{row}/{col}")
    for out_c in range(layer.out_channels):
        for channel in range(layer.in_channels):
            for ky in range(layer.kernel_height):
                for kx in range(layer.kernel_width):
                    dag.add_input(f"w/{out_c}/{channel}/{ky}/{kx}")

    stride = layer.stride
    for image in range(layer.batch):
        for out_c in range(layer.out_channels):
            for oy in range(layer.out_height):
                for ox in range(layer.out_width):
                    previous = None
                    for channel in range(layer.in_channels):
                        for ky in range(layer.kernel_height):
                            for kx in range(layer.kernel_width):
                                input_node = (
                                    f"in/{image}/{channel}/{oy * stride + ky}/{ox * stride + kx}"
                                )
                                weight_node = f"w/{out_c}/{channel}/{ky}/{kx}"
                                mul_node = (
                                    f"mul/{image}/{out_c}/{oy}/{ox}/{channel}/{ky}/{kx}"
                                )
                                dag.add_operation(mul_node, [input_node, weight_node])
                                add_node = (
                                    f"add/{image}/{out_c}/{oy}/{ox}/{channel}/{ky}/{kx}"
                                )
                                operands = [mul_node]
                                if previous is not None:
                                    operands.append(previous)
                                dag.add_operation(add_node, operands)
                                previous = add_node
    return dag


@dataclass(frozen=True)
class PebbleResult:
    """Outcome of playing the red-blue pebble game to completion."""

    loads: int
    stores: int
    computes: int

    @property
    def io(self) -> int:
        """Total I/O between fast and slow memory (the game's cost)."""
        return self.loads + self.stores


class PebbleGame:
    """Red-blue pebble game executor with ``fast_slots`` red pebbles.

    Moves:
      * ``load(node)`` -- copy a blue-pebbled value into fast memory.
      * ``compute(node)`` -- place a red pebble on an operation node whose
        predecessors all hold red pebbles.
      * ``store(node)`` -- copy a red-pebbled value to slow memory.
      * ``evict(node)`` -- drop a red pebble (the value must already be blue
        if it is ever needed again -- this is *not* checked here; the greedy
        scheduler only evicts safely).
    """

    def __init__(self, dag: Dag, fast_slots: int):
        if fast_slots < 2:
            raise ValueError("the game needs at least two red pebbles")
        self.dag = dag
        self.fast_slots = fast_slots
        self.red = OrderedDict()
        self.blue = set(dag.input_nodes)
        self.loads = 0
        self.stores = 0
        self.computes = 0

    def _touch(self, node: str) -> None:
        self.red.move_to_end(node)

    def _ensure_space(self) -> None:
        if len(self.red) > self.fast_slots:
            raise RuntimeError("fast memory over capacity")

    def load(self, node: str) -> None:
        if node not in self.blue:
            raise RuntimeError(f"cannot load {node!r}: no blue pebble")
        if node in self.red:
            self._touch(node)
            return
        self.red[node] = True
        self.loads += 1
        self._ensure_space()

    def compute(self, node: str) -> None:
        preds = self.dag.predecessors[node]
        if not preds:
            raise RuntimeError(f"{node!r} is an input; load it instead")
        for pred in preds:
            if pred not in self.red:
                raise RuntimeError(f"cannot compute {node!r}: {pred!r} not in fast memory")
        self.red[node] = True
        self.computes += 1
        self._ensure_space()

    def store(self, node: str) -> None:
        if node not in self.red:
            raise RuntimeError(f"cannot store {node!r}: not in fast memory")
        self.blue.add(node)
        self.stores += 1

    def evict(self, node: str) -> None:
        if node not in self.red:
            raise RuntimeError(f"cannot evict {node!r}: not in fast memory")
        del self.red[node]

    def result(self) -> PebbleResult:
        return PebbleResult(loads=self.loads, stores=self.stores, computes=self.computes)


def greedy_pebble_schedule(dag: Dag, fast_slots: int) -> PebbleResult:
    """Play the game in topological order with LRU eviction.

    Every operation node is computed exactly once; values evicted while still
    needed are stored first so they can be reloaded.  The resulting I/O is an
    upper bound on the optimum and (by Theorem 1) at least the lower bound.
    """
    game = PebbleGame(dag, fast_slots)
    outputs = set(dag.output_nodes())
    remaining_uses = {node: len(succ) for node, succ in dag.successors().items()}

    def make_room(needed: int) -> None:
        while len(game.red) + needed > fast_slots:
            victim = None
            for candidate in game.red:
                victim = candidate
                break
            if victim is None:
                raise RuntimeError("cannot make room in fast memory")
            if remaining_uses.get(victim, 0) > 0 and victim not in game.blue:
                game.store(victim)
            game.evict(victim)

    for node in dag.topological_order():
        preds = dag.predecessors[node]
        if not preds:
            continue
        missing = [pred for pred in preds if pred not in game.red]
        make_room(len(missing) + 1)
        for pred in missing:
            game.load(pred)
        game.compute(node)
        for pred in preds:
            remaining_uses[pred] -= 1
            if remaining_uses[pred] == 0 and pred not in outputs and pred in game.red:
                game.evict(pred)
        if node in outputs:
            game.store(node)
            game.evict(node)
    return game.result()


def validate_s_partition(dag: Dag, partition: list, capacity: int) -> bool:
    """Check Properties 1-4 of an S-partition (Section II-C).

    ``partition`` is a list of sets of operation-node names.  Returns ``True``
    when the partition is a valid S-partition for fast memory ``capacity``.
    """
    operations = set(dag.operation_nodes)
    union = set()
    for subset in partition:
        if union & subset:
            return False  # Property 1: disjoint
        union |= subset
    if union != operations:
        return False  # Property 1: cover all operation nodes

    index_of = {}
    for index, subset in enumerate(partition):
        for node in subset:
            index_of[node] = index

    # Property 2: no cyclic dependency among subsets.
    edges = set()
    for node in operations:
        for pred in dag.predecessors[node]:
            if pred in index_of and index_of[pred] != index_of[node]:
                edges.add((index_of[pred], index_of[node]))
    if _has_cycle(len(partition), edges):
        return False

    successors = dag.successors()
    for subset in partition:
        # Property 4: output set no larger than capacity.
        output_set = {
            node for node in subset if not any(succ in subset for succ in successors[node])
        }
        if len(output_set) > capacity:
            return False
        # Property 3: a dominator set of size <= capacity exists.  We use the
        # standard witness: the subset's "boundary" -- values produced outside
        # the subset (or inputs) that are directly consumed inside it.
        boundary = set()
        for node in subset:
            for pred in dag.predecessors[node]:
                if pred not in subset:
                    boundary.add(pred)
        if len(boundary) > capacity:
            return False
    return True


def _has_cycle(count: int, edges: set) -> bool:
    adjacency = {index: [] for index in range(count)}
    for src, dst in edges:
        adjacency[src].append(dst)
    state = {index: 0 for index in range(count)}  # 0=unvisited, 1=active, 2=done

    def visit(node: int) -> bool:
        state[node] = 1
        for nxt in adjacency[node]:
            if state[nxt] == 1:
                return True
            if state[nxt] == 0 and visit(nxt):
                return True
        state[node] = 2
        return False

    return any(state[index] == 0 and visit(index) for index in range(count))


def theorem1_bound(fast_slots: int, min_subsets_2s: int) -> int:
    """Theorem 1: ``Q >= S * (P(2S) - 1)``."""
    return fast_slots * max(0, min_subsets_2s - 1)
