"""Off-chip DRAM model.

The paper evaluates a 2 GB DDR3 device with CACTI: 427.9 pJ per (16-bit)
access, 6.4 GB/s peak bandwidth, 100 MHz DRAM clock against a 500 MHz core
clock.  This module is the stand-in for that CACTI output: it provides the
same three quantities (access energy, bandwidth, access latency) to the rest
of the system.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.traffic import BYTES_PER_WORD


@dataclass(frozen=True)
class DramModel:
    """Energy / bandwidth / latency model of the off-chip DRAM."""

    energy_per_access_pj: float = 427.9
    peak_bandwidth_bytes_per_s: float = 6.4e9
    access_latency_s: float = 50e-9
    capacity_bytes: int = 2 * 1024 ** 3

    def access_energy_pj(self, words: float) -> float:
        """Energy (pJ) to move ``words`` 16-bit words across the DRAM interface."""
        if words < 0:
            raise ValueError("word count must be non-negative")
        return words * self.energy_per_access_pj

    def transfer_time_s(self, words: float) -> float:
        """Best-case streaming time (seconds) for ``words`` words."""
        if words < 0:
            raise ValueError("word count must be non-negative")
        return self.access_latency_s + words * BYTES_PER_WORD / self.peak_bandwidth_bytes_per_s

    def transfer_cycles(self, words: float, clock_hz: float) -> float:
        """Streaming time expressed in core clock cycles."""
        return self.transfer_time_s(words) * clock_hz

    def bytes_per_core_cycle(self, clock_hz: float) -> float:
        """Sustained DRAM bytes deliverable per core cycle."""
        return self.peak_bandwidth_bytes_per_s / clock_hz
