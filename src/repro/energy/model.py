"""Energy model based on the per-operation energies of Table II.

The paper synthesises the accelerator in a 65 nm technology and reports the
energy of every basic operation (Table II); this module consumes those
numbers directly.  Two modelling constants are not in the table and are
documented here:

* ``GREG_ACCESS_PJ`` -- GReg segments are 64-entry register files, so one
  GReg access is charged the 64 B LReg access energy (1.16 pJ).
* ``LREG_STATIC_PJ_PER_BYTE_PER_CYCLE`` -- the paper attributes the gap
  between its register energy and the register lower bound mainly to LReg
  *static* (leakage) energy and argues that more PEs (fewer LRegs each,
  shorter runtime) reduce it.  The constant is calibrated so that the
  ordering and rough magnitude of that effect match Fig. 18; absolute pJ/MAC
  values scale with it and are reported as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.config import AcceleratorConfig
from repro.core.layer import ConvLayer
from repro.core.lower_bound import practical_lower_bound
from repro.core.traffic import BYTES_PER_WORD
from repro.energy.dram import DramModel

#: Per-operation energies of Table II, in pJ.
OPERATION_ENERGY = {
    "mac": 4.16,
    "gbuf_0.5KB": 0.30,
    "gbuf_2KB": 1.39,
    "gbuf_3.125KB": 2.36,
    "lreg_256B": 3.39,
    "lreg_128B": 1.92,
    "lreg_64B": 1.16,
    "dram": 427.9,
}

#: Energy per GReg access (64-entry register file segments, see module docstring).
GREG_ACCESS_PJ = OPERATION_ENERGY["lreg_64B"]

#: LReg leakage, pJ per byte per core clock cycle (calibrated, see module docstring).
LREG_STATIC_PJ_PER_BYTE_PER_CYCLE = 0.002

#: Fixed overhead (controller, FIFOs, clock tree) as a fraction of dynamic energy.
OTHER_ENERGY_FRACTION = 0.05

_LREG_ENERGY_BY_BYTES = {256: 3.39, 128: 1.92, 64: 1.16}
_GBUF_ENERGY_BY_BYTES = {512: 0.30, 2048: 1.39, 3200: 2.36}


def lreg_access_energy_pj(bytes_per_pe: int) -> float:
    """Per-access energy of a PE's LReg file, interpolating Table II."""
    return _interpolate_energy(_LREG_ENERGY_BY_BYTES, bytes_per_pe)


def sram_access_energy_pj(capacity_bytes: int) -> float:
    """Per-access energy of an on-chip SRAM (GBuf), interpolating Table II."""
    return _interpolate_energy(_GBUF_ENERGY_BY_BYTES, capacity_bytes)


def _interpolate_energy(table: dict, capacity_bytes: int) -> float:
    """Log-linear interpolation/extrapolation over a size->energy table."""
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    sizes = sorted(table)
    if capacity_bytes in table:
        return table[capacity_bytes]
    if capacity_bytes <= sizes[0]:
        low, high = sizes[0], sizes[1]
    elif capacity_bytes >= sizes[-1]:
        low, high = sizes[-2], sizes[-1]
    else:
        low = max(size for size in sizes if size < capacity_bytes)
        high = min(size for size in sizes if size > capacity_bytes)
    slope = (table[high] - table[low]) / (math.log(high) - math.log(low))
    return max(0.05, table[low] + slope * (math.log(capacity_bytes) - math.log(low)))


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one layer (or a whole network) by component, in pJ."""

    dram: float = 0.0
    gbuf: float = 0.0
    mac: float = 0.0
    lreg_dynamic: float = 0.0
    lreg_static: float = 0.0
    greg: float = 0.0
    other: float = 0.0
    macs: int = 0

    @property
    def lreg(self) -> float:
        return self.lreg_dynamic + self.lreg_static

    @property
    def total(self) -> float:
        return self.dram + self.gbuf + self.mac + self.lreg + self.greg + self.other

    @property
    def pj_per_mac(self) -> float:
        """Energy efficiency in pJ/MAC (Fig. 18's unit)."""
        return self.total / self.macs if self.macs else 0.0

    @property
    def on_chip_total(self) -> float:
        """Total energy excluding DRAM (for the Eyeriss on-chip comparison)."""
        return self.total - self.dram

    def component_pj_per_mac(self) -> dict:
        """Per-component energy efficiency, matching Fig. 18's stacking."""
        if not self.macs:
            return {}
        return {
            "DRAM": self.dram / self.macs,
            "GBufs": self.gbuf / self.macs,
            "MAC units": self.mac / self.macs,
            "LRegs": self.lreg / self.macs,
            "GRegs": self.greg / self.macs,
            "Others": self.other / self.macs,
        }

    def __add__(self, other: "EnergyBreakdown") -> "EnergyBreakdown":
        if not isinstance(other, EnergyBreakdown):
            return NotImplemented
        return EnergyBreakdown(
            dram=self.dram + other.dram,
            gbuf=self.gbuf + other.gbuf,
            mac=self.mac + other.mac,
            lreg_dynamic=self.lreg_dynamic + other.lreg_dynamic,
            lreg_static=self.lreg_static + other.lreg_static,
            greg=self.greg + other.greg,
            other=self.other + other.other,
            macs=self.macs + other.macs,
        )


class EnergyModel:
    """Translates access counts (a :class:`LayerRunResult`) into energy."""

    def __init__(self, dram: DramModel = None):
        self.dram = dram or DramModel()

    def layer_energy(self, result, config: AcceleratorConfig) -> EnergyBreakdown:
        """Energy of one :class:`~repro.arch.accelerator.LayerRunResult`."""
        return self.energy_from_counts(
            config,
            dram_words=result.dram.total,
            igbuf_reads=result.igbuf_reads,
            igbuf_writes=result.igbuf_writes,
            wgbuf_reads=result.wgbuf_reads,
            wgbuf_writes=result.wgbuf_writes,
            macs=result.macs,
            lreg_reads=result.lreg_reads,
            lreg_writes=result.lreg_writes,
            greg_writes=result.greg_writes,
            total_cycles=result.total_cycles,
        )

    def energy_from_counts(
        self,
        config: AcceleratorConfig,
        *,
        dram_words,
        igbuf_reads,
        igbuf_writes,
        wgbuf_reads,
        wgbuf_writes,
        macs,
        lreg_reads,
        lreg_writes,
        greg_writes,
        total_cycles,
    ) -> EnergyBreakdown:
        """Translate raw access counts into an :class:`EnergyBreakdown`.

        The arithmetic behind :meth:`layer_energy`, exposed so estimators
        that produce access counts without a full accelerator run (the DSE
        subsystem's first-order model) price them with the exact same
        Table II constants and interpolations.
        """
        igbuf_energy = sram_access_energy_pj(config.igbuf_words * BYTES_PER_WORD)
        wgbuf_energy = sram_access_energy_pj(config.wgbuf_words * BYTES_PER_WORD)
        lreg_energy = lreg_access_energy_pj(config.lreg_bytes_per_pe)

        dram_pj = self.dram.access_energy_pj(dram_words)
        gbuf_pj = (
            (igbuf_reads + igbuf_writes) * igbuf_energy
            + (wgbuf_reads + wgbuf_writes) * wgbuf_energy
        )
        mac_pj = macs * OPERATION_ENERGY["mac"]
        lreg_dynamic_pj = (lreg_writes + lreg_reads) * lreg_energy
        lreg_bytes_total = config.num_pes * config.lreg_bytes_per_pe
        lreg_static_pj = (
            lreg_bytes_total * LREG_STATIC_PJ_PER_BYTE_PER_CYCLE * total_cycles
        )
        greg_pj = greg_writes * GREG_ACCESS_PJ
        dynamic_on_chip = gbuf_pj + mac_pj + lreg_dynamic_pj + greg_pj
        other_pj = OTHER_ENERGY_FRACTION * dynamic_on_chip
        return EnergyBreakdown(
            dram=dram_pj,
            gbuf=gbuf_pj,
            mac=mac_pj,
            lreg_dynamic=lreg_dynamic_pj,
            lreg_static=lreg_static_pj,
            greg=greg_pj,
            other=other_pj,
            macs=macs,
        )

    def network_energy(self, network_result, config: AcceleratorConfig) -> EnergyBreakdown:
        """Sum of layer energies over a :class:`NetworkRunResult`."""
        total = EnergyBreakdown()
        for layer_result in network_result.layers:
            total = total + self.layer_energy(layer_result, config)
        return total

    def lower_bound_energy(self, layers: list, on_chip_words: int) -> EnergyBreakdown:
        """The Fig. 18 "lower bound": DRAM at the Eq. (15) bound, one MAC and
        one minimal register write per MAC, nothing else."""
        dram_words = sum(practical_lower_bound(layer, on_chip_words) for layer in layers)
        macs = sum(layer.macs for layer in layers)
        smallest_lreg = min(_LREG_ENERGY_BY_BYTES.values())
        return EnergyBreakdown(
            dram=self.dram.access_energy_pj(dram_words),
            mac=macs * OPERATION_ENERGY["mac"],
            lreg_dynamic=macs * smallest_lreg,
            macs=macs,
        )


def efficiency_gap(actual: EnergyBreakdown, bound: EnergyBreakdown) -> float:
    """Relative gap between an implementation and the energy lower bound.

    The paper reports this gap as 37-87 % across the five implementations.
    """
    if bound.total == 0:
        raise ValueError("bound energy is zero")
    return actual.total / bound.total - 1.0
