"""Energy models: per-operation energies (Table II) and the DRAM model."""

from repro.energy.model import (
    OPERATION_ENERGY,
    EnergyBreakdown,
    EnergyModel,
    lreg_access_energy_pj,
    sram_access_energy_pj,
)
from repro.energy.dram import DramModel

__all__ = [
    "OPERATION_ENERGY",
    "EnergyBreakdown",
    "EnergyModel",
    "lreg_access_energy_pj",
    "sram_access_energy_pj",
    "DramModel",
]
