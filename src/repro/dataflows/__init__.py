"""Dataflow models: the paper's dataflow and the Fig. 12 baselines.

Every dataflow exposes the same interface (:class:`repro.dataflows.base.Dataflow`):
given a layer and an effective on-chip capacity, search its tiling space and
return the DRAM :class:`~repro.core.traffic.TrafficBreakdown` of the best
tiling found.  The registry (:mod:`repro.dataflows.registry`) lists all of
them; :func:`repro.dataflows.search.found_minimum` reproduces the paper's
"found minimum" curve (best dataflow with best tiling sizes per layer).
"""

from repro.dataflows.base import Dataflow, DataflowResult
from repro.dataflows.ours import OptimalDataflow
from repro.dataflows.outr import OutRA, OutRB
from repro.dataflows.wtr import WtRA, WtRB
from repro.dataflows.inr import InRA, InRB, InRC
from repro.dataflows.registry import ALL_DATAFLOWS, BASELINE_DATAFLOWS, get_dataflow
from repro.dataflows.search import found_minimum, network_traffic

__all__ = [
    "Dataflow",
    "DataflowResult",
    "OptimalDataflow",
    "OutRA",
    "OutRB",
    "WtRA",
    "WtRB",
    "InRA",
    "InRB",
    "InRC",
    "ALL_DATAFLOWS",
    "BASELINE_DATAFLOWS",
    "get_dataflow",
    "found_minimum",
    "network_traffic",
]
